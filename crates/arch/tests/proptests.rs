//! Property-based tests for the chip geometry and parameter space.

use plasticine_arch::{GridMix, PlasticineParams, SiteKind, Topology};
use proptest::prelude::*;

fn params_strategy() -> impl Strategy<Value = PlasticineParams> {
    (
        2usize..20,
        2usize..12,
        prop::sample::select(vec![GridMix::Checkerboard, GridMix::PmuHeavy]),
    )
        .prop_map(|(cols, rows, mix)| PlasticineParams {
            cols,
            rows,
            mix,
            ..PlasticineParams::paper_final()
        })
}

proptest! {
    #[test]
    fn site_partition_is_exact(p in params_strategy()) {
        let t = Topology::new(&p);
        let pcus = t.sites_of(SiteKind::Pcu).len();
        let pmus = t.sites_of(SiteKind::Pmu).len();
        prop_assert_eq!(pcus + pmus, p.cols * p.rows);
        prop_assert_eq!(pcus, p.num_pcus());
        prop_assert_eq!(pmus, p.num_pmus());
    }

    #[test]
    fn every_site_has_a_valid_switch(p in params_strategy()) {
        let t = Topology::new(&p);
        for i in 0..t.sites().len() {
            let sw = t.site_switch(plasticine_arch::SiteId(i as u32));
            let (x, y) = t.switch_xy(sw);
            prop_assert!(x < t.switch_cols());
            prop_assert!(y < t.switch_rows());
        }
    }

    #[test]
    fn switch_distance_is_a_metric(p in params_strategy(),
                                   a in (0usize..20, 0usize..12),
                                   b in (0usize..20, 0usize..12),
                                   c in (0usize..20, 0usize..12)) {
        let t = Topology::new(&p);
        let clampxy = |(x, y): (usize, usize)| {
            t.switch_at(x.min(t.switch_cols() - 1), y.min(t.switch_rows() - 1))
        };
        let (a, b, c) = (clampxy(a), clampxy(b), clampxy(c));
        let d = |x, y| t.switch_distance(x, y);
        prop_assert_eq!(d(a, a), 0);
        prop_assert_eq!(d(a, b), d(b, a));
        prop_assert!(d(a, c) <= d(a, b) + d(b, c));
    }

    #[test]
    fn neighbors_are_mutual_and_adjacent(p in params_strategy(), sx in 0usize..20, sy in 0usize..12) {
        let t = Topology::new(&p);
        let s = t.switch_at(sx.min(t.switch_cols() - 1), sy.min(t.switch_rows() - 1));
        for n in t.switch_neighbors(s) {
            prop_assert_eq!(t.switch_distance(s, n), 1);
            prop_assert!(t.switch_neighbors(n).contains(&s));
        }
    }

    #[test]
    fn ag_switches_stay_on_the_edge(p in params_strategy()) {
        let t = Topology::new(&p);
        for i in 0..p.ags {
            let (x, _) = t.switch_xy(t.ag_switch(plasticine_arch::AgId(i as u32)));
            prop_assert!(x == 0 || x == t.switch_cols() - 1);
        }
    }

    #[test]
    fn scratchpad_capacity_consistent(bank_kb in 1usize..64, banks in 1usize..32) {
        let mut p = PlasticineParams::paper_final();
        p.pmu.bank_kb = bank_kb;
        p.pmu.banks = banks;
        prop_assert_eq!(p.pmu.capacity_bytes(), bank_kb * banks * 1024);
        prop_assert_eq!(p.total_scratchpad_bytes(), p.num_pmus() * bank_kb * banks * 1024);
    }
}
