//! The configuration "bitstream": everything the compiler decides and the
//! simulator executes (§3.6 of the paper).
//!
//! A [`MachineConfig`] binds a validated parallel-pattern
//! [`Program`](plasticine_ppir::Program) onto a chip: each inner controller
//! becomes a [`ComputeCfg`] over one or more physical PCUs (after
//! partitioning and outer-loop unrolling), each scratchpad becomes a
//! [`MemoryCfg`] over one or more PMUs, each off-chip transfer gets
//! [`AgCfg`] address generators, outer controllers land in switch control
//! boxes, and every producer→consumer data movement is a routed
//! [`LinkCfg`] with a hop count on one of the three static networks.

use crate::geom::{AgId, SiteId, SwitchId};
use crate::params::PlasticineParams;
use plasticine_ppir::{BankingMode, CtrlId, DramId, SramId};
use serde::{Deserialize, Serialize};

/// Which static network a link uses (§3.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NetClass {
    /// Word-level scalar network.
    Scalar,
    /// Multi-word vector network (one word per lane).
    Vector,
    /// Bit-level control network (tokens, credits).
    Control,
}

/// Identifier of a logical unit within a [`MachineConfig`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct UnitId(pub u32);

/// An inner compute controller bound to physical PCUs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ComputeCfg {
    /// The ppir inner controller this unit group implements.
    pub ctrl: CtrlId,
    /// All physical PCUs used, across copies and pipeline partitions.
    pub sites: Vec<SiteId>,
    /// Outer-loop unroll duplicates executing concurrently.
    pub copies: usize,
    /// Physical PCUs chained per copy (result of stage partitioning).
    pub pcus_per_copy: usize,
    /// Total pipeline latency in stages across the chained PCUs, including
    /// the cross-lane reduction tree when present.
    pub pipeline_depth: usize,
    /// SIMD lanes used by the innermost counter.
    pub lanes: usize,
}

/// A scratchpad bound to physical PMUs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MemoryCfg {
    /// The ppir scratchpad.
    pub sram: SramId,
    /// Physical PMUs holding it (several when the logical memory exceeds
    /// one PMU's capacity, is duplicated for parallel random reads, or is
    /// unrolled along with its producer).
    pub sites: Vec<SiteId>,
    /// N-buffer depth configured (1 = single buffer).
    pub nbuf: usize,
    /// Banking mode programmed into the address decoders.
    pub banking: BankingMode,
}

/// Whether an AG issues dense bursts or sparse element streams.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AgMode {
    /// Dense burst commands (tile loads/stores).
    Dense,
    /// Sparse address streams through the coalescing unit (gather/scatter).
    Sparse,
}

/// An off-chip transfer controller bound to address generators.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AgCfg {
    /// The ppir transfer controller.
    pub ctrl: CtrlId,
    /// Address generators allocated (unrolled transfers get several).
    pub ags: Vec<AgId>,
    /// Dense or sparse addressing.
    pub mode: AgMode,
}

/// An outer controller mapped into a switch control box (§3.5: "outer
/// controllers are mapped to control logic in switches").
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OuterCtrlCfg {
    /// The ppir outer controller.
    pub ctrl: CtrlId,
    /// Hosting switch.
    pub switch: SwitchId,
}

/// One logical unit of the configured machine.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum UnitCfg {
    /// Compute pipeline on PCUs.
    Compute(ComputeCfg),
    /// Scratchpad on PMUs.
    Memory(MemoryCfg),
    /// Off-chip transfer on AGs.
    Ag(AgCfg),
    /// Outer control in a switch.
    Outer(OuterCtrlCfg),
}

impl UnitCfg {
    /// The ppir controller this unit implements, if any.
    pub fn ctrl(&self) -> Option<CtrlId> {
        match self {
            UnitCfg::Compute(c) => Some(c.ctrl),
            UnitCfg::Ag(a) => Some(a.ctrl),
            UnitCfg::Outer(o) => Some(o.ctrl),
            UnitCfg::Memory(_) => None,
        }
    }
}

/// A routed point-to-point connection on one of the static networks.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinkCfg {
    /// Producer unit.
    pub src: UnitId,
    /// Consumer unit.
    pub dst: UnitId,
    /// Network class.
    pub class: NetClass,
    /// Switches traversed, in order (for congestion accounting).
    pub path: Vec<SwitchId>,
    /// Registered hops — the link's pipeline latency in cycles.
    pub hops: usize,
}

/// Placement of each DRAM buffer in the physical address space.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct DramAlloc {
    /// Byte base address of each [`DramId`], indexed by id.
    pub base: Vec<u64>,
}

impl DramAlloc {
    /// Base byte address of a buffer.
    pub fn base_of(&self, id: DramId) -> u64 {
        self.base[id.0 as usize]
    }
}

/// Static resource usage of a configuration (Table 7's utilization columns
/// are these counts over the chip totals).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ResourceUsage {
    /// Physical PCUs occupied.
    pub pcus: usize,
    /// Physical PMUs occupied.
    pub pmus: usize,
    /// Address generators occupied.
    pub ags: usize,
    /// Switch control boxes hosting outer controllers.
    pub switch_ctrls: usize,
}

/// A fully placed-and-routed accelerator configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MachineConfig {
    /// Architecture parameters the configuration targets.
    pub params: PlasticineParams,
    /// Name of the source program.
    pub program_name: String,
    /// All logical units.
    pub units: Vec<UnitCfg>,
    /// All routed links.
    pub links: Vec<LinkCfg>,
    /// DRAM buffer placement.
    pub alloc: DramAlloc,
    /// Static resource usage.
    pub usage: ResourceUsage,
}

impl MachineConfig {
    /// Utilization fractions `(pcu, pmu, ag)` over the chip's totals.
    pub fn utilization(&self) -> (f64, f64, f64) {
        (
            self.usage.pcus as f64 / self.params.num_pcus() as f64,
            self.usage.pmus as f64 / self.params.num_pmus() as f64,
            self.usage.ags as f64 / self.params.ags as f64,
        )
    }

    /// The logical unit implementing a given ppir controller, if any.
    pub fn unit_for_ctrl(&self, ctrl: CtrlId) -> Option<UnitId> {
        self.units
            .iter()
            .position(|u| u.ctrl() == Some(ctrl))
            .map(|i| UnitId(i as u32))
    }

    /// The logical memory unit holding a given scratchpad, if any.
    pub fn unit_for_sram(&self, sram: SramId) -> Option<UnitId> {
        self.units
            .iter()
            .position(|u| matches!(u, UnitCfg::Memory(m) if m.sram == sram))
            .map(|i| UnitId(i as u32))
    }

    /// All links into a unit.
    pub fn links_in(&self, dst: UnitId) -> impl Iterator<Item = &LinkCfg> {
        self.links.iter().filter(move |l| l.dst == dst)
    }

    /// All links out of a unit.
    pub fn links_out(&self, src: UnitId) -> impl Iterator<Item = &LinkCfg> {
        self.links.iter().filter(move |l| l.src == src)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn empty_config() -> MachineConfig {
        MachineConfig {
            params: PlasticineParams::paper_final(),
            program_name: "empty".into(),
            units: vec![],
            links: vec![],
            alloc: DramAlloc::default(),
            usage: ResourceUsage::default(),
        }
    }

    #[test]
    fn utilization_of_empty_config_is_zero() {
        let c = empty_config();
        assert_eq!(c.utilization(), (0.0, 0.0, 0.0));
    }

    #[test]
    fn unit_lookup_by_ctrl_and_sram() {
        let mut c = empty_config();
        c.units.push(UnitCfg::Compute(ComputeCfg {
            ctrl: CtrlId(3),
            sites: vec![SiteId(0)],
            copies: 1,
            pcus_per_copy: 1,
            pipeline_depth: 6,
            lanes: 16,
        }));
        c.units.push(UnitCfg::Memory(MemoryCfg {
            sram: SramId(1),
            sites: vec![SiteId(1)],
            nbuf: 2,
            banking: BankingMode::Strided,
        }));
        assert_eq!(c.unit_for_ctrl(CtrlId(3)), Some(UnitId(0)));
        assert_eq!(c.unit_for_ctrl(CtrlId(9)), None);
        assert_eq!(c.unit_for_sram(SramId(1)), Some(UnitId(1)));
        assert_eq!(c.unit_for_sram(SramId(0)), None);
    }

    #[test]
    fn link_queries_filter_by_endpoint() {
        let mut c = empty_config();
        c.links.push(LinkCfg {
            src: UnitId(0),
            dst: UnitId(1),
            class: NetClass::Vector,
            path: vec![],
            hops: 3,
        });
        c.links.push(LinkCfg {
            src: UnitId(1),
            dst: UnitId(0),
            class: NetClass::Control,
            path: vec![],
            hops: 2,
        });
        assert_eq!(c.links_in(UnitId(1)).count(), 1);
        assert_eq!(c.links_out(UnitId(1)).count(), 1);
        assert_eq!(c.links_in(UnitId(0)).next().unwrap().hops, 2);
    }

    #[test]
    fn dram_alloc_indexes_by_id() {
        let a = DramAlloc {
            base: vec![0, 4096, 1 << 20],
        };
        assert_eq!(a.base_of(DramId(0)), 0);
        assert_eq!(a.base_of(DramId(2)), 1 << 20);
    }
}

/// Errors while saving or loading a configuration "bitstream".
#[derive(Debug)]
pub enum BitstreamError {
    /// Filesystem failure.
    Io(std::io::Error),
    /// The file is not a valid configuration.
    Format(serde_json::Error),
}

impl std::fmt::Display for BitstreamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BitstreamError::Io(e) => write!(f, "bitstream io error: {e}"),
            BitstreamError::Format(e) => write!(f, "bitstream format error: {e}"),
        }
    }
}

impl std::error::Error for BitstreamError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BitstreamError::Io(e) => Some(e),
            BitstreamError::Format(e) => Some(e),
        }
    }
}

impl MachineConfig {
    /// Serializes the configuration to its on-disk "bitstream" form
    /// (§3.6: "a static configuration 'bitstream' for the architecture" —
    /// ours is structured JSON rather than packed bits).
    ///
    /// # Errors
    ///
    /// Returns [`BitstreamError::Format`] if serialization fails.
    pub fn to_bitstream(&self) -> Result<String, BitstreamError> {
        serde_json::to_string_pretty(self).map_err(BitstreamError::Format)
    }

    /// Parses a configuration from its bitstream form.
    ///
    /// # Errors
    ///
    /// Returns [`BitstreamError::Format`] on malformed input.
    pub fn from_bitstream(s: &str) -> Result<MachineConfig, BitstreamError> {
        serde_json::from_str(s).map_err(BitstreamError::Format)
    }

    /// Writes the bitstream to a file.
    ///
    /// # Errors
    ///
    /// Returns [`BitstreamError`] on filesystem or serialization failure.
    pub fn save(&self, path: &std::path::Path) -> Result<(), BitstreamError> {
        let s = self.to_bitstream()?;
        std::fs::write(path, s).map_err(BitstreamError::Io)
    }

    /// Reads a bitstream from a file.
    ///
    /// # Errors
    ///
    /// Returns [`BitstreamError`] on filesystem or parse failure.
    pub fn load(path: &std::path::Path) -> Result<MachineConfig, BitstreamError> {
        let s = std::fs::read_to_string(path).map_err(BitstreamError::Io)?;
        MachineConfig::from_bitstream(&s)
    }
}

#[cfg(test)]
mod bitstream_tests {
    use super::*;
    use plasticine_ppir::CtrlId;

    #[test]
    fn bitstream_roundtrips() {
        let mut c = MachineConfig {
            params: PlasticineParams::paper_final(),
            program_name: "rt".into(),
            units: vec![],
            links: vec![],
            alloc: DramAlloc { base: vec![0, 4096] },
            usage: ResourceUsage::default(),
        };
        c.units.push(UnitCfg::Compute(ComputeCfg {
            ctrl: CtrlId(1),
            sites: vec![SiteId(3)],
            copies: 2,
            pcus_per_copy: 1,
            pipeline_depth: 6,
            lanes: 16,
        }));
        let s = c.to_bitstream().unwrap();
        let back = MachineConfig::from_bitstream(&s).unwrap();
        assert_eq!(back, c);
        assert!(MachineConfig::from_bitstream("not json").is_err());
    }
}
