//! The configuration "bitstream": everything the compiler decides and the
//! simulator executes (§3.6 of the paper).
//!
//! A [`MachineConfig`] binds a validated parallel-pattern
//! [`Program`](plasticine_ppir::Program) onto a chip: each inner controller
//! becomes a [`ComputeCfg`] over one or more physical PCUs (after
//! partitioning and outer-loop unrolling), each scratchpad becomes a
//! [`MemoryCfg`] over one or more PMUs, each off-chip transfer gets
//! [`AgCfg`] address generators, outer controllers land in switch control
//! boxes, and every producer→consumer data movement is a routed
//! [`LinkCfg`] with a hop count on one of the three static networks.

use crate::geom::{AgId, SiteId, SwitchId};
use crate::params::PlasticineParams;
use crate::partition::Partition;
use plasticine_ppir::{BankingMode, CtrlId, DramId, SramId};

/// Which static network a link uses (§3.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NetClass {
    /// Word-level scalar network.
    Scalar,
    /// Multi-word vector network (one word per lane).
    Vector,
    /// Bit-level control network (tokens, credits).
    Control,
}

/// Identifier of a logical unit within a [`MachineConfig`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct UnitId(pub u32);

/// An inner compute controller bound to physical PCUs.
#[derive(Debug, Clone, PartialEq)]
pub struct ComputeCfg {
    /// The ppir inner controller this unit group implements.
    pub ctrl: CtrlId,
    /// All physical PCUs used, across copies and pipeline partitions.
    pub sites: Vec<SiteId>,
    /// Outer-loop unroll duplicates executing concurrently.
    pub copies: usize,
    /// Physical PCUs chained per copy (result of stage partitioning).
    pub pcus_per_copy: usize,
    /// Total pipeline latency in stages across the chained PCUs, including
    /// the cross-lane reduction tree when present.
    pub pipeline_depth: usize,
    /// SIMD lanes used by the innermost counter.
    pub lanes: usize,
}

/// A scratchpad bound to physical PMUs.
#[derive(Debug, Clone, PartialEq)]
pub struct MemoryCfg {
    /// The ppir scratchpad.
    pub sram: SramId,
    /// Physical PMUs holding it (several when the logical memory exceeds
    /// one PMU's capacity, is duplicated for parallel random reads, or is
    /// unrolled along with its producer).
    pub sites: Vec<SiteId>,
    /// N-buffer depth configured (1 = single buffer).
    pub nbuf: usize,
    /// Banking mode programmed into the address decoders.
    pub banking: BankingMode,
}

/// Whether an AG issues dense bursts or sparse element streams.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AgMode {
    /// Dense burst commands (tile loads/stores).
    Dense,
    /// Sparse address streams through the coalescing unit (gather/scatter).
    Sparse,
}

/// An off-chip transfer controller bound to address generators.
#[derive(Debug, Clone, PartialEq)]
pub struct AgCfg {
    /// The ppir transfer controller.
    pub ctrl: CtrlId,
    /// Address generators allocated (unrolled transfers get several).
    pub ags: Vec<AgId>,
    /// Dense or sparse addressing.
    pub mode: AgMode,
}

/// An outer controller mapped into a switch control box (§3.5: "outer
/// controllers are mapped to control logic in switches").
#[derive(Debug, Clone, PartialEq)]
pub struct OuterCtrlCfg {
    /// The ppir outer controller.
    pub ctrl: CtrlId,
    /// Hosting switch.
    pub switch: SwitchId,
}

/// One logical unit of the configured machine.
#[derive(Debug, Clone, PartialEq)]
pub enum UnitCfg {
    /// Compute pipeline on PCUs.
    Compute(ComputeCfg),
    /// Scratchpad on PMUs.
    Memory(MemoryCfg),
    /// Off-chip transfer on AGs.
    Ag(AgCfg),
    /// Outer control in a switch.
    Outer(OuterCtrlCfg),
}

impl UnitCfg {
    /// The ppir controller this unit implements, if any.
    pub fn ctrl(&self) -> Option<CtrlId> {
        match self {
            UnitCfg::Compute(c) => Some(c.ctrl),
            UnitCfg::Ag(a) => Some(a.ctrl),
            UnitCfg::Outer(o) => Some(o.ctrl),
            UnitCfg::Memory(_) => None,
        }
    }
}

/// A routed point-to-point connection on one of the static networks.
#[derive(Debug, Clone, PartialEq)]
pub struct LinkCfg {
    /// Producer unit.
    pub src: UnitId,
    /// Consumer unit.
    pub dst: UnitId,
    /// Network class.
    pub class: NetClass,
    /// Switches traversed, in order (for congestion accounting).
    pub path: Vec<SwitchId>,
    /// Registered hops — the link's pipeline latency in cycles.
    pub hops: usize,
}

/// Placement of each DRAM buffer in the physical address space.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct DramAlloc {
    /// Byte base address of each [`DramId`], indexed by id.
    pub base: Vec<u64>,
}

impl DramAlloc {
    /// Base byte address of a buffer.
    pub fn base_of(&self, id: DramId) -> u64 {
        self.base[id.0 as usize]
    }
}

/// Static resource usage of a configuration (Table 7's utilization columns
/// are these counts over the chip totals).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ResourceUsage {
    /// Physical PCUs occupied.
    pub pcus: usize,
    /// Physical PMUs occupied.
    pub pmus: usize,
    /// Address generators occupied.
    pub ags: usize,
    /// Switch control boxes hosting outer controllers.
    pub switch_ctrls: usize,
}

/// A fully placed-and-routed accelerator configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct MachineConfig {
    /// Architecture parameters the configuration targets.
    pub params: PlasticineParams,
    /// Name of the source program.
    pub program_name: String,
    /// All logical units.
    pub units: Vec<UnitCfg>,
    /// All routed links.
    pub links: Vec<LinkCfg>,
    /// DRAM buffer placement.
    pub alloc: DramAlloc,
    /// Static resource usage.
    pub usage: ResourceUsage,
    /// The fabric partition this configuration was compiled for. `None`
    /// means the whole chip (the historical single-tenant compile).
    pub partition: Option<Partition>,
}

impl MachineConfig {
    /// Utilization fractions `(pcu, pmu, ag)` over the chip's totals.
    pub fn utilization(&self) -> (f64, f64, f64) {
        (
            self.usage.pcus as f64 / self.params.num_pcus() as f64,
            self.usage.pmus as f64 / self.params.num_pmus() as f64,
            self.usage.ags as f64 / self.params.ags as f64,
        )
    }

    /// The logical unit implementing a given ppir controller, if any.
    pub fn unit_for_ctrl(&self, ctrl: CtrlId) -> Option<UnitId> {
        self.units
            .iter()
            .position(|u| u.ctrl() == Some(ctrl))
            .map(|i| UnitId(i as u32))
    }

    /// The logical memory unit holding a given scratchpad, if any.
    pub fn unit_for_sram(&self, sram: SramId) -> Option<UnitId> {
        self.units
            .iter()
            .position(|u| matches!(u, UnitCfg::Memory(m) if m.sram == sram))
            .map(|i| UnitId(i as u32))
    }

    /// All links into a unit.
    pub fn links_in(&self, dst: UnitId) -> impl Iterator<Item = &LinkCfg> {
        self.links.iter().filter(move |l| l.dst == dst)
    }

    /// All links out of a unit.
    pub fn links_out(&self, src: UnitId) -> impl Iterator<Item = &LinkCfg> {
        self.links.iter().filter(move |l| l.src == src)
    }

    /// The configuration translated `dy` unit-grid rows vertically: every
    /// site, switch, AG, and the partition offset shift together. Only
    /// meaningful for full-width band partitions, where the placement at
    /// one offset is the placement at another offset translated — the
    /// basis of partition relocatability.
    pub fn relocated(&self, dy: i64) -> MachineConfig {
        let cols = self.params.cols;
        let scols = cols + 1;
        let srows = self.params.rows + 1;
        let mut c = self.clone();
        for u in &mut c.units {
            match u {
                UnitCfg::Compute(cc) => {
                    for s in &mut cc.sites {
                        *s = Partition::relocate_site(*s, dy, cols);
                    }
                }
                UnitCfg::Memory(m) => {
                    for s in &mut m.sites {
                        *s = Partition::relocate_site(*s, dy, cols);
                    }
                }
                UnitCfg::Ag(a) => {
                    for g in &mut a.ags {
                        *g = Partition::relocate_ag(*g, dy, srows);
                    }
                }
                UnitCfg::Outer(o) => {
                    o.switch = Partition::relocate_switch(o.switch, dy, scols);
                }
            }
        }
        for l in &mut c.links {
            for s in &mut l.path {
                *s = Partition::relocate_switch(*s, dy, scols);
            }
        }
        if let Some(p) = &mut c.partition {
            *p = p.at_offset((p.y0 as i64 + dy) as usize);
        }
        c
    }

    /// The configuration translated so its partition sits at offset 0 —
    /// the canonical representative of its geometry class. A full-chip
    /// configuration is returned unchanged. Checkpoint guard hashes use
    /// this form so a tenant can resume on any same-geometry partition.
    pub fn normalized(&self) -> MachineConfig {
        match &self.partition {
            Some(p) if p.y0 > 0 => self.relocated(-(p.y0 as i64)),
            _ => self.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn empty_config() -> MachineConfig {
        MachineConfig {
            params: PlasticineParams::paper_final(),
            program_name: "empty".into(),
            units: vec![],
            links: vec![],
            alloc: DramAlloc::default(),
            usage: ResourceUsage::default(),
            partition: None,
        }
    }

    #[test]
    fn utilization_of_empty_config_is_zero() {
        let c = empty_config();
        assert_eq!(c.utilization(), (0.0, 0.0, 0.0));
    }

    #[test]
    fn unit_lookup_by_ctrl_and_sram() {
        let mut c = empty_config();
        c.units.push(UnitCfg::Compute(ComputeCfg {
            ctrl: CtrlId(3),
            sites: vec![SiteId(0)],
            copies: 1,
            pcus_per_copy: 1,
            pipeline_depth: 6,
            lanes: 16,
        }));
        c.units.push(UnitCfg::Memory(MemoryCfg {
            sram: SramId(1),
            sites: vec![SiteId(1)],
            nbuf: 2,
            banking: BankingMode::Strided,
        }));
        assert_eq!(c.unit_for_ctrl(CtrlId(3)), Some(UnitId(0)));
        assert_eq!(c.unit_for_ctrl(CtrlId(9)), None);
        assert_eq!(c.unit_for_sram(SramId(1)), Some(UnitId(1)));
        assert_eq!(c.unit_for_sram(SramId(0)), None);
    }

    #[test]
    fn link_queries_filter_by_endpoint() {
        let mut c = empty_config();
        c.links.push(LinkCfg {
            src: UnitId(0),
            dst: UnitId(1),
            class: NetClass::Vector,
            path: vec![],
            hops: 3,
        });
        c.links.push(LinkCfg {
            src: UnitId(1),
            dst: UnitId(0),
            class: NetClass::Control,
            path: vec![],
            hops: 2,
        });
        assert_eq!(c.links_in(UnitId(1)).count(), 1);
        assert_eq!(c.links_out(UnitId(1)).count(), 1);
        assert_eq!(c.links_in(UnitId(0)).next().unwrap().hops, 2);
    }

    #[test]
    fn dram_alloc_indexes_by_id() {
        let a = DramAlloc {
            base: vec![0, 4096, 1 << 20],
        };
        assert_eq!(a.base_of(DramId(0)), 0);
        assert_eq!(a.base_of(DramId(2)), 1 << 20);
    }
}

/// Errors while saving or loading a configuration "bitstream".
#[derive(Debug)]
pub enum BitstreamError {
    /// Filesystem failure.
    Io(std::io::Error),
    /// The file is not a valid configuration.
    Format(String),
}

impl std::fmt::Display for BitstreamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BitstreamError::Io(e) => write!(f, "bitstream io error: {e}"),
            BitstreamError::Format(e) => write!(f, "bitstream format error: {e}"),
        }
    }
}

impl std::error::Error for BitstreamError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BitstreamError::Io(e) => Some(e),
            BitstreamError::Format(_) => None,
        }
    }
}

mod bitstream {
    //! Hand-rolled JSON (de)serialization of the configuration types over
    //! [`plasticine_json`]; field names match the struct definitions.

    use super::*;
    use crate::params::{GridMix, PcuParams, PmuParams};
    use plasticine_json::Json;

    type R<T> = Result<T, String>;

    fn field<'j>(j: &'j Json, key: &str) -> R<&'j Json> {
        j.get(key).ok_or_else(|| format!("missing field `{key}`"))
    }

    fn usize_of(j: &Json, key: &str) -> R<usize> {
        field(j, key)?
            .as_usize()
            .ok_or_else(|| format!("field `{key}` is not an unsigned integer"))
    }

    fn u64_of(j: &Json, key: &str) -> R<u64> {
        field(j, key)?
            .as_u64()
            .ok_or_else(|| format!("field `{key}` is not an unsigned integer"))
    }

    fn u32_of(j: &Json, key: &str) -> R<u32> {
        u64_of(j, key)?
            .try_into()
            .map_err(|_| format!("field `{key}` exceeds u32"))
    }

    fn f64_of(j: &Json, key: &str) -> R<f64> {
        field(j, key)?
            .as_f64()
            .ok_or_else(|| format!("field `{key}` is not a number"))
    }

    fn str_of<'j>(j: &'j Json, key: &str) -> R<&'j str> {
        field(j, key)?
            .as_str()
            .ok_or_else(|| format!("field `{key}` is not a string"))
    }

    fn arr_of<'j>(j: &'j Json, key: &str) -> R<&'j [Json]> {
        field(j, key)?
            .as_arr()
            .ok_or_else(|| format!("field `{key}` is not an array"))
    }

    fn ids_json(ids: &[u32]) -> Json {
        Json::Arr(ids.iter().map(|&v| Json::from(v)).collect())
    }

    fn ids_of(j: &Json, key: &str) -> R<Vec<u32>> {
        arr_of(j, key)?
            .iter()
            .map(|v| {
                v.as_u64()
                    .and_then(|n| u32::try_from(n).ok())
                    .ok_or_else(|| format!("field `{key}` holds a non-id value"))
            })
            .collect()
    }

    fn pcu_json(p: &PcuParams) -> Json {
        Json::obj([
            ("lanes", Json::from(p.lanes)),
            ("stages", Json::from(p.stages)),
            ("regs_per_stage", Json::from(p.regs_per_stage)),
            ("scalar_ins", Json::from(p.scalar_ins)),
            ("scalar_outs", Json::from(p.scalar_outs)),
            ("vector_ins", Json::from(p.vector_ins)),
            ("vector_outs", Json::from(p.vector_outs)),
            ("fifo_depth", Json::from(p.fifo_depth)),
            ("counters", Json::from(p.counters)),
        ])
    }

    fn pcu_back(j: &Json) -> R<PcuParams> {
        Ok(PcuParams {
            lanes: usize_of(j, "lanes")?,
            stages: usize_of(j, "stages")?,
            regs_per_stage: usize_of(j, "regs_per_stage")?,
            scalar_ins: usize_of(j, "scalar_ins")?,
            scalar_outs: usize_of(j, "scalar_outs")?,
            vector_ins: usize_of(j, "vector_ins")?,
            vector_outs: usize_of(j, "vector_outs")?,
            fifo_depth: usize_of(j, "fifo_depth")?,
            counters: usize_of(j, "counters")?,
        })
    }

    fn pmu_json(p: &PmuParams) -> Json {
        Json::obj([
            ("stages", Json::from(p.stages)),
            ("regs_per_stage", Json::from(p.regs_per_stage)),
            ("scalar_ins", Json::from(p.scalar_ins)),
            ("scalar_outs", Json::from(p.scalar_outs)),
            ("vector_ins", Json::from(p.vector_ins)),
            ("vector_outs", Json::from(p.vector_outs)),
            ("banks", Json::from(p.banks)),
            ("bank_kb", Json::from(p.bank_kb)),
            ("fifo_depth", Json::from(p.fifo_depth)),
            ("counters", Json::from(p.counters)),
        ])
    }

    fn pmu_back(j: &Json) -> R<PmuParams> {
        Ok(PmuParams {
            stages: usize_of(j, "stages")?,
            regs_per_stage: usize_of(j, "regs_per_stage")?,
            scalar_ins: usize_of(j, "scalar_ins")?,
            scalar_outs: usize_of(j, "scalar_outs")?,
            vector_ins: usize_of(j, "vector_ins")?,
            vector_outs: usize_of(j, "vector_outs")?,
            banks: usize_of(j, "banks")?,
            bank_kb: usize_of(j, "bank_kb")?,
            fifo_depth: usize_of(j, "fifo_depth")?,
            counters: usize_of(j, "counters")?,
        })
    }

    fn params_json(p: &PlasticineParams) -> Json {
        Json::obj([
            ("cols", Json::from(p.cols)),
            ("rows", Json::from(p.rows)),
            ("pcu", pcu_json(&p.pcu)),
            ("pmu", pmu_json(&p.pmu)),
            ("ags", Json::from(p.ags)),
            ("coalescing_units", Json::from(p.coalescing_units)),
            (
                "mix",
                Json::from(match p.mix {
                    GridMix::Checkerboard => "Checkerboard",
                    GridMix::PmuHeavy => "PmuHeavy",
                }),
            ),
            ("clock_ghz", Json::from(p.clock_ghz)),
            ("hop_latency", Json::from(p.hop_latency)),
            ("coalesce_entries", Json::from(p.coalesce_entries)),
        ])
    }

    fn params_back(j: &Json) -> R<PlasticineParams> {
        Ok(PlasticineParams {
            cols: usize_of(j, "cols")?,
            rows: usize_of(j, "rows")?,
            pcu: pcu_back(field(j, "pcu")?)?,
            pmu: pmu_back(field(j, "pmu")?)?,
            ags: usize_of(j, "ags")?,
            coalescing_units: usize_of(j, "coalescing_units")?,
            mix: match str_of(j, "mix")? {
                "Checkerboard" => GridMix::Checkerboard,
                "PmuHeavy" => GridMix::PmuHeavy,
                other => return Err(format!("unknown grid mix `{other}`")),
            },
            clock_ghz: f64_of(j, "clock_ghz")?,
            hop_latency: u64_of(j, "hop_latency")?,
            coalesce_entries: usize_of(j, "coalesce_entries")?,
        })
    }

    fn banking_str(b: BankingMode) -> &'static str {
        match b {
            BankingMode::Strided => "Strided",
            BankingMode::Fifo => "Fifo",
            BankingMode::LineBuffer => "LineBuffer",
            BankingMode::Duplication => "Duplication",
        }
    }

    fn banking_back(s: &str) -> R<BankingMode> {
        Ok(match s {
            "Strided" => BankingMode::Strided,
            "Fifo" => BankingMode::Fifo,
            "LineBuffer" => BankingMode::LineBuffer,
            "Duplication" => BankingMode::Duplication,
            other => return Err(format!("unknown banking mode `{other}`")),
        })
    }

    fn unit_json(u: &UnitCfg) -> Json {
        match u {
            UnitCfg::Compute(c) => Json::obj([(
                "Compute",
                Json::obj([
                    ("ctrl", Json::from(c.ctrl.0)),
                    (
                        "sites",
                        ids_json(&c.sites.iter().map(|s| s.0).collect::<Vec<_>>()),
                    ),
                    ("copies", Json::from(c.copies)),
                    ("pcus_per_copy", Json::from(c.pcus_per_copy)),
                    ("pipeline_depth", Json::from(c.pipeline_depth)),
                    ("lanes", Json::from(c.lanes)),
                ]),
            )]),
            UnitCfg::Memory(m) => Json::obj([(
                "Memory",
                Json::obj([
                    ("sram", Json::from(m.sram.0)),
                    (
                        "sites",
                        ids_json(&m.sites.iter().map(|s| s.0).collect::<Vec<_>>()),
                    ),
                    ("nbuf", Json::from(m.nbuf)),
                    ("banking", Json::from(banking_str(m.banking))),
                ]),
            )]),
            UnitCfg::Ag(a) => Json::obj([(
                "Ag",
                Json::obj([
                    ("ctrl", Json::from(a.ctrl.0)),
                    (
                        "ags",
                        ids_json(&a.ags.iter().map(|s| s.0).collect::<Vec<_>>()),
                    ),
                    (
                        "mode",
                        Json::from(match a.mode {
                            AgMode::Dense => "Dense",
                            AgMode::Sparse => "Sparse",
                        }),
                    ),
                ]),
            )]),
            UnitCfg::Outer(o) => Json::obj([(
                "Outer",
                Json::obj([
                    ("ctrl", Json::from(o.ctrl.0)),
                    ("switch", Json::from(o.switch.0)),
                ]),
            )]),
        }
    }

    fn unit_back(j: &Json) -> R<UnitCfg> {
        let [(tag, body)] = j.as_obj().ok_or("unit is not an object")? else {
            return Err("unit must have exactly one variant tag".into());
        };
        Ok(match tag.as_str() {
            "Compute" => UnitCfg::Compute(ComputeCfg {
                ctrl: CtrlId(u32_of(body, "ctrl")?),
                sites: ids_of(body, "sites")?.into_iter().map(SiteId).collect(),
                copies: usize_of(body, "copies")?,
                pcus_per_copy: usize_of(body, "pcus_per_copy")?,
                pipeline_depth: usize_of(body, "pipeline_depth")?,
                lanes: usize_of(body, "lanes")?,
            }),
            "Memory" => UnitCfg::Memory(MemoryCfg {
                sram: SramId(u32_of(body, "sram")?),
                sites: ids_of(body, "sites")?.into_iter().map(SiteId).collect(),
                nbuf: usize_of(body, "nbuf")?,
                banking: banking_back(str_of(body, "banking")?)?,
            }),
            "Ag" => UnitCfg::Ag(AgCfg {
                ctrl: CtrlId(u32_of(body, "ctrl")?),
                ags: ids_of(body, "ags")?.into_iter().map(AgId).collect(),
                mode: match str_of(body, "mode")? {
                    "Dense" => AgMode::Dense,
                    "Sparse" => AgMode::Sparse,
                    other => return Err(format!("unknown AG mode `{other}`")),
                },
            }),
            "Outer" => UnitCfg::Outer(OuterCtrlCfg {
                ctrl: CtrlId(u32_of(body, "ctrl")?),
                switch: SwitchId(u32_of(body, "switch")?),
            }),
            other => return Err(format!("unknown unit variant `{other}`")),
        })
    }

    fn link_json(l: &LinkCfg) -> Json {
        Json::obj([
            ("src", Json::from(l.src.0)),
            ("dst", Json::from(l.dst.0)),
            (
                "class",
                Json::from(match l.class {
                    NetClass::Scalar => "Scalar",
                    NetClass::Vector => "Vector",
                    NetClass::Control => "Control",
                }),
            ),
            (
                "path",
                ids_json(&l.path.iter().map(|s| s.0).collect::<Vec<_>>()),
            ),
            ("hops", Json::from(l.hops)),
        ])
    }

    fn link_back(j: &Json) -> R<LinkCfg> {
        Ok(LinkCfg {
            src: UnitId(u32_of(j, "src")?),
            dst: UnitId(u32_of(j, "dst")?),
            class: match str_of(j, "class")? {
                "Scalar" => NetClass::Scalar,
                "Vector" => NetClass::Vector,
                "Control" => NetClass::Control,
                other => return Err(format!("unknown net class `{other}`")),
            },
            path: ids_of(j, "path")?.into_iter().map(SwitchId).collect(),
            hops: usize_of(j, "hops")?,
        })
    }

    pub(super) fn config_json(c: &MachineConfig) -> Json {
        let mut fields = vec![
            ("params".to_string(), params_json(&c.params)),
            (
                "program_name".to_string(),
                Json::from(c.program_name.as_str()),
            ),
            (
                "units".to_string(),
                Json::Arr(c.units.iter().map(unit_json).collect()),
            ),
            (
                "links".to_string(),
                Json::Arr(c.links.iter().map(link_json).collect()),
            ),
            (
                "alloc".to_string(),
                Json::obj([(
                    "base",
                    Json::Arr(c.alloc.base.iter().map(|&b| Json::from(b)).collect()),
                )]),
            ),
            (
                "usage".to_string(),
                Json::obj([
                    ("pcus", Json::from(c.usage.pcus)),
                    ("pmus", Json::from(c.usage.pmus)),
                    ("ags", Json::from(c.usage.ags)),
                    ("switch_ctrls", Json::from(c.usage.switch_ctrls)),
                ]),
            ),
        ];
        // Omitted entirely for full-chip compiles, so pre-partition
        // bitstreams keep their encoding (and content hashes) unchanged.
        if let Some(p) = &c.partition {
            fields.push((
                "partition".to_string(),
                Json::obj([
                    ("y0", Json::from(p.y0)),
                    ("rows", Json::from(p.rows)),
                    ("channels", Json::from(p.channels)),
                ]),
            ));
        }
        Json::Obj(fields)
    }

    pub(super) fn config_back(j: &Json) -> R<MachineConfig> {
        let units = arr_of(j, "units")?
            .iter()
            .map(unit_back)
            .collect::<R<Vec<_>>>()?;
        let links = arr_of(j, "links")?
            .iter()
            .map(link_back)
            .collect::<R<Vec<_>>>()?;
        let alloc_j = field(j, "alloc")?;
        let base = arr_of(alloc_j, "base")?
            .iter()
            .map(|v| v.as_u64().ok_or_else(|| "bad dram base".to_string()))
            .collect::<R<Vec<_>>>()?;
        let usage_j = field(j, "usage")?;
        let partition = match j.get("partition") {
            Some(pj) => Some(Partition {
                y0: usize_of(pj, "y0")?,
                rows: usize_of(pj, "rows")?,
                channels: usize_of(pj, "channels")?,
            }),
            None => None,
        };
        Ok(MachineConfig {
            params: params_back(field(j, "params")?)?,
            program_name: str_of(j, "program_name")?.to_string(),
            units,
            links,
            alloc: DramAlloc { base },
            usage: ResourceUsage {
                pcus: usize_of(usage_j, "pcus")?,
                pmus: usize_of(usage_j, "pmus")?,
                ags: usize_of(usage_j, "ags")?,
                switch_ctrls: usize_of(usage_j, "switch_ctrls")?,
            },
            partition,
        })
    }
}

impl MachineConfig {
    /// Serializes the configuration to its on-disk "bitstream" form
    /// (§3.6: "a static configuration 'bitstream' for the architecture" —
    /// ours is structured JSON rather than packed bits).
    ///
    /// # Errors
    ///
    /// Returns [`BitstreamError::Format`] if serialization fails.
    pub fn to_bitstream(&self) -> Result<String, BitstreamError> {
        Ok(bitstream::config_json(self).pretty())
    }

    /// Parses a configuration from its bitstream form.
    ///
    /// # Errors
    ///
    /// Returns [`BitstreamError::Format`] on malformed input.
    pub fn from_bitstream(s: &str) -> Result<MachineConfig, BitstreamError> {
        let j =
            plasticine_json::Json::parse(s).map_err(|e| BitstreamError::Format(e.to_string()))?;
        bitstream::config_back(&j).map_err(BitstreamError::Format)
    }

    /// The configuration as a JSON value — the payload of
    /// [`to_bitstream`](MachineConfig::to_bitstream), exposed so larger
    /// artifacts (the compiler's full `Bitstream`) can embed it without
    /// re-parsing a string.
    pub fn to_json(&self) -> plasticine_json::Json {
        bitstream::config_json(self)
    }

    /// Parses a configuration from its JSON value form.
    ///
    /// # Errors
    ///
    /// Returns [`BitstreamError::Format`] on schema mismatch.
    pub fn from_json(j: &plasticine_json::Json) -> Result<MachineConfig, BitstreamError> {
        bitstream::config_back(j).map_err(BitstreamError::Format)
    }

    /// Writes the bitstream to a file.
    ///
    /// # Errors
    ///
    /// Returns [`BitstreamError`] on filesystem or serialization failure.
    pub fn save(&self, path: &std::path::Path) -> Result<(), BitstreamError> {
        let s = self.to_bitstream()?;
        std::fs::write(path, s).map_err(BitstreamError::Io)
    }

    /// Reads a bitstream from a file.
    ///
    /// # Errors
    ///
    /// Returns [`BitstreamError`] on filesystem or parse failure.
    pub fn load(path: &std::path::Path) -> Result<MachineConfig, BitstreamError> {
        let s = std::fs::read_to_string(path).map_err(BitstreamError::Io)?;
        MachineConfig::from_bitstream(&s)
    }
}

#[cfg(test)]
mod bitstream_tests {
    use super::*;
    use plasticine_ppir::CtrlId;

    #[test]
    fn bitstream_roundtrips() {
        let mut c = MachineConfig {
            params: PlasticineParams::paper_final(),
            program_name: "rt".into(),
            units: vec![],
            links: vec![],
            alloc: DramAlloc {
                base: vec![0, 4096],
            },
            usage: ResourceUsage::default(),
            partition: None,
        };
        c.units.push(UnitCfg::Compute(ComputeCfg {
            ctrl: CtrlId(1),
            sites: vec![SiteId(3)],
            copies: 2,
            pcus_per_copy: 1,
            pipeline_depth: 6,
            lanes: 16,
        }));
        let s = c.to_bitstream().unwrap();
        let back = MachineConfig::from_bitstream(&s).unwrap();
        assert_eq!(back, c);
        assert!(MachineConfig::from_bitstream("not json").is_err());
        // A full-chip config encodes without a `partition` key (legacy
        // bitstream compatibility); a partitioned one round-trips.
        assert!(!s.contains("\"partition\""));
        c.partition = Some(Partition::new(2, 4, 2));
        let s = c.to_bitstream().unwrap();
        let back = MachineConfig::from_bitstream(&s).unwrap();
        assert_eq!(back.partition, Some(Partition::new(2, 4, 2)));
    }

    #[test]
    fn relocation_translates_everything_and_normalizes() {
        let params = PlasticineParams::paper_final();
        let cols = params.cols;
        let scols = cols + 1;
        let c = MachineConfig {
            params: params.clone(),
            program_name: "rl".into(),
            units: vec![
                UnitCfg::Compute(ComputeCfg {
                    ctrl: CtrlId(0),
                    sites: vec![SiteId(2 * cols as u32 + 3)], // (3, 2)
                    copies: 1,
                    pcus_per_copy: 1,
                    pipeline_depth: 6,
                    lanes: 16,
                }),
                UnitCfg::Ag(AgCfg {
                    ctrl: CtrlId(1),
                    ags: vec![AgId(4)], // left edge, row 2
                    mode: AgMode::Dense,
                }),
                UnitCfg::Outer(OuterCtrlCfg {
                    ctrl: CtrlId(2),
                    switch: SwitchId(2 * scols as u32 + 1), // (1, 2)
                }),
            ],
            links: vec![LinkCfg {
                src: UnitId(0),
                dst: UnitId(2),
                class: NetClass::Control,
                path: vec![SwitchId(2 * scols as u32 + 2)],
                hops: 2,
            }],
            alloc: DramAlloc::default(),
            usage: ResourceUsage::default(),
            partition: Some(Partition::new(2, 4, 2)),
        };
        let n = c.normalized();
        assert_eq!(n.partition, Some(Partition::new(0, 4, 2)));
        match (&n.units[0], &n.units[1], &n.units[2]) {
            (UnitCfg::Compute(cc), UnitCfg::Ag(a), UnitCfg::Outer(o)) => {
                assert_eq!(cc.sites, vec![SiteId(3)]); // (3, 0)
                assert_eq!(a.ags, vec![AgId(0)]); // left edge, row 0
                assert_eq!(o.switch, SwitchId(1)); // (1, 0)
            }
            other => panic!("unit shapes changed: {other:?}"),
        }
        assert_eq!(n.links[0].path, vec![SwitchId(2)]);
        // Round trip back to the original offset.
        assert_eq!(n.relocated(2), c);
        // Full-chip configs normalize to themselves.
        let full = MachineConfig {
            partition: None,
            ..c.clone()
        };
        assert_eq!(full.normalized(), full);
    }
}
