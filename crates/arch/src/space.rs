//! Design-space enumeration for the `dse search` autotuner.
//!
//! The Figure 7 machinery sweeps one PCU parameter at a time; a
//! production autotuner explores full [`PlasticineParams`] points. This
//! module defines the searched axes — SIMD lanes, pipeline stages, the
//! PCU:PMU grid mix, per-PMU scratchpad capacity, and DRAM channels —
//! and turns a grid of candidate values into a deterministic, deduped
//! list of [`DsePoint`]s, each of which can be materialized into a
//! validated parameter set.
//!
//! Enumeration order is the lexicographic order of the axes as listed
//! on [`DseGrid`]; it never depends on thread count or wall clock, so
//! every consumer (the parallel search driver, its resume path, and the
//! benchmarks) sees the same point sequence.

use crate::params::{GridMix, ParamError, PcuParams, PlasticineParams, PmuParams};
use std::fmt;
use std::str::FromStr;

impl GridMix {
    /// Short stable tag used in point labels and journal keys.
    pub fn tag(self) -> &'static str {
        match self {
            GridMix::Checkerboard => "cb",
            GridMix::PmuHeavy => "ph",
        }
    }
}

impl FromStr for GridMix {
    type Err = ParamError;

    fn from_str(s: &str) -> Result<GridMix, ParamError> {
        match s.to_ascii_lowercase().as_str() {
            "checkerboard" | "cb" | "1:1" => Ok(GridMix::Checkerboard),
            "pmuheavy" | "pmu-heavy" | "ph" | "2:1" => Ok(GridMix::PmuHeavy),
            _ => Err(ParamError(format!(
                "unknown grid mix `{s}` (expected `checkerboard` or `pmuheavy`)"
            ))),
        }
    }
}

/// One candidate configuration of the searched design space. Everything
/// not named here stays at its `paper_final` value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DsePoint {
    /// PCU SIMD lanes (power of two).
    pub lanes: usize,
    /// PCU pipeline stages.
    pub stages: usize,
    /// PCU:PMU mix on the grid.
    pub mix: GridMix,
    /// Scratchpad capacity of one PMU in KiB (spread over its banks).
    pub scratchpad_kb: usize,
    /// Independent DRAM channels (= coalescing units).
    pub dram_channels: usize,
}

impl DsePoint {
    /// Stable, filename-safe label: `l16s6cbk256c4`. Part of the journal
    /// key contract — renaming a component orphans resumable journals.
    pub fn label(&self) -> String {
        format!(
            "l{}s{}{}k{}c{}",
            self.lanes,
            self.stages,
            self.mix.tag(),
            self.scratchpad_kb,
            self.dram_channels
        )
    }

    /// Materializes the point into a full validated parameter set.
    ///
    /// # Errors
    ///
    /// Returns the first violated constraint (non-power-of-two lanes,
    /// zero stages, more channels than address generators, …) — the
    /// search treats these points as typed infeasible skips, not errors.
    pub fn params(&self) -> Result<PlasticineParams, ParamError> {
        if self.scratchpad_kb == 0 {
            return Err(ParamError("PMU scratchpad must be non-empty".into()));
        }
        let base = PlasticineParams::paper_final();
        if !self.scratchpad_kb.is_multiple_of(base.pmu.banks) {
            return Err(ParamError(format!(
                "scratchpad {} KiB does not spread evenly over {} banks",
                self.scratchpad_kb, base.pmu.banks
            )));
        }
        let p = PlasticineParams {
            pcu: PcuParams {
                lanes: self.lanes,
                stages: self.stages,
                ..base.pcu
            },
            pmu: PmuParams {
                bank_kb: self.scratchpad_kb / base.pmu.banks,
                ..base.pmu
            },
            mix: self.mix,
            coalescing_units: self.dram_channels,
            ..base
        };
        p.validate()?;
        Ok(p)
    }
}

impl fmt::Display for DsePoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "lanes={} stages={} mix={} scratchpad={}KiB channels={}",
            self.lanes,
            self.stages,
            self.mix.tag(),
            self.scratchpad_kb,
            self.dram_channels
        )
    }
}

/// A rectangular grid of candidate values, one list per axis. The search
/// evaluates the cross product.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DseGrid {
    /// Candidate SIMD lane counts.
    pub lanes: Vec<usize>,
    /// Candidate pipeline stage counts.
    pub stages: Vec<usize>,
    /// Candidate grid mixes.
    pub mixes: Vec<GridMix>,
    /// Candidate per-PMU scratchpad capacities in KiB.
    pub scratchpad_kb: Vec<usize>,
    /// Candidate DRAM channel counts.
    pub dram_channels: Vec<usize>,
}

impl Default for DseGrid {
    /// A modest default grid around the paper's final configuration
    /// (16 points): enough to produce a non-trivial frontier without
    /// hours of simulation.
    fn default() -> DseGrid {
        DseGrid {
            lanes: vec![8, 16],
            stages: vec![5, 6],
            mixes: vec![GridMix::Checkerboard],
            scratchpad_kb: vec![128, 256],
            dram_channels: vec![2, 4],
        }
    }
}

impl DseGrid {
    /// Checks that every axis has at least one candidate value.
    ///
    /// # Errors
    ///
    /// Names the first empty axis.
    pub fn validate(&self) -> Result<(), ParamError> {
        for (name, empty) in [
            ("lanes", self.lanes.is_empty()),
            ("stages", self.stages.is_empty()),
            ("mix", self.mixes.is_empty()),
            ("scratchpad-kb", self.scratchpad_kb.is_empty()),
            ("channels", self.dram_channels.is_empty()),
        ] {
            if empty {
                return Err(ParamError(format!("grid axis `{name}` has no values")));
            }
        }
        Ok(())
    }

    /// The number of points [`enumerate`](Self::enumerate) yields before
    /// deduplication.
    pub fn len(&self) -> usize {
        self.lanes.len()
            * self.stages.len()
            * self.mixes.len()
            * self.scratchpad_kb.len()
            * self.dram_channels.len()
    }

    /// Whether the cross product is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The full cross product in lexicographic axis order (lanes
    /// outermost, channels innermost), with repeated axis values deduped
    /// while preserving first-occurrence order. Points that cannot form
    /// valid parameters are *kept* — the search reports them as typed
    /// infeasible skips so a frontier never silently shrinks.
    pub fn enumerate(&self) -> Vec<DsePoint> {
        fn dedup<T: PartialEq + Copy>(xs: &[T]) -> Vec<T> {
            let mut out: Vec<T> = Vec::with_capacity(xs.len());
            for &x in xs {
                if !out.contains(&x) {
                    out.push(x);
                }
            }
            out
        }
        let mut points = Vec::with_capacity(self.len());
        for &lanes in &dedup(&self.lanes) {
            for &stages in &dedup(&self.stages) {
                for &mix in &dedup(&self.mixes) {
                    for &scratchpad_kb in &dedup(&self.scratchpad_kb) {
                        for &dram_channels in &dedup(&self.dram_channels) {
                            points.push(DsePoint {
                                lanes,
                                stages,
                                mix,
                                scratchpad_kb,
                                dram_channels,
                            });
                        }
                    }
                }
            }
        }
        points
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_point_materializes_to_paper_final() {
        let p = DsePoint {
            lanes: 16,
            stages: 6,
            mix: GridMix::Checkerboard,
            scratchpad_kb: 256,
            dram_channels: 4,
        };
        assert_eq!(p.params().unwrap(), PlasticineParams::paper_final());
        assert_eq!(p.label(), "l16s6cbk256c4");
    }

    #[test]
    fn invalid_points_are_typed_not_panics() {
        let bad_lanes = DsePoint {
            lanes: 12,
            stages: 6,
            mix: GridMix::Checkerboard,
            scratchpad_kb: 256,
            dram_channels: 4,
        };
        assert!(bad_lanes.params().is_err());
        let bad_kb = DsePoint {
            scratchpad_kb: 100,
            ..bad_lanes
        };
        assert!(bad_kb.params().is_err());
        let bad_channels = DsePoint {
            lanes: 16,
            dram_channels: 99,
            ..bad_lanes
        };
        // More channels than AGs violates the per-CU AG constraint.
        assert!(bad_channels.params().is_err());
        let zero_kb = DsePoint {
            lanes: 16,
            scratchpad_kb: 0,
            ..bad_lanes
        };
        assert!(zero_kb.params().is_err());
    }

    #[test]
    fn scratchpad_and_channels_land_in_params() {
        let p = DsePoint {
            lanes: 8,
            stages: 5,
            mix: GridMix::PmuHeavy,
            scratchpad_kb: 128,
            dram_channels: 2,
        }
        .params()
        .unwrap();
        assert_eq!(p.pmu.capacity_bytes(), 128 * 1024);
        assert_eq!(p.coalescing_units, 2);
        assert_eq!(p.mix, GridMix::PmuHeavy);
        assert_eq!(p.pcu.lanes, 8);
        assert_eq!(p.pcu.stages, 5);
    }

    #[test]
    fn enumeration_is_lexicographic_and_deduped() {
        let g = DseGrid {
            lanes: vec![16, 8, 16],
            stages: vec![6],
            mixes: vec![GridMix::Checkerboard],
            scratchpad_kb: vec![256],
            dram_channels: vec![4, 2],
        };
        let pts = g.enumerate();
        let labels: Vec<String> = pts.iter().map(DsePoint::label).collect();
        assert_eq!(
            labels,
            [
                "l16s6cbk256c4",
                "l16s6cbk256c2",
                "l8s6cbk256c4",
                "l8s6cbk256c2"
            ]
        );
    }

    #[test]
    fn empty_axis_is_reported_by_name() {
        let g = DseGrid {
            stages: vec![],
            ..DseGrid::default()
        };
        let e = g.validate().unwrap_err();
        assert!(e.to_string().contains("stages"), "{e}");
        assert!(DseGrid::default().validate().is_ok());
    }

    #[test]
    fn grid_mix_parses_both_spellings() {
        assert_eq!("checkerboard".parse(), Ok(GridMix::Checkerboard));
        assert_eq!("cb".parse(), Ok(GridMix::Checkerboard));
        assert_eq!("PmuHeavy".parse(), Ok(GridMix::PmuHeavy));
        assert_eq!("2:1".parse(), Ok(GridMix::PmuHeavy));
        assert!("diagonal".parse::<GridMix>().is_err());
    }
}
