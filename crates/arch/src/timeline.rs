//! Online fault arrival: seeded, deterministic schedules of faults that
//! strike *while the fabric is serving traffic*.
//!
//! The static [`FaultMap`](crate::FaultMap) models a chip that is broken
//! before the run starts; a production fabric also degrades mid-run —
//! transient ECC upsets escalate into permanent unit death, links wear
//! out, DRAM channels go dark. A [`FaultTimeline`] is the arrival-side
//! counterpart: an ordered list of [`FaultEvent`]s that activate at
//! simulated cycles, plus an [`EccPolicy`] that promotes repeated
//! correctable errors on one unit into a permanent death.
//!
//! Everything is deterministic. [`FaultTimeline::sample`] draws a
//! timeline from a [`FaultTimelineSpec`] with the spec's seed, and the
//! same spec always yields byte-identical timelines — chaos soaks are as
//! reproducible as fault-free runs. The timeline participates in the
//! simulator's checkpoint options guard, so a checkpoint taken under a
//! timeline can only resume under the *same* timeline: replaying the
//! prefix of already-fired events at resume reconstructs the exact
//! degraded state the checkpoint was taken on.
//!
//! [`HealthMap`] is the service-side accumulator: one per chip, it
//! absorbs fabric-geometry arrivals reported by degraded tenants so the
//! scheduler can steer later placements away from dead regions.

use crate::fault::{FaultMap, FaultRng};
use crate::geom::{SiteId, SiteKind, SwitchId, Topology};
use crate::partition::Partition;
use std::fmt;

/// One fault arrival: what breaks when the event fires.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultArrival {
    /// A PCU or PMU site dies permanently.
    UnitDeath {
        /// The site that dies.
        site: SiteId,
        /// The site's kind (kept explicit so reports do not need a
        /// topology to classify the loss).
        kind: SiteKind,
    },
    /// An undirected switch-mesh link dies (canonical lower-id first).
    LinkDeath {
        /// Lower endpoint.
        a: SwitchId,
        /// Higher endpoint.
        b: SwitchId,
    },
    /// One scratchpad bank on a PMU site fails (capacity degradation).
    BankFailure {
        /// The PMU site losing a bank.
        site: SiteId,
    },
    /// A DRAM channel goes offline. The index is relative to the memory
    /// system the run simulates against (a tenant's channel share, not
    /// the chip's full channel space).
    ChannelFailure {
        /// The failing channel index.
        channel: usize,
    },
    /// Transient-fault rates escalate (rates only ever rise; each field
    /// is applied as a max with the current rate).
    TransientEscalation {
        /// New per-vector-issue lane bit-flip probability floor.
        lane: f64,
        /// New per-read-word scratchpad bit-flip probability floor.
        sram: f64,
        /// New per-response DRAM drop probability floor.
        drop: f64,
    },
}

impl FaultArrival {
    /// Folds this arrival into a live fault map.
    pub fn apply_to(&self, map: &mut FaultMap) {
        match self {
            FaultArrival::UnitDeath { site, kind } => {
                match kind {
                    SiteKind::Pcu => map.dead_pcus.insert(*site),
                    SiteKind::Pmu => map.dead_pmus.insert(*site),
                };
            }
            FaultArrival::LinkDeath { a, b } => {
                let key = if a <= b { (*a, *b) } else { (*b, *a) };
                map.dead_links.insert(key);
            }
            FaultArrival::BankFailure { site } => {
                *map.dead_banks.entry(*site).or_insert(0) += 1;
            }
            FaultArrival::ChannelFailure { channel } => {
                map.offline_channels.insert(*channel);
            }
            FaultArrival::TransientEscalation { lane, sram, drop } => {
                let t = &mut map.transient;
                t.lane_flip = t.lane_flip.max(*lane);
                t.sram_flip = t.sram_flip.max(*sram);
                t.dram_drop = t.dram_drop.max(*drop);
            }
        }
    }

    /// One-line human description for degradation reports.
    pub fn describe(&self) -> String {
        match self {
            FaultArrival::UnitDeath { site, kind } => {
                let k = match kind {
                    SiteKind::Pcu => "PCU",
                    SiteKind::Pmu => "PMU",
                };
                format!("{k} site {} died", site.0)
            }
            FaultArrival::LinkDeath { a, b } => {
                format!("link {}-{} died", a.0, b.0)
            }
            FaultArrival::BankFailure { site } => {
                format!("bank failed on PMU site {}", site.0)
            }
            FaultArrival::ChannelFailure { channel } => {
                format!("DRAM channel {channel} went offline")
            }
            FaultArrival::TransientEscalation { lane, sram, drop } => {
                format!("transient rates escalated to lane={lane} sram={sram} drop={drop}")
            }
        }
    }
}

/// One scheduled arrival: the simulated cycle it fires at and what
/// breaks.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultEvent {
    /// Simulated cycle at which the arrival activates (fires at the top
    /// of this cycle, before the cycle begins).
    pub cycle: u64,
    /// What breaks.
    pub arrival: FaultArrival,
}

/// ECC-escalation policy: `threshold` correctable errors on one unit
/// within a sliding `window` of cycles promote the unit to a permanent
/// death. Inactive when either field is zero.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EccPolicy {
    /// Correctable-error count that triggers escalation.
    pub threshold: u32,
    /// Sliding window, in cycles, over which errors are counted.
    pub window: u64,
}

impl EccPolicy {
    /// Whether the policy can ever escalate.
    pub fn active(&self) -> bool {
        self.threshold > 0 && self.window > 0
    }
}

/// A seeded, deterministic schedule of online fault arrivals plus the
/// ECC escalation policy. The default value is inert: no events, no
/// escalation — runs are bit-for-bit identical to builds that never
/// heard of timelines.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultTimeline {
    /// Arrival events, sorted by cycle (stable order for same-cycle
    /// events: earlier in the vector fires first).
    pub events: Vec<FaultEvent>,
    /// ECC-threshold escalation policy.
    pub ecc: EccPolicy,
    /// Cycles between an impacting arrival (or ECC escalation) being
    /// observed and the kernel declaring the fabric degraded. During the
    /// window the run keeps executing while the `healing` overlay
    /// accrues — this models the detection/quiesce latency of a real
    /// fabric manager.
    pub detect_delay: u64,
    /// Seed the timeline was sampled from (0 for hand-built timelines).
    pub seed: u64,
}

impl FaultTimeline {
    /// Whether the timeline can never affect a run.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty() && !self.ecc.active()
    }

    /// The events with `cycle <= at`, in firing order (the prefix a
    /// resume at cycle `at` must replay).
    pub fn fired_by(&self, at: u64) -> &[FaultEvent] {
        let n = self.events.partition_point(|e| e.cycle <= at);
        &self.events[..n]
    }

    /// The earliest event cycle strictly greater than `after`, if any.
    pub fn next_after(&self, after: u64) -> Option<u64> {
        let n = self.events.partition_point(|e| e.cycle <= after);
        self.events.get(n).map(|e| e.cycle)
    }

    /// Samples a concrete timeline from a spec, deterministically from
    /// the spec's seed. `dram_channels` bounds sampled channel-failure
    /// indices (the channel count of the memory system the run simulates
    /// against). Events are sorted by cycle; same-spec same-seed
    /// sampling is byte-identical across runs.
    pub fn sample(
        topo: &Topology,
        spec: &FaultTimelineSpec,
        dram_channels: usize,
    ) -> FaultTimeline {
        let mut rng = FaultRng::new(spec.seed);
        let horizon = spec.horizon.max(1);
        let band = spec
            .band
            .map(|(rows, y0)| Partition::new(y0, rows, dram_channels.max(1)));
        let in_band_row = |y: usize| band.map(|b| b.contains_row(y)).unwrap_or(true);
        let in_band_switch = |topo: &Topology, s: SwitchId| {
            let (_, sy) = topo.switch_xy(s);
            band.map(|b| b.contains_switch_row(sy)).unwrap_or(true)
        };

        let unit_pool: Vec<(SiteId, SiteKind)> = topo
            .sites()
            .iter()
            .enumerate()
            .filter(|(_, s)| in_band_row(s.y))
            .map(|(i, s)| (SiteId(i as u32), s.kind))
            .collect();
        let pmu_pool: Vec<SiteId> = unit_pool
            .iter()
            .filter(|(_, k)| *k == SiteKind::Pmu)
            .map(|(s, _)| *s)
            .collect();
        let mut edges: Vec<(SwitchId, SwitchId)> = Vec::new();
        for s in 0..topo.num_switches() as u32 {
            let s = SwitchId(s);
            if !in_band_switch(topo, s) {
                continue;
            }
            for nb in topo.switch_neighbors(s) {
                if s < nb && in_band_switch(topo, nb) {
                    edges.push((s, nb));
                }
            }
        }

        let mut events: Vec<FaultEvent> = Vec::new();
        let cycle = |rng: &mut FaultRng| 1 + rng.below(horizon);
        {
            let mut left = unit_pool.clone();
            for _ in 0..spec.units.min(left.len()) {
                let at = cycle(&mut rng);
                let i = rng.below(left.len() as u64) as usize;
                let (site, kind) = left.swap_remove(i);
                events.push(FaultEvent {
                    cycle: at,
                    arrival: FaultArrival::UnitDeath { site, kind },
                });
            }
        }
        {
            let mut left = edges;
            for _ in 0..spec.links.min(left.len()) {
                let at = cycle(&mut rng);
                let i = rng.below(left.len() as u64) as usize;
                let (a, b) = left.swap_remove(i);
                events.push(FaultEvent {
                    cycle: at,
                    arrival: FaultArrival::LinkDeath { a, b },
                });
            }
        }
        if !pmu_pool.is_empty() {
            for _ in 0..spec.banks {
                let at = cycle(&mut rng);
                let site = pmu_pool[rng.below(pmu_pool.len() as u64) as usize];
                events.push(FaultEvent {
                    cycle: at,
                    arrival: FaultArrival::BankFailure { site },
                });
            }
        }
        if dram_channels > 0 {
            let mut left: Vec<usize> = (0..dram_channels).collect();
            for _ in 0..spec.channels.min(dram_channels) {
                let at = cycle(&mut rng);
                let i = rng.below(left.len() as u64) as usize;
                events.push(FaultEvent {
                    cycle: at,
                    arrival: FaultArrival::ChannelFailure {
                        channel: left.swap_remove(i),
                    },
                });
            }
        }
        // Escalations stay on the correctable rates (lane/sram); sampled
        // timelines never raise dram_drop, which would disable the
        // parallel fast-forward gate and blow up soak runtimes.
        const LADDER: [f64; 3] = [1e-7, 1e-6, 1e-5];
        for _ in 0..spec.escalations {
            let at = cycle(&mut rng);
            let lane = LADDER[rng.below(LADDER.len() as u64) as usize];
            let sram = LADDER[rng.below(LADDER.len() as u64) as usize];
            events.push(FaultEvent {
                cycle: at,
                arrival: FaultArrival::TransientEscalation {
                    lane,
                    sram,
                    drop: 0.0,
                },
            });
        }
        events.sort_by_key(|e| e.cycle);
        FaultTimeline {
            events,
            ecc: spec.ecc,
            detect_delay: spec.detect,
            seed: spec.seed,
        }
    }

    /// One-line human summary.
    pub fn summary(&self) -> String {
        if self.is_empty() {
            return "no scheduled faults".to_string();
        }
        let mut s = format!("{} scheduled arrivals", self.events.len());
        if let Some(first) = self.events.first() {
            let last = self.events.last().expect("non-empty");
            s.push_str(&format!(" over cycles {}..={}", first.cycle, last.cycle));
        }
        if self.ecc.active() {
            s.push_str(&format!(
                "; ECC escalation at {} errors / {} cycles",
                self.ecc.threshold, self.ecc.window
            ));
        }
        if self.detect_delay > 0 {
            s.push_str(&format!("; detect delay {} cycles", self.detect_delay));
        }
        s
    }
}

/// A fault-timeline request, as written on the command line:
/// `units=2,links=1,banks=1,chans=1,esc=1,horizon=4096,seed=7,band=8@0,ecc=3@512,detect=16`.
///
/// All keys are optional; the default spec samples an empty timeline.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultTimelineSpec {
    /// Scheduled unit (PCU/PMU) deaths.
    pub units: usize,
    /// Scheduled switch-link deaths.
    pub links: usize,
    /// Scheduled scratchpad-bank failures.
    pub banks: usize,
    /// Scheduled DRAM-channel failures.
    pub channels: usize,
    /// Scheduled transient-rate escalations.
    pub escalations: usize,
    /// Arrival cycles are drawn uniformly from `1..=horizon`.
    pub horizon: u64,
    /// RNG seed for sampling.
    pub seed: u64,
    /// Restrict sampled sites/links to a fabric band `(rows, y0)` — lets
    /// a test aim the timeline at one tenant deterministically.
    pub band: Option<(usize, usize)>,
    /// ECC-threshold escalation policy.
    pub ecc: EccPolicy,
    /// Detection delay in cycles before a degraded exit.
    pub detect: u64,
}

impl Default for FaultTimelineSpec {
    fn default() -> FaultTimelineSpec {
        FaultTimelineSpec {
            units: 0,
            links: 0,
            banks: 0,
            channels: 0,
            escalations: 0,
            horizon: 4096,
            seed: 0,
            band: None,
            ecc: EccPolicy::default(),
            detect: 8,
        }
    }
}

/// A malformed `--fault-timeline` spec string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimelineSpecError(String);

impl fmt::Display for TimelineSpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "bad fault timeline spec: {} (expected comma-separated key=value with \
             keys units, links, banks, chans, esc, horizon, seed, band=ROWS@Y0, \
             ecc=THRESHOLD@WINDOW, detect)",
            self.0
        )
    }
}

impl std::error::Error for TimelineSpecError {}

impl std::str::FromStr for FaultTimelineSpec {
    type Err = TimelineSpecError;

    fn from_str(s: &str) -> Result<FaultTimelineSpec, TimelineSpecError> {
        let mut spec = FaultTimelineSpec::default();
        for part in s.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let Some((key, val)) = part.split_once('=') else {
                return Err(TimelineSpecError(format!("`{part}` is not key=value")));
            };
            let count = || -> Result<usize, TimelineSpecError> {
                val.parse()
                    .map_err(|_| TimelineSpecError(format!("`{val}` is not a count for `{key}`")))
            };
            let cycles = || -> Result<u64, TimelineSpecError> {
                val.parse().map_err(|_| {
                    TimelineSpecError(format!("`{val}` is not a cycle count for `{key}`"))
                })
            };
            match key {
                "unit" | "units" => spec.units = count()?,
                "link" | "links" => spec.links = count()?,
                "bank" | "banks" => spec.banks = count()?,
                "chan" | "chans" | "channels" => spec.channels = count()?,
                "esc" | "escalations" => spec.escalations = count()?,
                "horizon" => {
                    let h = cycles()?;
                    if h == 0 {
                        return Err(TimelineSpecError("`horizon=0` is empty".to_string()));
                    }
                    spec.horizon = h;
                }
                "seed" => {
                    spec.seed = val
                        .parse()
                        .map_err(|_| TimelineSpecError(format!("`{val}` is not a seed")))?
                }
                "band" => {
                    let Some((rows, y0)) = val.split_once('@') else {
                        return Err(TimelineSpecError(format!("`band={val}` is not ROWS@Y0")));
                    };
                    let rows: usize = rows
                        .parse()
                        .map_err(|_| TimelineSpecError(format!("`{rows}` is not a row count")))?;
                    let y0: usize = y0
                        .parse()
                        .map_err(|_| TimelineSpecError(format!("`{y0}` is not a row offset")))?;
                    if rows == 0 {
                        return Err(TimelineSpecError("`band` rows must be > 0".to_string()));
                    }
                    spec.band = Some((rows, y0));
                }
                "ecc" => {
                    let Some((t, w)) = val.split_once('@') else {
                        return Err(TimelineSpecError(format!(
                            "`ecc={val}` is not THRESHOLD@WINDOW"
                        )));
                    };
                    let threshold: u32 = t.parse().map_err(|_| {
                        TimelineSpecError(format!("`{t}` is not an error threshold"))
                    })?;
                    let window: u64 = w
                        .parse()
                        .map_err(|_| TimelineSpecError(format!("`{w}` is not a window length")))?;
                    spec.ecc = EccPolicy { threshold, window };
                }
                "detect" => spec.detect = cycles()?,
                _ => return Err(TimelineSpecError(format!("unknown key `{key}`"))),
            }
        }
        Ok(spec)
    }
}

/// Live per-chip health: the hard faults the chip has accumulated since
/// boot, absorbed from degraded tenants' reports. The service scheduler
/// consults it to keep new placements off dead regions and feeds it to
/// degraded recompiles.
///
/// Only fabric-geometry arrivals (unit, link, bank) are absorbed:
/// channel failures in a tenant's report are indices into that tenant's
/// private channel share, and transient escalations are per-run rates —
/// neither names a chip-level resource.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct HealthMap {
    faults: FaultMap,
}

impl HealthMap {
    /// A pristine chip.
    pub fn new() -> HealthMap {
        HealthMap::default()
    }

    /// The accumulated hard faults.
    pub fn faults(&self) -> &FaultMap {
        &self.faults
    }

    /// Whether the chip has accumulated any hard fault.
    pub fn any(&self) -> bool {
        self.faults.has_hard_faults()
    }

    /// Absorbs one arrival. Returns whether the map changed (channel
    /// failures and transient escalations are ignored; see the type
    /// docs).
    pub fn absorb(&mut self, a: &FaultArrival) -> bool {
        match a {
            FaultArrival::UnitDeath { .. }
            | FaultArrival::LinkDeath { .. }
            | FaultArrival::BankFailure { .. } => {
                a.apply_to(&mut self.faults);
                true
            }
            FaultArrival::ChannelFailure { .. } | FaultArrival::TransientEscalation { .. } => false,
        }
    }

    /// Whether a fabric band contains no accumulated fault: no dead
    /// site, no degraded bank, and no dead link touching the band's
    /// switch rows. Healthy bands can run unmodified (pattern-equivalent)
    /// bitstreams; unhealthy ones need a degraded recompile.
    pub fn band_is_healthy(&self, topo: &Topology, p: &Partition) -> bool {
        let site_in_band = |s: &SiteId| p.contains_row(topo.site(*s).y);
        if self.faults.dead_pcus.iter().any(site_in_band)
            || self.faults.dead_pmus.iter().any(site_in_band)
            || self.faults.dead_banks.keys().any(site_in_band)
        {
            return false;
        }
        !self.faults.dead_links.iter().any(|(a, b)| {
            let (_, ay) = topo.switch_xy(*a);
            let (_, by) = topo.switch_xy(*b);
            p.contains_switch_row(ay) || p.contains_switch_row(by)
        })
    }

    /// The accumulated faults merged over a base map (set unions; the
    /// higher transient rates win). Feed the result to a degraded
    /// recompile.
    pub fn merged(&self, base: &FaultMap) -> FaultMap {
        let mut out = base.clone();
        out.dead_pcus.extend(self.faults.dead_pcus.iter().copied());
        out.dead_pmus.extend(self.faults.dead_pmus.iter().copied());
        out.dead_links
            .extend(self.faults.dead_links.iter().copied());
        for (s, n) in &self.faults.dead_banks {
            let e = out.dead_banks.entry(*s).or_insert(0);
            *e = (*e).max(*n);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::PlasticineParams;

    fn topo() -> Topology {
        Topology::new(&PlasticineParams::paper_final())
    }

    #[test]
    fn default_timeline_is_inert() {
        let t = FaultTimeline::default();
        assert!(t.is_empty());
        assert_eq!(t.fired_by(u64::MAX).len(), 0);
        assert_eq!(t.next_after(0), None);
        assert_eq!(t.summary(), "no scheduled faults");
    }

    #[test]
    fn sampling_is_deterministic_and_sized() {
        let t = topo();
        let spec: FaultTimelineSpec = "units=3,links=2,banks=2,chans=1,esc=1,horizon=1000,seed=42"
            .parse()
            .unwrap();
        let a = FaultTimeline::sample(&t, &spec, 4);
        let b = FaultTimeline::sample(&t, &spec, 4);
        assert_eq!(a, b);
        assert_eq!(a.events.len(), 3 + 2 + 2 + 1 + 1);
        for e in &a.events {
            assert!((1..=1000).contains(&e.cycle));
        }
        // Sorted by cycle.
        for w in a.events.windows(2) {
            assert!(w[0].cycle <= w[1].cycle);
        }
    }

    #[test]
    fn band_restriction_confines_sites_and_links() {
        let t = topo();
        let spec: FaultTimelineSpec = "units=6,links=4,banks=3,horizon=500,seed=9,band=4@4"
            .parse()
            .unwrap();
        let tl = FaultTimeline::sample(&t, &spec, 2);
        assert!(!tl.events.is_empty());
        let band = Partition::new(4, 4, 2);
        for e in &tl.events {
            match &e.arrival {
                FaultArrival::UnitDeath { site, kind } => {
                    let s = t.site(*site);
                    assert!(band.contains_row(s.y));
                    assert_eq!(s.kind, *kind);
                }
                FaultArrival::BankFailure { site } => {
                    let s = t.site(*site);
                    assert!(band.contains_row(s.y));
                    assert_eq!(s.kind, SiteKind::Pmu);
                }
                FaultArrival::LinkDeath { a, b } => {
                    assert!(a < b);
                    assert_eq!(t.switch_distance(*a, *b), 1);
                    let (_, ay) = t.switch_xy(*a);
                    let (_, by) = t.switch_xy(*b);
                    assert!(band.contains_switch_row(ay));
                    assert!(band.contains_switch_row(by));
                }
                other => panic!("unexpected arrival {other:?}"),
            }
        }
    }

    #[test]
    fn fired_by_and_next_after_split_the_schedule() {
        let mk = |cycle| FaultEvent {
            cycle,
            arrival: FaultArrival::ChannelFailure { channel: 0 },
        };
        let tl = FaultTimeline {
            events: vec![mk(10), mk(10), mk(25), mk(40)],
            ..FaultTimeline::default()
        };
        assert_eq!(tl.fired_by(9).len(), 0);
        assert_eq!(tl.fired_by(10).len(), 2);
        assert_eq!(tl.fired_by(39).len(), 3);
        assert_eq!(tl.fired_by(40).len(), 4);
        assert_eq!(tl.next_after(0), Some(10));
        assert_eq!(tl.next_after(10), Some(25));
        assert_eq!(tl.next_after(25), Some(40));
        assert_eq!(tl.next_after(40), None);
    }

    #[test]
    fn arrivals_fold_into_a_fault_map() {
        let mut m = FaultMap::default();
        FaultArrival::UnitDeath {
            site: SiteId(3),
            kind: SiteKind::Pcu,
        }
        .apply_to(&mut m);
        FaultArrival::UnitDeath {
            site: SiteId(4),
            kind: SiteKind::Pmu,
        }
        .apply_to(&mut m);
        FaultArrival::LinkDeath {
            a: SwitchId(7),
            b: SwitchId(2),
        }
        .apply_to(&mut m);
        FaultArrival::BankFailure { site: SiteId(4) }.apply_to(&mut m);
        FaultArrival::BankFailure { site: SiteId(4) }.apply_to(&mut m);
        FaultArrival::ChannelFailure { channel: 1 }.apply_to(&mut m);
        FaultArrival::TransientEscalation {
            lane: 1e-6,
            sram: 0.0,
            drop: 0.0,
        }
        .apply_to(&mut m);
        assert!(m.dead_pcus.contains(&SiteId(3)));
        assert!(m.dead_pmus.contains(&SiteId(4)));
        assert!(m.link_is_dead(SwitchId(2), SwitchId(7)));
        assert_eq!(m.dead_banks[&SiteId(4)], 2);
        assert!(m.offline_channels.contains(&1));
        assert_eq!(m.transient.lane_flip, 1e-6);
        // Escalation is monotone: a lower later rate does not lower it.
        FaultArrival::TransientEscalation {
            lane: 1e-7,
            sram: 0.0,
            drop: 0.0,
        }
        .apply_to(&mut m);
        assert_eq!(m.transient.lane_flip, 1e-6);
    }

    #[test]
    fn spec_parser_accepts_full_grammar() {
        let s: FaultTimelineSpec =
            "units=2,links=1,banks=3,chans=1,esc=2,horizon=9000,seed=7,band=8@4,ecc=3@512,detect=16"
                .parse()
                .unwrap();
        assert_eq!(s.units, 2);
        assert_eq!(s.links, 1);
        assert_eq!(s.banks, 3);
        assert_eq!(s.channels, 1);
        assert_eq!(s.escalations, 2);
        assert_eq!(s.horizon, 9000);
        assert_eq!(s.seed, 7);
        assert_eq!(s.band, Some((8, 4)));
        assert_eq!(
            s.ecc,
            EccPolicy {
                threshold: 3,
                window: 512
            }
        );
        assert_eq!(s.detect, 16);
        let empty: FaultTimelineSpec = "".parse().unwrap();
        assert_eq!(empty, FaultTimelineSpec::default());
    }

    #[test]
    fn spec_parser_rejects_garbage() {
        assert!("units".parse::<FaultTimelineSpec>().is_err());
        assert!("units=abc".parse::<FaultTimelineSpec>().is_err());
        assert!("frobnicate=1".parse::<FaultTimelineSpec>().is_err());
        assert!("horizon=0".parse::<FaultTimelineSpec>().is_err());
        assert!("band=8".parse::<FaultTimelineSpec>().is_err());
        assert!("band=0@4".parse::<FaultTimelineSpec>().is_err());
        assert!("ecc=3".parse::<FaultTimelineSpec>().is_err());
    }

    #[test]
    fn health_map_tracks_band_health() {
        let t = topo();
        let mut h = HealthMap::new();
        assert!(!h.any());
        let band_lo = Partition::new(0, 4, 2);
        let band_hi = Partition::new(4, 4, 2);
        assert!(h.band_is_healthy(&t, &band_lo));
        assert!(h.band_is_healthy(&t, &band_hi));

        // Kill a unit in rows 8..12.
        let victim = t
            .sites_of(SiteKind::Pcu)
            .into_iter()
            .find(|s| band_hi.contains_row(t.site(*s).y))
            .unwrap();
        assert!(h.absorb(&FaultArrival::UnitDeath {
            site: victim,
            kind: SiteKind::Pcu,
        }));
        assert!(h.any());
        assert!(h.band_is_healthy(&t, &band_lo));
        assert!(!h.band_is_healthy(&t, &band_hi));

        // Channel failures and escalations are not chip-level facts.
        assert!(!h.absorb(&FaultArrival::ChannelFailure { channel: 0 }));
        assert!(!h.absorb(&FaultArrival::TransientEscalation {
            lane: 1e-6,
            sram: 0.0,
            drop: 0.0,
        }));

        // A dead link on the boundary row of a band marks it unhealthy.
        let s0 = t.switch_at(0, 4);
        let s1 = t.switch_at(1, 4);
        assert!(h.absorb(&FaultArrival::LinkDeath { a: s0, b: s1 }));
        assert!(!h.band_is_healthy(&t, &band_lo));

        let merged = h.merged(&FaultMap::default());
        assert!(merged.dead_pcus.contains(&victim));
        assert!(merged.link_is_dead(s0, s1));
    }
}
