//! # plasticine-arch — the Plasticine architecture description
//!
//! Parameterized description of the Plasticine chip (§3 of the paper):
//!
//! * [`PlasticineParams`] — the Table 3 design space, with
//!   [`PlasticineParams::paper_final`] reproducing the published 16×8,
//!   16-lane, 6-stage configuration;
//! * [`Topology`] — the checkerboard PCU/PMU grid, switch fabric, and
//!   address-generator placement of Figure 5;
//! * [`MachineConfig`] — the configuration "bitstream" produced by the
//!   compiler and executed by the simulator: logical units bound to
//!   physical sites plus routed inter-unit links.
//!
//! # Examples
//!
//! ```
//! use plasticine_arch::{PlasticineParams, Topology, SiteKind};
//! let params = PlasticineParams::paper_final();
//! let topo = Topology::new(&params);
//! assert_eq!(topo.sites_of(SiteKind::Pcu).len(), 64);
//! assert_eq!(params.total_scratchpad_bytes(), 16 << 20);
//! ```

#![warn(missing_docs)]

mod config;
mod fault;
mod geom;
mod params;
mod partition;
mod space;
mod timeline;

pub use config::{
    AgCfg, AgMode, BitstreamError, ComputeCfg, DramAlloc, LinkCfg, MachineConfig, MemoryCfg,
    NetClass, OuterCtrlCfg, ResourceUsage, UnitCfg, UnitId,
};
pub use fault::{FaultMap, FaultRng, FaultSpec, FaultSpecError, TransientFaults};
pub use geom::{AgId, Site, SiteId, SiteKind, SwitchId, Topology};
pub use params::{GridMix, ParamError, PcuParams, PlasticineParams, PmuParams};
pub use partition::{Partition, PartitionSpecError, PartitionTable};
pub use space::{DseGrid, DsePoint};
pub use timeline::{
    EccPolicy, FaultArrival, FaultEvent, FaultTimeline, FaultTimelineSpec, HealthMap,
    TimelineSpecError,
};
