//! Fabric partitions: space-sharing one chip across tenants.
//!
//! A [`Partition`] is a full-width horizontal band of the unit grid plus a
//! DRAM-channel share. Bands span every column because address generators
//! live only on the chip's left/right edges (Figure 5): a full-width band
//! at any vertical offset owns the same *shape* of resources — `rows ×
//! cols` unit sites, `(rows+1) × (cols+1)` switches, and `4 × rows` edge
//! AGs — which is what makes compiled bitstreams *relocatable*: the same
//! program compiled for the same band geometry at a pattern-equivalent
//! offset (congruent modulo the grid mix's
//! [vertical period](GridMix::vertical_period) — any offset for a
//! column-striped mix, same parity for the checkerboard) is the same
//! placement translated vertically.
//!
//! To every other tenant a partition is simply dead fabric:
//! [`Partition::mask`] renders the band's complement as a [`FaultMap`]
//! (dead sites outside the band, dead links crossing or outside the band's
//! switch rectangle), which the compiler's existing fault-blacklisting
//! place-and-route consumes unchanged.
//!
//! [`PartitionTable`] is the chip-level allocation map: disjoint bands +
//! a channel budget, with best-fit allocation for the scheduler.

use crate::fault::FaultMap;
use crate::geom::{AgId, SiteId, SwitchId, Topology};
use crate::params::{GridMix, PlasticineParams};
use std::fmt;

/// A rectangular (full-width band) region of the fabric plus a
/// DRAM-channel share.
///
/// The band covers unit-grid rows `y0 .. y0+rows` across every column,
/// the switch rows `y0 ..= y0+rows` (adjacent bands share one boundary
/// switch row; links *crossing* the boundary are masked, so no traffic
/// leaks between bands), and the edge AGs attached to switch rows
/// `y0 .. y0+rows` — the top boundary row's AGs are excluded so every
/// band of `r` rows owns exactly `4r` AGs regardless of offset.
///
/// `channels` is the tenant's DRAM-channel share (its credit weight in
/// the round-robin arbiter): the tenant runs against a memory system of
/// that many channels, disjoint from every co-tenant's.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Partition {
    /// First unit-grid row of the band.
    pub y0: usize,
    /// Height of the band in unit-grid rows.
    pub rows: usize,
    /// DRAM channels owned (the tenant's arbitration credit weight).
    pub channels: usize,
}

impl Partition {
    /// A band of `rows` rows at offset `y0` owning `channels` DRAM
    /// channels.
    pub fn new(y0: usize, rows: usize, channels: usize) -> Partition {
        Partition { y0, rows, channels }
    }

    /// The whole chip as one partition.
    pub fn full(params: &PlasticineParams) -> Partition {
        Partition {
            y0: 0,
            rows: params.rows,
            channels: params.coalescing_units,
        }
    }

    /// Whether this partition covers the entire chip.
    pub fn is_full(&self, params: &PlasticineParams) -> bool {
        *self == Partition::full(params)
    }

    /// Checks the band against a parameter set.
    ///
    /// # Errors
    ///
    /// Returns a [`PartitionSpecError`] naming the violated constraint.
    pub fn validate(&self, params: &PlasticineParams) -> Result<(), PartitionSpecError> {
        if self.rows == 0 {
            return Err(PartitionSpecError(
                "partition needs at least one row".into(),
            ));
        }
        if self.y0 + self.rows > params.rows {
            return Err(PartitionSpecError(format!(
                "partition rows {}..{} exceed the {}-row fabric",
                self.y0,
                self.y0 + self.rows,
                params.rows
            )));
        }
        if self.channels == 0 {
            return Err(PartitionSpecError(
                "partition needs at least one DRAM channel".into(),
            ));
        }
        if self.channels > params.coalescing_units {
            return Err(PartitionSpecError(format!(
                "partition wants {} DRAM channels, chip has {}",
                self.channels, params.coalescing_units
            )));
        }
        Ok(())
    }

    /// Whether a unit-grid row is inside the band.
    pub fn contains_row(&self, y: usize) -> bool {
        (self.y0..self.y0 + self.rows).contains(&y)
    }

    /// Whether a switch-grid row is inside the band's switch rectangle
    /// (both boundary rows included).
    pub fn contains_switch_row(&self, sy: usize) -> bool {
        (self.y0..=self.y0 + self.rows).contains(&sy)
    }

    /// Placement centroid fallback: the geometric center of the band.
    pub fn center(&self, params: &PlasticineParams) -> (f64, f64) {
        (
            (params.cols as f64 - 1.0) / 2.0,
            self.y0 as f64 + (self.rows as f64 - 1.0) / 2.0,
        )
    }

    /// The AGs the band owns: those attached to switch rows
    /// `y0 .. y0+rows` (top boundary row excluded), in raw-id order.
    /// On the paper topology this is exactly `4 * rows` AGs at any
    /// offset, and the id order is translation-equivariant.
    pub fn ag_pool(&self, topo: &Topology) -> Vec<AgId> {
        (0..topo.num_ags() as u32)
            .map(AgId)
            .filter(|&a| {
                let (_, sy) = topo.switch_xy(topo.ag_switch(a));
                sy >= self.y0 && sy < self.y0 + self.rows
            })
            .collect()
    }

    /// Renders everything *outside* the band as a fault map: dead unit
    /// sites off the band, and dead mesh links except those joining two
    /// switches inside the band's switch rectangle. Merging this into the
    /// compile-time fault map confines placement and routing to the band.
    pub fn mask(&self, topo: &Topology) -> FaultMap {
        let mut m = FaultMap::default();
        for (i, s) in topo.sites().iter().enumerate() {
            if !self.contains_row(s.y) {
                let id = SiteId(i as u32);
                match s.kind {
                    crate::geom::SiteKind::Pcu => m.dead_pcus.insert(id),
                    crate::geom::SiteKind::Pmu => m.dead_pmus.insert(id),
                };
            }
        }
        for s in 0..topo.num_switches() as u32 {
            let s = SwitchId(s);
            let (_, sy) = topo.switch_xy(s);
            for nb in topo.switch_neighbors(s) {
                if s >= nb {
                    continue;
                }
                let (_, ny) = topo.switch_xy(nb);
                if !(self.contains_switch_row(sy) && self.contains_switch_row(ny)) {
                    m.dead_links.insert((s, nb));
                }
            }
        }
        m
    }

    /// Merges this band's mask into an existing fault map (union of hard
    /// faults; transient rates and offline channels are left alone — they
    /// belong to the run, not the geometry).
    pub fn masked(&self, topo: &Topology, faults: &FaultMap) -> FaultMap {
        let mask = self.mask(topo);
        let mut out = faults.clone();
        out.dead_pcus.extend(mask.dead_pcus);
        out.dead_pmus.extend(mask.dead_pmus);
        out.dead_links.extend(mask.dead_links);
        out
    }

    /// The same band translated to offset `y0` (geometry and channel
    /// share preserved).
    pub fn at_offset(&self, y0: usize) -> Partition {
        Partition { y0, ..*self }
    }

    /// The band translated to offset 0 — the canonical representative of
    /// its geometry class, used to hash configs offset-independently.
    pub fn normalized(&self) -> Partition {
        self.at_offset(0)
    }

    /// Whether a band at `other`'s offset covers the same PCU/PMU site
    /// pattern as this one — i.e. whether a bitstream compiled for one
    /// band relocates onto the other. Requires equal height and offsets
    /// congruent modulo the mix's
    /// [vertical period](GridMix::vertical_period); the channel share is
    /// a runtime resource, not bitstream geometry, so it is ignored.
    pub fn pattern_equivalent(&self, other: &Partition, mix: GridMix) -> bool {
        let period = mix.vertical_period();
        self.rows == other.rows && self.y0 % period == other.y0 % period
    }

    /// Translates a unit site by `dy` band rows (row-major grid).
    pub fn relocate_site(s: SiteId, dy: i64, cols: usize) -> SiteId {
        SiteId((s.0 as i64 + dy * cols as i64) as u32)
    }

    /// Translates a switch by `dy` switch rows (row-major switch grid).
    pub fn relocate_switch(s: SwitchId, dy: i64, switch_cols: usize) -> SwitchId {
        SwitchId((s.0 as i64 + dy * switch_cols as i64) as u32)
    }

    /// Translates an edge AG by `dy` rows: AG ids interleave
    /// left/right per row and wrap per `switch_rows` duplicate block
    /// ([`Topology::ag_switch`]), so the row component shifts while side
    /// and duplicate index are preserved.
    pub fn relocate_ag(a: AgId, dy: i64, switch_rows: usize) -> AgId {
        let i = a.0 as usize;
        let side = i % 2;
        let q = i / 2;
        let row = q % switch_rows;
        let dup = q / switch_rows;
        let new_row = (row as i64 + dy) as usize;
        AgId((2 * (dup * switch_rows + new_row) + side) as u32)
    }
}

impl fmt::Display for Partition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@{}/{}", self.rows, self.y0, self.channels)
    }
}

/// A malformed or invalid partition spec (`ROWS@Y0/CHANNELS`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartitionSpecError(pub String);

impl fmt::Display for PartitionSpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bad partition: {}", self.0)
    }
}

impl std::error::Error for PartitionSpecError {}

impl std::str::FromStr for Partition {
    type Err = PartitionSpecError;

    /// Parses `ROWS@Y0/CHANNELS` (e.g. `4@0/2`); `/CHANNELS` defaults
    /// to 1.
    fn from_str(s: &str) -> Result<Partition, PartitionSpecError> {
        let (geom, channels) = match s.split_once('/') {
            Some((g, c)) => {
                let channels: usize = c
                    .parse()
                    .map_err(|_| PartitionSpecError(format!("`{c}` is not a channel count")))?;
                (g, channels)
            }
            None => (s, 1),
        };
        let Some((rows, y0)) = geom.split_once('@') else {
            return Err(PartitionSpecError(format!(
                "`{s}` is not ROWS@Y0[/CHANNELS]"
            )));
        };
        let rows: usize = rows
            .parse()
            .map_err(|_| PartitionSpecError(format!("`{rows}` is not a row count")))?;
        let y0: usize = y0
            .parse()
            .map_err(|_| PartitionSpecError(format!("`{y0}` is not a row offset")))?;
        Ok(Partition { y0, rows, channels })
    }
}

/// The chip-level partition table: which bands and channels are taken.
///
/// Allocation is best-fit: the smallest free contiguous row gap that
/// holds the request wins (ties broken toward the lowest offset), and the
/// partition lands at the bottom of its gap — both choices deterministic
/// so the scheduler replays identically.
#[derive(Debug, Clone)]
pub struct PartitionTable {
    rows: usize,
    channels: usize,
    taken: Vec<Partition>,
}

impl PartitionTable {
    /// An empty table over a chip's fabric rows and DRAM channels.
    pub fn new(params: &PlasticineParams) -> PartitionTable {
        PartitionTable {
            rows: params.rows,
            channels: params.coalescing_units,
            taken: Vec::new(),
        }
    }

    /// Currently allocated partitions, sorted by offset.
    pub fn partitions(&self) -> &[Partition] {
        &self.taken
    }

    /// Unallocated fabric rows.
    pub fn free_rows(&self) -> usize {
        self.rows - self.taken.iter().map(|p| p.rows).sum::<usize>()
    }

    /// Unallocated DRAM channels.
    pub fn free_channels(&self) -> usize {
        self.channels - self.taken.iter().map(|p| p.channels).sum::<usize>()
    }

    /// Free contiguous row gaps as `(y0, rows)`, in offset order.
    pub fn gaps(&self) -> Vec<(usize, usize)> {
        let mut gaps = Vec::new();
        let mut cursor = 0;
        for p in &self.taken {
            if p.y0 > cursor {
                gaps.push((cursor, p.y0 - cursor));
            }
            cursor = p.y0 + p.rows;
        }
        if cursor < self.rows {
            gaps.push((cursor, self.rows - cursor));
        }
        gaps
    }

    /// Best-fit placement for a request, without allocating: the
    /// smallest gap that fits, lowest offset on ties. `None` when no gap
    /// is tall enough or the channel budget is exhausted.
    pub fn fit(&self, rows: usize, channels: usize) -> Option<Partition> {
        if rows == 0 || channels == 0 || channels > self.free_channels() {
            return None;
        }
        self.gaps()
            .into_iter()
            .filter(|&(_, h)| h >= rows)
            .min_by_key(|&(y0, h)| (h, y0))
            .map(|(y0, _)| Partition { y0, rows, channels })
    }

    /// Best-fit allocation: [`fit`](Self::fit) + insert.
    pub fn allocate(&mut self, rows: usize, channels: usize) -> Option<Partition> {
        let p = self.fit(rows, channels)?;
        self.insert(p).expect("fit() result must insert cleanly");
        Some(p)
    }

    /// Best-fit placement restricted to offsets pattern-equivalent to
    /// `anchor_y0` (congruent modulo the mix's
    /// [vertical period](GridMix::vertical_period)), so a checkpointed
    /// bitstream relocates onto the result. Within each gap the start is
    /// rounded up to the first compatible offset; ties break as in
    /// [`fit`](Self::fit) (smallest gap, then lowest offset).
    pub fn fit_compatible(
        &self,
        rows: usize,
        channels: usize,
        anchor_y0: usize,
        mix: GridMix,
    ) -> Option<Partition> {
        if rows == 0 || channels == 0 || channels > self.free_channels() {
            return None;
        }
        let period = mix.vertical_period();
        let aligned = |y0: usize| {
            let rem = (anchor_y0 + period - y0 % period) % period;
            y0 + rem
        };
        self.gaps()
            .into_iter()
            .filter_map(|(y0, h)| {
                let a = aligned(y0);
                (a + rows <= y0 + h).then_some((h, a))
            })
            .min()
            .map(|(_, y0)| Partition { y0, rows, channels })
    }

    /// Pattern-compatible allocation:
    /// [`fit_compatible`](Self::fit_compatible) + insert.
    pub fn allocate_compatible(
        &mut self,
        rows: usize,
        channels: usize,
        anchor_y0: usize,
        mix: GridMix,
    ) -> Option<Partition> {
        let p = self.fit_compatible(rows, channels, anchor_y0, mix)?;
        self.insert(p)
            .expect("fit_compatible() must insert cleanly");
        Some(p)
    }

    /// Like [`fit`](Self::fit), but only offsets whose band satisfies
    /// `ok` qualify (e.g. [`HealthMap::band_is_healthy`] steering
    /// placements off dead fabric regions). Unlike `fit`, every offset
    /// inside a gap is considered, not just the gap bottom: a fault in
    /// the middle of a tall gap must not disqualify the whole gap.
    /// Selection order stays deterministic — smallest gap first, then
    /// lowest qualifying offset.
    ///
    /// [`HealthMap::band_is_healthy`]: crate::HealthMap::band_is_healthy
    pub fn fit_where(
        &self,
        rows: usize,
        channels: usize,
        ok: impl Fn(&Partition) -> bool,
    ) -> Option<Partition> {
        self.fit_stepped(rows, channels, 0, 1, ok)
    }

    /// [`fit_where`](Self::fit_where) + insert.
    pub fn allocate_where(
        &mut self,
        rows: usize,
        channels: usize,
        ok: impl Fn(&Partition) -> bool,
    ) -> Option<Partition> {
        let p = self.fit_where(rows, channels, ok)?;
        self.insert(p)
            .expect("fit_where() result must insert cleanly");
        Some(p)
    }

    /// Like [`fit_compatible`](Self::fit_compatible), but only
    /// pattern-equivalent offsets whose band satisfies `ok` qualify.
    pub fn fit_compatible_where(
        &self,
        rows: usize,
        channels: usize,
        anchor_y0: usize,
        mix: GridMix,
        ok: impl Fn(&Partition) -> bool,
    ) -> Option<Partition> {
        let period = mix.vertical_period();
        self.fit_stepped(rows, channels, anchor_y0 % period, period, ok)
    }

    /// [`fit_compatible_where`](Self::fit_compatible_where) + insert.
    pub fn allocate_compatible_where(
        &mut self,
        rows: usize,
        channels: usize,
        anchor_y0: usize,
        mix: GridMix,
        ok: impl Fn(&Partition) -> bool,
    ) -> Option<Partition> {
        let p = self.fit_compatible_where(rows, channels, anchor_y0, mix, ok)?;
        self.insert(p)
            .expect("fit_compatible_where() must insert cleanly");
        Some(p)
    }

    /// Shared scan for the `_where` fits: within each gap, offsets
    /// congruent to `phase` modulo `period` are tried bottom-up and the
    /// first to satisfy `ok` represents the gap; gaps then compete by
    /// (height, offset) exactly like [`fit`](Self::fit).
    fn fit_stepped(
        &self,
        rows: usize,
        channels: usize,
        phase: usize,
        period: usize,
        ok: impl Fn(&Partition) -> bool,
    ) -> Option<Partition> {
        if rows == 0 || channels == 0 || channels > self.free_channels() {
            return None;
        }
        let mut best: Option<(usize, usize)> = None;
        for (y0, h) in self.gaps() {
            let mut a = y0 + (phase + period - y0 % period) % period;
            while a + rows <= y0 + h {
                let p = Partition {
                    y0: a,
                    rows,
                    channels,
                };
                if ok(&p) {
                    let cand = (h, a);
                    if best.map(|b| cand < b).unwrap_or(true) {
                        best = Some(cand);
                    }
                    break;
                }
                a += period;
            }
        }
        best.map(|(_, y0)| Partition { y0, rows, channels })
    }

    /// Inserts an explicitly placed partition, enforcing band
    /// disjointness, fabric bounds, and the channel budget.
    ///
    /// # Errors
    ///
    /// Returns a [`PartitionSpecError`] naming the conflict.
    pub fn insert(&mut self, p: Partition) -> Result<(), PartitionSpecError> {
        if p.rows == 0 {
            return Err(PartitionSpecError(
                "partition needs at least one row".into(),
            ));
        }
        if p.y0 + p.rows > self.rows {
            return Err(PartitionSpecError(format!(
                "partition rows {}..{} exceed the {}-row fabric",
                p.y0,
                p.y0 + p.rows,
                self.rows
            )));
        }
        if p.channels > self.free_channels() {
            return Err(PartitionSpecError(format!(
                "partition wants {} DRAM channels, only {} free",
                p.channels,
                self.free_channels()
            )));
        }
        for q in &self.taken {
            if p.y0 < q.y0 + q.rows && q.y0 < p.y0 + p.rows {
                return Err(PartitionSpecError(format!(
                    "partition {p} overlaps allocated partition {q}"
                )));
            }
        }
        let at = self.taken.partition_point(|q| q.y0 < p.y0);
        self.taken.insert(at, p);
        Ok(())
    }

    /// Releases a previously allocated partition. Returns whether it was
    /// present.
    pub fn release(&mut self, p: &Partition) -> bool {
        match self.taken.iter().position(|q| q == p) {
            Some(i) => {
                self.taken.remove(i);
                true
            }
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geom::SiteKind;

    fn params() -> PlasticineParams {
        PlasticineParams::paper_final()
    }

    #[test]
    fn band_owns_translation_equivariant_resources() {
        let p = params();
        let topo = Topology::new(&p);
        for rows in [2usize, 4] {
            for y0 in 0..=(p.rows - rows) {
                let band = Partition::new(y0, rows, 1);
                band.validate(&p).unwrap();
                let pool = band.ag_pool(&topo);
                assert_eq!(pool.len(), 4 * rows, "band {band}: AG pool size");
                // The pool relocates onto the offset-0 pool id-for-id.
                let base = band.normalized().ag_pool(&topo);
                let relocated: Vec<AgId> = pool
                    .iter()
                    .map(|&a| Partition::relocate_ag(a, -(y0 as i64), topo.switch_rows()))
                    .collect();
                assert_eq!(relocated, base, "band {band}: AG pool relocation");
                // Mask leaves exactly the band's sites alive.
                let mask = band.mask(&topo);
                let alive = topo.sites().len() - mask.dead_pcus.len() - mask.dead_pmus.len();
                assert_eq!(alive, rows * p.cols);
            }
        }
    }

    #[test]
    fn mask_kills_every_boundary_crossing_link() {
        let p = params();
        let topo = Topology::new(&p);
        let band = Partition::new(2, 4, 2);
        let mask = band.mask(&topo);
        // Every vertical link crossing switch rows 2 and 6 is dead.
        for sx in 0..topo.switch_cols() {
            let below = topo.switch_at(sx, 1);
            let bottom = topo.switch_at(sx, 2);
            let top = topo.switch_at(sx, 6);
            let above = topo.switch_at(sx, 7);
            assert!(mask.link_is_dead(below, bottom));
            assert!(mask.link_is_dead(top, above));
            // In-band vertical links live.
            assert!(!mask.link_is_dead(bottom, topo.switch_at(sx, 3)));
        }
        // Horizontal links in the shared boundary rows stay alive.
        assert!(!mask.link_is_dead(topo.switch_at(0, 2), topo.switch_at(1, 2)));
        // Dead sites keep their kinds straight.
        for s in &mask.dead_pcus {
            assert_eq!(topo.site(*s).kind, SiteKind::Pcu);
        }
        for s in &mask.dead_pmus {
            assert_eq!(topo.site(*s).kind, SiteKind::Pmu);
        }
    }

    #[test]
    fn spec_parses_and_validates() {
        let p: Partition = "4@2/2".parse().unwrap();
        assert_eq!(p, Partition::new(2, 4, 2));
        assert_eq!(p.to_string(), "4@2/2");
        let q: Partition = "8@0".parse().unwrap();
        assert_eq!(q.channels, 1);
        assert!("x@0".parse::<Partition>().is_err());
        assert!("4".parse::<Partition>().is_err());
        assert!("4@0/z".parse::<Partition>().is_err());
        assert!(Partition::new(6, 4, 1).validate(&params()).is_err());
        assert!(Partition::new(0, 4, 9).validate(&params()).is_err());
        assert!(Partition::new(0, 0, 1).validate(&params()).is_err());
    }

    #[test]
    fn table_best_fit_and_release() {
        let mut t = PartitionTable::new(&params());
        let a = t.allocate(2, 1).unwrap();
        assert_eq!((a.y0, a.rows), (0, 2));
        let b = t.allocate(4, 2).unwrap();
        assert_eq!((b.y0, b.rows), (2, 4));
        let c = t.allocate(2, 1).unwrap();
        assert_eq!((c.y0, c.rows), (6, 2));
        // Full: no rows or channels left.
        assert!(t.allocate(1, 1).is_none());
        assert_eq!(t.free_rows(), 0);
        assert_eq!(t.free_channels(), 0);
        // Release the middle band; best-fit prefers the smallest gap.
        assert!(t.release(&b));
        assert!(!t.release(&b));
        assert_eq!(t.gaps(), vec![(2, 4)]);
        assert!(t.release(&a));
        // A 2-row request now has gaps (0,2) and (2,4): picks the small one.
        let d = t.allocate(2, 1).unwrap();
        assert_eq!((d.y0, d.rows), (0, 2));
        // Overlap and budget violations are typed errors.
        let mut t2 = PartitionTable::new(&params());
        t2.insert(Partition::new(0, 4, 2)).unwrap();
        assert!(t2.insert(Partition::new(2, 4, 1)).is_err());
        assert!(t2.insert(Partition::new(4, 4, 3)).is_err());
        assert!(t2.insert(Partition::new(6, 4, 1)).is_err());
    }

    #[test]
    fn pattern_equivalence_follows_the_mix_period() {
        let cb = GridMix::Checkerboard;
        let a = Partition::new(0, 3, 1);
        // Checkerboard: same parity relocates, opposite parity does not.
        assert!(a.pattern_equivalent(&Partition::new(4, 3, 2), cb));
        assert!(!a.pattern_equivalent(&Partition::new(3, 3, 1), cb));
        // Height is geometry; it always matters.
        assert!(!a.pattern_equivalent(&Partition::new(0, 4, 1), cb));
        // A column-striped mix relocates to any offset.
        assert!(a.pattern_equivalent(&Partition::new(3, 3, 1), GridMix::PmuHeavy));
    }

    #[test]
    fn compatible_allocation_respects_the_anchor_parity() {
        let cb = GridMix::Checkerboard;
        let mut t = PartitionTable::new(&params());
        // Occupy rows 3..6, leaving gaps (0,3) and (6,2).
        t.insert(Partition::new(3, 3, 1)).unwrap();
        // An odd-parity 3-row band must start at 1 inside the (0,3) gap —
        // which no longer fits — so it cannot be placed at all.
        assert_eq!(
            t.fit_compatible(3, 1, 1, cb),
            None,
            "no odd-parity 3-row slot exists"
        );
        // A 2-row odd-parity band rounds up past the gap start.
        let p = t.allocate_compatible(2, 1, 5, cb).unwrap();
        assert_eq!((p.y0, p.rows), (1, 2));
        // Even-parity requests still best-fit (smallest gap first).
        let q = t.allocate_compatible(2, 1, 0, cb).unwrap();
        assert_eq!((q.y0, q.rows), (6, 2));
        // A column-striped mix degenerates to plain best-fit.
        let mut t2 = PartitionTable::new(&params());
        t2.insert(Partition::new(3, 3, 1)).unwrap();
        assert_eq!(t2.fit_compatible(3, 1, 1, GridMix::PmuHeavy), t2.fit(3, 1));
    }
}
