//! Architecture parameters (Table 3 of the paper).
//!
//! Plasticine is a *parameterized* architecture: the number of lanes,
//! stages, registers, and IO ports of each unit type is chosen by
//! design-space exploration (§3.7). [`PlasticineParams::paper_final`]
//! reproduces the published final configuration; the DSE harness sweeps the
//! same ranges as Figure 7.

use std::fmt;

/// How PCU and PMU sites are mixed on the grid (§3.7: "we also
/// experimented with multiple ratios of PMUs to PCUs").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum GridMix {
    /// 1:1 checkerboard (the paper's final choice).
    #[default]
    Checkerboard,
    /// 2:1 PMUs to PCUs (every third column is a PCU).
    PmuHeavy,
}

impl GridMix {
    /// Vertical period of the PCU/PMU pattern: translating a band down by
    /// a multiple of this many rows lands on an identical site pattern.
    /// Checkerboard alternates per row (period 2); the PmuHeavy pattern
    /// depends only on the column (period 1). Bitstreams are relocatable
    /// exactly between offsets congruent modulo this period.
    pub fn vertical_period(self) -> usize {
        match self {
            GridMix::Checkerboard => 2,
            GridMix::PmuHeavy => 1,
        }
    }
}

/// Pattern Compute Unit parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PcuParams {
    /// SIMD lanes (Table 3: 4–32, final 16).
    pub lanes: usize,
    /// Pipeline stages of functional units (1–16, final 6).
    pub stages: usize,
    /// Pipeline registers per FU per stage (2–16, final 6).
    pub regs_per_stage: usize,
    /// Scalar inputs (1–16, final 6).
    pub scalar_ins: usize,
    /// Scalar outputs (1–6, final 5).
    pub scalar_outs: usize,
    /// Vector inputs (1–10, final 3).
    pub vector_ins: usize,
    /// Vector outputs (1–6, final 3).
    pub vector_outs: usize,
    /// Depth of each input FIFO in vector words.
    pub fifo_depth: usize,
    /// Programmable counters in the chain.
    pub counters: usize,
}

impl PcuParams {
    /// The paper's final selection (Table 3).
    pub fn paper_final() -> PcuParams {
        PcuParams {
            lanes: 16,
            stages: 6,
            regs_per_stage: 6,
            scalar_ins: 6,
            scalar_outs: 5,
            vector_ins: 3,
            vector_outs: 3,
            fifo_depth: 16,
            counters: 4,
        }
    }
}

impl Default for PcuParams {
    fn default() -> PcuParams {
        PcuParams::paper_final()
    }
}

/// Pattern Memory Unit parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PmuParams {
    /// Scalar pipeline stages for address calculation (final 4).
    pub stages: usize,
    /// Registers per stage (final 6).
    pub regs_per_stage: usize,
    /// Scalar inputs (final 4).
    pub scalar_ins: usize,
    /// Scalar outputs (final 0 — read data leaves on vector buses).
    pub scalar_outs: usize,
    /// Vector inputs (final 3).
    pub vector_ins: usize,
    /// Vector outputs (final 1).
    pub vector_outs: usize,
    /// SRAM banks (= PCU lanes, final 16).
    pub banks: usize,
    /// Capacity of one bank in KiB (final 16 → 256 KiB per PMU).
    pub bank_kb: usize,
    /// Depth of each input FIFO in vector words.
    pub fifo_depth: usize,
    /// Programmable counters.
    pub counters: usize,
}

impl PmuParams {
    /// The paper's final selection (Table 3).
    pub fn paper_final() -> PmuParams {
        PmuParams {
            stages: 4,
            regs_per_stage: 6,
            scalar_ins: 4,
            scalar_outs: 0,
            vector_ins: 3,
            vector_outs: 1,
            banks: 16,
            bank_kb: 16,
            fifo_depth: 16,
            counters: 2,
        }
    }

    /// Total scratchpad capacity in bytes.
    pub fn capacity_bytes(&self) -> usize {
        self.banks * self.bank_kb * 1024
    }

    /// Total scratchpad capacity in 32-bit words.
    pub fn capacity_words(&self) -> usize {
        self.capacity_bytes() / 4
    }
}

impl Default for PmuParams {
    fn default() -> PmuParams {
        PmuParams::paper_final()
    }
}

/// Whole-chip parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct PlasticineParams {
    /// Unit-grid columns (paper: 16).
    pub cols: usize,
    /// Unit-grid rows (paper: 8).
    pub rows: usize,
    /// PCU parameters.
    pub pcu: PcuParams,
    /// PMU parameters.
    pub pmu: PmuParams,
    /// Address generators on the chip's left/right edges (paper: 34).
    pub ags: usize,
    /// Coalescing units = DDR channels (paper: 4).
    pub coalescing_units: usize,
    /// PCU/PMU mix on the grid.
    pub mix: GridMix,
    /// Core clock in GHz (paper: 1 GHz).
    pub clock_ghz: f64,
    /// Pipeline latency per switch hop in cycles (links are registered).
    pub hop_latency: u64,
    /// Entries in each coalescing unit's coalescing cache.
    pub coalesce_entries: usize,
}

impl PlasticineParams {
    /// The paper's final 16×8 configuration.
    pub fn paper_final() -> PlasticineParams {
        PlasticineParams {
            cols: 16,
            rows: 8,
            pcu: PcuParams::paper_final(),
            pmu: PmuParams::paper_final(),
            ags: 34,
            coalescing_units: 4,
            mix: GridMix::Checkerboard,
            clock_ghz: 1.0,
            hop_latency: 1,
            coalesce_entries: 64,
        }
    }

    /// Number of PCUs on the chip (checkerboard: half the sites, rounded up
    /// so a 16×8 grid gives 64).
    pub fn num_pcus(&self) -> usize {
        match self.mix {
            GridMix::Checkerboard => (self.cols * self.rows).div_ceil(2),
            GridMix::PmuHeavy => self.cols.div_ceil(3) * self.rows,
        }
    }

    /// Number of PMUs on the chip.
    pub fn num_pmus(&self) -> usize {
        self.cols * self.rows - self.num_pcus()
    }

    /// Peak single-precision FLOPS: every FU in every lane/stage of every
    /// PCU retires one fused multiply-add (2 FLOPs) per cycle. The paper's
    /// final configuration yields 12.3 TFLOPS (§4.2).
    pub fn peak_flops(&self) -> f64 {
        2.0 * self.num_pcus() as f64
            * self.pcu.lanes as f64
            * self.pcu.stages as f64
            * self.clock_ghz
            * 1e9
    }

    /// Total on-chip scratchpad capacity in bytes.
    pub fn total_scratchpad_bytes(&self) -> usize {
        self.num_pmus() * self.pmu.capacity_bytes()
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first violated
    /// constraint.
    pub fn validate(&self) -> Result<(), ParamError> {
        if self.cols == 0 || self.rows == 0 {
            return Err(ParamError("grid must be non-empty".into()));
        }
        if self.pcu.lanes == 0 || !self.pcu.lanes.is_power_of_two() {
            return Err(ParamError(
                "PCU lanes must be a nonzero power of two".into(),
            ));
        }
        if self.pcu.stages == 0 {
            return Err(ParamError("PCU needs at least one stage".into()));
        }
        if self.pmu.banks == 0 {
            return Err(ParamError("PMU needs at least one bank".into()));
        }
        if self.coalescing_units == 0 {
            return Err(ParamError("need at least one coalescing unit".into()));
        }
        if self.ags < self.coalescing_units {
            return Err(ParamError(
                "need at least one address generator per coalescing unit".into(),
            ));
        }
        if self.clock_ghz <= 0.0 {
            return Err(ParamError("clock must be positive".into()));
        }
        Ok(())
    }
}

impl Default for PlasticineParams {
    fn default() -> PlasticineParams {
        PlasticineParams::paper_final()
    }
}

/// Invalid-parameter error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParamError(pub String);

impl fmt::Display for ParamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid architecture parameters: {}", self.0)
    }
}

impl std::error::Error for ParamError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_final_matches_table3() {
        let p = PlasticineParams::paper_final();
        assert_eq!(p.num_pcus(), 64);
        assert_eq!(p.num_pmus(), 64);
        assert_eq!(p.pcu.lanes, 16);
        assert_eq!(p.pcu.stages, 6);
        assert_eq!(p.pmu.capacity_bytes(), 256 * 1024);
        // 16 MB total scratchpad (§4.2).
        assert_eq!(p.total_scratchpad_bytes(), 16 * 1024 * 1024);
        p.validate().unwrap();
    }

    #[test]
    fn peak_flops_matches_paper() {
        // §4.2: 12.3 single-precision TFLOPS.
        let p = PlasticineParams::paper_final();
        let tflops = p.peak_flops() / 1e12;
        assert!((tflops - 12.288).abs() < 0.01, "peak = {tflops} TFLOPS");
    }

    #[test]
    fn validation_catches_bad_configs() {
        let mut p = PlasticineParams::paper_final();
        p.pcu.lanes = 12;
        assert!(p.validate().is_err());
        let mut p = PlasticineParams::paper_final();
        p.cols = 0;
        assert!(p.validate().is_err());
        let mut p = PlasticineParams::paper_final();
        p.ags = 2;
        assert!(p.validate().is_err());
    }
}
