//! Chip geometry: the checkerboard unit grid, the switch fabric, and
//! address-generator placement (Figure 5 of the paper).
//!
//! Units sit in a `cols × rows` grid, alternating PCU and PMU. Switches sit
//! at the `(cols+1) × (rows+1)` grid intersections; each unit connects to
//! the switch at its north-west corner. Address generators attach to the
//! switches on the chip's left and right edges. All three networks (scalar,
//! vector, control) share this topology (§3.3).

use crate::params::{GridMix, PlasticineParams};

/// Kind of a unit site.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SiteKind {
    /// Pattern Compute Unit.
    Pcu,
    /// Pattern Memory Unit.
    Pmu,
}

/// Identifier of a unit site on the grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SiteId(pub u32);

/// Identifier of a switch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SwitchId(pub u32);

/// Identifier of an address generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AgId(pub u32);

/// One unit site.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Site {
    /// PCU or PMU.
    pub kind: SiteKind,
    /// Grid column.
    pub x: usize,
    /// Grid row.
    pub y: usize,
}

/// The instantiated chip topology.
#[derive(Debug, Clone, PartialEq)]
pub struct Topology {
    cols: usize,
    rows: usize,
    sites: Vec<Site>,
    ags: usize,
}

impl Topology {
    /// Builds the topology for a parameter set.
    pub fn new(params: &PlasticineParams) -> Topology {
        let mut sites = Vec::with_capacity(params.cols * params.rows);
        for y in 0..params.rows {
            for x in 0..params.cols {
                let kind = match params.mix {
                    GridMix::Checkerboard => {
                        if (x + y) % 2 == 0 {
                            SiteKind::Pcu
                        } else {
                            SiteKind::Pmu
                        }
                    }
                    GridMix::PmuHeavy => {
                        if x % 3 == 0 {
                            SiteKind::Pcu
                        } else {
                            SiteKind::Pmu
                        }
                    }
                };
                sites.push(Site { kind, x, y });
            }
        }
        Topology {
            cols: params.cols,
            rows: params.rows,
            sites,
            ags: params.ags,
        }
    }

    /// Unit-grid columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Unit-grid rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// All unit sites in row-major order.
    pub fn sites(&self) -> &[Site] {
        &self.sites
    }

    /// Looks up a site.
    pub fn site(&self, id: SiteId) -> Site {
        self.sites[id.0 as usize]
    }

    /// All sites of a given kind.
    pub fn sites_of(&self, kind: SiteKind) -> Vec<SiteId> {
        self.sites
            .iter()
            .enumerate()
            .filter(|(_, s)| s.kind == kind)
            .map(|(i, _)| SiteId(i as u32))
            .collect()
    }

    /// Switch-grid columns.
    pub fn switch_cols(&self) -> usize {
        self.cols + 1
    }

    /// Switch-grid rows.
    pub fn switch_rows(&self) -> usize {
        self.rows + 1
    }

    /// Total number of switches.
    pub fn num_switches(&self) -> usize {
        self.switch_cols() * self.switch_rows()
    }

    /// The switch at switch-grid coordinates `(sx, sy)`.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn switch_at(&self, sx: usize, sy: usize) -> SwitchId {
        assert!(sx < self.switch_cols() && sy < self.switch_rows());
        SwitchId((sy * self.switch_cols() + sx) as u32)
    }

    /// Switch-grid coordinates of a switch.
    pub fn switch_xy(&self, s: SwitchId) -> (usize, usize) {
        let sc = self.switch_cols();
        ((s.0 as usize) % sc, (s.0 as usize) / sc)
    }

    /// The switch a unit site connects to (its north-west corner).
    pub fn site_switch(&self, id: SiteId) -> SwitchId {
        let s = self.site(id);
        self.switch_at(s.x, s.y)
    }

    /// Neighbouring switches (mesh: N/S/E/W).
    pub fn switch_neighbors(&self, s: SwitchId) -> Vec<SwitchId> {
        let (x, y) = self.switch_xy(s);
        let mut out = Vec::with_capacity(4);
        if x > 0 {
            out.push(self.switch_at(x - 1, y));
        }
        if x + 1 < self.switch_cols() {
            out.push(self.switch_at(x + 1, y));
        }
        if y > 0 {
            out.push(self.switch_at(x, y - 1));
        }
        if y + 1 < self.switch_rows() {
            out.push(self.switch_at(x, y + 1));
        }
        out
    }

    /// Number of address generators.
    pub fn num_ags(&self) -> usize {
        self.ags
    }

    /// The edge switch an address generator attaches to. AGs alternate
    /// between the left and right chip edges, walking down the rows
    /// (Figure 5 shows AGs on two sides).
    pub fn ag_switch(&self, ag: AgId) -> SwitchId {
        let i = ag.0 as usize;
        let side_right = i % 2 == 1;
        let row = (i / 2) % self.switch_rows();
        let x = if side_right {
            self.switch_cols() - 1
        } else {
            0
        };
        self.switch_at(x, row)
    }

    /// Manhattan distance between two switches, in hops.
    pub fn switch_distance(&self, a: SwitchId, b: SwitchId) -> usize {
        let (ax, ay) = self.switch_xy(a);
        let (bx, by) = self.switch_xy(b);
        ax.abs_diff(bx) + ay.abs_diff(by)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn topo() -> Topology {
        Topology::new(&PlasticineParams::paper_final())
    }

    #[test]
    fn checkerboard_splits_sites_evenly() {
        let t = topo();
        assert_eq!(t.sites().len(), 128);
        assert_eq!(t.sites_of(SiteKind::Pcu).len(), 64);
        assert_eq!(t.sites_of(SiteKind::Pmu).len(), 64);
    }

    #[test]
    fn neighbours_of_pcu_include_pmus() {
        let t = topo();
        // In a checkerboard every horizontal/vertical neighbour differs.
        let s0 = t.site(SiteId(0));
        let s1 = t.site(SiteId(1));
        assert_ne!(s0.kind, s1.kind);
    }

    #[test]
    fn switch_grid_is_one_larger() {
        let t = topo();
        assert_eq!(t.num_switches(), 17 * 9);
        assert_eq!(t.switch_xy(t.switch_at(16, 8)), (16, 8));
    }

    #[test]
    fn corner_switches_have_two_neighbors() {
        let t = topo();
        assert_eq!(t.switch_neighbors(t.switch_at(0, 0)).len(), 2);
        assert_eq!(t.switch_neighbors(t.switch_at(16, 8)).len(), 2);
        assert_eq!(t.switch_neighbors(t.switch_at(5, 5)).len(), 4);
    }

    #[test]
    fn ags_land_on_left_and_right_edges() {
        let t = topo();
        for i in 0..t.num_ags() {
            let sw = t.ag_switch(AgId(i as u32));
            let (x, _) = t.switch_xy(sw);
            assert!(x == 0 || x == t.switch_cols() - 1, "AG {i} at x={x}");
        }
    }

    #[test]
    fn switch_distance_is_manhattan() {
        let t = topo();
        let a = t.switch_at(0, 0);
        let b = t.switch_at(3, 4);
        assert_eq!(t.switch_distance(a, b), 7);
        assert_eq!(t.switch_distance(a, a), 0);
    }

    #[test]
    fn site_switch_is_northwest_corner() {
        let t = topo();
        let id = SiteId(17); // row 1, col 1
        let s = t.site(id);
        assert_eq!((s.x, s.y), (1, 1));
        assert_eq!(t.switch_xy(t.site_switch(id)), (1, 1));
    }
}
