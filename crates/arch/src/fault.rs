//! Fault model: hard faults in the fabric and transient faults at runtime.
//!
//! A production chip does not get to assume a pristine fabric: PCUs and PMU
//! banks fail burn-in, switch links break, and DRAM channels go offline.
//! Because Plasticine's place-and-route is fully static (§3.1–§3.4), the
//! compiler is exactly the layer that can route around hard faults: a
//! [`FaultMap`] is handed to placement and routing as a blacklist, and the
//! design is recompiled onto the surviving fabric.
//!
//! Transient faults (single-event upsets in vector lanes or scratchpad
//! words, dropped DRAM responses) cannot be compiled away; the simulator
//! injects them from the seeded rates in [`TransientFaults`] and models the
//! detection/recovery machinery (ECC, parity replay, bounded
//! retry-with-backoff) whose cost shows up in the cycle accounts.
//!
//! Everything is deterministic: the same spec and seed always produce the
//! same fault map and the same injected-event stream, so faulty runs are as
//! reproducible as fault-free ones. `FaultMap::default()` is the pristine
//! chip and is guaranteed to leave compilation and simulation bit-for-bit
//! identical to builds that never heard of faults.

use crate::geom::{SiteId, SiteKind, SwitchId, Topology};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// Deterministic SplitMix64 generator used for fault sampling and
/// transient-fault injection. Small, seedable, and dependency-free; not
/// cryptographic, which is fine — we need reproducibility, not secrecy.
#[derive(Debug, Clone)]
pub struct FaultRng {
    state: u64,
}

impl FaultRng {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> FaultRng {
        FaultRng {
            state: seed ^ 0x9e37_79b9_7f4a_7c15,
        }
    }

    /// Reconstructs a generator from a raw state previously observed via
    /// [`state`](Self::state). Unlike [`new`](Self::new), the value is
    /// installed verbatim (no seed mixing), so
    /// `FaultRng::from_state(r.state())` continues `r`'s stream exactly —
    /// this is what simulation checkpoints serialize.
    pub fn from_state(state: u64) -> FaultRng {
        FaultRng { state }
    }

    /// The raw generator state, for checkpointing. Feed it back through
    /// [`from_state`](Self::from_state) to resume the stream.
    pub fn state(&self) -> u64 {
        self.state
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)`; 0 when `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            0
        } else {
            self.next_u64() % n
        }
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Bernoulli trial with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        p > 0.0 && self.unit_f64() < p
    }
}

/// Transient-fault rates and recovery parameters, injected by the
/// simulator from a seeded stream.
#[derive(Debug, Clone, PartialEq)]
pub struct TransientFaults {
    /// Per-vector-issue probability of a bit flip in a vector lane (caught
    /// by a residue check; the vector is reissued).
    pub lane_flip: f64,
    /// Per-read-word probability of a bit flip in a scratchpad word. Most
    /// flips are single-bit and ECC-corrected in line; the uncorrectable
    /// remainder is caught by parity and the read beat is replayed.
    pub sram_flip: f64,
    /// Per-response probability that a DRAM completion is dropped in
    /// flight (recovered by bounded retry-with-backoff).
    pub dram_drop: f64,
    /// Seed for the injection stream.
    pub seed: u64,
    /// Retries allowed per dropped DRAM request before the run is declared
    /// unrecoverable.
    pub max_retries: u32,
    /// Base retry timeout in cycles; attempt `k` waits `base << k` plus a
    /// deterministic jitter in `[0, base/2]` drawn from the seeded
    /// injection stream (so synchronized drops do not re-issue in
    /// lockstep).
    pub retry_base: u64,
}

impl Default for TransientFaults {
    fn default() -> TransientFaults {
        TransientFaults {
            lane_flip: 0.0,
            sram_flip: 0.0,
            dram_drop: 0.0,
            seed: 0,
            max_retries: 8,
            retry_base: 64,
        }
    }
}

impl TransientFaults {
    /// Whether any transient rate is non-zero.
    pub fn any(&self) -> bool {
        self.lane_flip > 0.0 || self.sram_flip > 0.0 || self.dram_drop > 0.0
    }
}

/// The fault state of one chip: hard-faulted units and links that the
/// compiler must avoid, plus transient-fault rates for the simulator.
///
/// The default value is a pristine chip.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultMap {
    /// Hard-faulted PCU sites (unusable).
    pub dead_pcus: BTreeSet<SiteId>,
    /// Hard-faulted PMU sites (unusable).
    pub dead_pmus: BTreeSet<SiteId>,
    /// Dead switch-mesh links, stored undirected with the lower switch id
    /// first.
    pub dead_links: BTreeSet<(SwitchId, SwitchId)>,
    /// Disabled scratchpad banks per PMU site (capacity degradation; a PMU
    /// with every bank disabled is effectively dead).
    pub dead_banks: BTreeMap<SiteId, usize>,
    /// Offline DRAM channels (their address share is remapped onto the
    /// surviving channels at reduced bandwidth).
    pub offline_channels: BTreeSet<usize>,
    /// Transient-fault injection rates.
    pub transient: TransientFaults,
}

impl FaultMap {
    /// Whether any hard fault is present (the compiler must degrade).
    pub fn has_hard_faults(&self) -> bool {
        !self.dead_pcus.is_empty()
            || !self.dead_pmus.is_empty()
            || !self.dead_links.is_empty()
            || !self.dead_banks.is_empty()
            || !self.offline_channels.is_empty()
    }

    /// Whether the map is entirely fault-free.
    pub fn is_pristine(&self) -> bool {
        !self.has_hard_faults() && !self.transient.any()
    }

    /// Number of hard-faulted resources, for error messages.
    pub fn hard_fault_count(&self) -> usize {
        self.dead_pcus.len()
            + self.dead_pmus.len()
            + self.dead_links.len()
            + self.dead_banks.values().sum::<usize>()
            + self.offline_channels.len()
    }

    /// Whether a dead (undirected) link joins `a` and `b`.
    pub fn link_is_dead(&self, a: SwitchId, b: SwitchId) -> bool {
        let key = if a <= b { (a, b) } else { (b, a) };
        self.dead_links.contains(&key)
    }

    /// Samples a concrete fault map from a spec, deterministically from the
    /// spec's seed. `dram_channels` is the channel count of the memory
    /// system the map will run against.
    pub fn sample(topo: &Topology, spec: &FaultSpec, dram_channels: usize) -> FaultMap {
        let mut rng = FaultRng::new(spec.seed);
        let pick = |rng: &mut FaultRng, pool: &[SiteId], n: usize| -> BTreeSet<SiteId> {
            let mut left: Vec<SiteId> = pool.to_vec();
            let mut out = BTreeSet::new();
            for _ in 0..n.min(left.len()) {
                let i = rng.below(left.len() as u64) as usize;
                out.insert(left.swap_remove(i));
            }
            out
        };
        let pcu_pool = topo.sites_of(SiteKind::Pcu);
        let pmu_pool = topo.sites_of(SiteKind::Pmu);
        let dead_pcus = pick(&mut rng, &pcu_pool, spec.pcus);
        let dead_pmus = pick(&mut rng, &pmu_pool, spec.pmus);

        // Undirected mesh edges in canonical order.
        let mut edges: Vec<(SwitchId, SwitchId)> = Vec::new();
        for s in 0..topo.num_switches() as u32 {
            let s = SwitchId(s);
            for nb in topo.switch_neighbors(s) {
                if s < nb {
                    edges.push((s, nb));
                }
            }
        }
        let mut dead_links = BTreeSet::new();
        for _ in 0..spec.links.min(edges.len()) {
            let i = rng.below(edges.len() as u64) as usize;
            dead_links.insert(edges.swap_remove(i));
        }

        // Bank faults land on surviving PMUs, at most `banks_per_pmu` each.
        let mut dead_banks: BTreeMap<SiteId, usize> = BTreeMap::new();
        let survivors: Vec<SiteId> = pmu_pool
            .iter()
            .copied()
            .filter(|s| !dead_pmus.contains(s))
            .collect();
        if !survivors.is_empty() {
            for _ in 0..spec.banks {
                let s = survivors[rng.below(survivors.len() as u64) as usize];
                let e = dead_banks.entry(s).or_insert(0);
                if *e < spec.banks_per_pmu {
                    *e += 1;
                }
            }
        }

        let mut offline_channels = BTreeSet::new();
        let mut chans: Vec<usize> = (0..dram_channels).collect();
        for _ in 0..spec.channels.min(dram_channels) {
            let i = rng.below(chans.len() as u64) as usize;
            offline_channels.insert(chans.swap_remove(i));
        }

        FaultMap {
            dead_pcus,
            dead_pmus,
            dead_links,
            dead_banks,
            offline_channels,
            transient: TransientFaults {
                lane_flip: spec.lane_flip,
                sram_flip: spec.sram_flip,
                dram_drop: spec.dram_drop,
                seed: spec.seed,
                max_retries: spec.max_retries,
                retry_base: TransientFaults::default().retry_base,
            },
        }
    }

    /// One-line human summary ("6 PCUs, 6 PMUs, 5 links dead, ...").
    pub fn summary(&self) -> String {
        let mut parts = Vec::new();
        if !self.dead_pcus.is_empty() {
            parts.push(format!("{} PCUs", self.dead_pcus.len()));
        }
        if !self.dead_pmus.is_empty() {
            parts.push(format!("{} PMUs", self.dead_pmus.len()));
        }
        if !self.dead_links.is_empty() {
            parts.push(format!("{} links", self.dead_links.len()));
        }
        if !self.dead_banks.is_empty() {
            parts.push(format!("{} banks", self.dead_banks.values().sum::<usize>()));
        }
        if !self.offline_channels.is_empty() {
            parts.push(format!("{} DRAM channels", self.offline_channels.len()));
        }
        let hard = if parts.is_empty() {
            "no hard faults".to_string()
        } else {
            format!("{} dead", parts.join(", "))
        };
        if self.transient.any() {
            format!(
                "{hard}; transient lane={} sram={} drop={} (seed {})",
                self.transient.lane_flip,
                self.transient.sram_flip,
                self.transient.dram_drop,
                self.transient.seed
            )
        } else {
            hard
        }
    }
}

/// A fault-injection request, as written on the command line:
/// `pcu=3,pmu=2,links=5,banks=4,chan=1,seed=42,lane=1e-6,sram=1e-6,drop=1e-3`.
///
/// All keys are optional; the default spec is fault-free.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultSpec {
    /// Hard-faulted PCU count.
    pub pcus: usize,
    /// Hard-faulted PMU count.
    pub pmus: usize,
    /// Dead switch-link count.
    pub links: usize,
    /// Disabled scratchpad banks (spread over surviving PMUs).
    pub banks: usize,
    /// Cap on disabled banks per PMU when sampling.
    pub banks_per_pmu: usize,
    /// Offline DRAM channels.
    pub channels: usize,
    /// RNG seed for sampling and injection.
    pub seed: u64,
    /// Per-vector-issue lane bit-flip probability.
    pub lane_flip: f64,
    /// Per-read-word scratchpad bit-flip probability.
    pub sram_flip: f64,
    /// Per-response DRAM drop probability.
    pub dram_drop: f64,
    /// Retry budget per dropped DRAM request.
    pub max_retries: u32,
}

impl Default for FaultSpec {
    fn default() -> FaultSpec {
        FaultSpec {
            pcus: 0,
            pmus: 0,
            links: 0,
            banks: 0,
            banks_per_pmu: usize::MAX,
            channels: 0,
            seed: 0,
            lane_flip: 0.0,
            sram_flip: 0.0,
            dram_drop: 0.0,
            max_retries: TransientFaults::default().max_retries,
        }
    }
}

/// A malformed `--faults` spec string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultSpecError(String);

impl fmt::Display for FaultSpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "bad fault spec: {} (expected comma-separated key=value with keys \
             pcu, pmu, links, banks, chan, seed, lane, sram, drop, retries)",
            self.0
        )
    }
}

impl std::error::Error for FaultSpecError {}

impl std::str::FromStr for FaultSpec {
    type Err = FaultSpecError;

    fn from_str(s: &str) -> Result<FaultSpec, FaultSpecError> {
        let mut spec = FaultSpec::default();
        for part in s.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let Some((key, val)) = part.split_once('=') else {
                return Err(FaultSpecError(format!("`{part}` is not key=value")));
            };
            let count = || -> Result<usize, FaultSpecError> {
                val.parse()
                    .map_err(|_| FaultSpecError(format!("`{val}` is not a count for `{key}`")))
            };
            let prob = || -> Result<f64, FaultSpecError> {
                let p: f64 = val
                    .parse()
                    .map_err(|_| FaultSpecError(format!("`{val}` is not a probability")))?;
                if !(0.0..=1.0).contains(&p) {
                    return Err(FaultSpecError(format!("`{key}={val}` is outside [0, 1]")));
                }
                Ok(p)
            };
            match key {
                "pcu" | "pcus" => spec.pcus = count()?,
                "pmu" | "pmus" => spec.pmus = count()?,
                "link" | "links" => spec.links = count()?,
                "bank" | "banks" => spec.banks = count()?,
                "chan" | "channels" => spec.channels = count()?,
                "seed" => {
                    spec.seed = val
                        .parse()
                        .map_err(|_| FaultSpecError(format!("`{val}` is not a seed")))?
                }
                "lane" => spec.lane_flip = prob()?,
                "sram" => spec.sram_flip = prob()?,
                "drop" => spec.dram_drop = prob()?,
                "retries" => {
                    spec.max_retries = val
                        .parse()
                        .map_err(|_| FaultSpecError(format!("`{val}` is not a retry count")))?
                }
                _ => return Err(FaultSpecError(format!("unknown key `{key}`"))),
            }
        }
        Ok(spec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::PlasticineParams;

    fn topo() -> Topology {
        Topology::new(&PlasticineParams::paper_final())
    }

    #[test]
    fn default_map_is_pristine() {
        let m = FaultMap::default();
        assert!(m.is_pristine());
        assert!(!m.has_hard_faults());
        assert_eq!(m.hard_fault_count(), 0);
        assert_eq!(m.summary(), "no hard faults");
    }

    #[test]
    fn sampling_is_deterministic_and_sized() {
        let t = topo();
        let spec: FaultSpec = "pcu=6,pmu=6,links=5,banks=4,chan=1,seed=42"
            .parse()
            .unwrap();
        let a = FaultMap::sample(&t, &spec, 4);
        let b = FaultMap::sample(&t, &spec, 4);
        assert_eq!(a, b);
        assert_eq!(a.dead_pcus.len(), 6);
        assert_eq!(a.dead_pmus.len(), 6);
        assert_eq!(a.dead_links.len(), 5);
        assert_eq!(a.dead_banks.values().sum::<usize>(), 4);
        assert_eq!(a.offline_channels.len(), 1);
        // PCU faults land on PCU sites, PMU faults on PMU sites.
        for s in &a.dead_pcus {
            assert_eq!(t.site(*s).kind, SiteKind::Pcu);
        }
        for s in &a.dead_pmus {
            assert_eq!(t.site(*s).kind, SiteKind::Pmu);
        }
        // Links are canonical and adjacent.
        for (x, y) in &a.dead_links {
            assert!(x < y);
            assert_eq!(t.switch_distance(*x, *y), 1);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let t = topo();
        let s1: FaultSpec = "pcu=6,seed=1".parse().unwrap();
        let s2: FaultSpec = "pcu=6,seed=2".parse().unwrap();
        assert_ne!(
            FaultMap::sample(&t, &s1, 4).dead_pcus,
            FaultMap::sample(&t, &s2, 4).dead_pcus
        );
    }

    #[test]
    fn spec_parser_accepts_full_grammar() {
        let s: FaultSpec =
            "pcu=3,pmu=2,links=5,banks=4,chan=1,seed=42,lane=1e-6,sram=0.001,drop=0.01,retries=4"
                .parse()
                .unwrap();
        assert_eq!(s.pcus, 3);
        assert_eq!(s.pmus, 2);
        assert_eq!(s.links, 5);
        assert_eq!(s.banks, 4);
        assert_eq!(s.channels, 1);
        assert_eq!(s.seed, 42);
        assert_eq!(s.lane_flip, 1e-6);
        assert_eq!(s.sram_flip, 0.001);
        assert_eq!(s.dram_drop, 0.01);
        assert_eq!(s.max_retries, 4);
        let empty: FaultSpec = "".parse().unwrap();
        assert_eq!(empty, FaultSpec::default());
    }

    #[test]
    fn spec_parser_rejects_garbage() {
        assert!("pcu".parse::<FaultSpec>().is_err());
        assert!("pcu=abc".parse::<FaultSpec>().is_err());
        assert!("frobnicate=1".parse::<FaultSpec>().is_err());
        assert!("drop=1.5".parse::<FaultSpec>().is_err());
        assert!("drop=-0.1".parse::<FaultSpec>().is_err());
    }

    #[test]
    fn link_is_dead_is_undirected() {
        let mut m = FaultMap::default();
        m.dead_links.insert((SwitchId(3), SwitchId(7)));
        assert!(m.link_is_dead(SwitchId(3), SwitchId(7)));
        assert!(m.link_is_dead(SwitchId(7), SwitchId(3)));
        assert!(!m.link_is_dead(SwitchId(3), SwitchId(8)));
    }

    #[test]
    fn rng_is_deterministic_and_spread() {
        let mut a = FaultRng::new(9);
        let mut b = FaultRng::new(9);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut r = FaultRng::new(1);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..64 {
            seen.insert(r.below(16));
        }
        assert!(seen.len() > 8, "below(16) should cover most of the range");
        let u = r.unit_f64();
        assert!((0.0..1.0).contains(&u));
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
    }
}
