//! Benchmark harness library (targets live in `benches/`).
