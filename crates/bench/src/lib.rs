//! Shared harness code for the `plasticine-bench` benchmark binaries.
//!
//! The bench targets are plain `harness = false` programs (the workspace
//! builds fully offline, so there is no external benchmarking framework).
//! This module provides the small timing loop the micro benchmarks use.

use std::hint::black_box;
use std::time::Instant;

/// Times `f` over `iters` iterations after `warmup` warmup iterations and
/// prints mean/min per-iteration wall time.
pub fn bench_function<T>(name: &str, warmup: u32, iters: u32, mut f: impl FnMut() -> T) {
    for _ in 0..warmup {
        black_box(f());
    }
    let mut samples = Vec::with_capacity(iters as usize);
    for _ in 0..iters {
        let t0 = Instant::now();
        black_box(f());
        samples.push(t0.elapsed());
    }
    let total: f64 = samples.iter().map(|d| d.as_secs_f64()).sum();
    let mean = total / samples.len() as f64;
    let min = samples
        .iter()
        .map(|d| d.as_secs_f64())
        .fold(f64::INFINITY, f64::min);
    println!(
        "{name:<34} mean {:>12}  min {:>12}",
        fmt_secs(mean),
        fmt_secs(min)
    );
}

fn fmt_secs(s: f64) -> String {
    if s < 1e-6 {
        format!("{:.1} ns", s * 1e9)
    } else if s < 1e-3 {
        format!("{:.2} µs", s * 1e6)
    } else if s < 1.0 {
        format!("{:.2} ms", s * 1e3)
    } else {
        format!("{s:.3} s")
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn bench_function_runs_the_closure() {
        let mut n = 0u32;
        super::bench_function("noop", 1, 3, || n += 1);
        assert_eq!(n, 4);
    }
}
