//! Ablations of the design decisions DESIGN.md calls out:
//!
//! 1. **PMU:PCU ratio** (§3.7): 1:1 checkerboard vs 2:1 PMU-heavy grid.
//! 2. **Address coalescing** (§3.4): coalescing units on vs one burst per
//!    sparse element.
//! 3. **Control scheme** (§3.5): coarse-grain pipelining vs forcing every
//!    outer controller sequential.
//! 4. **Banking mode** (§3.2): duplication vs strided banking for SMDV's
//!    randomly-read vector.
//!
//! ```sh
//! cargo bench -p plasticine-bench --bench ablations
//! ```

use plasticine_arch::{GridMix, PlasticineParams};
use plasticine_compiler::compile;
use plasticine_ppir::{BankingMode, Machine, Program, Schedule, SramId};
use plasticine_sim::{simulate, SimOptions, SimResult};
use plasticine_workloads::{dense, sparse, Bench, Scale};

fn run(
    bench: &Bench,
    program: &Program,
    params: &PlasticineParams,
    opts: &SimOptions,
) -> Result<SimResult, String> {
    let out = compile(program, params).map_err(|e| format!("{}: {e}", bench.name))?;
    let mut m = Machine::new(program);
    for (id, data) in &bench.inputs {
        m.write_dram(*id, data);
    }
    simulate(program, &out, &mut m, opts).map_err(|e| format!("{}: {e}", bench.name))
}

fn main() {
    let paper = PlasticineParams::paper_final();
    let opts = SimOptions::default();

    // ---- 1. PMU:PCU ratio ----
    println!("== ablation 1: PMU:PCU ratio (1:1 vs 2:1) ==");
    let heavy = PlasticineParams {
        mix: GridMix::PmuHeavy,
        ..paper.clone()
    };
    println!(
        "  chips: 1:1 = {}/{} PCU/PMU; 2:1 = {}/{}",
        paper.num_pcus(),
        paper.num_pmus(),
        heavy.num_pcus(),
        heavy.num_pmus()
    );
    for bench in [
        dense::inner_product(Scale::small()),
        dense::black_scholes(Scale::small()),
    ] {
        let r1 = run(&bench, &bench.program, &paper, &opts).expect("1:1 fits");
        match run(&bench, &bench.program, &heavy, &opts) {
            Ok(r2) => println!(
                "  {:<14} 1:1 = {:>8} cycles | 2:1 = {:>8} cycles ({:+.1}%)",
                bench.name,
                r1.cycles,
                r2.cycles,
                100.0 * (r2.cycles as f64 / r1.cycles as f64 - 1.0)
            ),
            // The point of the ablation: a PMU-heavy grid starves
            // compute-heavy applications of PCUs.
            Err(e) => println!(
                "  {:<14} 1:1 = {:>8} cycles | 2:1 = DOES NOT FIT ({e})",
                bench.name, r1.cycles
            ),
        }
    }

    // ---- 2. Coalescing on/off ----
    println!("\n== ablation 2: address coalescing (on vs off) ==");
    let no_coalesce = SimOptions {
        coalescing: false,
        ..SimOptions::default()
    };
    for bench in [
        sparse::pagerank(Scale::small()),
        sparse::bfs(Scale::small()),
    ] {
        let on = run(&bench, &bench.program, &paper, &opts).expect("fits");
        let off = run(&bench, &bench.program, &paper, &no_coalesce).expect("fits");
        println!(
            "  {:<14} on = {:>8} cycles ({} lines) | off = {:>8} cycles ({} lines) -> {:.2}x slowdown",
            bench.name,
            on.cycles,
            on.dram.reads + on.dram.writes,
            off.cycles,
            off.dram.reads + off.dram.writes,
            off.cycles as f64 / on.cycles as f64,
        );
    }

    // ---- 3. Control scheme ----
    println!("\n== ablation 3: coarse-grain pipelining vs all-sequential ==");
    for bench in [
        dense::inner_product(Scale::small()),
        dense::tpchq6(Scale::small()),
    ] {
        let piped = run(&bench, &bench.program, &paper, &opts).expect("fits");
        let seq_prog = bench.program.with_schedules(|_| Schedule::Sequential);
        let seq = run(&bench, &seq_prog, &paper, &opts).expect("fits");
        println!(
            "  {:<14} pipelined = {:>8} | sequential = {:>8} -> {:.2}x speedup from pipelining",
            bench.name,
            piped.cycles,
            seq.cycles,
            seq.cycles as f64 / piped.cycles as f64,
        );
    }

    // ---- 4. Banking mode for on-chip gathers ----
    println!("\n== ablation 4: duplication vs strided banking (SMDV's x vector) ==");
    let bench = sparse::smdv(Scale::small());
    // s_x is SramId(3) in the SMDV builder (ptr, col, val, x, y).
    let x_sram = SramId(3);
    let dup = run(&bench, &bench.program, &paper, &opts).expect("fits");
    let strided_prog = bench.program.with_banking(x_sram, BankingMode::Strided);
    let strided = run(&bench, &strided_prog, &paper, &opts).expect("fits");
    println!(
        "  SMDV           duplication = {:>8} cycles | strided = {:>8} cycles -> {:.2}x slowdown from bank conflicts",
        dup.cycles,
        strided.cycles,
        strided.cycles as f64 / dup.cycles as f64,
    );
    assert!(
        strided.cycles > dup.cycles,
        "duplication banking must beat strided for random reads"
    );
}
