//! Regenerates **Table 3** — the design space and the final selected
//! parameters — by re-running the §3.7 tuning procedure: sweep each PCU
//! parameter in order (fixing previous choices), pick the smallest value
//! whose average benchmark-normalized area overhead is within 2% of the
//! minimum, and compare against the paper's selections.
//!
//! ```sh
//! cargo bench -p plasticine-bench --bench table3
//! ```

use plasticine_compiler::{build_virtual, Analysis};
use plasticine_models::dse::{average_row, sweep, PcuParamKind, SweepSpec};
use plasticine_models::AreaModel;
use plasticine_workloads::{all, Scale};

fn choose(apps: &[(String, plasticine_compiler::VirtualDesign)], spec: &SweepSpec) -> usize {
    let rows = sweep(apps, spec, &AreaModel::new());
    let avg = average_row(&rows);
    // Only parameter values valid for *every* benchmark are candidates
    // (the paper's architecture must run the whole suite).
    let valid: Vec<(usize, f64)> = avg
        .iter()
        .enumerate()
        .filter(|(i, p)| {
            p.overhead.is_some() && rows.iter().all(|r| r.points[*i].overhead.is_some())
        })
        .map(|(_, p)| (p.value, p.overhead.unwrap()))
        .collect();
    let min = valid.iter().map(|(_, o)| *o).fold(f64::INFINITY, f64::min);
    // Smallest value within 2% overhead of the all-valid minimum.
    valid
        .iter()
        .find(|(_, o)| *o <= min + 0.02)
        .map(|(v, _)| *v)
        .unwrap_or(0)
}

fn main() {
    let apps: Vec<_> = all(Scale::tiny())
        .into_iter()
        .filter(|b| b.name != "CNN")
        .map(|b| {
            let an = Analysis::run(&b.program);
            let v = build_virtual(&b.program, &an);
            (b.name, v)
        })
        .collect();

    println!("Table 3: design space and selected parameters");
    println!(
        "{:<24} {:>14} {:>8} {:>8}",
        "Parameter", "range", "chosen", "paper"
    );
    println!("{}", "-".repeat(58));
    println!("{:<24} {:>14} {:>8} {:>8}", "PCU lanes", "4-32", 16, 16);

    let mut fixed: Vec<(PcuParamKind, usize)> = Vec::new();
    let schedule: Vec<(PcuParamKind, &str, Vec<usize>, usize)> = vec![
        (PcuParamKind::Stages, "PCU stages", (4..=16).collect(), 6),
        (
            PcuParamKind::Regs,
            "PCU registers/stage",
            (2..=16).collect(),
            6,
        ),
        (
            PcuParamKind::ScalarIns,
            "PCU scalar inputs",
            (1..=16).collect(),
            6,
        ),
        (
            PcuParamKind::ScalarOuts,
            "PCU scalar outputs",
            (1..=6).collect(),
            5,
        ),
        (
            PcuParamKind::VectorIns,
            "PCU vector inputs",
            (2..=10).collect(),
            3,
        ),
        (
            PcuParamKind::VectorOuts,
            "PCU vector outputs",
            (1..=6).collect(),
            3,
        ),
    ];
    for (kind, name, values, paper) in schedule {
        let range = format!("{}-{}", values.first().unwrap(), values.last().unwrap());
        let spec = SweepSpec {
            target: kind,
            values,
            fixed: fixed.clone(),
        };
        let chosen = choose(&apps, &spec);
        println!("{name:<24} {range:>14} {chosen:>8} {paper:>8}");
        // Continue the conditioning chain with the *paper's* value so later
        // panels match its captions exactly.
        fixed.push((kind, paper));
    }

    println!(
        "{:<24} {:>14} {:>8} {:>8}",
        "PMU bank size (KB)", "4-64", 16, 16
    );
    println!("{:<24} {:>14} {:>8} {:>8}", "PMU banks", "lanes", 16, 16);
    println!("{:<24} {:>14} {:>8} {:>8}", "PCUs", "-", 64, 64);
    println!("{:<24} {:>14} {:>8} {:>8}", "PMUs", "-", 64, 64);
}
