//! Regenerates **Figure 7** — normalized PCU area overheads while sweeping
//! each PCU parameter, with previously-tuned parameters fixed exactly as
//! the paper's panel captions specify. Invalid points print as `x`
//! (the figure's × marks).
//!
//! ```sh
//! cargo bench -p plasticine-bench --bench fig7
//! ```

use plasticine_compiler::{build_virtual, Analysis};
use plasticine_models::dse::{average_row, sweep, PcuParamKind, SweepRow, SweepSpec};
use plasticine_models::AreaModel;
use plasticine_workloads::{all, Scale};

fn print_panel(caption: &str, values: &[usize], rows: &[SweepRow]) {
    println!("\n=== {caption} ===");
    print!("{:<14}", "Benchmark");
    for v in values {
        print!("{v:>6}");
    }
    println!();
    for row in rows {
        print!("{:<14}", row.app);
        for p in &row.points {
            match p.overhead {
                Some(o) => print!("{:>5.0}%", 100.0 * o),
                None => print!("{:>6}", "x"),
            }
        }
        println!();
    }
    print!("{:<14}", "Average");
    for p in average_row(rows) {
        match p.overhead {
            Some(o) => print!("{:>5.0}%", 100.0 * o),
            None => print!("{:>6}", "x"),
        }
    }
    println!();
}

fn main() {
    // Figure 7 uses the 12 benchmarks of Table 6 (CNN excluded).
    let apps: Vec<_> = all(Scale::tiny())
        .into_iter()
        .filter(|b| b.name != "CNN")
        .map(|b| {
            let an = Analysis::run(&b.program);
            let v = build_virtual(&b.program, &an);
            (b.name, v)
        })
        .collect();
    let model = AreaModel::new();

    // The sequential tuning order of §3.7: each panel fixes the parameters
    // already chosen (panel captions of Figure 7).
    let panels: Vec<(&str, SweepSpec)> = vec![
        (
            "7a. Stages per PCU",
            SweepSpec {
                target: PcuParamKind::Stages,
                values: (4..=16).collect(),
                fixed: vec![],
            },
        ),
        (
            "7b. Registers per FU (6 stages)",
            SweepSpec {
                target: PcuParamKind::Regs,
                values: (2..=16).collect(),
                fixed: vec![(PcuParamKind::Stages, 6)],
            },
        ),
        (
            "7c. Scalar inputs (6 stages, 6 regs)",
            SweepSpec {
                target: PcuParamKind::ScalarIns,
                values: (1..=10).collect(),
                fixed: vec![(PcuParamKind::Stages, 6), (PcuParamKind::Regs, 6)],
            },
        ),
        (
            "7d. Scalar outputs (6 stages, 6 regs, 6 scalar-ins)",
            SweepSpec {
                target: PcuParamKind::ScalarOuts,
                values: (1..=6).collect(),
                fixed: vec![
                    (PcuParamKind::Stages, 6),
                    (PcuParamKind::Regs, 6),
                    (PcuParamKind::ScalarIns, 6),
                ],
            },
        ),
        (
            "7e. Vector inputs (6 stages, 6 regs)",
            SweepSpec {
                target: PcuParamKind::VectorIns,
                values: (2..=10).collect(),
                fixed: vec![(PcuParamKind::Stages, 6), (PcuParamKind::Regs, 6)],
            },
        ),
        (
            "7f. Vector outputs (6 stages, 6 regs, 3 vector-ins)",
            SweepSpec {
                target: PcuParamKind::VectorOuts,
                values: (1..=6).collect(),
                fixed: vec![
                    (PcuParamKind::Stages, 6),
                    (PcuParamKind::Regs, 6),
                    (PcuParamKind::VectorIns, 3),
                ],
            },
        ),
    ];

    for (caption, spec) in panels {
        let rows = sweep(&apps, &spec, &model);
        print_panel(caption, &spec.values, &rows);
    }
    println!("\npaper reference: minima near stages=5..6, regs=4..6; scalar/vector IO flat after app minimum");
}
