//! Microbenchmarks of the infrastructure itself: compiler throughput,
//! simulator speed, and the DRAM model's dense vs random behaviour.
//!
//! ```sh
//! cargo bench -p plasticine-bench --bench micro
//! ```

use plasticine_arch::PlasticineParams;
use plasticine_bench::bench_function;
use plasticine_compiler::{build_virtual, compile, partition, Analysis};
use plasticine_dram::{DramConfig, DramSystem, MemRequest};
use plasticine_ppir::Machine;
use plasticine_sim::{simulate, SimOptions};
use plasticine_workloads::{dense, gemm, Scale};

fn bench_compile() {
    let bench = gemm::gemm(Scale::tiny());
    let params = PlasticineParams::paper_final();
    bench_function("compile_gemm", 2, 10, || {
        compile(&bench.program, &params).unwrap()
    });
}

fn bench_partition() {
    let bench = dense::black_scholes(Scale::tiny());
    let an = Analysis::run(&bench.program);
    let v = build_virtual(&bench.program, &an);
    let params = PlasticineParams::paper_final();
    let unit = v
        .pcus
        .iter()
        .max_by_key(|u| u.ops.len())
        .expect("black-scholes has compute units");
    bench_function("partition_blackscholes_pipe", 2, 10, || {
        partition(unit, &params.pcu).unwrap()
    });
}

fn bench_simulate() {
    let bench = dense::inner_product(Scale::tiny());
    let params = PlasticineParams::paper_final();
    let out = compile(&bench.program, &params).unwrap();
    bench_function("simulate_inner_product", 2, 10, || {
        let mut m = Machine::new(&bench.program);
        bench.load(&mut m);
        simulate(&bench.program, &out, &mut m, &SimOptions::default()).unwrap()
    });
}

fn bench_dram() {
    let cfg = DramConfig {
        refresh: false,
        ..DramConfig::default()
    };
    let run = |addrs: &[u64]| {
        let mut mem = DramSystem::new(DramConfig {
            refresh: false,
            ..DramConfig::default()
        });
        let mut issued = 0usize;
        let mut done = 0usize;
        while done < addrs.len() {
            while issued < addrs.len() && mem.can_accept(addrs[issued]) {
                mem.push(MemRequest {
                    id: issued as u64,
                    addr: addrs[issued],
                    is_write: false,
                })
                .unwrap();
                issued += 1;
            }
            done += mem.tick().len();
        }
        mem.now()
    };
    let dense_addrs: Vec<u64> = (0..2048u64).map(|i| i * 64).collect();
    let row_span = cfg.row_bytes * (cfg.banks * cfg.ranks * cfg.channels) as u64;
    let random_addrs: Vec<u64> = (0..2048u64).map(|i| (i * 13 + 5) * row_span).collect();
    bench_function("dram_dense_2048_lines", 2, 10, || run(&dense_addrs));
    bench_function("dram_random_2048_lines", 2, 10, || run(&random_addrs));
}

fn main() {
    bench_compile();
    bench_partition();
    bench_simulate();
    bench_dram();
}
