//! Regenerates **Table 6** — estimated successive and (cumulative) area
//! overheads of generalizing benchmark-specific ASICs into the Plasticine
//! fabric — next to the paper's published chain.
//!
//! ```sh
//! cargo bench -p plasticine-bench --bench table6
//! ```

use plasticine_compiler::{build_virtual, Analysis};
use plasticine_models::dse::table6;
use plasticine_models::AreaModel;
use plasticine_workloads::{all, Scale};

/// Paper values: (a, b, c, d, e) successive overheads per benchmark.
const PAPER: &[(&str, [f64; 5])] = &[
    ("InnerProduct", [2.64, 1.21, 2.66, 1.53, 1.02]),
    ("OuterProduct", [1.54, 2.07, 1.83, 1.00, 1.02]),
    ("BlackScholes", [2.05, 1.05, 1.59, 1.18, 1.10]),
    ("TPCHQ6", [2.26, 1.15, 3.90, 1.24, 1.15]),
    ("GEMM", [1.63, 1.45, 1.62, 1.00, 1.02]),
    ("GDA", [1.95, 1.79, 3.03, 1.34, 1.01]),
    ("LogReg", [1.55, 1.91, 1.73, 1.00, 1.02]),
    ("SGD", [7.67, 1.09, 1.82, 1.41, 1.02]),
    ("Kmeans", [2.81, 1.88, 1.74, 1.00, 1.02]),
    ("SMDV", [5.03, 1.24, 4.04, 1.36, 1.06]),
    ("PageRank", [7.14, 1.18, 3.39, 1.46, 1.03]),
    ("BFS", [2.91, 1.38, 2.14, 1.21, 1.03]),
    ("GeoMean", [2.77, 1.41, 2.32, 1.21, 1.04]),
];

fn main() {
    let apps: Vec<_> = all(Scale::tiny())
        .into_iter()
        .filter(|b| b.name != "CNN") // the paper's Table 6 has 12 apps
        .map(|b| {
            let an = Analysis::run(&b.program);
            let v = build_virtual(&b.program, &an);
            (b.name, v)
        })
        .collect();
    let rows = table6(&apps, &AreaModel::new());

    println!("Table 6: area overheads of generalization (successive, cumulative)");
    println!(
        "{:<14} {:>6} {:>13} {:>13} {:>13} {:>13}   | paper (a..e)",
        "Benchmark", "a", "b (cum)", "c (cum)", "d (cum)", "e (cum)"
    );
    println!("{}", "-".repeat(110));
    for r in &rows {
        let c = r.cumulative();
        let paper = PAPER
            .iter()
            .find(|(n, _)| *n == r.app)
            .map(|(_, v)| *v)
            .unwrap_or([f64::NAN; 5]);
        println!(
            "{:<14} {:>6.2} {:>5.2} ({:>5.2}) {:>5.2} ({:>5.2}) {:>5.2} ({:>5.2}) {:>5.2} ({:>5.2})   | {:.2} {:.2} {:.2} {:.2} {:.2}",
            r.app, r.a, r.b, c[1], r.c, c[2], r.d, c[3], r.e, c[4],
            paper[0], paper[1], paper[2], paper[3], paper[4],
        );
    }
    let gm = rows.last().expect("geomean row");
    println!();
    println!(
        "geomean sanity: a={:.2} (paper 2.77), e={:.2} (paper 1.04), total cum={:.1}x (paper 11.5x)",
        gm.a,
        gm.e,
        gm.cumulative()[4]
    );
}
