//! Design-space search benchmark: the `dse search` pipeline over a
//! pinned small grid, timed serial vs parallel.
//!
//! ```sh
//! cargo bench -p plasticine-bench --bench dse
//! ```
//!
//! One measurement, written to `BENCH_dse.json` at the workspace root:
//! the pinned 8-point grid (lanes {8,16} × scratchpad {128,256} KiB ×
//! channels {2,4}) is searched against the InnerProduct + TPCHQ6 mix
//! with 1 worker and with all cores, minimum over `ITERS` runs. The two
//! frontiers must be element-for-element identical (the process exits
//! non-zero if they differ) — this is the determinism contract the
//! resumable driver rests on. The frontier itself is recorded so CI can
//! diff it against the smoke run's.

use plasticine::arch::{DseGrid, GridMix};
use plasticine::dse::{search, SearchConfig};
use plasticine::journal::Journal;
use plasticine::workloads::{all, Bench, Scale};
use plasticine_json::Json;
use std::time::Instant;

const WARMUP: u32 = 1;
const ITERS: u32 = 3;

fn pinned_grid() -> DseGrid {
    DseGrid {
        lanes: vec![8, 16],
        stages: vec![6],
        mixes: vec![GridMix::Checkerboard],
        scratchpad_kb: vec![128, 256],
        dram_channels: vec![2, 4],
    }
}

fn main() {
    let benches: Vec<Bench> = all(Scale(1))
        .into_iter()
        .filter(|b| ["InnerProduct", "TPCHQ6"].contains(&b.name.as_str()))
        .collect();
    assert_eq!(benches.len(), 2);
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());

    let time_at = |jobs: usize| {
        let cfg = SearchConfig {
            grid: pinned_grid(),
            jobs,
            ..SearchConfig::default()
        };
        let run = || {
            let mut journal = Journal::load(None).unwrap();
            search(&benches, &cfg, &mut journal).unwrap()
        };
        for _ in 0..WARMUP {
            run();
        }
        let mut best = f64::INFINITY;
        let mut last = None;
        for _ in 0..ITERS {
            let t0 = Instant::now();
            let r = run();
            best = best.min(t0.elapsed().as_secs_f64());
            last = Some(r);
        }
        (best, last.expect("ITERS >= 1"), cfg)
    };

    let (serial_s, serial, _) = time_at(1);
    let (parallel_s, parallel, cfg) = time_at(cores);
    let serial_json = serial.to_json(&benches, &cfg).pretty();
    let identical = serial_json == parallel.to_json(&benches, &cfg).pretty();
    let speedup = serial_s / parallel_s.max(1e-12);
    let (done, infeasible, failed, not_run) = serial.counts();
    println!(
        "dse search ({} points, {} benches, {} cores): serial {:.1} ms, parallel {:.1} ms \
         ({:.2}x)  reports {}",
        serial.points.len(),
        benches.len(),
        cores,
        serial_s * 1e3,
        parallel_s * 1e3,
        speedup,
        if identical { "identical" } else { "DIVERGED" },
    );
    println!(
        "{done} done, {infeasible} infeasible, {failed} failed, {not_run} not run; \
         frontier {} points",
        serial.frontier.len()
    );

    let frontier: Vec<Json> = serial
        .frontier
        .entries()
        .iter()
        .map(|e| {
            Json::Obj(vec![
                ("point".into(), Json::from(e.id.clone())),
                ("perf".into(), Json::from(e.obj.perf)),
                ("area_mm2".into(), Json::from(e.obj.area_mm2)),
                ("perf_per_w".into(), Json::from(e.obj.perf_per_w)),
            ])
        })
        .collect();
    let report = Json::Obj(vec![
        ("iters".into(), Json::from(ITERS)),
        ("cores".into(), Json::from(cores)),
        ("points".into(), Json::from(serial.points.len())),
        ("done".into(), Json::from(done)),
        ("infeasible".into(), Json::from(infeasible)),
        ("serial_s".into(), Json::from(serial_s)),
        ("parallel_s".into(), Json::from(parallel_s)),
        ("speedup".into(), Json::from(speedup)),
        ("reports_identical".into(), Json::from(identical)),
        ("frontier".into(), Json::Arr(frontier)),
    ]);
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_dse.json");
    match std::fs::write(path, report.pretty()) {
        Ok(()) => println!("report written to {path}"),
        Err(e) => {
            eprintln!("writing {path}: {e}");
            std::process::exit(1);
        }
    }
    if !identical {
        eprintln!("serial and parallel search reports diverged");
        std::process::exit(1);
    }
}
