//! Regenerates **Table 5** — the component-wise area breakdown of the
//! Plasticine chip — from the parameterized area model, next to the
//! paper's published values.
//!
//! ```sh
//! cargo bench -p plasticine-bench --bench table5
//! ```

use plasticine_arch::PlasticineParams;
use plasticine_models::AreaModel;

fn row(name: &str, ours: f64, paper: f64) {
    let delta = if paper > 0.0 {
        100.0 * (ours - paper) / paper
    } else {
        0.0
    };
    println!("{name:<28} {ours:>10.3} {paper:>10.3} {delta:>+8.1}%");
}

fn main() {
    let params = PlasticineParams::paper_final();
    let m = AreaModel::new();
    let chip = m.chip(&params);

    println!("Table 5: Plasticine area breakdown (mm², 28 nm)");
    println!(
        "{:<28} {:>10} {:>10} {:>9}",
        "Component", "model", "paper", "delta"
    );
    println!("{}", "-".repeat(60));
    println!("-- one PCU --");
    row("  FUs", chip.pcu.fus, 0.622);
    row("  Registers", chip.pcu.registers, 0.144);
    row("  FIFOs", chip.pcu.fifos, 0.082);
    row("  Control", chip.pcu.control, 0.001);
    row("  Total (single PCU)", chip.pcu.total(), 0.849);
    println!("-- one PMU --");
    row("  Scratchpad (256KB)", chip.pmu.scratchpad, 0.477);
    row("  FIFOs", chip.pmu.fifos, 0.024);
    row("  Registers", chip.pmu.registers, 0.023);
    row("  FUs", chip.pmu.fus, 0.007);
    row("  Control", chip.pmu.control, 0.001);
    row("  Total (single PMU)", chip.pmu.total(), 0.532);
    println!("-- chip --");
    row("Interconnect", chip.interconnect, 18.796);
    row("Memory controller", chip.memory_controller, 5.616);
    row("64 PCUs", chip.pcus_total, 64.0 * 0.849);
    row("64 PMUs", chip.pmus_total, 64.0 * 0.532);
    row("Plasticine total", chip.total, 112.796);
    println!();
    println!(
        "peak compute: {:.1} TFLOPS (paper: 12.3); scratchpad: {} MB (paper: 16)",
        params.peak_flops() / 1e12,
        params.total_scratchpad_bytes() >> 20
    );
    assert!((chip.total - 112.796).abs() < 0.5, "area model drifted");
}
