//! Compile-pipeline benchmark: cold-vs-warm compile cache, and the
//! serial-vs-parallel Figure 7 sweep.
//!
//! ```sh
//! cargo bench -p plasticine-bench --bench compile
//! ```
//!
//! Two measurements, written to `BENCH_compile.json` at the workspace
//! root:
//!
//! * **cache** — every Table 4 workload is compiled through one shared
//!   [`CompileCache`] twice. The first (cold) pass runs the full pass
//!   pipeline; the second (warm) pass is a hash lookup. Per-workload and
//!   total wall times are recorded, plus the cold/warm ratio.
//! * **sweep** — the six Figure 7 panels over the Table 6 benchmarks,
//!   timed with the serial per-app loop ([`sweep_serial`]) and with the
//!   thread-per-app parallel driver ([`sweep`]), minimum over `ITERS`
//!   runs. The two must produce element-for-element identical rows (the
//!   process exits non-zero if they differ); `cores` is recorded because
//!   the parallel speedup is bounded by the machine's parallelism — on a
//!   single-core runner the two are expected to tie.

use plasticine_arch::PlasticineParams;
use plasticine_compiler::{build_virtual, Analysis, CompileCache, CompileOptions};
use plasticine_json::Json;
use plasticine_models::dse::{sweep, sweep_serial, PcuParamKind, SweepRow, SweepSpec};
use plasticine_models::AreaModel;
use plasticine_workloads::{all, Scale};
use std::time::Instant;

const WARMUP: u32 = 1;
const ITERS: u32 = 3;

/// The six Figure 7 panels (target, values, fixed), as in the `fig7`
/// bench.
fn panels() -> Vec<SweepSpec> {
    use PcuParamKind::*;
    vec![
        SweepSpec {
            target: Stages,
            values: (4..=16).collect(),
            fixed: vec![],
        },
        SweepSpec {
            target: Regs,
            values: (2..=16).collect(),
            fixed: vec![(Stages, 6)],
        },
        SweepSpec {
            target: ScalarIns,
            values: (1..=10).collect(),
            fixed: vec![(Stages, 6), (Regs, 6)],
        },
        SweepSpec {
            target: ScalarOuts,
            values: (1..=6).collect(),
            fixed: vec![(Stages, 6), (Regs, 6), (ScalarIns, 6)],
        },
        SweepSpec {
            target: VectorIns,
            values: (2..=10).collect(),
            fixed: vec![(Stages, 6), (Regs, 6)],
        },
        SweepSpec {
            target: VectorOuts,
            values: (1..=6).collect(),
            fixed: vec![(Stages, 6), (Regs, 6), (VectorIns, 3)],
        },
    ]
}

/// A sweep driver: [`sweep_serial`] or the parallel [`sweep`].
type SweepFn =
    fn(&[(String, plasticine_compiler::VirtualDesign)], &SweepSpec, &AreaModel) -> Vec<SweepRow>;

fn rows_equal(a: &[SweepRow], b: &[SweepRow]) -> bool {
    a.len() == b.len()
        && a.iter().zip(b).all(|(x, y)| {
            x.app == y.app
                && x.points.len() == y.points.len()
                && x.points
                    .iter()
                    .zip(&y.points)
                    .all(|(p, q)| p.value == q.value && p.overhead == q.overhead)
        })
}

fn main() {
    let params = PlasticineParams::paper_final();
    let opts = CompileOptions::new();

    // ---- cold vs warm compile cache ----
    let cache = CompileCache::new();
    let benches = all(Scale(1));
    let mut cache_rows = Vec::new();
    let mut cold_total = 0.0;
    let mut warm_total = 0.0;
    println!("{:<14} {:>12} {:>12}", "bench", "cold", "warm");
    for bench in &benches {
        let t0 = Instant::now();
        cache
            .compile_degraded(&bench.program, &params, &opts)
            .unwrap_or_else(|e| panic!("{}: {e}", bench.name));
        let cold = t0.elapsed().as_secs_f64();
        let t0 = Instant::now();
        cache
            .compile_degraded(&bench.program, &params, &opts)
            .unwrap_or_else(|e| panic!("{}: {e}", bench.name));
        let warm = t0.elapsed().as_secs_f64();
        cold_total += cold;
        warm_total += warm;
        println!(
            "{:<14} {:>9.3} ms {:>9.3} ms",
            bench.name,
            cold * 1e3,
            warm * 1e3
        );
        cache_rows.push(Json::Obj(vec![
            ("bench".into(), Json::from(bench.name.clone())),
            ("cold_s".into(), Json::from(cold)),
            ("warm_s".into(), Json::from(warm)),
        ]));
    }
    assert_eq!(cache.hits(), benches.len(), "second pass is all hits");
    assert_eq!(cache.misses(), benches.len(), "first pass is all misses");
    let cache_speedup = cold_total / warm_total.max(1e-12);
    println!(
        "{:<14} {:>9.3} ms {:>9.3} ms  ({:.0}x)\n",
        "total",
        cold_total * 1e3,
        warm_total * 1e3,
        cache_speedup
    );

    // ---- serial vs parallel Figure 7 sweep ----
    let apps: Vec<_> = all(Scale::tiny())
        .into_iter()
        .filter(|b| b.name != "CNN")
        .map(|b| {
            let an = Analysis::run(&b.program);
            let v = build_virtual(&b.program, &an);
            (b.name, v)
        })
        .collect();
    let model = AreaModel::new();
    let specs = panels();
    let run_all = |f: SweepFn| {
        specs
            .iter()
            .map(|s| f(&apps, s, &model))
            .collect::<Vec<_>>()
    };
    let time_all = |f: SweepFn| {
        for _ in 0..WARMUP {
            run_all(f);
        }
        let mut best = f64::INFINITY;
        let mut last = None;
        for _ in 0..ITERS {
            let t0 = Instant::now();
            let r = run_all(f);
            best = best.min(t0.elapsed().as_secs_f64());
            last = Some(r);
        }
        (best, last.expect("ITERS >= 1"))
    };
    let (serial_s, serial_rows) = time_all(sweep_serial);
    let (parallel_s, parallel_rows) = time_all(sweep);
    let identical = serial_rows
        .iter()
        .zip(&parallel_rows)
        .all(|(a, b)| rows_equal(a, b));
    let sweep_speedup = serial_s / parallel_s.max(1e-12);
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!(
        "figure 7 sweep ({} panels, {} apps, {} cores): serial {:.1} ms, parallel {:.1} ms ({:.2}x)  rows {}",
        specs.len(),
        apps.len(),
        cores,
        serial_s * 1e3,
        parallel_s * 1e3,
        sweep_speedup,
        if identical { "identical" } else { "DIVERGED" },
    );

    let report = Json::Obj(vec![
        ("iters".into(), Json::from(ITERS)),
        ("cores".into(), Json::from(cores)),
        (
            "cache".into(),
            Json::Obj(vec![
                ("cold_total_s".into(), Json::from(cold_total)),
                ("warm_total_s".into(), Json::from(warm_total)),
                ("speedup".into(), Json::from(cache_speedup)),
                ("workloads".into(), Json::Arr(cache_rows)),
            ]),
        ),
        (
            "sweep".into(),
            Json::Obj(vec![
                ("panels".into(), Json::from(specs.len())),
                ("apps".into(), Json::from(apps.len())),
                ("serial_s".into(), Json::from(serial_s)),
                ("parallel_s".into(), Json::from(parallel_s)),
                ("speedup".into(), Json::from(sweep_speedup)),
                ("rows_identical".into(), Json::from(identical)),
            ]),
        ),
    ]);
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_compile.json");
    match std::fs::write(path, report.pretty()) {
        Ok(()) => println!("report written to {path}"),
        Err(e) => {
            eprintln!("writing {path}: {e}");
            std::process::exit(1);
        }
    }
    if !identical {
        eprintln!("serial and parallel sweeps diverged");
        std::process::exit(1);
    }
}
