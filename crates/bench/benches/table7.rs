//! Regenerates **Table 7** — utilization, power, performance, and
//! performance-per-Watt of Plasticine versus the Stratix V FPGA baseline —
//! by compiling and cycle-accurately simulating every Table 4 benchmark
//! and pricing the same workloads on the analytic FPGA model.
//!
//! Absolute numbers differ from the paper (our substrate is a simulator
//! and an analytic board model at scaled-down sizes); the comparison
//! target is the *shape*: which benchmarks win big, which are
//! bandwidth-parity, where the sparse apps land.
//!
//! ```sh
//! cargo bench -p plasticine-bench --bench table7
//! ```

use plasticine_arch::PlasticineParams;
use plasticine_compiler::compile;
use plasticine_fpga::FpgaModel;
use plasticine_models::PowerModel;
use plasticine_ppir::Machine;
use plasticine_sim::{simulate, SimOptions, UnitKind};
use plasticine_workloads::{all, Scale};

/// Paper Table 7: (speedup, perf/W) per benchmark.
const PAPER: &[(&str, f64, f64)] = &[
    ("InnerProduct", 1.4, 1.6),
    ("OuterProduct", 6.7, 6.1),
    ("BlackScholes", 5.1, 5.8),
    ("TPCHQ6", 1.4, 1.5),
    ("GEMM", 33.0, 24.4),
    ("GDA", 40.0, 25.9),
    ("LogReg", 11.4, 9.2),
    ("SGD", 6.7, 15.9),
    ("Kmeans", 6.1, 11.3),
    ("CNN", 95.1, 76.9),
    ("SMDV", 8.3, 9.3),
    ("PageRank", 14.2, 18.2),
    ("BFS", 7.3, 11.4),
];

fn main() {
    let params = PlasticineParams::paper_final();
    let power_model = PowerModel::new();
    let fpga = FpgaModel::new();

    println!("Table 7: Plasticine vs FPGA (measured at Scale::small; paper values right)");
    println!("(busy/stall columns: PCU cycle attribution — busy / ctrl-stall / mem-stall)");
    println!(
        "{:<14} {:>9} {:>6} {:>6} {:>6} {:>6} {:>7} {:>6} {:>6} {:>6} {:>7} | {:>8} {:>8} | {:>7} {:>7}",
        "Benchmark", "Cycles", "PCU%", "PMU%", "AG%", "FU%", "Reg%", "busy%", "ctrl%", "mem%",
        "Watts", "Speedup", "Perf/W", "paperS", "paperPW"
    );
    println!("{}", "-".repeat(140));
    let mut ratios = Vec::new();
    for bench in all(Scale::small()) {
        let out =
            compile(&bench.program, &params).unwrap_or_else(|e| panic!("{}: {e}", bench.name));
        let mut m = Machine::new(&bench.program);
        bench.load(&mut m);
        let r = simulate(&bench.program, &out, &mut m, &SimOptions::default())
            .unwrap_or_else(|e| panic!("{}: {e}", bench.name));
        bench
            .verify(&m)
            .unwrap_or_else(|e| panic!("verification: {e}"));

        let (pcu_u, pmu_u, ag_u) = out.config.utilization();
        let fu = r.fu_utilization(&out.config);
        let reg = r.reg_utilization(&out.config);
        let p = power_model.estimate(&r, &out.config);
        let fe = fpga.estimate(&bench.fpga);
        let speedup = fe.seconds / r.seconds(params.clock_ghz);
        let perf_w = speedup * fe.power_w / p.total_w;
        let (_, ps, ppw) = PAPER
            .iter()
            .find(|(n, _, _)| *n == bench.name)
            .copied()
            .unwrap_or(("", f64::NAN, f64::NAN));
        let pcu_cycles = r.units.aggregate(UnitKind::Pcu);
        let pcu_total = pcu_cycles.total().max(1) as f64;
        println!(
            "{:<14} {:>9} {:>5.1}% {:>5.1}% {:>5.1}% {:>5.1}% {:>6.1}% {:>5.1}% {:>5.1}% {:>5.1}% {:>7.1} | {:>7.1}x {:>7.1}x | {:>6.1}x {:>6.1}x",
            bench.name,
            r.cycles,
            100.0 * pcu_u,
            100.0 * pmu_u,
            100.0 * ag_u,
            100.0 * fu,
            100.0 * reg,
            100.0 * pcu_cycles.busy as f64 / pcu_total,
            100.0 * pcu_cycles.ctrl_stall as f64 / pcu_total,
            100.0 * pcu_cycles.mem_stall as f64 / pcu_total,
            p.total_w,
            speedup,
            perf_w,
            ps,
            ppw,
        );
        ratios.push((bench.name.clone(), speedup, ps));
    }
    println!();

    // Shape check: rank correlation between our speedups and the paper's.
    let mut ours: Vec<_> = ratios.iter().map(|(_, s, _)| *s).collect();
    let mut papers: Vec<_> = ratios.iter().map(|(_, _, p)| *p).collect();
    let rank = |v: &mut Vec<f64>| -> Vec<usize> {
        let mut idx: Vec<usize> = (0..v.len()).collect();
        idx.sort_by(|&a, &b| v[a].partial_cmp(&v[b]).unwrap());
        let mut r = vec![0usize; v.len()];
        for (pos, &i) in idx.iter().enumerate() {
            r[i] = pos;
        }
        r
    };
    let ra = rank(&mut ours);
    let rb = rank(&mut papers);
    let n = ra.len() as f64;
    let d2: f64 = ra
        .iter()
        .zip(&rb)
        .map(|(&a, &b)| ((a as f64) - (b as f64)).powi(2))
        .sum();
    let spearman = 1.0 - 6.0 * d2 / (n * (n * n - 1.0));
    println!("speedup rank correlation vs paper (Spearman): {spearman:.2}");
}
