//! Event-driven vs per-cycle simulation kernel: wall-clock comparison on
//! the memory-bound workloads (SMDV, BFS, PageRank).
//!
//! ```sh
//! cargo bench -p plasticine-bench --bench simkernel
//! ```
//!
//! Each workload runs under two DRAM configurations:
//!
//! * `balanced` — the paper's 4×DDR3-1600 with the fabric at 1 GHz. The
//!   fabric is active most cycles, so quiescent-cycle skipping finds
//!   little to skip and the two kernels run within ~1.3× of each other.
//! * `remote` — the same DDR3 timing seen from a fabric clocked 96×
//!   faster (`core_ghz = 96`), i.e. every memory access costs thousands
//!   of fabric cycles, as with far/disaggregated memory. The fabric
//!   spends most cycles waiting, and the event kernel skips them.
//!
//! For each (workload, config) pair the harness compiles once, then
//! times `simulate` alone (machine construction and data loading
//! excluded, minimum over `ITERS` runs) in both [`StepMode`]s,
//! cross-checks that the `stats_json` snapshots are byte-identical, and
//! writes `BENCH_sim.json` at the workspace root:
//!
//! ```json
//! {
//!   "scale": 16,
//!   "iters": 3,
//!   "workloads": [
//!     { "bench": "BFS", "config": "remote", "core_ghz": 96.0,
//!       "cycles": 869127, "cycle_wall_s": 0.18, "event_wall_s": 0.023,
//!       "speedup": 8.1, "stats_identical": true }
//!   ]
//! }
//! ```
//!
//! The process exits non-zero if any pair's snapshots differ between
//! modes, so CI can use this binary as a fast golden-equivalence smoke
//! test.

use plasticine_arch::PlasticineParams;
use plasticine_compiler::compile;
use plasticine_dram::DramConfig;
use plasticine_json::Json;
use plasticine_ppir::Machine;
use plasticine_sim::{simulate, SimOptions, SimResult, StepMode};
use plasticine_workloads::{all, Bench, Scale};
use std::time::Instant;

const SCALE: usize = 16;
const WARMUP: u32 = 1;
const ITERS: u32 = 3;
const WORKLOADS: [&str; 3] = ["SMDV", "BFS", "PageRank"];
/// (name, fabric-to-memory clock ratio); see the module doc.
const CONFIGS: [(&str, f64); 2] = [("balanced", 1.0), ("remote", 96.0)];

/// Minimum wall time for `simulate` over `ITERS` timed runs, plus the
/// result of the last run (for the cross-check and the cycle count).
fn time_simulate(
    bench: &Bench,
    out: &plasticine_compiler::CompileOutput,
    core_ghz: f64,
    step: StepMode,
) -> (f64, SimResult) {
    let opts = SimOptions {
        dram: DramConfig {
            core_ghz,
            ..DramConfig::default()
        },
        step,
        ..SimOptions::default()
    };
    let run = || {
        let mut m = Machine::new(&bench.program);
        bench.load(&mut m);
        let t0 = Instant::now();
        let r = simulate(&bench.program, out, &mut m, &opts)
            .unwrap_or_else(|e| panic!("{} ({step:?}): {e}", bench.name));
        (t0.elapsed().as_secs_f64(), r)
    };
    for _ in 0..WARMUP {
        run();
    }
    let mut best = f64::INFINITY;
    let mut last = None;
    for _ in 0..ITERS {
        let (s, r) = run();
        best = best.min(s);
        last = Some(r);
    }
    (best, last.expect("ITERS >= 1"))
}

fn main() {
    let params = PlasticineParams::paper_final();
    let benches = all(Scale(SCALE));
    let mut rows = Vec::new();
    let mut diverged = false;
    println!(
        "{:<12} {:<10} {:>10} {:>12} {:>12} {:>9}  stats",
        "bench", "config", "cycles", "cycle", "event", "speedup"
    );
    for name in WORKLOADS {
        let bench = benches
            .iter()
            .find(|b| b.name.eq_ignore_ascii_case(name))
            .unwrap_or_else(|| panic!("no workload named {name}"));
        let out = compile(&bench.program, &params).unwrap_or_else(|e| panic!("{name}: {e}"));
        for (config, core_ghz) in CONFIGS {
            let (cycle_s, cycle_r) = time_simulate(bench, &out, core_ghz, StepMode::Cycle);
            let (event_s, event_r) = time_simulate(bench, &out, core_ghz, StepMode::Event);
            let identical = cycle_r.stats_json().pretty() == event_r.stats_json().pretty();
            diverged |= !identical;
            let speedup = cycle_s / event_s;
            println!(
                "{:<12} {:<10} {:>10} {:>10.4} s {:>10.4} s {:>8.1}x  {}",
                bench.name,
                config,
                event_r.cycles,
                cycle_s,
                event_s,
                speedup,
                if identical { "identical" } else { "DIVERGED" },
            );
            rows.push(Json::Obj(vec![
                ("bench".into(), Json::from(bench.name.clone())),
                ("config".into(), Json::from(config)),
                ("core_ghz".into(), Json::from(core_ghz)),
                ("cycles".into(), Json::from(event_r.cycles)),
                ("cycle_wall_s".into(), Json::from(cycle_s)),
                ("event_wall_s".into(), Json::from(event_s)),
                ("speedup".into(), Json::from(speedup)),
                ("stats_identical".into(), Json::from(identical)),
            ]));
        }
    }
    let report = Json::Obj(vec![
        ("scale".into(), Json::from(SCALE)),
        ("iters".into(), Json::from(ITERS)),
        ("workloads".into(), Json::Arr(rows)),
    ]);
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_sim.json");
    match std::fs::write(path, report.pretty()) {
        Ok(()) => println!("report written to {path}"),
        Err(e) => {
            eprintln!("writing {path}: {e}");
            std::process::exit(1);
        }
    }
    if diverged {
        eprintln!("step modes diverged — see the table above");
        std::process::exit(1);
    }
}
