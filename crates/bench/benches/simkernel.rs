//! Event-driven vs per-cycle simulation kernel: wall-clock comparison on
//! the memory-bound workloads (SMDV, BFS, PageRank).
//!
//! ```sh
//! cargo bench -p plasticine-bench --bench simkernel
//! ```
//!
//! Each workload runs under two DRAM configurations:
//!
//! * `balanced` — the paper's 4×DDR3-1600 with the fabric at 1 GHz. The
//!   fabric is active most cycles, so quiescent-cycle skipping finds
//!   little to skip and the two kernels run within ~1.3× of each other.
//! * `remote` — the same DDR3 timing seen from a fabric clocked 96×
//!   faster (`core_ghz = 96`), i.e. every memory access costs thousands
//!   of fabric cycles, as with far/disaggregated memory. The fabric
//!   spends most cycles waiting, and the event kernel skips them.
//!
//! The event kernel is additionally timed at every thread count in
//! [`THREADS`]: quiescent spans are partitioned into per-DRAM-channel
//! shards and run on a worker pool (DESIGN.md §12), so extra threads may
//! only change wall-clock time, never a stats byte. Each multi-threaded
//! cell also records the engine's *critical-path speedup* — total chain
//! events over the busiest lane's share, the deterministic load-balance
//! bound that wall-clock speedup approaches on a host with enough cores.
//! (Measured `wall_s` is only meaningful relative to `event_wall_s` when
//! the host actually has that many cores; the report records the host's
//! core count.)
//!
//! For each (workload, config) pair the harness compiles once, then
//! times `simulate` alone (machine construction and data loading
//! excluded, minimum over `ITERS` runs) in both [`StepMode`]s and at
//! each thread count, cross-checks that every `stats_json` snapshot is
//! byte-identical, and writes `BENCH_sim.json` at the workspace root.
//! The reported `speedup` is the median over back-to-back (cycle, event)
//! run pairs — robust against host-load drift between sampling phases
//! (see [`paired_speedup`]); the `*_wall_s` fields stay min-of-`ITERS`.
//!
//! ```json
//! {
//!   "scale": 16,
//!   "iters": 3,
//!   "workloads": [
//!     { "bench": "BFS", "config": "remote", "core_ghz": 96.0,
//!       "cycles": 869127, "cycle_wall_s": 0.18, "event_wall_s": 0.023,
//!       "speedup": 8.1, "stats_identical": true,
//!       "threads": [
//!         { "threads": 2, "wall_s": 0.015, "speedup_vs_serial_event": 1.5,
//!           "critical_path_speedup": 1.9 }
//!       ] }
//!   ]
//! }
//! ```
//!
//! The process exits non-zero if any pair's snapshots differ between
//! modes or thread counts, **or** if any cell's event-vs-cycle speedup
//! drops below 1.0× — the event kernel must never lose to the per-cycle
//! kernel — so CI can use this binary as a fast regression smoke test.

use plasticine_arch::PlasticineParams;
use plasticine_compiler::compile;
use plasticine_dram::DramConfig;
use plasticine_json::Json;
use plasticine_ppir::Machine;
use plasticine_sim::{simulate, SimOptions, SimResult, StepMode};
use plasticine_workloads::{all, Bench, Scale};
use std::time::Instant;

const SCALE: usize = 16;
const WARMUP: u32 = 1;
const ITERS: u32 = 3;
const WORKLOADS: [&str; 3] = ["SMDV", "BFS", "PageRank"];
/// (name, fabric-to-memory clock ratio); see the module doc.
const CONFIGS: [(&str, f64); 2] = [("balanced", 1.0), ("remote", 96.0)];
/// Worker-thread counts for the parallel event kernel (1 = serial).
const THREADS: [usize; 3] = [1, 2, 4];
/// Back-to-back (cycle, event) run pairs per speedup verdict, and the
/// escalation ceiling for borderline cells; see [`paired_speedup`].
const PAIRS: usize = 5;
const MAX_PAIRS: usize = 15;

/// Minimum wall time for `simulate` over `ITERS` timed runs, plus the
/// result of the last run (for the cross-check and the cycle count).
fn time_simulate(
    bench: &Bench,
    out: &plasticine_compiler::CompileOutput,
    core_ghz: f64,
    step: StepMode,
    threads: usize,
) -> (f64, SimResult) {
    let opts = SimOptions {
        dram: DramConfig {
            core_ghz,
            ..DramConfig::default()
        },
        step,
        threads,
        ..SimOptions::default()
    };
    let run = || {
        let mut m = Machine::new(&bench.program);
        bench.load(&mut m);
        let t0 = Instant::now();
        let r = simulate(&bench.program, out, &mut m, &opts)
            .unwrap_or_else(|e| panic!("{} ({step:?}, {threads} threads): {e}", bench.name));
        (t0.elapsed().as_secs_f64(), r)
    };
    for _ in 0..WARMUP {
        run();
    }
    let mut best = f64::INFINITY;
    let mut last = None;
    for _ in 0..ITERS {
        let (s, r) = run();
        best = best.min(s);
        last = Some(r);
    }
    (best, last.expect("ITERS >= 1"))
}

/// Event-vs-cycle speedup for the regression gate, measured as the median
/// of per-pair run-time ratios with the two kernels alternating
/// back-to-back. In the balanced config the true ratio sits only a few
/// percent above 1.0, so comparing a cycle minimum against an event
/// minimum taken seconds apart is at the mercy of host-load drift between
/// the two sampling phases; adjacent paired runs see the same host state,
/// and the median discards the pairs an interruption does split. Escalates
/// the pair count when the verdict is borderline — a real regression stays
/// below 1.0 however many pairs land.
fn paired_speedup(bench: &Bench, out: &plasticine_compiler::CompileOutput, core_ghz: f64) -> f64 {
    let one = |step| {
        let mut m = Machine::new(&bench.program);
        bench.load(&mut m);
        let opts = SimOptions {
            dram: DramConfig {
                core_ghz,
                ..DramConfig::default()
            },
            step,
            ..SimOptions::default()
        };
        let t0 = Instant::now();
        simulate(&bench.program, out, &mut m, &opts)
            .unwrap_or_else(|e| panic!("{} ({step:?}): {e}", bench.name));
        t0.elapsed().as_secs_f64()
    };
    let median = |ratios: &mut Vec<f64>| {
        ratios.sort_by(|a, b| a.total_cmp(b));
        ratios[ratios.len() / 2]
    };
    let mut ratios = Vec::new();
    loop {
        for _ in 0..PAIRS {
            ratios.push(one(StepMode::Cycle) / one(StepMode::Event));
        }
        let m = median(&mut ratios);
        if m >= 1.0 || ratios.len() >= MAX_PAIRS {
            return m;
        }
    }
}

fn main() {
    let params = PlasticineParams::paper_final();
    let benches = all(Scale(SCALE));
    let mut rows = Vec::new();
    let mut diverged = false;
    let mut regressed = false;
    println!(
        "{:<12} {:<10} {:>10} {:>12} {:>12} {:>9} {:>9} {:>9}  stats",
        "bench", "config", "cycles", "cycle", "event", "speedup", "cpath x2", "cpath x4"
    );
    for name in WORKLOADS {
        let bench = benches
            .iter()
            .find(|b| b.name.eq_ignore_ascii_case(name))
            .unwrap_or_else(|| panic!("no workload named {name}"));
        let out = compile(&bench.program, &params).unwrap_or_else(|e| panic!("{name}: {e}"));
        for (config, core_ghz) in CONFIGS {
            let (cycle_s, cycle_r) = time_simulate(bench, &out, core_ghz, StepMode::Cycle, 1);
            let golden = cycle_r.stats_json().pretty();
            let mut identical = true;
            let mut event = Vec::new();
            for threads in THREADS {
                let (s, r) = time_simulate(bench, &out, core_ghz, StepMode::Event, threads);
                identical &= r.stats_json().pretty() == golden;
                event.push((threads, s, r.span_work));
            }
            diverged |= !identical;
            let serial_event_s = event[0].1;
            let speedup = paired_speedup(bench, &out, core_ghz);
            // The event kernel must never lose to the cycle kernel.
            regressed |= speedup < 1.0;
            let par = |n: usize| {
                event
                    .iter()
                    .find(|&&(t, _, _)| t == n)
                    .and_then(|&(_, _, w)| w.ideal_speedup())
            };
            println!(
                "{:<12} {:<10} {:>10} {:>10.4} s {:>10.4} s {:>8.1}x {:>8.2}x {:>8.2}x  {}",
                bench.name,
                config,
                cycle_r.cycles,
                cycle_s,
                serial_event_s,
                speedup,
                par(2).unwrap_or(f64::NAN),
                par(4).unwrap_or(f64::NAN),
                if identical { "identical" } else { "DIVERGED" },
            );
            let threads_axis: Vec<Json> = event
                .iter()
                .skip(1)
                .map(|&(threads, s, work)| {
                    Json::Obj(vec![
                        ("threads".into(), Json::from(threads)),
                        ("wall_s".into(), Json::from(s)),
                        (
                            "speedup_vs_serial_event".into(),
                            Json::from(serial_event_s / s),
                        ),
                        (
                            "critical_path_speedup".into(),
                            Json::from(work.ideal_speedup().unwrap_or(1.0)),
                        ),
                    ])
                })
                .collect();
            rows.push(Json::Obj(vec![
                ("bench".into(), Json::from(bench.name.clone())),
                ("config".into(), Json::from(config)),
                ("core_ghz".into(), Json::from(core_ghz)),
                ("cycles".into(), Json::from(cycle_r.cycles)),
                ("cycle_wall_s".into(), Json::from(cycle_s)),
                ("event_wall_s".into(), Json::from(serial_event_s)),
                ("speedup".into(), Json::from(speedup)),
                ("stats_identical".into(), Json::from(identical)),
                ("threads".into(), Json::Arr(threads_axis)),
            ]));
        }
    }
    let report = Json::Obj(vec![
        ("scale".into(), Json::from(SCALE)),
        ("iters".into(), Json::from(ITERS)),
        (
            "host_cores".into(),
            Json::from(std::thread::available_parallelism().map_or(1, |n| n.get())),
        ),
        ("workloads".into(), Json::Arr(rows)),
    ]);
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_sim.json");
    match std::fs::write(path, report.pretty()) {
        Ok(()) => println!("report written to {path}"),
        Err(e) => {
            eprintln!("writing {path}: {e}");
            std::process::exit(1);
        }
    }
    if diverged {
        eprintln!("step modes diverged — see the table above");
        std::process::exit(1);
    }
    if regressed {
        eprintln!("event kernel slower than cycle kernel (speedup < 1.0) — see the table above");
        std::process::exit(1);
    }
}
