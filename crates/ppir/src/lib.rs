//! # plasticine-ppir — parallel-pattern intermediate representation
//!
//! The programming model of *Plasticine: A Reconfigurable Architecture for
//! Parallel Patterns* (ISCA 2017): data-parallel programs expressed as
//! hierarchies of `Map`, `FlatMap`, `Fold`, and `HashReduce` patterns over
//! explicit on-chip and off-chip memories, in the style of the Delite
//! Hardware Definition Language (DHDL).
//!
//! This crate provides:
//!
//! * the IR itself — [`Program`], [`Controller`], [`Func`], memory objects;
//! * a builder API ([`ProgramBuilder`]) with full structural validation;
//! * a host reference interpreter ([`Machine`]) whose final memory state is
//!   the golden reference for the cycle-accurate simulator.
//!
//! # Examples
//!
//! Summing `0..10` with a `Fold`:
//!
//! ```
//! use plasticine_ppir::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut b = ProgramBuilder::new("sum");
//! let acc = b.reg("acc", DType::I32);
//! let i = b.counter(0, 10, 1, 1);
//! let mut map = Func::new("identity");
//! let iv = map.index(i.index);
//! map.set_outputs(vec![iv]);
//! let map = b.func(map);
//! let fold = b.inner("sum", vec![i], InnerOp::Fold(FoldPipe {
//!     map,
//!     combine: vec![BinOp::Add],
//!     init: vec![FoldInit::Const(Elem::I32(0))],
//!     out_regs: vec![Some(acc)],
//!     writes: vec![],
//! }));
//! let root = b.outer("root", Schedule::Sequential, vec![], vec![fold]);
//! let program = b.finish(root)?;
//!
//! let mut m = Machine::new(&program);
//! m.run()?;
//! assert_eq!(m.reg(acc), Elem::I32(45));
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod ctrl;
mod expr;
mod interp;
mod mem;
mod program;
mod trace;
mod types;

pub use ctrl::{
    CBound, Controller, Counter, CtrlBody, CtrlId, FilterPipe, FoldInit, FoldPipe, GatherOp,
    InnerOp, MapPipe, PipeWrite, RegWrite, ScatterOp, Schedule, TileTransfer, WriteMode,
};
pub use expr::{
    eval_binop, eval_unop, BinOp, DramId, Expr, ExprId, Func, FuncId, IndexId, ParamId, RegId,
    SramId, UnaryOp,
};
pub use interp::{InterpStats, Machine, RunError};
pub use mem::{BankingMode, DramBuf, Param, Reg, Sram};
pub use program::{stable_hash_of, validate, Program, ProgramBuilder, ValidateError};
pub use trace::{DramRange, LeafWork, NullSink, TraceNode, TraceRecorder, TraceSink};
pub use types::{DType, Elem, TypeError};
