//! Dataflow expression graphs — the bodies of parallel patterns.
//!
//! A [`Func`] is a small arena of [`Expr`] nodes with one or more designated
//! outputs. Funcs appear as pattern bodies (`f`, `g` in Table 1 of the
//! paper), combine functions (`r`), key/value functions (`k`, `v`), and
//! address-calculation datapaths inside Pattern Memory Units.
//!
//! Expressions are pure: all memory writes happen at pattern boundaries
//! (see [`crate::ctrl`]). Memory *reads* are permitted inside a Func via
//! [`ExprKind::Load`], mirroring how a PCU consumes vector operands
//! streamed out of PMUs.

use crate::types::{Elem, TypeError};
use std::fmt;

/// Identifier of an expression node within one [`Func`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ExprId(pub u32);

/// Identifier of a loop index produced by a counter somewhere in the
/// controller hierarchy. Allocated by
/// [`ProgramBuilder`](crate::program::ProgramBuilder).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct IndexId(pub u32);

/// Identifier of a runtime scalar parameter of the program.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ParamId(pub u32);

/// Identifier of a scalar register (written by `Fold`, readable anywhere).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RegId(pub u32);

/// Identifier of an on-chip scratchpad memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SramId(pub u32);

/// Identifier of an off-chip DRAM buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DramId(pub u32);

/// Identifier of a [`Func`] within a [`Program`](crate::program::Program).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FuncId(pub u32);

/// Binary word-level operations supported by Plasticine functional units.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// Addition (wrapping for integers).
    Add,
    /// Subtraction (wrapping for integers).
    Sub,
    /// Multiplication (wrapping for integers).
    Mul,
    /// Division. Integer division by zero yields 0 (hardware-defined).
    Div,
    /// Remainder. Integer remainder by zero yields 0.
    Rem,
    /// Minimum.
    Min,
    /// Maximum.
    Max,
    /// Bitwise AND (integers only).
    And,
    /// Bitwise OR (integers only).
    Or,
    /// Bitwise XOR (integers only).
    Xor,
    /// Logical shift left (integers only).
    Shl,
    /// Arithmetic shift right (integers only).
    Shr,
    /// Less-than comparison, produces `I32` 0/1.
    Lt,
    /// Less-or-equal comparison, produces `I32` 0/1.
    Le,
    /// Greater-than comparison, produces `I32` 0/1.
    Gt,
    /// Greater-or-equal comparison, produces `I32` 0/1.
    Ge,
    /// Equality comparison, produces `I32` 0/1.
    Eq,
    /// Inequality comparison, produces `I32` 0/1.
    Ne,
}

impl BinOp {
    /// Whether this op produces an `I32` predicate regardless of input type.
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge | BinOp::Eq | BinOp::Ne
        )
    }

    /// Whether this op is only defined on integer words.
    pub fn is_integer_only(self) -> bool {
        matches!(
            self,
            BinOp::And | BinOp::Or | BinOp::Xor | BinOp::Shl | BinOp::Shr
        )
    }

    /// Whether this op is associative (and therefore legal as a pattern
    /// combine function that hardware may reassociate across lanes).
    ///
    /// Floating-point `Add`/`Mul` are treated as associative, matching the
    /// paper's use of FP summation in reduction trees.
    pub fn is_associative(self) -> bool {
        matches!(
            self,
            BinOp::Add | BinOp::Mul | BinOp::Min | BinOp::Max | BinOp::And | BinOp::Or | BinOp::Xor
        )
    }
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BinOp::Add => "add",
            BinOp::Sub => "sub",
            BinOp::Mul => "mul",
            BinOp::Div => "div",
            BinOp::Rem => "rem",
            BinOp::Min => "min",
            BinOp::Max => "max",
            BinOp::And => "and",
            BinOp::Or => "or",
            BinOp::Xor => "xor",
            BinOp::Shl => "shl",
            BinOp::Shr => "shr",
            BinOp::Lt => "lt",
            BinOp::Le => "le",
            BinOp::Gt => "gt",
            BinOp::Ge => "ge",
            BinOp::Eq => "eq",
            BinOp::Ne => "ne",
        };
        f.write_str(s)
    }
}

/// Unary word-level operations.
///
/// Transcendental ops (`Exp`, `Ln`, `Sqrt`, `Recip`) model the iterative
/// floating-point units present in the Plasticine FU (Black-Scholes in the
/// paper's benchmark suite requires them); the simulator charges them extra
/// energy but the same single-issue pipeline slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnaryOp {
    /// Arithmetic negation.
    Neg,
    /// Bitwise NOT (integers only).
    Not,
    /// Absolute value.
    Abs,
    /// Natural exponential (floats only).
    Exp,
    /// Natural logarithm (floats only).
    Ln,
    /// Square root (floats only).
    Sqrt,
    /// Reciprocal (floats only).
    Recip,
    /// Convert integer word to float.
    I2F,
    /// Convert float word to integer (truncating).
    F2I,
}

impl UnaryOp {
    /// Whether this op only accepts float inputs.
    pub fn is_float_only(self) -> bool {
        matches!(
            self,
            UnaryOp::Exp | UnaryOp::Ln | UnaryOp::Sqrt | UnaryOp::Recip | UnaryOp::F2I
        )
    }
}

impl fmt::Display for UnaryOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            UnaryOp::Neg => "neg",
            UnaryOp::Not => "not",
            UnaryOp::Abs => "abs",
            UnaryOp::Exp => "exp",
            UnaryOp::Ln => "ln",
            UnaryOp::Sqrt => "sqrt",
            UnaryOp::Recip => "recip",
            UnaryOp::I2F => "i2f",
            UnaryOp::F2I => "f2i",
        };
        f.write_str(s)
    }
}

/// One node in an expression graph.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A compile-time constant word.
    Const(Elem),
    /// The current value of a loop counter (always `I32`).
    Index(IndexId),
    /// A runtime scalar parameter.
    Param(ParamId),
    /// The current value of a scalar register.
    ReadReg(RegId),
    /// A formal argument of the function (combine functions take args 0 and 1).
    Arg(u8),
    /// A read from scratchpad memory at a (possibly multi-dimensional) address.
    Load {
        /// The scratchpad being read.
        mem: SramId,
        /// One coordinate expression per scratchpad dimension.
        addr: Vec<ExprId>,
    },
    /// A unary operation.
    Unary(UnaryOp, ExprId),
    /// A binary operation.
    Binary(BinOp, ExprId, ExprId),
    /// Ternary select: if the first operand is truthy, the second, else the third.
    Mux(ExprId, ExprId, ExprId),
}

/// An expression graph with designated outputs.
///
/// Nodes are stored in a flat arena; an [`ExprId`] may only reference nodes
/// with a smaller id, so every `Func` is a DAG in topological order by
/// construction.
///
/// # Examples
///
/// ```
/// use plasticine_ppir::{Func, BinOp, Elem, IndexId};
/// let mut f = Func::new("double");
/// let i = f.index(IndexId(0));
/// let two = f.konst(Elem::I32(2));
/// let d = f.binary(BinOp::Mul, i, two);
/// f.set_outputs(vec![d]);
/// assert_eq!(f.num_ops(), 1);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Func {
    name: String,
    nodes: Vec<Expr>,
    outputs: Vec<ExprId>,
}

impl Func {
    /// Creates an empty function with a diagnostic name.
    pub fn new(name: impl Into<String>) -> Func {
        Func {
            name: name.into(),
            nodes: Vec::new(),
            outputs: Vec::new(),
        }
    }

    /// The diagnostic name of this function.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// All nodes in topological order.
    pub fn nodes(&self) -> &[Expr] {
        &self.nodes
    }

    /// The designated output nodes.
    pub fn outputs(&self) -> &[ExprId] {
        &self.outputs
    }

    /// Number of nodes that map to ALU operations (excludes constants,
    /// indices, params, register reads, and args, which map to operand
    /// sources rather than pipeline stages).
    pub fn num_ops(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| {
                matches!(
                    n,
                    Expr::Unary(..) | Expr::Binary(..) | Expr::Mux(..) | Expr::Load { .. }
                )
            })
            .count()
    }

    /// Adds a node, returning its id.
    ///
    /// # Panics
    ///
    /// Panics if the node references an id that does not yet exist (which
    /// would break the topological-order invariant).
    pub fn push(&mut self, e: Expr) -> ExprId {
        let next = self.nodes.len() as u32;
        let check = |id: ExprId| assert!(id.0 < next, "expr {} references future node", next);
        match &e {
            Expr::Unary(_, a) => check(*a),
            Expr::Binary(_, a, b) => {
                check(*a);
                check(*b);
            }
            Expr::Mux(c, a, b) => {
                check(*c);
                check(*a);
                check(*b);
            }
            Expr::Load { addr, .. } => addr.iter().for_each(|&a| check(a)),
            _ => {}
        }
        self.nodes.push(e);
        ExprId(next)
    }

    /// Convenience: push a constant.
    pub fn konst(&mut self, v: impl Into<Elem>) -> ExprId {
        self.push(Expr::Const(v.into()))
    }

    /// Convenience: push an index read.
    pub fn index(&mut self, i: IndexId) -> ExprId {
        self.push(Expr::Index(i))
    }

    /// Convenience: push a parameter read.
    pub fn param(&mut self, p: ParamId) -> ExprId {
        self.push(Expr::Param(p))
    }

    /// Convenience: push a register read.
    pub fn read_reg(&mut self, r: RegId) -> ExprId {
        self.push(Expr::ReadReg(r))
    }

    /// Convenience: push a formal-argument read.
    pub fn arg(&mut self, n: u8) -> ExprId {
        self.push(Expr::Arg(n))
    }

    /// Convenience: push a unary op.
    pub fn unary(&mut self, op: UnaryOp, a: ExprId) -> ExprId {
        self.push(Expr::Unary(op, a))
    }

    /// Convenience: push a binary op.
    pub fn binary(&mut self, op: BinOp, a: ExprId, b: ExprId) -> ExprId {
        self.push(Expr::Binary(op, a, b))
    }

    /// Convenience: push a select.
    pub fn mux(&mut self, c: ExprId, t: ExprId, f: ExprId) -> ExprId {
        self.push(Expr::Mux(c, t, f))
    }

    /// Convenience: push a scratchpad load.
    pub fn load(&mut self, mem: SramId, addr: Vec<ExprId>) -> ExprId {
        self.push(Expr::Load { mem, addr })
    }

    /// Designates the outputs of the function.
    ///
    /// # Panics
    ///
    /// Panics if any output id is out of range.
    pub fn set_outputs(&mut self, outputs: Vec<ExprId>) {
        for o in &outputs {
            assert!((o.0 as usize) < self.nodes.len(), "output out of range");
        }
        self.outputs = outputs;
    }

    /// Whether the function reads any scratchpad.
    pub fn has_loads(&self) -> bool {
        self.nodes.iter().any(|n| matches!(n, Expr::Load { .. }))
    }

    /// All scratchpads this function reads, deduplicated, in first-use order.
    pub fn loaded_srams(&self) -> Vec<SramId> {
        let mut out: Vec<SramId> = Vec::new();
        for n in &self.nodes {
            if let Expr::Load { mem, .. } = n {
                if !out.contains(mem) {
                    out.push(*mem);
                }
            }
        }
        out
    }
}

/// Evaluates a single binary op on two words.
///
/// # Errors
///
/// Returns [`TypeError`] on mixed-type operands or integer-only ops applied
/// to floats.
pub fn eval_binop(op: BinOp, a: Elem, b: Elem) -> Result<Elem, TypeError> {
    use BinOp::*;
    if op.is_integer_only() {
        let (x, y) = (a.as_i32()?, b.as_i32()?);
        let v = match op {
            And => x & y,
            Or => x | y,
            Xor => x ^ y,
            Shl => x.wrapping_shl(y as u32),
            Shr => x.wrapping_shr(y as u32),
            _ => unreachable!(),
        };
        return Ok(Elem::I32(v));
    }
    match (a, b) {
        (Elem::I32(x), Elem::I32(y)) => {
            let v = match op {
                Add => x.wrapping_add(y),
                Sub => x.wrapping_sub(y),
                Mul => x.wrapping_mul(y),
                Div => {
                    if y == 0 {
                        0
                    } else {
                        x.wrapping_div(y)
                    }
                }
                Rem => {
                    if y == 0 {
                        0
                    } else {
                        x.wrapping_rem(y)
                    }
                }
                Min => x.min(y),
                Max => x.max(y),
                Lt => (x < y) as i32,
                Le => (x <= y) as i32,
                Gt => (x > y) as i32,
                Ge => (x >= y) as i32,
                Eq => (x == y) as i32,
                Ne => (x != y) as i32,
                _ => unreachable!(),
            };
            Ok(Elem::I32(v))
        }
        (Elem::F32(x), Elem::F32(y)) => {
            if op.is_comparison() {
                let v = match op {
                    Lt => x < y,
                    Le => x <= y,
                    Gt => x > y,
                    Ge => x >= y,
                    Eq => x == y,
                    Ne => x != y,
                    _ => unreachable!(),
                };
                return Ok(Elem::I32(v as i32));
            }
            let v = match op {
                Add => x + y,
                Sub => x - y,
                Mul => x * y,
                Div => x / y,
                Rem => x % y,
                Min => x.min(y),
                Max => x.max(y),
                _ => unreachable!(),
            };
            Ok(Elem::F32(v))
        }
        (a, b) => Err(TypeError {
            expected: a.dtype(),
            found: b.dtype(),
        }),
    }
}

/// Evaluates a single unary op on a word.
///
/// # Errors
///
/// Returns [`TypeError`] on float-only ops applied to integers or `Not`/`I2F`
/// applied to floats.
pub fn eval_unop(op: UnaryOp, a: Elem) -> Result<Elem, TypeError> {
    use UnaryOp::*;
    match op {
        Neg => match a {
            Elem::I32(v) => Ok(Elem::I32(v.wrapping_neg())),
            Elem::F32(v) => Ok(Elem::F32(-v)),
        },
        Abs => match a {
            Elem::I32(v) => Ok(Elem::I32(v.wrapping_abs())),
            Elem::F32(v) => Ok(Elem::F32(v.abs())),
        },
        Not => Ok(Elem::I32(!a.as_i32()?)),
        I2F => Ok(Elem::F32(a.as_i32()? as f32)),
        Exp => Ok(Elem::F32(a.as_f32()?.exp())),
        Ln => Ok(Elem::F32(a.as_f32()?.ln())),
        Sqrt => Ok(Elem::F32(a.as_f32()?.sqrt())),
        Recip => Ok(Elem::F32(a.as_f32()?.recip())),
        F2I => Ok(Elem::I32(a.as_f32()? as i32)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_rejects_forward_references() {
        let mut f = Func::new("bad");
        let a = f.konst(Elem::I32(1));
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut g = f.clone();
            g.binary(BinOp::Add, a, ExprId(99));
        }));
        assert!(r.is_err());
    }

    #[test]
    fn num_ops_counts_alu_nodes_only() {
        let mut f = Func::new("f");
        let i = f.index(IndexId(0));
        let c = f.konst(Elem::I32(3));
        let m = f.binary(BinOp::Mul, i, c);
        let n = f.unary(UnaryOp::Neg, m);
        f.set_outputs(vec![n]);
        assert_eq!(f.num_ops(), 2);
        assert_eq!(f.nodes().len(), 4);
    }

    #[test]
    fn loaded_srams_dedupes_in_order() {
        let mut f = Func::new("f");
        let i = f.index(IndexId(0));
        let a = f.load(SramId(2), vec![i]);
        let b = f.load(SramId(1), vec![i]);
        let c = f.load(SramId(2), vec![i]);
        let s = f.binary(BinOp::Add, a, b);
        let s = f.binary(BinOp::Add, s, c);
        f.set_outputs(vec![s]);
        assert_eq!(f.loaded_srams(), vec![SramId(2), SramId(1)]);
        assert!(f.has_loads());
    }

    #[test]
    fn int_arith_wraps_and_handles_div_zero() {
        assert_eq!(
            eval_binop(BinOp::Add, Elem::I32(i32::MAX), Elem::I32(1)).unwrap(),
            Elem::I32(i32::MIN)
        );
        assert_eq!(
            eval_binop(BinOp::Div, Elem::I32(5), Elem::I32(0)).unwrap(),
            Elem::I32(0)
        );
        assert_eq!(
            eval_binop(BinOp::Rem, Elem::I32(5), Elem::I32(0)).unwrap(),
            Elem::I32(0)
        );
    }

    #[test]
    fn float_comparison_produces_i32() {
        assert_eq!(
            eval_binop(BinOp::Lt, Elem::F32(1.0), Elem::F32(2.0)).unwrap(),
            Elem::I32(1)
        );
        assert_eq!(
            eval_binop(BinOp::Ge, Elem::F32(1.0), Elem::F32(2.0)).unwrap(),
            Elem::I32(0)
        );
    }

    #[test]
    fn mixed_types_rejected() {
        assert!(eval_binop(BinOp::Add, Elem::I32(1), Elem::F32(1.0)).is_err());
        assert!(eval_binop(BinOp::And, Elem::F32(1.0), Elem::I32(1)).is_err());
    }

    #[test]
    fn unary_conversions() {
        assert_eq!(
            eval_unop(UnaryOp::I2F, Elem::I32(3)).unwrap(),
            Elem::F32(3.0)
        );
        assert_eq!(
            eval_unop(UnaryOp::F2I, Elem::F32(3.7)).unwrap(),
            Elem::I32(3)
        );
        assert!(eval_unop(UnaryOp::Exp, Elem::I32(1)).is_err());
    }

    #[test]
    fn associativity_classification() {
        assert!(BinOp::Add.is_associative());
        assert!(BinOp::Min.is_associative());
        assert!(!BinOp::Sub.is_associative());
        assert!(!BinOp::Div.is_associative());
    }

    #[test]
    fn shifts_mask_like_hardware() {
        assert_eq!(
            eval_binop(BinOp::Shl, Elem::I32(1), Elem::I32(33)).unwrap(),
            Elem::I32(2)
        );
    }
}
