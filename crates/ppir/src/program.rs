//! Whole-program container, builder API, and structural validation.
//!
//! A [`Program`] is the unit handed to the compiler and the host
//! interpreter: memory declarations, expression functions, and a controller
//! tree. Programs are constructed through [`ProgramBuilder`], which
//! allocates all identifiers, and are immutable once built — the builder's
//! [`finish`](ProgramBuilder::finish) runs a full structural validation so
//! that downstream passes can index without re-checking.

use crate::ctrl::{CBound, Controller, Counter, CtrlBody, CtrlId, InnerOp, Schedule};
use crate::expr::{DramId, Expr, Func, FuncId, IndexId, ParamId, RegId, SramId};
use crate::mem::{BankingMode, DramBuf, Param, Reg, Sram};
use crate::types::DType;
use std::collections::HashSet;
use std::fmt;

/// Structural validation error for a program under construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidateError {
    /// A referenced id does not exist.
    UnknownId {
        /// Kind of object ("sram", "func", ...).
        kind: &'static str,
        /// The missing id.
        id: u32,
    },
    /// A controller appears as a child of two parents (or of itself).
    NotATree {
        /// The offending controller id.
        ctrl: u32,
    },
    /// The root controller is not an outer controller.
    RootNotOuter,
    /// A function references a loop index not defined on the path to its use.
    IndexOutOfScope {
        /// Function name.
        func: String,
        /// The out-of-scope index id.
        index: u32,
    },
    /// A counter has a non-positive stride or zero parallelization.
    BadCounter {
        /// Controller name.
        ctrl: String,
    },
    /// An address function's output count does not match the target
    /// scratchpad's dimensionality.
    AddrArity {
        /// Address function name.
        func: String,
        /// Scratchpad dimensionality.
        expected: usize,
        /// Coordinates the function produces.
        found: usize,
    },
    /// A pipe write references an output slot the body does not produce.
    BadValueSlot {
        /// Controller name.
        ctrl: String,
        /// The nonexistent slot.
        slot: usize,
    },
    /// Fold metadata lengths (combine/init/out_regs) disagree with the map
    /// function's output count.
    FoldArity {
        /// Controller name.
        ctrl: String,
    },
    /// A fold combine op is not associative.
    NonAssociativeCombine {
        /// Controller name.
        ctrl: String,
    },
    /// A filter body has fewer than two outputs (needs ≥1 value + predicate).
    FilterArity {
        /// Controller name.
        ctrl: String,
    },
    /// A tile transfer does not fit in its scratchpad.
    TileTooLarge {
        /// Controller name.
        ctrl: String,
    },
    /// A function has no outputs where at least one is required.
    NoOutputs {
        /// Function name.
        func: String,
    },
}

impl fmt::Display for ValidateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidateError::UnknownId { kind, id } => write!(f, "unknown {kind} id {id}"),
            ValidateError::NotATree { ctrl } => {
                write!(f, "controller {ctrl} has multiple parents")
            }
            ValidateError::RootNotOuter => write!(f, "root controller must be outer"),
            ValidateError::IndexOutOfScope { func, index } => {
                write!(f, "function `{func}` reads index {index} outside its scope")
            }
            ValidateError::BadCounter { ctrl } => {
                write!(f, "controller `{ctrl}` has a counter with stride < 1 or par < 1")
            }
            ValidateError::AddrArity {
                func,
                expected,
                found,
            } => write!(
                f,
                "address function `{func}` produces {found} coordinates, scratchpad has {expected} dims"
            ),
            ValidateError::BadValueSlot { ctrl, slot } => {
                write!(f, "controller `{ctrl}` writes from nonexistent output slot {slot}")
            }
            ValidateError::FoldArity { ctrl } => {
                write!(f, "fold `{ctrl}` combine/init/out_regs lengths disagree with map outputs")
            }
            ValidateError::NonAssociativeCombine { ctrl } => {
                write!(f, "fold `{ctrl}` uses a non-associative combine op")
            }
            ValidateError::FilterArity { ctrl } => {
                write!(f, "filter `{ctrl}` body needs at least one value and a predicate output")
            }
            ValidateError::TileTooLarge { ctrl } => {
                write!(f, "tile transfer `{ctrl}` exceeds scratchpad capacity")
            }
            ValidateError::NoOutputs { func } => write!(f, "function `{func}` has no outputs"),
        }
    }
}

impl std::error::Error for ValidateError {}

/// An immutable, validated parallel-pattern program.
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    name: String,
    drams: Vec<DramBuf>,
    srams: Vec<Sram>,
    regs: Vec<Reg>,
    params: Vec<Param>,
    funcs: Vec<Func>,
    ctrls: Vec<Controller>,
    root: CtrlId,
    num_indices: u32,
}

impl Program {
    /// Program name (used in reports).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// All DRAM buffers.
    pub fn drams(&self) -> &[DramBuf] {
        &self.drams
    }

    /// All scratchpads.
    pub fn srams(&self) -> &[Sram] {
        &self.srams
    }

    /// All scalar registers.
    pub fn regs(&self) -> &[Reg] {
        &self.regs
    }

    /// All runtime parameters.
    pub fn params(&self) -> &[Param] {
        &self.params
    }

    /// All expression functions.
    pub fn funcs(&self) -> &[Func] {
        &self.funcs
    }

    /// All controllers (tree nodes).
    pub fn ctrls(&self) -> &[Controller] {
        &self.ctrls
    }

    /// The root controller.
    pub fn root(&self) -> CtrlId {
        self.root
    }

    /// Number of distinct loop indices allocated.
    pub fn num_indices(&self) -> u32 {
        self.num_indices
    }

    /// Looks up a DRAM buffer.
    pub fn dram(&self, id: DramId) -> &DramBuf {
        &self.drams[id.0 as usize]
    }

    /// Looks up a scratchpad.
    pub fn sram(&self, id: SramId) -> &Sram {
        &self.srams[id.0 as usize]
    }

    /// Looks up a register.
    pub fn reg(&self, id: RegId) -> &Reg {
        &self.regs[id.0 as usize]
    }

    /// Looks up a function.
    pub fn func(&self, id: FuncId) -> &Func {
        &self.funcs[id.0 as usize]
    }

    /// Looks up a controller.
    pub fn ctrl(&self, id: CtrlId) -> &Controller {
        &self.ctrls[id.0 as usize]
    }

    /// Returns a copy of the program with its largest parallelization
    /// factor halved, plus a description of the change — or `None` when
    /// every counter is already serial. Parallelization is a performance
    /// hint, so the reduced program computes the same results on fewer
    /// units; degraded-fabric recompilation calls this repeatedly until
    /// the program fits the surviving fabric.
    pub fn with_reduced_par(&self) -> Option<(Program, String)> {
        let mut best: Option<(usize, usize, usize)> = None; // (ctrl, counter, par)
        for (ci, c) in self.ctrls.iter().enumerate() {
            for (ki, k) in c.cchain.iter().enumerate() {
                if k.par > 1 && best.is_none_or(|(_, _, p)| k.par > p) {
                    best = Some((ci, ki, k.par));
                }
            }
        }
        let (ci, ki, par) = best?;
        let mut p = self.clone();
        p.ctrls[ci].cchain[ki].par = par / 2;
        let desc = format!("{}: par {} -> {}", p.ctrls[ci].name, par, par / 2);
        Some((p, desc))
    }

    /// A stable 64-bit content hash of the program.
    ///
    /// Two structurally identical programs hash identically across
    /// processes and runs: the hash is FNV-1a over the `Debug`
    /// rendering, and every field of [`Program`] is a `Vec`, `String`,
    /// or plain value with a deterministic `Debug` form (no
    /// randomized-order containers). Used to key the compile cache —
    /// see `plasticine-compiler`.
    pub fn stable_hash(&self) -> u64 {
        stable_hash_of(self)
    }

    /// Iterates the controller tree depth-first (parents before children),
    /// calling `f` with (id, depth).
    pub fn walk(&self, mut f: impl FnMut(CtrlId, usize)) {
        let mut stack = vec![(self.root, 0usize)];
        while let Some((id, depth)) = stack.pop() {
            f(id, depth);
            if let CtrlBody::Outer { children, .. } = &self.ctrl(id).body {
                for &c in children.iter().rev() {
                    stack.push((c, depth + 1));
                }
            }
        }
    }

    /// All inner (leaf) controllers in program order.
    pub fn inner_ctrls(&self) -> Vec<CtrlId> {
        let mut out = Vec::new();
        self.walk(|id, _| {
            if !self.ctrl(id).is_outer() {
                out.push(id);
            }
        });
        out
    }

    /// Total number of ALU operations across all functions — a proxy for the
    /// application's compute footprint, used by the area models.
    pub fn total_ops(&self) -> usize {
        self.funcs.iter().map(|f| f.num_ops()).sum()
    }

    /// A copy of the program with every outer controller's schedule mapped
    /// through `f` (used by the control-scheme ablation studies; the tree
    /// structure is unchanged, so the result stays valid).
    pub fn with_schedules(&self, f: impl Fn(Schedule) -> Schedule) -> Program {
        let mut p = self.clone();
        for c in &mut p.ctrls {
            if let CtrlBody::Outer { schedule, .. } = &mut c.body {
                *schedule = f(*schedule);
            }
        }
        p
    }

    /// A copy of the program with one scratchpad's banking mode replaced
    /// (used by the banking ablation studies).
    pub fn with_banking(&self, sram: SramId, banking: BankingMode) -> Program {
        let mut p = self.clone();
        p.srams[sram.0 as usize].banking = banking;
        p
    }
}

/// FNV-1a over a value's `Debug` rendering.
///
/// Only sound for types whose `Debug` output is deterministic across
/// processes — plain structs, enums, `Vec`s, `String`s, and the ordered
/// `BTreeMap`/`BTreeSet` containers. Types holding a `HashMap` or
/// `HashSet` must not be hashed this way (iteration order is seeded per
/// process). Exposed so downstream crates can derive compile-cache keys
/// for parameter structs and fault maps with the same algorithm.
pub fn stable_hash_of<T: fmt::Debug>(value: &T) -> u64 {
    /// `fmt::Write` sink that folds bytes into the shared FNV-1a state
    /// instead of buffering the rendered string.
    struct Fnv(plasticine_json::hash::Fnv1a);
    impl fmt::Write for Fnv {
        fn write_str(&mut self, s: &str) -> fmt::Result {
            self.0.update(s.as_bytes());
            Ok(())
        }
    }
    let mut h = Fnv(plasticine_json::hash::Fnv1a::new());
    use fmt::Write as _;
    write!(h, "{value:?}").expect("Debug formatting cannot fail");
    h.0.finish()
}

/// Incremental builder for [`Program`]s.
///
/// # Examples
///
/// ```
/// use plasticine_ppir::*;
/// let mut b = ProgramBuilder::new("axpy");
/// let x = b.dram("x", DType::F32, 64);
/// let y = b.dram("y", DType::F32, 64);
/// # let _ = (x, y);
/// ```
#[derive(Debug)]
pub struct ProgramBuilder {
    name: String,
    drams: Vec<DramBuf>,
    srams: Vec<Sram>,
    regs: Vec<Reg>,
    params: Vec<Param>,
    funcs: Vec<Func>,
    ctrls: Vec<Controller>,
    num_indices: u32,
}

impl ProgramBuilder {
    /// Creates an empty builder.
    pub fn new(name: impl Into<String>) -> ProgramBuilder {
        ProgramBuilder {
            name: name.into(),
            drams: Vec::new(),
            srams: Vec::new(),
            regs: Vec::new(),
            params: Vec::new(),
            funcs: Vec::new(),
            ctrls: Vec::new(),
            num_indices: 0,
        }
    }

    /// Declares a DRAM buffer.
    pub fn dram(&mut self, name: &str, dtype: DType, len: usize) -> DramId {
        self.drams.push(DramBuf {
            name: name.into(),
            dtype,
            len,
        });
        DramId(self.drams.len() as u32 - 1)
    }

    /// Declares a scratchpad with default (strided) banking.
    pub fn sram(&mut self, name: &str, dtype: DType, dims: &[usize]) -> SramId {
        self.sram_banked(name, dtype, dims, BankingMode::Strided)
    }

    /// Declares a scratchpad with an explicit banking mode.
    pub fn sram_banked(
        &mut self,
        name: &str,
        dtype: DType,
        dims: &[usize],
        banking: BankingMode,
    ) -> SramId {
        self.srams.push(Sram {
            name: name.into(),
            dtype,
            dims: dims.to_vec(),
            banking,
            nbuf: None,
        });
        SramId(self.srams.len() as u32 - 1)
    }

    /// Declares a scalar register.
    pub fn reg(&mut self, name: &str, dtype: DType) -> RegId {
        self.regs.push(Reg {
            name: name.into(),
            dtype,
        });
        RegId(self.regs.len() as u32 - 1)
    }

    /// Declares a runtime parameter.
    pub fn param(&mut self, name: &str, dtype: DType) -> ParamId {
        self.params.push(Param {
            name: name.into(),
            dtype,
        });
        ParamId(self.params.len() as u32 - 1)
    }

    /// Allocates a fresh loop index.
    pub fn fresh_index(&mut self) -> IndexId {
        let id = IndexId(self.num_indices);
        self.num_indices += 1;
        id
    }

    /// Registers a function.
    pub fn func(&mut self, f: Func) -> FuncId {
        self.funcs.push(f);
        FuncId(self.funcs.len() as u32 - 1)
    }

    /// Creates a counter (allocating its index) for chaining into a
    /// controller. `par` is the parallelization factor.
    pub fn counter(
        &mut self,
        min: impl Into<CBound>,
        max: impl Into<CBound>,
        stride: i64,
        par: usize,
    ) -> Counter {
        Counter {
            index: self.fresh_index(),
            min: min.into(),
            max: max.into(),
            stride,
            par,
        }
    }

    /// Adds an outer controller.
    pub fn outer(
        &mut self,
        name: &str,
        schedule: Schedule,
        cchain: Vec<Counter>,
        children: Vec<CtrlId>,
    ) -> CtrlId {
        self.ctrls.push(Controller {
            name: name.into(),
            cchain,
            body: CtrlBody::Outer { schedule, children },
        });
        CtrlId(self.ctrls.len() as u32 - 1)
    }

    /// Adds an inner (leaf) controller.
    pub fn inner(&mut self, name: &str, cchain: Vec<Counter>, op: InnerOp) -> CtrlId {
        self.ctrls.push(Controller {
            name: name.into(),
            cchain,
            body: CtrlBody::Inner(op),
        });
        CtrlId(self.ctrls.len() as u32 - 1)
    }

    /// Validates and freezes the program with `root` as the tree root.
    ///
    /// # Errors
    ///
    /// Returns the first [`ValidateError`] found. Validation checks id
    /// ranges, tree shape, counter sanity, index scoping, write arities,
    /// fold metadata, and tile sizes.
    pub fn finish(self, root: CtrlId) -> Result<Program, ValidateError> {
        let p = Program {
            name: self.name,
            drams: self.drams,
            srams: self.srams,
            regs: self.regs,
            params: self.params,
            funcs: self.funcs,
            ctrls: self.ctrls,
            root,
            num_indices: self.num_indices,
        };
        validate(&p)?;
        Ok(p)
    }
}

fn check_ctrl_id(p: &Program, id: CtrlId) -> Result<(), ValidateError> {
    if (id.0 as usize) < p.ctrls.len() {
        Ok(())
    } else {
        Err(ValidateError::UnknownId {
            kind: "controller",
            id: id.0,
        })
    }
}

fn check_func_id(p: &Program, id: FuncId) -> Result<&Func, ValidateError> {
    p.funcs.get(id.0 as usize).ok_or(ValidateError::UnknownId {
        kind: "func",
        id: id.0,
    })
}

fn check_sram_id(p: &Program, id: SramId) -> Result<&Sram, ValidateError> {
    p.srams.get(id.0 as usize).ok_or(ValidateError::UnknownId {
        kind: "sram",
        id: id.0,
    })
}

fn check_dram_id(p: &Program, id: DramId) -> Result<&DramBuf, ValidateError> {
    p.drams.get(id.0 as usize).ok_or(ValidateError::UnknownId {
        kind: "dram",
        id: id.0,
    })
}

fn check_reg_id(p: &Program, id: RegId) -> Result<&Reg, ValidateError> {
    p.regs.get(id.0 as usize).ok_or(ValidateError::UnknownId {
        kind: "reg",
        id: id.0,
    })
}

/// Checks that a function only references in-scope indices and existing ids.
fn check_func_scope(
    p: &Program,
    fid: FuncId,
    scope: &HashSet<IndexId>,
    require_output: bool,
) -> Result<(), ValidateError> {
    let f = check_func_id(p, fid)?;
    if require_output && f.outputs().is_empty() {
        return Err(ValidateError::NoOutputs {
            func: f.name().to_string(),
        });
    }
    for node in f.nodes() {
        match node {
            Expr::Index(i) if !scope.contains(i) => {
                return Err(ValidateError::IndexOutOfScope {
                    func: f.name().to_string(),
                    index: i.0,
                });
            }
            Expr::Index(_) => {}
            Expr::Param(pp) if pp.0 as usize >= p.params.len() => {
                return Err(ValidateError::UnknownId {
                    kind: "param",
                    id: pp.0,
                });
            }
            Expr::Param(_) => {}
            Expr::ReadReg(r) => {
                check_reg_id(p, *r)?;
            }
            Expr::Load { mem, addr } => {
                let s = check_sram_id(p, *mem)?;
                if addr.len() != s.dims.len() {
                    return Err(ValidateError::AddrArity {
                        func: f.name().to_string(),
                        expected: s.dims.len(),
                        found: addr.len(),
                    });
                }
            }
            _ => {}
        }
    }
    Ok(())
}

fn check_cbound(p: &Program, b: CBound) -> Result<(), ValidateError> {
    match b {
        CBound::Const(_) => Ok(()),
        CBound::Reg(r) => check_reg_id(p, r).map(|_| ()),
        CBound::Param(pp) => {
            if (pp.0 as usize) < p.params.len() {
                Ok(())
            } else {
                Err(ValidateError::UnknownId {
                    kind: "param",
                    id: pp.0,
                })
            }
        }
    }
}

fn check_writes(
    p: &Program,
    ctrl_name: &str,
    writes: &[crate::ctrl::PipeWrite],
    n_slots: usize,
    scope: &HashSet<IndexId>,
) -> Result<(), ValidateError> {
    for w in writes {
        let s = check_sram_id(p, w.sram)?;
        let af = check_func_id(p, w.addr)?;
        if af.outputs().len() != s.dims.len() {
            return Err(ValidateError::AddrArity {
                func: af.name().to_string(),
                expected: s.dims.len(),
                found: af.outputs().len(),
            });
        }
        check_func_scope(p, w.addr, scope, true)?;
        if w.value_slot >= n_slots {
            return Err(ValidateError::BadValueSlot {
                ctrl: ctrl_name.to_string(),
                slot: w.value_slot,
            });
        }
    }
    Ok(())
}

/// Full structural validation (run automatically by
/// [`ProgramBuilder::finish`]).
pub fn validate(p: &Program) -> Result<(), ValidateError> {
    check_ctrl_id(p, p.root)?;
    if !p.ctrl(p.root).is_outer() {
        return Err(ValidateError::RootNotOuter);
    }

    // Tree shape: every controller has at most one parent and no controller
    // is its own ancestor.
    let mut seen: HashSet<u32> = HashSet::new();
    seen.insert(p.root.0);
    let mut stack = vec![(p.root, HashSet::<IndexId>::new())];
    while let Some((id, mut scope)) = stack.pop() {
        let c = p.ctrl(id);
        for cnt in &c.cchain {
            if cnt.stride < 1 || cnt.par < 1 {
                return Err(ValidateError::BadCounter {
                    ctrl: c.name.clone(),
                });
            }
            check_cbound(p, cnt.min)?;
            check_cbound(p, cnt.max)?;
            scope.insert(cnt.index);
        }
        match &c.body {
            CtrlBody::Outer { children, .. } => {
                for &ch in children {
                    check_ctrl_id(p, ch)?;
                    if !seen.insert(ch.0) {
                        return Err(ValidateError::NotATree { ctrl: ch.0 });
                    }
                    stack.push((ch, scope.clone()));
                }
            }
            CtrlBody::Inner(op) => check_inner(p, c, op, &scope)?,
        }
    }
    Ok(())
}

fn check_inner(
    p: &Program,
    c: &Controller,
    op: &InnerOp,
    scope: &HashSet<IndexId>,
) -> Result<(), ValidateError> {
    // Scope for functions that run *after* the pipe's own counters finish
    // (fold finals): ancestors only.
    let outer_scope: HashSet<IndexId> = {
        let own: HashSet<IndexId> = c.cchain.iter().map(|k| k.index).collect();
        scope.difference(&own).copied().collect()
    };
    match op {
        InnerOp::LoadTile(t) | InnerOp::StoreTile(t) => {
            check_dram_id(p, t.dram)?;
            let s = check_sram_id(p, t.sram)?;
            check_func_scope(p, t.dram_base, &outer_scope, true)?;
            if t.rows * t.cols > s.capacity() {
                return Err(ValidateError::TileTooLarge {
                    ctrl: c.name.clone(),
                });
            }
        }
        InnerOp::Gather(g) => {
            check_dram_id(p, g.dram)?;
            check_sram_id(p, g.indices)?;
            check_sram_id(p, g.dst)?;
            check_func_scope(p, g.base, &outer_scope, true)?;
            check_cbound(p, g.len)?;
            check_cbound(p, g.idx_base)?;
        }
        InnerOp::Scatter(s) => {
            check_dram_id(p, s.dram)?;
            check_sram_id(p, s.indices)?;
            check_sram_id(p, s.src)?;
            check_func_scope(p, s.base, &outer_scope, true)?;
            check_cbound(p, s.len)?;
            check_cbound(p, s.idx_base)?;
        }
        InnerOp::Map(m) => {
            let body = check_func_id(p, m.body)?;
            let n = body.outputs().len();
            check_func_scope(p, m.body, scope, true)?;
            check_writes(p, &c.name, &m.writes, n, scope)?;
        }
        InnerOp::Fold(fl) => {
            let map = check_func_id(p, fl.map)?;
            let n = map.outputs().len();
            check_func_scope(p, fl.map, scope, true)?;
            if fl.combine.len() != n || fl.init.len() != n || fl.out_regs.len() != n {
                return Err(ValidateError::FoldArity {
                    ctrl: c.name.clone(),
                });
            }
            for op in &fl.combine {
                if !op.is_associative() {
                    return Err(ValidateError::NonAssociativeCombine {
                        ctrl: c.name.clone(),
                    });
                }
            }
            for r in fl.out_regs.iter().flatten() {
                check_reg_id(p, *r)?;
            }
            check_writes(p, &c.name, &fl.writes, n, &outer_scope)?;
        }
        InnerOp::Filter(fi) => {
            let body = check_func_id(p, fi.body)?;
            if body.outputs().len() < 2 {
                return Err(ValidateError::FilterArity {
                    ctrl: c.name.clone(),
                });
            }
            check_func_scope(p, fi.body, scope, true)?;
            check_sram_id(p, fi.out)?;
            check_reg_id(p, fi.count_reg)?;
        }
        InnerOp::RegWrite(rw) => {
            check_reg_id(p, rw.reg)?;
            check_func_scope(p, rw.func, scope, true)?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctrl::{FilterPipe, FoldInit, FoldPipe, MapPipe, PipeWrite, WriteMode};
    use crate::expr::BinOp;
    use crate::types::Elem;

    /// Builds a trivial valid program: out[i] = 2 * i for i in 0..16.
    fn tiny() -> Program {
        let mut b = ProgramBuilder::new("tiny");
        let out = b.sram("out", DType::I32, &[16]);
        let i = b.counter(0, 16, 1, 1);
        let idx = i.index;
        let mut body = Func::new("body");
        let iv = body.index(idx);
        let two = body.konst(Elem::I32(2));
        let v = body.binary(BinOp::Mul, iv, two);
        body.set_outputs(vec![v]);
        let mut addr = Func::new("addr");
        let a = addr.index(idx);
        addr.set_outputs(vec![a]);
        let body = b.func(body);
        let addr = b.func(addr);
        let pipe = b.inner(
            "double",
            vec![i],
            InnerOp::Map(MapPipe {
                body,
                writes: vec![PipeWrite {
                    sram: out,
                    addr,
                    value_slot: 0,
                    mode: WriteMode::Overwrite,
                }],
            }),
        );
        let root = b.outer("root", Schedule::Sequential, vec![], vec![pipe]);
        b.finish(root).expect("tiny program validates")
    }

    #[test]
    fn tiny_program_validates() {
        let p = tiny();
        assert_eq!(p.inner_ctrls().len(), 1);
        assert_eq!(p.total_ops(), 1);
        assert_eq!(p.num_indices(), 1);
    }

    #[test]
    fn root_must_be_outer() {
        let mut b = ProgramBuilder::new("bad");
        let r = b.reg("r", DType::I32);
        let mut f = Func::new("f");
        let c = f.konst(Elem::I32(1));
        f.set_outputs(vec![c]);
        let f = b.func(f);
        let inner = b.inner(
            "i",
            vec![],
            InnerOp::RegWrite(crate::ctrl::RegWrite { reg: r, func: f }),
        );
        assert_eq!(b.finish(inner), Err(ValidateError::RootNotOuter));
    }

    #[test]
    fn duplicate_child_rejected() {
        let mut b = ProgramBuilder::new("bad");
        let r = b.reg("r", DType::I32);
        let mut f = Func::new("f");
        let c = f.konst(Elem::I32(1));
        f.set_outputs(vec![c]);
        let f = b.func(f);
        let inner = b.inner(
            "i",
            vec![],
            InnerOp::RegWrite(crate::ctrl::RegWrite { reg: r, func: f }),
        );
        let root = b.outer("root", Schedule::Sequential, vec![], vec![inner, inner]);
        assert!(matches!(
            b.finish(root),
            Err(ValidateError::NotATree { .. })
        ));
    }

    #[test]
    fn out_of_scope_index_rejected() {
        let mut b = ProgramBuilder::new("bad");
        let out = b.sram("out", DType::I32, &[16]);
        let stray = b.fresh_index();
        let i = b.counter(0, 16, 1, 1);
        let mut body = Func::new("body");
        let iv = body.index(stray); // not defined by any counter on the path
        body.set_outputs(vec![iv]);
        let mut addr = Func::new("addr");
        let a = addr.index(i.index);
        addr.set_outputs(vec![a]);
        let body = b.func(body);
        let addr = b.func(addr);
        let pipe = b.inner(
            "p",
            vec![i],
            InnerOp::Map(MapPipe {
                body,
                writes: vec![PipeWrite {
                    sram: out,
                    addr,
                    value_slot: 0,
                    mode: WriteMode::Overwrite,
                }],
            }),
        );
        let root = b.outer("root", Schedule::Sequential, vec![], vec![pipe]);
        assert!(matches!(
            b.finish(root),
            Err(ValidateError::IndexOutOfScope { .. })
        ));
    }

    #[test]
    fn fold_rejects_non_associative_combine() {
        let mut b = ProgramBuilder::new("bad");
        let r = b.reg("acc", DType::I32);
        let i = b.counter(0, 8, 1, 1);
        let mut map = Func::new("m");
        let iv = map.index(i.index);
        map.set_outputs(vec![iv]);
        let map = b.func(map);
        let pipe = b.inner(
            "f",
            vec![i],
            InnerOp::Fold(FoldPipe {
                map,
                combine: vec![BinOp::Sub],
                init: vec![FoldInit::Const(Elem::I32(0))],
                out_regs: vec![Some(r)],
                writes: vec![],
            }),
        );
        let root = b.outer("root", Schedule::Sequential, vec![], vec![pipe]);
        assert!(matches!(
            b.finish(root),
            Err(ValidateError::NonAssociativeCombine { .. })
        ));
    }

    #[test]
    fn fold_arity_mismatch_rejected() {
        let mut b = ProgramBuilder::new("bad");
        let r = b.reg("acc", DType::I32);
        let i = b.counter(0, 8, 1, 1);
        let mut map = Func::new("m");
        let iv = map.index(i.index);
        map.set_outputs(vec![iv]);
        let map = b.func(map);
        let pipe = b.inner(
            "f",
            vec![i],
            InnerOp::Fold(FoldPipe {
                map,
                combine: vec![BinOp::Add, BinOp::Add],
                init: vec![FoldInit::Const(Elem::I32(0))],
                out_regs: vec![Some(r)],
                writes: vec![],
            }),
        );
        let root = b.outer("root", Schedule::Sequential, vec![], vec![pipe]);
        assert!(matches!(
            b.finish(root),
            Err(ValidateError::FoldArity { .. })
        ));
    }

    #[test]
    fn filter_needs_predicate() {
        let mut b = ProgramBuilder::new("bad");
        let out = b.sram("out", DType::I32, &[16]);
        let cnt = b.reg("cnt", DType::I32);
        let i = b.counter(0, 8, 1, 1);
        let mut body = Func::new("b");
        let iv = body.index(i.index);
        body.set_outputs(vec![iv]); // only one output: no predicate
        let body = b.func(body);
        let pipe = b.inner(
            "f",
            vec![i],
            InnerOp::Filter(FilterPipe {
                body,
                out,
                count_reg: cnt,
            }),
        );
        let root = b.outer("root", Schedule::Sequential, vec![], vec![pipe]);
        assert!(matches!(
            b.finish(root),
            Err(ValidateError::FilterArity { .. })
        ));
    }

    #[test]
    fn tile_too_large_rejected() {
        let mut b = ProgramBuilder::new("bad");
        let d = b.dram("d", DType::F32, 1024);
        let s = b.sram("s", DType::F32, &[16]);
        let mut base = Func::new("base");
        let z = base.konst(Elem::I32(0));
        base.set_outputs(vec![z]);
        let base = b.func(base);
        let pipe = b.inner(
            "ld",
            vec![],
            InnerOp::LoadTile(crate::ctrl::TileTransfer {
                dram: d,
                dram_base: base,
                rows: 2,
                cols: 16,
                dram_row_stride: 32,
                sram: s,
            }),
        );
        let root = b.outer("root", Schedule::Sequential, vec![], vec![pipe]);
        assert!(matches!(
            b.finish(root),
            Err(ValidateError::TileTooLarge { .. })
        ));
    }

    #[test]
    fn walk_visits_in_program_order() {
        let p = tiny();
        let mut order = Vec::new();
        p.walk(|id, depth| order.push((id.0, depth)));
        assert_eq!(order.len(), 2);
        assert_eq!(order[0].1, 0); // root first
        assert_eq!(order[1].1, 1);
    }

    #[test]
    fn validate_error_messages_nonempty() {
        let errs = [
            ValidateError::RootNotOuter,
            ValidateError::UnknownId {
                kind: "sram",
                id: 3,
            },
            ValidateError::NotATree { ctrl: 1 },
            ValidateError::FoldArity { ctrl: "x".into() },
        ];
        for e in errs {
            assert!(!e.to_string().is_empty());
        }
    }
}
