//! The controller hierarchy: nested parallel patterns as pipelines.
//!
//! Following DHDL (§3.6 of the paper), a program is a tree of controllers.
//! *Outer* controllers contain only other controllers and carry a
//! [`Schedule`] — sequential, coarse-grained pipelined, or streaming
//! (Figure 6). *Inner* controllers contain a single [`InnerOp`]: a dataflow
//! pipeline (Map / Fold / Filter), an off-chip transfer (tile load/store,
//! gather/scatter), or a scalar register write.
//!
//! Every controller owns a counter chain ([`Counter`]) generating its loop
//! indices; an inner controller's innermost counter may carry a `par` factor
//! that the compiler maps to SIMD lanes, and outer counters' `par` factors
//! unroll their subtree across units.

use crate::expr::{BinOp, DramId, FuncId, IndexId, ParamId, RegId, SramId};
use crate::types::Elem;

/// Identifier of a controller within a [`Program`](crate::program::Program).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CtrlId(pub u32);

/// Execution discipline of an outer controller's children (Figure 6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Schedule {
    /// One data-dependent child active at a time; tokens circulate per
    /// iteration. Used for loop-carried dependencies.
    Sequential,
    /// Children overlap across iterations of the parent's counter chain;
    /// intermediate memories are M-buffered and backpressure is enforced
    /// with credits.
    #[default]
    Pipelined,
    /// Children form a fine-grained pipeline communicating through FIFOs;
    /// a child fires whenever its input FIFOs are non-empty and output
    /// FIFOs are non-full.
    Streaming,
}

/// A counter bound that is resolved at runtime.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CBound {
    /// Compile-time constant.
    Const(i64),
    /// The current value of a scalar register (data-dependent trip count,
    /// e.g. a BFS frontier size).
    Reg(RegId),
    /// A runtime parameter.
    Param(ParamId),
}

impl From<i64> for CBound {
    fn from(v: i64) -> CBound {
        CBound::Const(v)
    }
}

/// One programmable counter in a chain.
#[derive(Debug, Clone, PartialEq)]
pub struct Counter {
    /// The loop index this counter produces.
    pub index: IndexId,
    /// Inclusive lower bound.
    pub min: CBound,
    /// Exclusive upper bound.
    pub max: CBound,
    /// Step per iteration (must be positive).
    pub stride: i64,
    /// Parallelization factor: number of simultaneous index values.
    pub par: usize,
}

/// Destination and mode of a value written by a compute pipe.
#[derive(Debug, Clone, PartialEq)]
pub struct PipeWrite {
    /// Scratchpad being written.
    pub sram: SramId,
    /// Address function: outputs are the multi-dimensional coordinates
    /// (one output per dimension of the target scratchpad). Runs on the
    /// PMU's write-address datapath.
    pub addr: FuncId,
    /// Which output slot of the pipe supplies the value.
    pub value_slot: usize,
    /// Plain write or read-modify-write accumulation.
    pub mode: WriteMode,
}

/// Write discipline of a [`PipeWrite`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WriteMode {
    /// Overwrite the addressed word.
    Overwrite,
    /// `mem[addr] = op(mem[addr], value)` — the on-the-fly accumulation
    /// used by dense HashReduce (the op must be associative).
    Accumulate(BinOp),
}

/// A `Map` pattern: the body runs once per index tuple; each output slot may
/// be written to scratchpads.
#[derive(Debug, Clone, PartialEq)]
pub struct MapPipe {
    /// The per-index body (Table 1's `f`). Multi-output.
    pub body: FuncId,
    /// Scratchpad writes fed by the body's outputs.
    pub writes: Vec<PipeWrite>,
}

/// Initial value of a fold accumulator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FoldInit {
    /// Reset to a constant at every invocation of the pipe.
    Const(Elem),
    /// Resume from the output register's current value (accumulation across
    /// invocations; the register must be initialized by the host or an
    /// earlier controller).
    Resume,
}

/// A `Fold` pattern: map then reduce with associative combine ops.
///
/// The combine function is restricted to one associative [`BinOp`] per
/// output slot — exactly what the PCU's cross-lane reduction tree
/// implements. (General 2-argument combine functions would not map to the
/// tree; none of the paper's benchmarks require them.)
#[derive(Debug, Clone, PartialEq)]
pub struct FoldPipe {
    /// The per-index map (Table 1's `f`). One output per fold slot.
    pub map: FuncId,
    /// Associative combine op per slot (Table 1's `r`).
    pub combine: Vec<BinOp>,
    /// Initial accumulator value per slot.
    pub init: Vec<FoldInit>,
    /// Register receiving each slot's final value (`None` to discard).
    pub out_regs: Vec<Option<RegId>>,
    /// Optional scratchpad writes of final values (one write per slot max;
    /// `value_slot` selects the fold slot). The address function sees only
    /// ancestor indices (the pipe's own counters are exhausted).
    pub writes: Vec<PipeWrite>,
}

/// A `FlatMap` specialized to conditional selection (filter): per index the
/// body produces values plus a trailing predicate; when the predicate is
/// truthy the values are appended (compacted across lanes by the PCU's
/// coalescing hardware) to a scratchpad.
#[derive(Debug, Clone, PartialEq)]
pub struct FilterPipe {
    /// Body whose outputs are `[v0, .., v{k-1}, predicate]`.
    pub body: FuncId,
    /// Destination scratchpad; group `j` of iteration `n` lands at linear
    /// address `emitted_before * k + j`.
    pub out: SramId,
    /// Register receiving the total number of emitted *groups*.
    pub count_reg: RegId,
}

/// A dense DRAM↔scratchpad tile transfer, mapped to address generators
/// issuing burst commands (§3.4).
#[derive(Debug, Clone, PartialEq)]
pub struct TileTransfer {
    /// DRAM buffer.
    pub dram: DramId,
    /// Scalar function computing the element offset of the tile's first
    /// element in DRAM (may read ancestor indices, params, registers).
    pub dram_base: FuncId,
    /// Number of rows in the tile (1 for a flat vector).
    pub rows: usize,
    /// Contiguous elements per row.
    pub cols: usize,
    /// DRAM stride between row starts, in elements (= matrix width).
    pub dram_row_stride: usize,
    /// Destination/source scratchpad (filled/read row-major from offset 0).
    pub sram: SramId,
}

/// A sparse DRAM read:
/// `dst[i] = dram[base + indices[idx_base + i]]` for `i < len`.
#[derive(Debug, Clone, PartialEq)]
pub struct GatherOp {
    /// DRAM buffer.
    pub dram: DramId,
    /// Scalar base-offset function.
    pub base: FuncId,
    /// Scratchpad of `I32` element offsets.
    pub indices: SramId,
    /// First index read from `indices` (supports CSR row slices).
    pub idx_base: CBound,
    /// Destination scratchpad.
    pub dst: SramId,
    /// Number of elements to gather.
    pub len: CBound,
}

/// A sparse DRAM write:
/// `dram[base + indices[idx_base + i]] = src[i]` for `i < len`.
#[derive(Debug, Clone, PartialEq)]
pub struct ScatterOp {
    /// DRAM buffer.
    pub dram: DramId,
    /// Scalar base-offset function.
    pub base: FuncId,
    /// Scratchpad of `I32` element offsets.
    pub indices: SramId,
    /// First index read from `indices`.
    pub idx_base: CBound,
    /// Source scratchpad.
    pub src: SramId,
    /// Number of elements to scatter.
    pub len: CBound,
}

/// A scalar register update `reg = f()`, used for loop-carried scalar state
/// (frontier sizes, convergence flags). Maps to control/scalar logic in a
/// switch or a single-lane PCU stage.
#[derive(Debug, Clone, PartialEq)]
pub struct RegWrite {
    /// Destination register.
    pub reg: RegId,
    /// Single-output scalar function.
    pub func: FuncId,
}

/// The work performed by an inner (leaf) controller.
#[derive(Debug, Clone, PartialEq)]
pub enum InnerOp {
    /// Dense DRAM → scratchpad transfer.
    LoadTile(TileTransfer),
    /// Dense scratchpad → DRAM transfer.
    StoreTile(TileTransfer),
    /// Sparse DRAM read.
    Gather(GatherOp),
    /// Sparse DRAM write.
    Scatter(ScatterOp),
    /// Map pattern.
    Map(MapPipe),
    /// Fold pattern.
    Fold(FoldPipe),
    /// FlatMap/filter pattern.
    Filter(FilterPipe),
    /// Scalar register update.
    RegWrite(RegWrite),
}

impl InnerOp {
    /// Short mnemonic for diagnostics.
    pub fn kind_name(&self) -> &'static str {
        match self {
            InnerOp::LoadTile(_) => "load_tile",
            InnerOp::StoreTile(_) => "store_tile",
            InnerOp::Gather(_) => "gather",
            InnerOp::Scatter(_) => "scatter",
            InnerOp::Map(_) => "map",
            InnerOp::Fold(_) => "fold",
            InnerOp::Filter(_) => "filter",
            InnerOp::RegWrite(_) => "reg_write",
        }
    }

    /// Whether this op touches off-chip memory.
    pub fn is_transfer(&self) -> bool {
        matches!(
            self,
            InnerOp::LoadTile(_) | InnerOp::StoreTile(_) | InnerOp::Gather(_) | InnerOp::Scatter(_)
        )
    }
}

/// Body of a controller: either nested children or a leaf op.
#[derive(Debug, Clone, PartialEq)]
pub enum CtrlBody {
    /// An outer controller: contains only other controllers.
    Outer {
        /// Execution discipline of the children.
        schedule: Schedule,
        /// Child controllers, in program order (data dependencies between
        /// siblings are inferred from their memory footprints).
        children: Vec<CtrlId>,
    },
    /// An inner controller: a single leaf op.
    Inner(InnerOp),
}

/// One node of the controller tree.
#[derive(Debug, Clone, PartialEq)]
pub struct Controller {
    /// Diagnostic name.
    pub name: String,
    /// Counter chain (outermost first; empty = run exactly once per parent
    /// iteration).
    pub cchain: Vec<Counter>,
    /// Children or leaf op.
    pub body: CtrlBody,
}

impl Controller {
    /// Whether this is an outer controller.
    pub fn is_outer(&self) -> bool {
        matches!(self.body, CtrlBody::Outer { .. })
    }

    /// Total parallelization factor of the counter chain.
    pub fn total_par(&self) -> usize {
        self.cchain.iter().map(|c| c.par.max(1)).product()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cbound_from_i64() {
        assert_eq!(CBound::from(5i64), CBound::Const(5));
    }

    #[test]
    fn inner_op_classification() {
        let t = TileTransfer {
            dram: DramId(0),
            dram_base: FuncId(0),
            rows: 1,
            cols: 16,
            dram_row_stride: 16,
            sram: SramId(0),
        };
        let op = InnerOp::LoadTile(t);
        assert!(op.is_transfer());
        assert_eq!(op.kind_name(), "load_tile");
        let rw = InnerOp::RegWrite(RegWrite {
            reg: RegId(0),
            func: FuncId(0),
        });
        assert!(!rw.is_transfer());
    }

    #[test]
    fn total_par_multiplies_counters() {
        let c = Controller {
            name: "c".into(),
            cchain: vec![
                Counter {
                    index: IndexId(0),
                    min: 0.into(),
                    max: 8.into(),
                    stride: 1,
                    par: 2,
                },
                Counter {
                    index: IndexId(1),
                    min: 0.into(),
                    max: 64.into(),
                    stride: 1,
                    par: 16,
                },
            ],
            body: CtrlBody::Outer {
                schedule: Schedule::Pipelined,
                children: vec![],
            },
        };
        assert_eq!(c.total_par(), 32);
        assert!(c.is_outer());
    }

    #[test]
    fn default_schedule_is_pipelined() {
        assert_eq!(Schedule::default(), Schedule::Pipelined);
    }
}
