//! Execution traces: the bridge between functional execution and the
//! cycle-accurate simulator.
//!
//! The reference interpreter can record *what work happened* — how many
//! index tuples each leaf controller processed, which DRAM elements each
//! transfer touched, how many groups a filter emitted — without any notion
//! of time. The simulator replays this trace against a compiled machine
//! configuration to obtain cycle counts, exactly as
//! trace-driven memory-system simulators (DRAMSim2 among them) separate
//! functional concerns from timing concerns.

use crate::ctrl::CtrlId;
use crate::expr::DramId;

/// One contiguous run of DRAM elements touched by a transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DramRange {
    /// Buffer touched.
    pub dram: DramId,
    /// First element offset.
    pub offset: i64,
    /// Elements (contiguous).
    pub len: u32,
    /// Write (store/scatter) or read (load/gather).
    pub is_write: bool,
}

/// Work performed by one invocation of a leaf controller (a full sweep of
/// its own counter chain).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct LeafWork {
    /// Index tuples processed.
    pub trips: u64,
    /// Groups emitted (filters only).
    pub emitted: u64,
    /// DRAM elements touched (transfers only). Dense rows appear as long
    /// ranges; sparse accesses as single-element ranges in access order.
    pub dram: Vec<DramRange>,
}

/// Receives structural events while the interpreter runs.
///
/// Events arrive in functional (program) order:
/// `outer_enter → (outer_iter → child events...)* → outer_exit` for each
/// outer-controller invocation, and one `leaf` per leaf invocation.
pub trait TraceSink {
    /// An outer controller's invocation begins.
    fn outer_enter(&mut self, ctrl: CtrlId);
    /// One iteration of the outer controller's own counter chain begins.
    fn outer_iter(&mut self, ctrl: CtrlId);
    /// The outer controller's invocation ends.
    fn outer_exit(&mut self, ctrl: CtrlId);
    /// A leaf controller completed one invocation.
    fn leaf(&mut self, ctrl: CtrlId, work: LeafWork);
}

/// A sink that discards everything (used by plain `run`).
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn outer_enter(&mut self, _: CtrlId) {}
    fn outer_iter(&mut self, _: CtrlId) {}
    fn outer_exit(&mut self, _: CtrlId) {}
    fn leaf(&mut self, _: CtrlId, _: LeafWork) {}
}

/// A recorded execution tree.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceNode {
    /// An outer controller invocation: children grouped per own-iteration.
    Outer {
        /// The controller.
        ctrl: CtrlId,
        /// `iters[i]` holds the child invocations of iteration `i`, in
        /// program order.
        iters: Vec<Vec<TraceNode>>,
    },
    /// A leaf invocation.
    Leaf {
        /// The controller.
        ctrl: CtrlId,
        /// Its work.
        work: LeafWork,
    },
}

impl TraceNode {
    /// The controller this node belongs to.
    pub fn ctrl(&self) -> CtrlId {
        match self {
            TraceNode::Outer { ctrl, .. } | TraceNode::Leaf { ctrl, .. } => *ctrl,
        }
    }

    /// Total leaf invocations in this subtree.
    pub fn leaf_count(&self) -> u64 {
        match self {
            TraceNode::Leaf { .. } => 1,
            TraceNode::Outer { iters, .. } => iters
                .iter()
                .flat_map(|c| c.iter())
                .map(TraceNode::leaf_count)
                .sum(),
        }
    }

    /// Total index tuples across all leaf invocations.
    pub fn total_trips(&self) -> u64 {
        match self {
            TraceNode::Leaf { work, .. } => work.trips,
            TraceNode::Outer { iters, .. } => iters
                .iter()
                .flat_map(|c| c.iter())
                .map(TraceNode::total_trips)
                .sum(),
        }
    }
}

/// A [`TraceSink`] that builds the full [`TraceNode`] tree.
#[derive(Debug, Default)]
pub struct TraceRecorder {
    /// Stack of (ctrl, iters-in-progress); the current iteration is the
    /// last element of `iters`.
    stack: Vec<(CtrlId, Vec<Vec<TraceNode>>)>,
    root: Option<TraceNode>,
}

impl TraceRecorder {
    /// Creates an empty recorder.
    pub fn new() -> TraceRecorder {
        TraceRecorder::default()
    }

    /// The finished trace.
    ///
    /// # Panics
    ///
    /// Panics if recording never happened or is unbalanced.
    pub fn into_trace(self) -> TraceNode {
        assert!(self.stack.is_empty(), "unbalanced trace recording");
        self.root.expect("no trace recorded")
    }

    fn attach(&mut self, node: TraceNode) {
        match self.stack.last_mut() {
            Some((_, iters)) => {
                if iters.is_empty() {
                    // Leaf arriving before any outer_iter: tolerate by
                    // opening an implicit iteration.
                    iters.push(Vec::new());
                }
                iters.last_mut().expect("iteration open").push(node);
            }
            None => self.root = Some(node),
        }
    }
}

impl TraceSink for TraceRecorder {
    fn outer_enter(&mut self, ctrl: CtrlId) {
        self.stack.push((ctrl, Vec::new()));
    }

    fn outer_iter(&mut self, ctrl: CtrlId) {
        let (c, iters) = self.stack.last_mut().expect("outer_iter without enter");
        debug_assert_eq!(*c, ctrl);
        iters.push(Vec::new());
    }

    fn outer_exit(&mut self, ctrl: CtrlId) {
        let (c, iters) = self.stack.pop().expect("outer_exit without enter");
        assert_eq!(c, ctrl, "unbalanced outer controller events");
        self.attach(TraceNode::Outer { ctrl, iters });
    }

    fn leaf(&mut self, ctrl: CtrlId, work: LeafWork) {
        self.attach(TraceNode::Leaf { ctrl, work });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recorder_builds_tree() {
        let mut r = TraceRecorder::new();
        r.outer_enter(CtrlId(0));
        r.outer_iter(CtrlId(0));
        r.leaf(
            CtrlId(1),
            LeafWork {
                trips: 10,
                ..LeafWork::default()
            },
        );
        r.outer_iter(CtrlId(0));
        r.leaf(
            CtrlId(1),
            LeafWork {
                trips: 5,
                ..LeafWork::default()
            },
        );
        r.outer_exit(CtrlId(0));
        let t = r.into_trace();
        assert_eq!(t.ctrl(), CtrlId(0));
        assert_eq!(t.leaf_count(), 2);
        assert_eq!(t.total_trips(), 15);
        if let TraceNode::Outer { iters, .. } = &t {
            assert_eq!(iters.len(), 2);
        } else {
            panic!("expected outer node");
        }
    }

    #[test]
    #[should_panic(expected = "no trace recorded")]
    fn empty_recorder_panics() {
        TraceRecorder::new().into_trace();
    }
}
