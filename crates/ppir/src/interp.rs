//! Host reference interpreter for parallel-pattern programs.
//!
//! The interpreter executes a [`Program`] with *sequential* semantics:
//! controllers run depth-first in program order, ignoring schedules and
//! parallelization factors. Because the programming model guarantees that
//! schedules and `par` factors only affect performance (the compiler
//! inserts N-buffering to preserve values), the interpreter's final memory
//! state is the golden reference against which the cycle-accurate simulator
//! is checked, element for element.

use crate::ctrl::{
    CBound, Counter, CtrlBody, CtrlId, FilterPipe, FoldInit, FoldPipe, GatherOp, InnerOp, MapPipe,
    PipeWrite, RegWrite, ScatterOp, TileTransfer, WriteMode,
};
use crate::expr::{eval_binop, eval_unop, DramId, Expr, Func, FuncId, RegId, SramId};
use crate::program::Program;
use crate::trace::{DramRange, LeafWork, NullSink, TraceSink};
use crate::types::{Elem, TypeError};
use std::fmt;

/// Runtime error raised by the interpreter.
#[derive(Debug, Clone, PartialEq)]
pub enum RunError {
    /// A word of the wrong type reached an operation.
    Type(TypeError),
    /// Scratchpad access out of bounds.
    SramOob {
        /// Scratchpad name.
        mem: String,
        /// Offending linear or per-dim coordinate.
        addr: i64,
    },
    /// DRAM access out of bounds.
    DramOob {
        /// Buffer name.
        mem: String,
        /// Offending element offset.
        addr: i64,
    },
    /// A `FoldInit::Resume` slot has no output register to resume from.
    ResumeWithoutReg {
        /// Controller name.
        ctrl: String,
    },
    /// A filter emitted more groups than its output scratchpad holds.
    FilterOverflow {
        /// Controller name.
        ctrl: String,
    },
    /// A counter bound resolved to a negative trip count configuration.
    BadBound {
        /// Controller name.
        ctrl: String,
    },
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::Type(e) => write!(f, "{e}"),
            RunError::SramOob { mem, addr } => {
                write!(f, "scratchpad `{mem}` access out of bounds at {addr}")
            }
            RunError::DramOob { mem, addr } => {
                write!(f, "dram `{mem}` access out of bounds at {addr}")
            }
            RunError::ResumeWithoutReg { ctrl } => {
                write!(f, "fold `{ctrl}` resumes a slot with no output register")
            }
            RunError::FilterOverflow { ctrl } => {
                write!(f, "filter `{ctrl}` overflowed its output scratchpad")
            }
            RunError::BadBound { ctrl } => {
                write!(f, "controller `{ctrl}` has an invalid runtime bound")
            }
        }
    }
}

impl std::error::Error for RunError {}

impl From<TypeError> for RunError {
    fn from(e: TypeError) -> RunError {
        RunError::Type(e)
    }
}

/// Counters accumulated during interpretation, used for sanity cross-checks
/// against the simulator's activity counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InterpStats {
    /// Pattern-body evaluations (one per index tuple of each compute pipe).
    pub body_invocations: u64,
    /// Words read from DRAM (dense + sparse).
    pub dram_reads: u64,
    /// Words written to DRAM (dense + sparse).
    pub dram_writes: u64,
    /// Words written to scratchpads by compute pipes.
    pub sram_writes: u64,
}

/// Interpreter state: one program plus its memories.
#[derive(Debug, Clone)]
pub struct Machine<'p> {
    prog: &'p Program,
    drams: Vec<Vec<Elem>>,
    srams: Vec<Vec<Elem>>,
    regs: Vec<Elem>,
    params: Vec<Elem>,
    indices: Vec<i64>,
    cur_work: LeafWork,
    /// Accumulated statistics.
    pub stats: InterpStats,
}

impl<'p> Machine<'p> {
    /// Creates a machine with zero-initialized memories for `prog`.
    pub fn new(prog: &'p Program) -> Machine<'p> {
        Machine {
            prog,
            drams: prog
                .drams()
                .iter()
                .map(|d| vec![Elem::zero(d.dtype); d.len])
                .collect(),
            srams: prog
                .srams()
                .iter()
                .map(|s| vec![Elem::zero(s.dtype); s.capacity()])
                .collect(),
            regs: prog.regs().iter().map(|r| Elem::zero(r.dtype)).collect(),
            params: prog.params().iter().map(|p| Elem::zero(p.dtype)).collect(),
            indices: vec![0; prog.num_indices() as usize],
            cur_work: LeafWork::default(),
            stats: InterpStats::default(),
        }
    }

    /// Copies host data into a DRAM buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data` is longer than the buffer.
    pub fn write_dram(&mut self, id: DramId, data: &[Elem]) {
        let buf = &mut self.drams[id.0 as usize];
        assert!(data.len() <= buf.len(), "host data exceeds buffer");
        buf[..data.len()].copy_from_slice(data);
    }

    /// Reads back a DRAM buffer.
    pub fn dram_data(&self, id: DramId) -> &[Elem] {
        &self.drams[id.0 as usize]
    }

    /// Reads back a scratchpad.
    pub fn sram_data(&self, id: SramId) -> &[Elem] {
        &self.srams[id.0 as usize]
    }

    /// Sets a runtime parameter.
    pub fn set_param(&mut self, id: crate::expr::ParamId, v: Elem) {
        self.params[id.0 as usize] = v;
    }

    /// Sets a register (e.g. to seed an accumulating fold).
    pub fn set_reg(&mut self, id: RegId, v: Elem) {
        self.regs[id.0 as usize] = v;
    }

    /// Reads a register.
    pub fn reg(&self, id: RegId) -> Elem {
        self.regs[id.0 as usize]
    }

    /// Executes the whole program.
    ///
    /// # Errors
    ///
    /// Returns [`RunError`] on out-of-bounds accesses, type errors, or
    /// invalid runtime bounds.
    pub fn run(&mut self) -> Result<(), RunError> {
        self.run_traced(&mut NullSink)
    }

    /// Executes the whole program, reporting structural events and leaf
    /// work to `sink` (see [`TraceSink`]). The cycle-accurate simulator
    /// replays the recorded trace for timing.
    ///
    /// # Errors
    ///
    /// Same as [`Machine::run`].
    pub fn run_traced(&mut self, sink: &mut dyn TraceSink) -> Result<(), RunError> {
        self.exec_ctrl(self.prog.root(), sink)
    }

    fn exec_ctrl(&mut self, id: CtrlId, sink: &mut dyn TraceSink) -> Result<(), RunError> {
        let ctrl = self.prog.ctrl(id);
        let dims = self.resolve_cchain(&ctrl.cchain, &ctrl.name)?;
        match &ctrl.body {
            CtrlBody::Outer { children, .. } => {
                let children = children.clone();
                sink.outer_enter(id);
                self.iterate(&dims, 0, &mut |m| {
                    sink.outer_iter(id);
                    for &c in &children {
                        m.exec_ctrl(c, sink)?;
                    }
                    Ok(())
                })?;
                sink.outer_exit(id);
                Ok(())
            }
            CtrlBody::Inner(op) => {
                let op = op.clone();
                let name = ctrl.name.clone();
                self.cur_work = LeafWork::default();
                self.exec_inner(&name, &dims, &op)?;
                let work = std::mem::take(&mut self.cur_work);
                sink.leaf(id, work);
                Ok(())
            }
        }
    }

    /// Resolves counter bounds to concrete `(index, min, max, stride)` tuples.
    fn resolve_cchain(
        &self,
        cchain: &[Counter],
        ctrl_name: &str,
    ) -> Result<Vec<(usize, i64, i64, i64)>, RunError> {
        cchain
            .iter()
            .map(|c| {
                let min = self.resolve_bound(c.min)?;
                let max = self.resolve_bound(c.max)?;
                if c.stride < 1 {
                    return Err(RunError::BadBound {
                        ctrl: ctrl_name.to_string(),
                    });
                }
                Ok((c.index.0 as usize, min, max, c.stride))
            })
            .collect()
    }

    fn resolve_bound(&self, b: CBound) -> Result<i64, RunError> {
        Ok(match b {
            CBound::Const(v) => v,
            CBound::Reg(r) => self.regs[r.0 as usize].as_i32()? as i64,
            CBound::Param(p) => self.params[p.0 as usize].as_i32()? as i64,
        })
    }

    /// Nested iteration over resolved counter dims, invoking `act` per tuple.
    fn iterate(
        &mut self,
        dims: &[(usize, i64, i64, i64)],
        d: usize,
        act: &mut dyn FnMut(&mut Self) -> Result<(), RunError>,
    ) -> Result<(), RunError> {
        if d == dims.len() {
            return act(self);
        }
        let (idx, min, max, stride) = dims[d];
        let mut v = min;
        while v < max {
            self.indices[idx] = v;
            self.iterate(dims, d + 1, act)?;
            v += stride;
        }
        Ok(())
    }

    /// Evaluates a function in the current index environment.
    fn eval(&mut self, fid: FuncId, args: &[Elem]) -> Result<Vec<Elem>, RunError> {
        let f: &Func = self.prog.func(fid);
        let mut vals: Vec<Elem> = Vec::with_capacity(f.nodes().len());
        for node in f.nodes() {
            let v = match node {
                Expr::Const(c) => *c,
                Expr::Index(i) => Elem::I32(self.indices[i.0 as usize] as i32),
                Expr::Param(p) => self.params[p.0 as usize],
                Expr::ReadReg(r) => self.regs[r.0 as usize],
                Expr::Arg(n) => args[*n as usize],
                Expr::Load { mem, addr } => {
                    let coords: Vec<i64> = addr
                        .iter()
                        .map(|&a| vals[a.0 as usize].as_i32().map(|v| v as i64))
                        .collect::<Result<_, _>>()?;
                    let sram = self.prog.sram(*mem);
                    let off = sram.flatten(&coords).ok_or_else(|| RunError::SramOob {
                        mem: sram.name.clone(),
                        addr: *coords.first().unwrap_or(&-1),
                    })?;
                    self.srams[mem.0 as usize][off]
                }
                Expr::Unary(op, a) => eval_unop(*op, vals[a.0 as usize])?,
                Expr::Binary(op, a, b) => eval_binop(*op, vals[a.0 as usize], vals[b.0 as usize])?,
                Expr::Mux(c, t, e) => {
                    if vals[c.0 as usize].is_truthy() {
                        vals[t.0 as usize]
                    } else {
                        vals[e.0 as usize]
                    }
                }
            };
            vals.push(v);
        }
        Ok(f.outputs().iter().map(|&o| vals[o.0 as usize]).collect())
    }

    fn eval_scalar(&mut self, fid: FuncId) -> Result<Elem, RunError> {
        Ok(self.eval(fid, &[])?[0])
    }

    fn sram_write_linear(&mut self, id: SramId, off: i64, v: Elem) -> Result<(), RunError> {
        let buf = &mut self.srams[id.0 as usize];
        if off < 0 || off as usize >= buf.len() {
            return Err(RunError::SramOob {
                mem: self.prog.sram(id).name.clone(),
                addr: off,
            });
        }
        buf[off as usize] = v;
        Ok(())
    }

    fn sram_read_linear(&self, id: SramId, off: i64) -> Result<Elem, RunError> {
        let buf = &self.srams[id.0 as usize];
        if off < 0 || off as usize >= buf.len() {
            return Err(RunError::SramOob {
                mem: self.prog.sram(id).name.clone(),
                addr: off,
            });
        }
        Ok(buf[off as usize])
    }

    fn dram_read(&self, id: DramId, off: i64) -> Result<Elem, RunError> {
        let buf = &self.drams[id.0 as usize];
        if off < 0 || off as usize >= buf.len() {
            return Err(RunError::DramOob {
                mem: self.prog.dram(id).name.clone(),
                addr: off,
            });
        }
        Ok(buf[off as usize])
    }

    fn dram_write(&mut self, id: DramId, off: i64, v: Elem) -> Result<(), RunError> {
        let buf = &mut self.drams[id.0 as usize];
        if off < 0 || off as usize >= buf.len() {
            return Err(RunError::DramOob {
                mem: self.prog.dram(id).name.clone(),
                addr: off,
            });
        }
        buf[off as usize] = v;
        Ok(())
    }

    /// Applies one pipe write given already-evaluated body outputs.
    fn apply_write(&mut self, w: &PipeWrite, outs: &[Elem]) -> Result<(), RunError> {
        let coords: Vec<i64> = self
            .eval(w.addr, &[])?
            .iter()
            .map(|e| e.as_i32().map(|v| v as i64))
            .collect::<Result<_, _>>()?;
        let sram = self.prog.sram(w.sram);
        let off = sram.flatten(&coords).ok_or_else(|| RunError::SramOob {
            mem: sram.name.clone(),
            addr: *coords.first().unwrap_or(&-1),
        })? as i64;
        let v = outs[w.value_slot];
        let stored = match w.mode {
            WriteMode::Overwrite => v,
            WriteMode::Accumulate(op) => {
                let old = self.sram_read_linear(w.sram, off)?;
                eval_binop(op, old, v)?
            }
        };
        self.stats.sram_writes += 1;
        self.sram_write_linear(w.sram, off, stored)
    }

    fn exec_inner(
        &mut self,
        name: &str,
        dims: &[(usize, i64, i64, i64)],
        op: &InnerOp,
    ) -> Result<(), RunError> {
        match op {
            InnerOp::Map(m) => self.exec_map(dims, m),
            InnerOp::Fold(f) => self.exec_fold(name, dims, f),
            InnerOp::Filter(f) => self.exec_filter(name, dims, f),
            InnerOp::RegWrite(rw) => self.exec_regwrite(dims, rw),
            InnerOp::LoadTile(t) => self.exec_tuplewise(dims, &mut |m| m.load_tile(t)),
            InnerOp::StoreTile(t) => self.exec_tuplewise(dims, &mut |m| m.store_tile(t)),
            InnerOp::Gather(g) => self.exec_tuplewise(dims, &mut |m| m.gather(g)),
            InnerOp::Scatter(s) => self.exec_tuplewise(dims, &mut |m| m.scatter(s)),
        }
    }

    fn exec_tuplewise(
        &mut self,
        dims: &[(usize, i64, i64, i64)],
        act: &mut dyn FnMut(&mut Self) -> Result<(), RunError>,
    ) -> Result<(), RunError> {
        self.iterate(dims, 0, act)
    }

    fn exec_map(&mut self, dims: &[(usize, i64, i64, i64)], m: &MapPipe) -> Result<(), RunError> {
        self.iterate(dims, 0, &mut |s| {
            s.stats.body_invocations += 1;
            s.cur_work.trips += 1;
            let outs = s.eval(m.body, &[])?;
            for w in &m.writes {
                s.apply_write(w, &outs)?;
            }
            Ok(())
        })
    }

    fn exec_fold(
        &mut self,
        name: &str,
        dims: &[(usize, i64, i64, i64)],
        f: &FoldPipe,
    ) -> Result<(), RunError> {
        let n = f.combine.len();
        let mut acc: Vec<Elem> = Vec::with_capacity(n);
        for (slot, init) in f.init.iter().enumerate() {
            match init {
                FoldInit::Const(v) => acc.push(*v),
                FoldInit::Resume => {
                    let reg = f.out_regs[slot].ok_or_else(|| RunError::ResumeWithoutReg {
                        ctrl: name.to_string(),
                    })?;
                    acc.push(self.regs[reg.0 as usize]);
                }
            }
        }
        self.iterate(dims, 0, &mut |s| {
            s.stats.body_invocations += 1;
            s.cur_work.trips += 1;
            let outs = s.eval(f.map, &[])?;
            for slot in 0..n {
                acc[slot] = eval_binop(f.combine[slot], acc[slot], outs[slot])?;
            }
            Ok(())
        })?;
        for (slot, reg) in f.out_regs.iter().enumerate() {
            if let Some(r) = reg {
                self.regs[r.0 as usize] = acc[slot];
            }
        }
        for w in &f.writes {
            self.apply_write(w, &acc)?;
        }
        Ok(())
    }

    fn exec_filter(
        &mut self,
        name: &str,
        dims: &[(usize, i64, i64, i64)],
        f: &FilterPipe,
    ) -> Result<(), RunError> {
        let k = self.prog.func(f.body).outputs().len() - 1;
        let cap = self.prog.sram(f.out).capacity();
        let mut count: i64 = 0;
        self.iterate(dims, 0, &mut |s| {
            s.stats.body_invocations += 1;
            s.cur_work.trips += 1;
            let outs = s.eval(f.body, &[])?;
            if outs[k].is_truthy() {
                if (count as usize + 1) * k > cap {
                    return Err(RunError::FilterOverflow {
                        ctrl: name.to_string(),
                    });
                }
                for (j, &v) in outs[..k].iter().enumerate() {
                    s.stats.sram_writes += 1;
                    s.sram_write_linear(f.out, count * k as i64 + j as i64, v)?;
                }
                count += 1;
            }
            Ok(())
        })?;
        self.cur_work.emitted = count as u64;
        self.regs[f.count_reg.0 as usize] = Elem::I32(count as i32);
        Ok(())
    }

    fn exec_regwrite(
        &mut self,
        dims: &[(usize, i64, i64, i64)],
        rw: &RegWrite,
    ) -> Result<(), RunError> {
        self.iterate(dims, 0, &mut |s| {
            s.cur_work.trips += 1;
            let v = s.eval_scalar(rw.func)?;
            s.regs[rw.reg.0 as usize] = v;
            Ok(())
        })
    }

    fn load_tile(&mut self, t: &TileTransfer) -> Result<(), RunError> {
        let base = self.eval_scalar(t.dram_base)?.as_i32()? as i64;
        for r in 0..t.rows {
            self.cur_work.dram.push(DramRange {
                dram: t.dram,
                offset: base + (r * t.dram_row_stride) as i64,
                len: t.cols as u32,
                is_write: false,
            });
            self.cur_work.trips += t.cols as u64;
            for c in 0..t.cols {
                let v = self.dram_read(t.dram, base + (r * t.dram_row_stride + c) as i64)?;
                self.stats.dram_reads += 1;
                self.sram_write_linear(t.sram, (r * t.cols + c) as i64, v)?;
            }
        }
        Ok(())
    }

    fn store_tile(&mut self, t: &TileTransfer) -> Result<(), RunError> {
        let base = self.eval_scalar(t.dram_base)?.as_i32()? as i64;
        for r in 0..t.rows {
            self.cur_work.dram.push(DramRange {
                dram: t.dram,
                offset: base + (r * t.dram_row_stride) as i64,
                len: t.cols as u32,
                is_write: true,
            });
            self.cur_work.trips += t.cols as u64;
            for c in 0..t.cols {
                let v = self.sram_read_linear(t.sram, (r * t.cols + c) as i64)?;
                self.stats.dram_writes += 1;
                self.dram_write(t.dram, base + (r * t.dram_row_stride + c) as i64, v)?;
            }
        }
        Ok(())
    }

    fn gather(&mut self, g: &GatherOp) -> Result<(), RunError> {
        let base = self.eval_scalar(g.base)?.as_i32()? as i64;
        let len = self.resolve_bound(g.len)?;
        let ib = self.resolve_bound(g.idx_base)?;
        for i in 0..len {
            let idx = self.sram_read_linear(g.indices, ib + i)?.as_i32()? as i64;
            self.cur_work.dram.push(DramRange {
                dram: g.dram,
                offset: base + idx,
                len: 1,
                is_write: false,
            });
            self.cur_work.trips += 1;
            let v = self.dram_read(g.dram, base + idx)?;
            self.stats.dram_reads += 1;
            self.sram_write_linear(g.dst, i, v)?;
        }
        Ok(())
    }

    fn scatter(&mut self, s: &ScatterOp) -> Result<(), RunError> {
        let base = self.eval_scalar(s.base)?.as_i32()? as i64;
        let len = self.resolve_bound(s.len)?;
        let ib = self.resolve_bound(s.idx_base)?;
        for i in 0..len {
            let idx = self.sram_read_linear(s.indices, ib + i)?.as_i32()? as i64;
            self.cur_work.dram.push(DramRange {
                dram: s.dram,
                offset: base + idx,
                len: 1,
                is_write: true,
            });
            self.cur_work.trips += 1;
            let v = self.sram_read_linear(s.src, i)?;
            self.stats.dram_writes += 1;
            self.dram_write(s.dram, base + idx, v)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctrl::Schedule;
    use crate::expr::BinOp;
    use crate::program::ProgramBuilder;
    use crate::types::DType;

    /// out[i] = a[i] + b[i] over a 16-element tile loaded from DRAM.
    fn build_vadd() -> (Program, DramId, DramId, DramId) {
        let mut b = ProgramBuilder::new("vadd");
        let da = b.dram("a", DType::F32, 16);
        let db = b.dram("b", DType::F32, 16);
        let dc = b.dram("c", DType::F32, 16);
        let sa = b.sram("ta", DType::F32, &[16]);
        let sb = b.sram("tb", DType::F32, &[16]);
        let sc = b.sram("tc", DType::F32, &[16]);

        let mut zero = Func::new("zero");
        let z = zero.konst(Elem::I32(0));
        zero.set_outputs(vec![z]);
        let zero = b.func(zero);

        let lda = b.inner(
            "load_a",
            vec![],
            InnerOp::LoadTile(TileTransfer {
                dram: da,
                dram_base: zero,
                rows: 1,
                cols: 16,
                dram_row_stride: 16,
                sram: sa,
            }),
        );
        let ldb = b.inner(
            "load_b",
            vec![],
            InnerOp::LoadTile(TileTransfer {
                dram: db,
                dram_base: zero,
                rows: 1,
                cols: 16,
                dram_row_stride: 16,
                sram: sb,
            }),
        );

        let i = b.counter(0, 16, 1, 4);
        let idx = i.index;
        let mut body = Func::new("add");
        let ii = body.index(idx);
        let av = body.load(sa, vec![ii]);
        let bv = body.load(sb, vec![ii]);
        let sum = body.binary(BinOp::Add, av, bv);
        body.set_outputs(vec![sum]);
        let body = b.func(body);
        let mut addr = Func::new("addr");
        let ii = addr.index(idx);
        addr.set_outputs(vec![ii]);
        let addr = b.func(addr);
        let add = b.inner(
            "add",
            vec![i],
            InnerOp::Map(MapPipe {
                body,
                writes: vec![PipeWrite {
                    sram: sc,
                    addr,
                    value_slot: 0,
                    mode: WriteMode::Overwrite,
                }],
            }),
        );
        let st = b.inner(
            "store_c",
            vec![],
            InnerOp::StoreTile(TileTransfer {
                dram: dc,
                dram_base: zero,
                rows: 1,
                cols: 16,
                dram_row_stride: 16,
                sram: sc,
            }),
        );
        let root = b.outer(
            "root",
            Schedule::Sequential,
            vec![],
            vec![lda, ldb, add, st],
        );
        (b.finish(root).unwrap(), da, db, dc)
    }

    #[test]
    fn vadd_end_to_end() {
        let (p, da, db, dc) = build_vadd();
        let mut m = Machine::new(&p);
        let a: Vec<Elem> = (0..16).map(|i| Elem::F32(i as f32)).collect();
        let bv: Vec<Elem> = (0..16).map(|i| Elem::F32(10.0 * i as f32)).collect();
        m.write_dram(da, &a);
        m.write_dram(db, &bv);
        m.run().unwrap();
        for i in 0..16 {
            assert_eq!(m.dram_data(dc)[i], Elem::F32(11.0 * i as f32));
        }
        assert_eq!(m.stats.body_invocations, 16);
        assert_eq!(m.stats.dram_reads, 32);
        assert_eq!(m.stats.dram_writes, 16);
    }

    #[test]
    fn fold_sums_indices() {
        let mut b = ProgramBuilder::new("sum");
        let r = b.reg("acc", DType::I32);
        let i = b.counter(0, 10, 1, 1);
        let mut map = Func::new("id");
        let ii = map.index(i.index);
        map.set_outputs(vec![ii]);
        let map = b.func(map);
        let fold = b.inner(
            "sum",
            vec![i],
            InnerOp::Fold(FoldPipe {
                map,
                combine: vec![BinOp::Add],
                init: vec![FoldInit::Const(Elem::I32(0))],
                out_regs: vec![Some(r)],
                writes: vec![],
            }),
        );
        let root = b.outer("root", Schedule::Sequential, vec![], vec![fold]);
        let p = b.finish(root).unwrap();
        let mut m = Machine::new(&p);
        m.run().unwrap();
        assert_eq!(m.reg(r), Elem::I32(45));
    }

    #[test]
    fn fold_resume_accumulates_across_invocations() {
        let mut b = ProgramBuilder::new("resume");
        let r = b.reg("acc", DType::I32);
        let outer_i = b.counter(0, 3, 1, 1);
        let inner_i = b.counter(0, 4, 1, 1);
        let mut map = Func::new("one");
        let one = map.konst(Elem::I32(1));
        map.set_outputs(vec![one]);
        let map = b.func(map);
        let fold = b.inner(
            "count",
            vec![inner_i],
            InnerOp::Fold(FoldPipe {
                map,
                combine: vec![BinOp::Add],
                init: vec![FoldInit::Resume],
                out_regs: vec![Some(r)],
                writes: vec![],
            }),
        );
        let root = b.outer("root", Schedule::Sequential, vec![outer_i], vec![fold]);
        let p = b.finish(root).unwrap();
        let mut m = Machine::new(&p);
        m.run().unwrap();
        // 3 outer iterations x 4 inner elements
        assert_eq!(m.reg(r), Elem::I32(12));
    }

    #[test]
    fn filter_compacts_and_counts() {
        let mut b = ProgramBuilder::new("filter");
        let out = b.sram("out", DType::I32, &[16]);
        let cnt = b.reg("cnt", DType::I32);
        let i = b.counter(0, 10, 1, 1);
        let mut body = Func::new("even");
        let ii = body.index(i.index);
        let two = body.konst(Elem::I32(2));
        let m2 = body.binary(BinOp::Rem, ii, two);
        let zero = body.konst(Elem::I32(0));
        let pred = body.binary(BinOp::Eq, m2, zero);
        body.set_outputs(vec![ii, pred]);
        let body = b.func(body);
        let fi = b.inner(
            "keep_even",
            vec![i],
            InnerOp::Filter(FilterPipe {
                body,
                out,
                count_reg: cnt,
            }),
        );
        let root = b.outer("root", Schedule::Sequential, vec![], vec![fi]);
        let p = b.finish(root).unwrap();
        let mut m = Machine::new(&p);
        m.run().unwrap();
        assert_eq!(m.reg(cnt), Elem::I32(5));
        let got: Vec<i32> = (0..5)
            .map(|i| m.sram_data(out)[i].as_i32().unwrap())
            .collect();
        assert_eq!(got, vec![0, 2, 4, 6, 8]);
    }

    #[test]
    fn gather_scatter_roundtrip() {
        let mut b = ProgramBuilder::new("gs");
        let src = b.dram("src", DType::I32, 32);
        let dst = b.dram("dst", DType::I32, 32);
        let idx = b.sram("idx", DType::I32, &[8]);
        let tmp = b.sram("tmp", DType::I32, &[8]);
        let mut zero = Func::new("zero");
        let z = zero.konst(Elem::I32(0));
        zero.set_outputs(vec![z]);
        let zero = b.func(zero);

        // Fill idx[i] = 3*i (on-chip) so gather pulls a strided pattern.
        let i = b.counter(0, 8, 1, 1);
        let mut body = Func::new("idxgen");
        let ii = body.index(i.index);
        let three = body.konst(Elem::I32(3));
        let v = body.binary(BinOp::Mul, ii, three);
        body.set_outputs(vec![v]);
        let body = b.func(body);
        let mut addr = Func::new("addr");
        let ii = addr.index(i.index);
        addr.set_outputs(vec![ii]);
        let addr = b.func(addr);
        let gen = b.inner(
            "idxgen",
            vec![i],
            InnerOp::Map(MapPipe {
                body,
                writes: vec![PipeWrite {
                    sram: idx,
                    addr,
                    value_slot: 0,
                    mode: WriteMode::Overwrite,
                }],
            }),
        );
        let ga = b.inner(
            "gather",
            vec![],
            InnerOp::Gather(GatherOp {
                dram: src,
                base: zero,
                indices: idx,
                idx_base: CBound::Const(0),
                dst: tmp,
                len: CBound::Const(8),
            }),
        );
        let sc = b.inner(
            "scatter",
            vec![],
            InnerOp::Scatter(ScatterOp {
                dram: dst,
                base: zero,
                indices: idx,
                idx_base: CBound::Const(0),
                src: tmp,
                len: CBound::Const(8),
            }),
        );
        let root = b.outer("root", Schedule::Sequential, vec![], vec![gen, ga, sc]);
        let p = b.finish(root).unwrap();
        let mut m = Machine::new(&p);
        let data: Vec<Elem> = (0..32).map(|i| Elem::I32(100 + i)).collect();
        m.write_dram(src, &data);
        m.run().unwrap();
        for i in 0..8 {
            assert_eq!(m.dram_data(dst)[3 * i], Elem::I32(100 + 3 * i as i32));
        }
    }

    #[test]
    fn reg_dependent_bound() {
        let mut b = ProgramBuilder::new("dyn");
        let n = b.reg("n", DType::I32);
        let acc = b.reg("acc", DType::I32);
        // n = 7
        let mut setn = Func::new("setn");
        let seven = setn.konst(Elem::I32(7));
        setn.set_outputs(vec![seven]);
        let setn = b.func(setn);
        let set = b.inner(
            "setn",
            vec![],
            InnerOp::RegWrite(RegWrite { reg: n, func: setn }),
        );
        // acc = sum over 0..n of 1
        let i = b.counter(CBound::Const(0), CBound::Reg(n), 1, 1);
        let mut one = Func::new("one");
        let o = one.konst(Elem::I32(1));
        one.set_outputs(vec![o]);
        let one = b.func(one);
        let fold = b.inner(
            "count",
            vec![i],
            InnerOp::Fold(FoldPipe {
                map: one,
                combine: vec![BinOp::Add],
                init: vec![FoldInit::Const(Elem::I32(0))],
                out_regs: vec![Some(acc)],
                writes: vec![],
            }),
        );
        let root = b.outer("root", Schedule::Sequential, vec![], vec![set, fold]);
        let p = b.finish(root).unwrap();
        let mut m = Machine::new(&p);
        m.run().unwrap();
        assert_eq!(m.reg(acc), Elem::I32(7));
    }

    #[test]
    fn sram_oob_reported() {
        let mut b = ProgramBuilder::new("oob");
        let out = b.sram("out", DType::I32, &[4]);
        let i = b.counter(0, 8, 1, 1);
        let mut body = Func::new("id");
        let ii = body.index(i.index);
        body.set_outputs(vec![ii]);
        let body = b.func(body);
        let mut addr = Func::new("addr");
        let ii = addr.index(i.index);
        addr.set_outputs(vec![ii]);
        let addr = b.func(addr);
        let mp = b.inner(
            "p",
            vec![i],
            InnerOp::Map(MapPipe {
                body,
                writes: vec![PipeWrite {
                    sram: out,
                    addr,
                    value_slot: 0,
                    mode: WriteMode::Overwrite,
                }],
            }),
        );
        let root = b.outer("root", Schedule::Sequential, vec![], vec![mp]);
        let p = b.finish(root).unwrap();
        let mut m = Machine::new(&p);
        assert!(matches!(m.run(), Err(RunError::SramOob { .. })));
    }

    #[test]
    fn accumulate_write_is_dense_hash_reduce() {
        // Histogram: bins[i % 3] += 1 — the canonical dense HashReduce.
        let mut b = ProgramBuilder::new("hist");
        let bins = b.sram("bins", DType::I32, &[3]);
        let i = b.counter(0, 9, 1, 1);
        let mut body = Func::new("one");
        let o = body.konst(Elem::I32(1));
        body.set_outputs(vec![o]);
        let body = b.func(body);
        let mut key = Func::new("key");
        let ii = key.index(i.index);
        let three = key.konst(Elem::I32(3));
        let k = key.binary(BinOp::Rem, ii, three);
        key.set_outputs(vec![k]);
        let key = b.func(key);
        let mp = b.inner(
            "hist",
            vec![i],
            InnerOp::Map(MapPipe {
                body,
                writes: vec![PipeWrite {
                    sram: bins,
                    addr: key,
                    value_slot: 0,
                    mode: WriteMode::Accumulate(BinOp::Add),
                }],
            }),
        );
        let root = b.outer("root", Schedule::Sequential, vec![], vec![mp]);
        let p = b.finish(root).unwrap();
        let mut m = Machine::new(&p);
        m.run().unwrap();
        for i in 0..3 {
            assert_eq!(m.sram_data(bins)[i], Elem::I32(3));
        }
    }
}
