//! Scalar element types and values flowing through parallel-pattern programs.
//!
//! Plasticine functional units operate on 32-bit words that are either
//! two's-complement integers or IEEE-754 single-precision floats (§3.1 of the
//! paper). [`Elem`] is the dynamically-typed word used by the host
//! interpreter and the simulator; [`DType`] is its static type tag.

use std::fmt;

/// Static type of a 32-bit word.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum DType {
    /// 32-bit two's-complement integer.
    #[default]
    I32,
    /// IEEE-754 single-precision float.
    F32,
}

impl fmt::Display for DType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DType::I32 => write!(f, "i32"),
            DType::F32 => write!(f, "f32"),
        }
    }
}

/// A dynamically-typed 32-bit word.
///
/// # Examples
///
/// ```
/// use plasticine_ppir::Elem;
/// let a = Elem::F32(1.5);
/// let b = Elem::F32(2.5);
/// assert_eq!(a.dtype(), b.dtype());
/// ```
#[derive(Debug, Clone, Copy)]
pub enum Elem {
    /// An integer word.
    I32(i32),
    /// A float word.
    F32(f32),
}

impl Elem {
    /// The zero value of the given type.
    pub fn zero(dtype: DType) -> Elem {
        match dtype {
            DType::I32 => Elem::I32(0),
            DType::F32 => Elem::F32(0.0),
        }
    }

    /// The static type of this value.
    pub fn dtype(self) -> DType {
        match self {
            Elem::I32(_) => DType::I32,
            Elem::F32(_) => DType::F32,
        }
    }

    /// The raw 32-bit pattern of this word, as stored in scratchpads and DRAM.
    pub fn to_bits(self) -> u32 {
        match self {
            Elem::I32(v) => v as u32,
            Elem::F32(v) => v.to_bits(),
        }
    }

    /// Reinterprets a raw 32-bit pattern as a word of type `dtype`.
    pub fn from_bits(bits: u32, dtype: DType) -> Elem {
        match dtype {
            DType::I32 => Elem::I32(bits as i32),
            DType::F32 => Elem::F32(f32::from_bits(bits)),
        }
    }

    /// Interprets this word as an integer.
    ///
    /// # Errors
    ///
    /// Returns [`TypeError`] if the word is a float.
    pub fn as_i32(self) -> Result<i32, TypeError> {
        match self {
            Elem::I32(v) => Ok(v),
            Elem::F32(_) => Err(TypeError {
                expected: DType::I32,
                found: DType::F32,
            }),
        }
    }

    /// Interprets this word as a float.
    ///
    /// # Errors
    ///
    /// Returns [`TypeError`] if the word is an integer.
    pub fn as_f32(self) -> Result<f32, TypeError> {
        match self {
            Elem::F32(v) => Ok(v),
            Elem::I32(_) => Err(TypeError {
                expected: DType::F32,
                found: DType::I32,
            }),
        }
    }

    /// Whether this word is "truthy" (non-zero) when used as a predicate.
    ///
    /// Comparisons in the IR produce `I32(0)` / `I32(1)`.
    pub fn is_truthy(self) -> bool {
        match self {
            Elem::I32(v) => v != 0,
            Elem::F32(v) => v != 0.0,
        }
    }
}

impl PartialEq for Elem {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Elem::I32(a), Elem::I32(b)) => a == b,
            // Bitwise equality: scratchpads store bit patterns, so NaN == NaN here.
            (Elem::F32(a), Elem::F32(b)) => a.to_bits() == b.to_bits(),
            _ => false,
        }
    }
}

impl fmt::Display for Elem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Elem::I32(v) => write!(f, "{v}"),
            Elem::F32(v) => write!(f, "{v}"),
        }
    }
}

impl From<i32> for Elem {
    fn from(v: i32) -> Elem {
        Elem::I32(v)
    }
}

impl From<f32> for Elem {
    fn from(v: f32) -> Elem {
        Elem::F32(v)
    }
}

/// Error produced when a word of one type is used where the other is required.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TypeError {
    /// The type the operation required.
    pub expected: DType,
    /// The type that was found.
    pub found: DType,
}

impl fmt::Display for TypeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "type mismatch: expected {}, found {}",
            self.expected, self.found
        )
    }
}

impl std::error::Error for TypeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_has_requested_dtype() {
        assert_eq!(Elem::zero(DType::I32), Elem::I32(0));
        assert_eq!(Elem::zero(DType::F32), Elem::F32(0.0));
    }

    #[test]
    fn bits_roundtrip_i32() {
        for v in [0i32, 1, -1, i32::MIN, i32::MAX, 42] {
            let e = Elem::I32(v);
            assert_eq!(Elem::from_bits(e.to_bits(), DType::I32), e);
        }
    }

    #[test]
    fn bits_roundtrip_f32() {
        for v in [0.0f32, -0.0, 1.5, f32::INFINITY, f32::MIN_POSITIVE] {
            let e = Elem::F32(v);
            assert_eq!(Elem::from_bits(e.to_bits(), DType::F32), e);
        }
    }

    #[test]
    fn nan_is_bitwise_equal_to_itself() {
        let nan = Elem::F32(f32::NAN);
        assert_eq!(nan, nan);
    }

    #[test]
    fn as_i32_rejects_float() {
        let err = Elem::F32(1.0).as_i32().unwrap_err();
        assert_eq!(err.expected, DType::I32);
        assert_eq!(err.found, DType::F32);
        assert!(!err.to_string().is_empty());
    }

    #[test]
    fn as_f32_rejects_int() {
        assert!(Elem::I32(1).as_f32().is_err());
    }

    #[test]
    fn truthiness() {
        assert!(Elem::I32(1).is_truthy());
        assert!(!Elem::I32(0).is_truthy());
        assert!(Elem::F32(0.5).is_truthy());
        assert!(!Elem::F32(0.0).is_truthy());
    }

    #[test]
    fn cross_type_values_are_not_equal() {
        assert_ne!(Elem::I32(0), Elem::F32(0.0));
    }

    #[test]
    fn display_forms() {
        assert_eq!(Elem::I32(-3).to_string(), "-3");
        assert_eq!(DType::F32.to_string(), "f32");
    }
}
