//! Memory objects of a parallel-pattern program.
//!
//! The programming model distinguishes off-chip [`DramBuf`]s (populated by
//! the host, transferred in tiles or via gather/scatter) from on-chip
//! [`Sram`] scratchpads (mapped to Pattern Memory Units) and scalar
//! [`Reg`]isters (mapped to pipeline registers / scalar buses).

use crate::types::DType;

/// Banking strategy hint for an on-chip scratchpad (§3.2 of the paper).
///
/// The compiler uses the hint to configure the PMU's address decoders; the
/// simulator uses it to model bank conflicts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum BankingMode {
    /// Linear accesses striped across banks (dense data structures).
    #[default]
    Strided,
    /// Streaming first-in first-out accesses.
    Fifo,
    /// Sliding-window accesses (stencils / CNN line buffers).
    LineBuffer,
    /// Contents duplicated in every bank, giving one random-read port per
    /// lane (parallel on-chip gather).
    Duplication,
}

/// An off-chip DRAM buffer (1-D array of 32-bit words).
#[derive(Debug, Clone, PartialEq)]
pub struct DramBuf {
    /// Diagnostic name.
    pub name: String,
    /// Element type.
    pub dtype: DType,
    /// Length in elements.
    pub len: usize,
}

/// An on-chip scratchpad, mapped to one or more PMUs.
#[derive(Debug, Clone, PartialEq)]
pub struct Sram {
    /// Diagnostic name.
    pub name: String,
    /// Element type.
    pub dtype: DType,
    /// Logical dimensions (row-major). Product is the capacity in elements.
    pub dims: Vec<usize>,
    /// Banking hint for the PMU address decoders.
    pub banking: BankingMode,
    /// Explicit N-buffer depth override. `None` lets the compiler derive the
    /// depth from producer/consumer distance in the controller hierarchy.
    pub nbuf: Option<usize>,
}

impl Sram {
    /// Capacity in elements (product of dims).
    pub fn capacity(&self) -> usize {
        self.dims.iter().product()
    }

    /// Flattens a multi-dimensional address to a linear element offset.
    ///
    /// Returns `None` if the coordinate count mismatches or any coordinate
    /// is out of bounds.
    pub fn flatten(&self, coords: &[i64]) -> Option<usize> {
        if coords.len() != self.dims.len() {
            return None;
        }
        let mut off: usize = 0;
        for (&c, &d) in coords.iter().zip(&self.dims) {
            if c < 0 || c as usize >= d {
                return None;
            }
            off = off * d + c as usize;
        }
        Some(off)
    }
}

/// A scalar register.
#[derive(Debug, Clone, PartialEq)]
pub struct Reg {
    /// Diagnostic name.
    pub name: String,
    /// Element type.
    pub dtype: DType,
}

/// A runtime scalar parameter (bound when the program is executed).
#[derive(Debug, Clone, PartialEq)]
pub struct Param {
    /// Diagnostic name.
    pub name: String,
    /// Element type.
    pub dtype: DType,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sram(dims: &[usize]) -> Sram {
        Sram {
            name: "t".into(),
            dtype: DType::F32,
            dims: dims.to_vec(),
            banking: BankingMode::Strided,
            nbuf: None,
        }
    }

    #[test]
    fn capacity_is_product_of_dims() {
        assert_eq!(sram(&[4, 8]).capacity(), 32);
        assert_eq!(sram(&[16]).capacity(), 16);
    }

    #[test]
    fn flatten_row_major() {
        let s = sram(&[4, 8]);
        assert_eq!(s.flatten(&[0, 0]), Some(0));
        assert_eq!(s.flatten(&[1, 2]), Some(10));
        assert_eq!(s.flatten(&[3, 7]), Some(31));
    }

    #[test]
    fn flatten_rejects_out_of_bounds() {
        let s = sram(&[4, 8]);
        assert_eq!(s.flatten(&[4, 0]), None);
        assert_eq!(s.flatten(&[0, 8]), None);
        assert_eq!(s.flatten(&[-1, 0]), None);
        assert_eq!(s.flatten(&[0]), None);
    }

    #[test]
    fn default_banking_is_strided() {
        assert_eq!(BankingMode::default(), BankingMode::Strided);
    }
}
