//! Property-based tests for the pattern IR and reference interpreter.

use plasticine_ppir::*;
use proptest::prelude::*;

/// Builds `out[i] = i * mul + add` over `0..n` and runs it.
fn run_affine_map(n: usize, mul: i32, add: i32, par: usize) -> Vec<i32> {
    let mut b = ProgramBuilder::new("affine");
    let out = b.sram("out", DType::I32, &[n.max(1)]);
    let i = b.counter(0, n as i64, 1, par);
    let idx = i.index;
    let mut body = Func::new("body");
    let iv = body.index(idx);
    let m = body.konst(Elem::I32(mul));
    let a = body.konst(Elem::I32(add));
    let t = body.binary(BinOp::Mul, iv, m);
    let v = body.binary(BinOp::Add, t, a);
    body.set_outputs(vec![v]);
    let body = b.func(body);
    let mut addr = Func::new("addr");
    let iv = addr.index(idx);
    addr.set_outputs(vec![iv]);
    let addr = b.func(addr);
    let pipe = b.inner(
        "map",
        vec![i],
        InnerOp::Map(MapPipe {
            body,
            writes: vec![PipeWrite {
                sram: out,
                addr,
                value_slot: 0,
                mode: WriteMode::Overwrite,
            }],
        }),
    );
    let root = b.outer("root", Schedule::Sequential, vec![], vec![pipe]);
    let p = b.finish(root).unwrap();
    let mut m = Machine::new(&p);
    m.run().unwrap();
    m.sram_data(out)[..n]
        .iter()
        .map(|e| e.as_i32().unwrap())
        .collect()
}

proptest! {
    #[test]
    fn map_matches_host_loop(n in 0usize..64, mul in -100i32..100, add in -100i32..100,
                             par in 1usize..8) {
        let got = run_affine_map(n, mul, add, par);
        let want: Vec<i32> = (0..n as i32).map(|i| i.wrapping_mul(mul).wrapping_add(add)).collect();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn associative_ops_reassociate(op in prop::sample::select(vec![
            BinOp::Add, BinOp::Mul, BinOp::Min, BinOp::Max,
            BinOp::And, BinOp::Or, BinOp::Xor]),
        a in any::<i32>(), b in any::<i32>(), c in any::<i32>()) {
        let ab_c = eval_binop(op, eval_binop(op, Elem::I32(a), Elem::I32(b)).unwrap(), Elem::I32(c)).unwrap();
        let a_bc = eval_binop(op, Elem::I32(a), eval_binop(op, Elem::I32(b), Elem::I32(c)).unwrap()).unwrap();
        prop_assert_eq!(ab_c, a_bc);
    }

    #[test]
    fn fold_sum_matches_host(vals in prop::collection::vec(-1000i32..1000, 0..64)) {
        let n = vals.len();
        let mut b = ProgramBuilder::new("sum");
        let data = b.sram("data", DType::I32, &[n.max(1)]);
        let acc = b.reg("acc", DType::I32);
        // Seed the scratchpad via a map from constants is awkward; instead
        // preload through DRAM tile load.
        let d = b.dram("d", DType::I32, n.max(1));
        let mut zero = Func::new("zero");
        let z = zero.konst(Elem::I32(0));
        zero.set_outputs(vec![z]);
        let zero = b.func(zero);
        let ld = b.inner("ld", vec![], InnerOp::LoadTile(TileTransfer {
            dram: d, dram_base: zero, rows: 1, cols: n.max(1), dram_row_stride: n.max(1), sram: data,
        }));
        let i = b.counter(0, n as i64, 1, 4);
        let mut map = Func::new("rd");
        let iv = map.index(i.index);
        let v = map.load(data, vec![iv]);
        map.set_outputs(vec![v]);
        let map = b.func(map);
        let fold = b.inner("fold", vec![i], InnerOp::Fold(FoldPipe {
            map,
            combine: vec![BinOp::Add],
            init: vec![FoldInit::Const(Elem::I32(0))],
            out_regs: vec![Some(acc)],
            writes: vec![],
        }));
        let root = b.outer("root", Schedule::Sequential, vec![], vec![ld, fold]);
        let p = b.finish(root).unwrap();
        let mut m = Machine::new(&p);
        let elems: Vec<Elem> = vals.iter().map(|&v| Elem::I32(v)).collect();
        m.write_dram(d, &elems);
        m.run().unwrap();
        let want: i32 = vals.iter().fold(0i32, |a, &b| a.wrapping_add(b));
        prop_assert_eq!(m.reg(acc), Elem::I32(want));
    }

    #[test]
    fn filter_preserves_order_and_count(vals in prop::collection::vec(-50i32..50, 0..48),
                                        threshold in -50i32..50) {
        let n = vals.len();
        let mut b = ProgramBuilder::new("filter");
        let d = b.dram("d", DType::I32, n.max(1));
        let data = b.sram("data", DType::I32, &[n.max(1)]);
        let out = b.sram("out", DType::I32, &[n.max(1)]);
        let cnt = b.reg("cnt", DType::I32);
        let mut zero = Func::new("zero");
        let z = zero.konst(Elem::I32(0));
        zero.set_outputs(vec![z]);
        let zero = b.func(zero);
        let ld = b.inner("ld", vec![], InnerOp::LoadTile(TileTransfer {
            dram: d, dram_base: zero, rows: 1, cols: n.max(1), dram_row_stride: n.max(1), sram: data,
        }));
        let i = b.counter(0, n as i64, 1, 2);
        let mut body = Func::new("keep");
        let iv = body.index(i.index);
        let v = body.load(data, vec![iv]);
        let t = body.konst(Elem::I32(threshold));
        let pred = body.binary(BinOp::Lt, v, t);
        body.set_outputs(vec![v, pred]);
        let body = b.func(body);
        let fi = b.inner("filter", vec![i], InnerOp::Filter(FilterPipe {
            body, out, count_reg: cnt,
        }));
        let root = b.outer("root", Schedule::Sequential, vec![], vec![ld, fi]);
        let p = b.finish(root).unwrap();
        let mut m = Machine::new(&p);
        let elems: Vec<Elem> = vals.iter().map(|&v| Elem::I32(v)).collect();
        m.write_dram(d, &elems);
        m.run().unwrap();
        let want: Vec<i32> = vals.iter().copied().filter(|&v| v < threshold).collect();
        prop_assert_eq!(m.reg(cnt), Elem::I32(want.len() as i32));
        let got: Vec<i32> = m.sram_data(out)[..want.len()].iter()
            .map(|e| e.as_i32().unwrap()).collect();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn tile_roundtrip_preserves_data(rows in 1usize..8, cols in 1usize..16, stride_extra in 0usize..8,
                                     seedvals in prop::collection::vec(any::<i32>(), 256)) {
        let stride = cols + stride_extra;
        let dram_len = rows * stride + cols;
        let mut b = ProgramBuilder::new("tile");
        let src = b.dram("src", DType::I32, dram_len);
        let dst = b.dram("dst", DType::I32, dram_len);
        let tile = b.sram("tile", DType::I32, &[rows, cols]);
        let mut zero = Func::new("zero");
        let z = zero.konst(Elem::I32(0));
        zero.set_outputs(vec![z]);
        let zero = b.func(zero);
        let ld = b.inner("ld", vec![], InnerOp::LoadTile(TileTransfer {
            dram: src, dram_base: zero, rows, cols, dram_row_stride: stride, sram: tile,
        }));
        let st = b.inner("st", vec![], InnerOp::StoreTile(TileTransfer {
            dram: dst, dram_base: zero, rows, cols, dram_row_stride: stride, sram: tile,
        }));
        let root = b.outer("root", Schedule::Sequential, vec![], vec![ld, st]);
        let p = b.finish(root).unwrap();
        let mut m = Machine::new(&p);
        let data: Vec<Elem> = (0..dram_len).map(|i| Elem::I32(seedvals[i % 256])).collect();
        m.write_dram(src, &data);
        m.run().unwrap();
        for r in 0..rows {
            for c in 0..cols {
                prop_assert_eq!(m.dram_data(dst)[r * stride + c], data[r * stride + c]);
            }
        }
    }

    #[test]
    fn sram_flatten_within_capacity(d0 in 1usize..10, d1 in 1usize..10, c0 in 0i64..10, c1 in 0i64..10) {
        let s = Sram { name: "s".into(), dtype: DType::I32, dims: vec![d0, d1],
                       banking: BankingMode::Strided, nbuf: None };
        match s.flatten(&[c0, c1]) {
            Some(off) => {
                prop_assert!((c0 as usize) < d0 && (c1 as usize) < d1);
                prop_assert!(off < s.capacity());
                prop_assert_eq!(off, c0 as usize * d1 + c1 as usize);
            }
            None => prop_assert!(c0 as usize >= d0 || c1 as usize >= d1),
        }
    }
}
