//! Tests for the ablation-support program transforms and sparse index
//! bases.

use plasticine_ppir::*;

fn mini_program() -> Program {
    let mut b = ProgramBuilder::new("mini");
    let d = b.dram("d", DType::I32, 64);
    let s = b.sram_banked("s", DType::I32, &[64], BankingMode::Duplication);
    let mut zero = Func::new("z");
    let z = zero.konst(Elem::I32(0));
    zero.set_outputs(vec![z]);
    let zero = b.func(zero);
    let ld = b.inner(
        "ld",
        vec![],
        InnerOp::LoadTile(TileTransfer {
            dram: d,
            dram_base: zero,
            rows: 1,
            cols: 64,
            dram_row_stride: 64,
            sram: s,
        }),
    );
    let inner = b.outer("mid", Schedule::Pipelined, vec![], vec![ld]);
    let root = b.outer("root", Schedule::Sequential, vec![], vec![inner]);
    b.finish(root).unwrap()
}

#[test]
fn with_schedules_rewrites_every_outer() {
    let p = mini_program();
    let q = p.with_schedules(|_| Schedule::Streaming);
    let mut seen = 0;
    for c in q.ctrls() {
        if let CtrlBody::Outer { schedule, .. } = &c.body {
            assert_eq!(*schedule, Schedule::Streaming);
            seen += 1;
        }
    }
    assert_eq!(seen, 2);
    // Original untouched.
    if let CtrlBody::Outer { schedule, .. } = &p.ctrl(p.root()).body {
        assert_eq!(*schedule, Schedule::Sequential);
    }
}

#[test]
fn with_banking_rewrites_only_the_target() {
    let p = mini_program();
    let q = p.with_banking(SramId(0), BankingMode::Strided);
    assert_eq!(q.sram(SramId(0)).banking, BankingMode::Strided);
    assert_eq!(p.sram(SramId(0)).banking, BankingMode::Duplication);
}

#[test]
fn gather_idx_base_offsets_the_index_window() {
    // idx = [0,1,2,...,7]; gather 3 elements starting at idx_base=4:
    // dst = src[idx[4..7]] = src[4..7].
    let mut b = ProgramBuilder::new("gslice");
    let src = b.dram("src", DType::I32, 32);
    let idx = b.sram("idx", DType::I32, &[8]);
    let dst = b.sram("dst", DType::I32, &[8]);
    let mut zero = Func::new("z");
    let z = zero.konst(Elem::I32(0));
    zero.set_outputs(vec![z]);
    let zero = b.func(zero);
    let i = b.counter(0, 8, 1, 1);
    let mut iota = Func::new("iota");
    let iv = iota.index(i.index);
    iota.set_outputs(vec![iv]);
    let iota = b.func(iota);
    let mut wa = Func::new("wa");
    let iv = wa.index(i.index);
    wa.set_outputs(vec![iv]);
    let wa = b.func(wa);
    let gen = b.inner(
        "gen",
        vec![i],
        InnerOp::Map(MapPipe {
            body: iota,
            writes: vec![PipeWrite {
                sram: idx,
                addr: wa,
                value_slot: 0,
                mode: WriteMode::Overwrite,
            }],
        }),
    );
    let ga = b.inner(
        "gather",
        vec![],
        InnerOp::Gather(GatherOp {
            dram: src,
            base: zero,
            indices: idx,
            idx_base: CBound::Const(4),
            dst,
            len: CBound::Const(3),
        }),
    );
    let root = b.outer("root", Schedule::Sequential, vec![], vec![gen, ga]);
    let p = b.finish(root).unwrap();
    let mut m = Machine::new(&p);
    let data: Vec<Elem> = (0..32).map(|v| Elem::I32(1000 + v)).collect();
    m.write_dram(src, &data);
    m.run().unwrap();
    for j in 0..3 {
        assert_eq!(m.sram_data(dst)[j], Elem::I32(1004 + j as i32));
    }
    assert_eq!(m.sram_data(dst)[3], Elem::I32(0), "beyond len untouched");
}

#[test]
fn gather_idx_base_out_of_range_is_a_runtime_error() {
    let mut b = ProgramBuilder::new("oob");
    let src = b.dram("src", DType::I32, 32);
    let idx = b.sram("idx", DType::I32, &[4]);
    let dst = b.sram("dst", DType::I32, &[4]);
    let mut zero = Func::new("z");
    let z = zero.konst(Elem::I32(0));
    zero.set_outputs(vec![z]);
    let zero = b.func(zero);
    let ga = b.inner(
        "gather",
        vec![],
        InnerOp::Gather(GatherOp {
            dram: src,
            base: zero,
            indices: idx,
            idx_base: CBound::Const(3),
            dst,
            len: CBound::Const(3), // reads idx[3..6] — out of bounds
        }),
    );
    let root = b.outer("root", Schedule::Sequential, vec![], vec![ga]);
    let p = b.finish(root).unwrap();
    let mut m = Machine::new(&p);
    assert!(matches!(m.run(), Err(RunError::SramOob { .. })));
}
