//! Property tests for the stall attribution: over randomly generated
//! programs, every tracked unit's four cycle classes must sum exactly to
//! the simulated cycle count, and turning off the coalescing units must
//! show up as *more* memory-stall cycles, never fewer.
//!
//! Cases are deterministic (see `plasticine-proptest`); the seeds in
//! `proptest-regressions/stall_invariants.txt` run first on every
//! invocation, pinning them forever.

use plasticine_arch::PlasticineParams;
use plasticine_compiler::compile;
use plasticine_ppir::*;
use plasticine_sim::{simulate, SimOptions, SimResult};
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct TiledParams {
    tiles: usize,
    tile: usize,
    passes: usize,
    par: usize,
    schedule: Schedule,
}

fn tiled_strategy() -> impl Strategy<Value = TiledParams> {
    (
        1usize..5,
        prop::sample::select(vec![32usize, 64, 128]),
        1usize..4,
        prop::sample::select(vec![1usize, 2, 4]),
        prop::sample::select(vec![Schedule::Sequential, Schedule::Pipelined]),
    )
        .prop_map(|(tiles, tile, passes, par, schedule)| TiledParams {
            tiles,
            tile,
            passes,
            par,
            schedule,
        })
}

/// Tiled elementwise square — load, compute (`passes` recompute passes),
/// store — exercising PCUs, PMUs, AGs, and both control protocols.
fn tiled_square(p: &TiledParams) -> (Program, DramId) {
    let n = p.tiles * p.tile;
    let mut b = ProgramBuilder::new("sq");
    let d_in = b.dram("in", DType::F32, n);
    let d_out = b.dram("out", DType::F32, n);
    let s_in = b.sram("t_in", DType::F32, &[p.tile]);
    let s_out = b.sram("t_out", DType::F32, &[p.tile]);
    let t = b.counter(0, p.tiles as i64, 1, p.par);
    let mut basef = Func::new("base");
    let tv = basef.index(t.index);
    let tl = basef.konst(Elem::I32(p.tile as i32));
    let off = basef.binary(BinOp::Mul, tv, tl);
    basef.set_outputs(vec![off]);
    let basef = b.func(basef);
    let ld = b.inner(
        "ld",
        vec![],
        InnerOp::LoadTile(TileTransfer {
            dram: d_in,
            dram_base: basef,
            rows: 1,
            cols: p.tile,
            dram_row_stride: p.tile,
            sram: s_in,
        }),
    );
    let k = b.counter(0, p.passes as i64, 1, 1);
    let i = b.counter(0, p.tile as i64, 1, 16);
    let mut body = Func::new("sq");
    let iv = body.index(i.index);
    let v = body.load(s_in, vec![iv]);
    let sq = body.binary(BinOp::Mul, v, v);
    body.set_outputs(vec![sq]);
    let body = b.func(body);
    let mut wa = Func::new("wa");
    let iv = wa.index(i.index);
    wa.set_outputs(vec![iv]);
    let wa = b.func(wa);
    let mp = b.inner(
        "sq",
        vec![k, i],
        InnerOp::Map(MapPipe {
            body,
            writes: vec![PipeWrite {
                sram: s_out,
                addr: wa,
                value_slot: 0,
                mode: WriteMode::Overwrite,
            }],
        }),
    );
    let st = b.inner(
        "st",
        vec![],
        InnerOp::StoreTile(TileTransfer {
            dram: d_out,
            dram_base: basef,
            rows: 1,
            cols: p.tile,
            dram_row_stride: p.tile,
            sram: s_out,
        }),
    );
    let root = b.outer("tiles", p.schedule, vec![t], vec![ld, mp, st]);
    (b.finish(root).unwrap(), d_in)
}

/// Strided gather: fill an index scratchpad on chip, then gather `len`
/// elements at stride `stride` — the workload the coalescing units exist
/// for.
fn strided_gather(len: usize, stride: usize) -> (Program, DramId) {
    let mut b = ProgramBuilder::new("gather");
    let src = b.dram("src", DType::I32, len * stride + 1);
    let idx = b.sram("idx", DType::I32, &[len]);
    let dst = b.sram("dst", DType::I32, &[len]);
    let mut zero = Func::new("zero");
    let z = zero.konst(Elem::I32(0));
    zero.set_outputs(vec![z]);
    let zero = b.func(zero);
    let i = b.counter(0, len as i64, 1, 1);
    let mut body = Func::new("idxgen");
    let ii = body.index(i.index);
    let s = body.konst(Elem::I32(stride as i32));
    let v = body.binary(BinOp::Mul, ii, s);
    body.set_outputs(vec![v]);
    let body = b.func(body);
    let mut addr = Func::new("addr");
    let ii = addr.index(i.index);
    addr.set_outputs(vec![ii]);
    let addr = b.func(addr);
    let gen = b.inner(
        "idxgen",
        vec![i],
        InnerOp::Map(MapPipe {
            body,
            writes: vec![PipeWrite {
                sram: idx,
                addr,
                value_slot: 0,
                mode: WriteMode::Overwrite,
            }],
        }),
    );
    let ga = b.inner(
        "gather",
        vec![],
        InnerOp::Gather(GatherOp {
            dram: src,
            base: zero,
            indices: idx,
            idx_base: CBound::Const(0),
            dst,
            len: CBound::Const(len as i64),
        }),
    );
    let root = b.outer("root", Schedule::Sequential, vec![], vec![gen, ga]);
    (b.finish(root).unwrap(), src)
}

fn run(p: &Program, d_in: DramId, coalescing: bool) -> SimResult {
    let params = PlasticineParams::paper_final();
    let out = compile(p, &params).unwrap();
    let mut m = Machine::new(p);
    let dtype = p.dram(d_in).dtype;
    let data: Vec<Elem> = (0..p.dram(d_in).len)
        .map(|i| match dtype {
            DType::I32 => Elem::I32(i as i32),
            DType::F32 => Elem::F32(i as f32 * 0.5),
        })
        .collect();
    m.write_dram(d_in, &data);
    let opts = SimOptions {
        coalescing,
        ..SimOptions::default()
    };
    simulate(p, &out, &mut m, &opts).unwrap()
}

/// Asserts the core invariant: per unit, the four classes partition the
/// run exactly.
fn assert_partition(r: &SimResult) -> Result<(), TestCaseError> {
    prop_assert_eq!(r.units.total_cycles, r.cycles);
    prop_assert!(!r.units.units.is_empty(), "no tracked units");
    for u in &r.units.units {
        let c = &u.cycles;
        prop_assert_eq!(
            c.total(),
            r.cycles,
            "unit {} ({}) classes sum to {} over {} cycles (busy {} ctrl {} mem {} idle {})",
            u.label,
            u.kind.as_str(),
            c.total(),
            r.cycles,
            c.busy,
            c.ctrl_stall,
            c.mem_stall,
            c.idle
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn stall_classes_sum_to_total_cycles(p in tiled_strategy()) {
        let (program, d_in) = tiled_square(&p);
        let r = run(&program, d_in, true);
        assert_partition(&r)?;
        // A compute workload with real DRAM traffic exercises every class
        // somewhere: at least one unit must have been busy.
        prop_assert!(r.units.units.iter().any(|u| u.cycles.busy > 0));
    }

    #[test]
    fn disabling_coalescing_only_increases_mem_stall(
        len in prop::sample::select(vec![32usize, 64, 96]),
        stride in prop::sample::select(vec![1usize, 3, 7]),
    ) {
        let (program, src) = strided_gather(len, stride);
        let with = run(&program, src, true);
        let without = run(&program, src, false);
        assert_partition(&with)?;
        assert_partition(&without)?;
        let mem = |r: &SimResult| -> u64 {
            r.units.units.iter().map(|u| u.cycles.mem_stall).sum()
        };
        prop_assert!(
            mem(&without) >= mem(&with),
            "coalescing off: {} mem-stall cycles; on: {}",
            mem(&without),
            mem(&with)
        );
        // And the run can only get slower without coalescing.
        prop_assert!(without.cycles >= with.cycles);
    }
}
