//! Behavioral tests of the simulator's control protocols and edge cases:
//! data-dependent trip counts, zero-work leaves, the deadlock budget,
//! N-buffer credits, and the streaming schedule approximation.

use plasticine_arch::PlasticineParams;
use plasticine_compiler::compile;
use plasticine_ppir::*;
use plasticine_sim::{simulate, SimError, SimOptions};

fn params() -> PlasticineParams {
    PlasticineParams::paper_final()
}

/// Program with a register-bounded loop whose trip count is set at runtime.
fn dynamic_trip_program(limit: i32) -> (Program, RegId) {
    let mut b = ProgramBuilder::new("dyn");
    let n = b.reg("n", DType::I32);
    let acc = b.reg("acc", DType::I32);
    let mut setn = Func::new("setn");
    let c = setn.konst(Elem::I32(limit));
    setn.set_outputs(vec![c]);
    let setn = b.func(setn);
    let set = b.inner(
        "setn",
        vec![],
        InnerOp::RegWrite(RegWrite { reg: n, func: setn }),
    );
    let i = Counter {
        index: b.fresh_index(),
        min: CBound::Const(0),
        max: CBound::Reg(n),
        stride: 1,
        par: 8,
    };
    let mut one = Func::new("one");
    let o = one.konst(Elem::I32(1));
    one.set_outputs(vec![o]);
    let one = b.func(one);
    let fold = b.inner(
        "count",
        vec![i],
        InnerOp::Fold(FoldPipe {
            map: one,
            combine: vec![BinOp::Add],
            init: vec![FoldInit::Const(Elem::I32(0))],
            out_regs: vec![Some(acc)],
            writes: vec![],
        }),
    );
    let root = b.outer("root", Schedule::Sequential, vec![], vec![set, fold]);
    (b.finish(root).unwrap(), acc)
}

#[test]
fn data_dependent_trip_counts_simulate_correctly() {
    for limit in [0, 1, 7, 100] {
        let (p, acc) = dynamic_trip_program(limit);
        let out = compile(&p, &params()).unwrap();
        let mut m = Machine::new(&p);
        let r = simulate(&p, &out, &mut m, &SimOptions::default()).unwrap();
        assert_eq!(m.reg(acc), Elem::I32(limit), "limit {limit}");
        assert!(r.cycles > 0);
    }
}

#[test]
fn zero_trip_loops_cost_almost_nothing() {
    let (p0, _) = dynamic_trip_program(0);
    let (p100, _) = dynamic_trip_program(100);
    let run = |p: &Program| {
        let out = compile(p, &params()).unwrap();
        let mut m = Machine::new(p);
        simulate(p, &out, &mut m, &SimOptions::default())
            .unwrap()
            .cycles
    };
    let c0 = run(&p0);
    let c100 = run(&p100);
    assert!(c0 < c100, "zero-trip {c0} vs 100-trip {c100}");
    assert!(
        c0 < 100,
        "zero-trip program should finish in tens of cycles: {c0}"
    );
}

#[test]
fn cycle_budget_is_enforced() {
    let bench = || {
        let mut b = ProgramBuilder::new("long");
        let acc = b.reg("acc", DType::I32);
        let i = b.counter(0, 1_000_000, 1, 1);
        let mut one = Func::new("one");
        let o = one.konst(Elem::I32(1));
        one.set_outputs(vec![o]);
        let one = b.func(one);
        let fold = b.inner(
            "f",
            vec![i],
            InnerOp::Fold(FoldPipe {
                map: one,
                combine: vec![BinOp::Add],
                init: vec![FoldInit::Const(Elem::I32(0))],
                out_regs: vec![Some(acc)],
                writes: vec![],
            }),
        );
        let root = b.outer("root", Schedule::Sequential, vec![], vec![fold]);
        b.finish(root).unwrap()
    };
    let p = bench();
    let out = compile(&p, &params()).unwrap();
    let mut m = Machine::new(&p);
    let opts = SimOptions {
        max_cycles: 100,
        ..SimOptions::default()
    };
    match simulate(&p, &out, &mut m, &opts) {
        // A slow-but-live schedule exhausting its budget is *not* a
        // deadlock: it gets its own error, at exactly the budget cycle.
        Err(SimError::CycleBudgetExceeded { cycle, budget }) => {
            assert_eq!(cycle, 100);
            assert_eq!(budget, 100);
        }
        other => panic!("expected budget exhaustion, got {other:?}"),
    }
}

/// Producer → consumer over a double-buffered tile under three schedules.
fn sched_program(sched: Schedule) -> Program {
    let n_tiles = 8usize;
    let tile = 128usize;
    let mut b = ProgramBuilder::new("sched");
    let d_in = b.dram("in", DType::I32, n_tiles * tile);
    let d_out = b.dram("out", DType::I32, n_tiles * tile);
    let s_a = b.sram("a", DType::I32, &[tile]);
    let s_b = b.sram("b", DType::I32, &[tile]);
    let t = b.counter(0, n_tiles as i64, 1, 1);
    let mut base = Func::new("base");
    let ti = base.index(t.index);
    let tl = base.konst(Elem::I32(tile as i32));
    let off = base.binary(BinOp::Mul, ti, tl);
    base.set_outputs(vec![off]);
    let base = b.func(base);
    let ld = b.inner(
        "ld",
        vec![],
        InnerOp::LoadTile(TileTransfer {
            dram: d_in,
            dram_base: base,
            rows: 1,
            cols: tile,
            dram_row_stride: tile,
            sram: s_a,
        }),
    );
    let i = b.counter(0, tile as i64, 1, 16);
    let mut body = Func::new("inc");
    let iv = body.index(i.index);
    let v = body.load(s_a, vec![iv]);
    let one = body.konst(Elem::I32(1));
    let r = body.binary(BinOp::Add, v, one);
    body.set_outputs(vec![r]);
    let body = b.func(body);
    let mut wa = Func::new("wa");
    let iv = wa.index(i.index);
    wa.set_outputs(vec![iv]);
    let wa = b.func(wa);
    let mp = b.inner(
        "inc",
        vec![i],
        InnerOp::Map(MapPipe {
            body,
            writes: vec![PipeWrite {
                sram: s_b,
                addr: wa,
                value_slot: 0,
                mode: WriteMode::Overwrite,
            }],
        }),
    );
    let st = b.inner(
        "st",
        vec![],
        InnerOp::StoreTile(TileTransfer {
            dram: d_out,
            dram_base: base,
            rows: 1,
            cols: tile,
            dram_row_stride: tile,
            sram: s_b,
        }),
    );
    let tiles = b.outer("tiles", sched, vec![t], vec![ld, mp, st]);
    let root = b.outer("root", Schedule::Sequential, vec![], vec![tiles]);
    b.finish(root).unwrap()
}

#[test]
fn all_three_schedules_produce_identical_results() {
    let mut outputs = Vec::new();
    for sched in [
        Schedule::Sequential,
        Schedule::Pipelined,
        Schedule::Streaming,
    ] {
        let p = sched_program(sched);
        let out = compile(&p, &params()).unwrap();
        let mut m = Machine::new(&p);
        let data: Vec<Elem> = (0..1024).map(|i| Elem::I32(i * 3)).collect();
        m.write_dram(DramId(0), &data);
        let r = simulate(&p, &out, &mut m, &SimOptions::default()).unwrap();
        outputs.push((sched, r.cycles, m.dram_data(DramId(1)).to_vec()));
    }
    // Functional equality across schedules.
    assert_eq!(outputs[0].2, outputs[1].2);
    assert_eq!(outputs[0].2, outputs[2].2);
    // Sequential is the slowest; streaming behaves like pipelining here.
    assert!(outputs[1].1 < outputs[0].1, "pipelined not faster");
    assert!(outputs[2].1 < outputs[0].1, "streaming not faster");
}

#[test]
fn nbuf_override_reaches_the_config() {
    // Same program, but force 4-buffering on tile `a` via the explicit
    // override; the compiler must respect it.
    let p = sched_program(Schedule::Pipelined);
    let out = compile(&p, &params()).unwrap();
    let nbuf_default = out
        .config
        .units
        .iter()
        .find_map(|u| match u {
            plasticine_arch::UnitCfg::Memory(m) if m.sram == SramId(0) => Some(m.nbuf),
            _ => None,
        })
        .unwrap();
    assert_eq!(nbuf_default, 2, "double buffering inferred");
}

#[test]
fn larger_nbuf_never_slows_down() {
    // More buffering can only relax credits.
    let p = sched_program(Schedule::Pipelined);
    let run = |p: &Program| {
        let out = compile(p, &params()).unwrap();
        let mut m = Machine::new(p);
        let data: Vec<Elem> = (0..1024).map(Elem::I32).collect();
        m.write_dram(DramId(0), &data);
        simulate(p, &out, &mut m, &SimOptions::default())
            .unwrap()
            .cycles
    };
    let base = run(&p);
    // Not directly settable post-hoc per sram (builder-level), so emulate
    // by checking monotonicity across schedules with deeper inferred
    // buffers: the pipelined program (nbuf 2) is no slower than the
    // sequential one (nbuf 1 semantics).
    let seq = run(&p.with_schedules(|_| Schedule::Sequential));
    assert!(base <= seq);
}

#[test]
fn filters_and_gathers_compose_in_one_program() {
    // Filter on-chip, then scatter the survivors' squares to DRAM.
    let n = 256usize;
    let mut b = ProgramBuilder::new("filter_scatter");
    let d_in = b.dram("in", DType::I32, n);
    let d_out = b.dram("out", DType::I32, n);
    let s_in = b.sram("s_in", DType::I32, &[n]);
    let s_keep = b.sram("s_keep", DType::I32, &[n]);
    let s_vals = b.sram("s_vals", DType::I32, &[n]);
    let cnt = b.reg("cnt", DType::I32);
    let zero = {
        let mut f = Func::new("zero");
        let z = f.konst(Elem::I32(0));
        f.set_outputs(vec![z]);
        b.func(f)
    };
    let ld = b.inner(
        "ld",
        vec![],
        InnerOp::LoadTile(TileTransfer {
            dram: d_in,
            dram_base: zero,
            rows: 1,
            cols: n,
            dram_row_stride: n,
            sram: s_in,
        }),
    );
    // keep indices whose value is even
    let i = b.counter(0, n as i64, 1, 8);
    let mut body = Func::new("even");
    let iv = body.index(i.index);
    let v = body.load(s_in, vec![iv]);
    let two = body.konst(Elem::I32(2));
    let zero_c = body.konst(Elem::I32(0));
    let m2 = body.binary(BinOp::Rem, v, two);
    let pred = body.binary(BinOp::Eq, m2, zero_c);
    body.set_outputs(vec![iv, pred]);
    let body = b.func(body);
    let fi = b.inner(
        "filter",
        vec![i],
        InnerOp::Filter(FilterPipe {
            body,
            out: s_keep,
            count_reg: cnt,
        }),
    );
    // vals[j] = in[keep[j]]^2
    let j = Counter {
        index: b.fresh_index(),
        min: CBound::Const(0),
        max: CBound::Reg(cnt),
        stride: 1,
        par: 8,
    };
    let mut sq = Func::new("sq");
    let jv = sq.index(j.index);
    let k = sq.load(s_keep, vec![jv]);
    let x = sq.load(s_in, vec![k]);
    let xx = sq.binary(BinOp::Mul, x, x);
    sq.set_outputs(vec![xx]);
    let sq = b.func(sq);
    let mut wa = Func::new("wa");
    let jv = wa.index(j.index);
    wa.set_outputs(vec![jv]);
    let wa = b.func(wa);
    let mp = b.inner(
        "square",
        vec![j],
        InnerOp::Map(MapPipe {
            body: sq,
            writes: vec![PipeWrite {
                sram: s_vals,
                addr: wa,
                value_slot: 0,
                mode: WriteMode::Overwrite,
            }],
        }),
    );
    let sc = b.inner(
        "scatter",
        vec![],
        InnerOp::Scatter(ScatterOp {
            dram: d_out,
            base: zero,
            indices: s_keep,
            idx_base: CBound::Const(0),
            src: s_vals,
            len: CBound::Reg(cnt),
        }),
    );
    let root = b.outer("root", Schedule::Sequential, vec![], vec![ld, fi, mp, sc]);
    let p = b.finish(root).unwrap();

    let out = compile(&p, &params()).unwrap();
    let mut m = Machine::new(&p);
    let data: Vec<Elem> = (0..n).map(|i| Elem::I32((i as i32 * 5) % 37)).collect();
    m.write_dram(d_in, &data);
    let r = simulate(&p, &out, &mut m, &SimOptions::default()).unwrap();
    assert!(r.coalesce.elem_requests > 0, "scatter goes through the CU");
    for (i, elem) in data.iter().enumerate() {
        let v = elem.as_i32().unwrap();
        if v % 2 == 0 {
            assert_eq!(m.dram_data(d_out)[i], Elem::I32(v * v), "at {i}");
        } else {
            assert_eq!(m.dram_data(d_out)[i], Elem::I32(0), "untouched {i}");
        }
    }
}
