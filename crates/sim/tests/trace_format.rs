//! Validates that [`SimTrace::chrome_trace`] emits well-formed Chrome
//! trace-viewer JSON ("trace event format"): the export round-trips
//! through the JSON parser and every event carries the fields the viewer
//! requires.

use plasticine_arch::PlasticineParams;
use plasticine_compiler::compile;
use plasticine_json::Json;
use plasticine_ppir::*;
use plasticine_sim::{simulate_traced, SimOptions, TraceEvent};

/// Two-tile load → square → store pipeline.
fn small_program() -> (Program, DramId) {
    let tiles = 2usize;
    let tile = 64usize;
    let mut b = ProgramBuilder::new("sq");
    let d_in = b.dram("in", DType::F32, tiles * tile);
    let d_out = b.dram("out", DType::F32, tiles * tile);
    let s_in = b.sram("t_in", DType::F32, &[tile]);
    let s_out = b.sram("t_out", DType::F32, &[tile]);
    let t = b.counter(0, tiles as i64, 1, 1);
    let mut basef = Func::new("base");
    let tv = basef.index(t.index);
    let tl = basef.konst(Elem::I32(tile as i32));
    let off = basef.binary(BinOp::Mul, tv, tl);
    basef.set_outputs(vec![off]);
    let basef = b.func(basef);
    let ld = b.inner(
        "ld",
        vec![],
        InnerOp::LoadTile(TileTransfer {
            dram: d_in,
            dram_base: basef,
            rows: 1,
            cols: tile,
            dram_row_stride: tile,
            sram: s_in,
        }),
    );
    let i = b.counter(0, tile as i64, 1, 16);
    let mut body = Func::new("sq");
    let iv = body.index(i.index);
    let v = body.load(s_in, vec![iv]);
    let sq = body.binary(BinOp::Mul, v, v);
    body.set_outputs(vec![sq]);
    let body = b.func(body);
    let mut wa = Func::new("wa");
    let iv = wa.index(i.index);
    wa.set_outputs(vec![iv]);
    let wa = b.func(wa);
    let mp = b.inner(
        "sq",
        vec![i],
        InnerOp::Map(MapPipe {
            body,
            writes: vec![PipeWrite {
                sram: s_out,
                addr: wa,
                value_slot: 0,
                mode: WriteMode::Overwrite,
            }],
        }),
    );
    let st = b.inner(
        "st",
        vec![],
        InnerOp::StoreTile(TileTransfer {
            dram: d_out,
            dram_base: basef,
            rows: 1,
            cols: tile,
            dram_row_stride: tile,
            sram: s_out,
        }),
    );
    let root = b.outer("tiles", Schedule::Pipelined, vec![t], vec![ld, mp, st]);
    (b.finish(root).unwrap(), d_in)
}

fn get<'a>(obj: &'a Json, key: &str) -> Option<&'a Json> {
    match obj {
        Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
        _ => None,
    }
}

#[test]
fn chrome_trace_is_well_formed() {
    let (p, d_in) = small_program();
    let params = PlasticineParams::paper_final();
    let out = compile(&p, &params).unwrap();
    let mut m = Machine::new(&p);
    let data: Vec<Elem> = (0..p.dram(d_in).len).map(|i| Elem::F32(i as f32)).collect();
    m.write_dram(d_in, &data);
    let (r, trace) = simulate_traced(&p, &out, &mut m, &SimOptions::default()).unwrap();
    assert!(!trace.events.is_empty());

    // Every recorded span lies within the run and is well-ordered.
    for e in &trace.events {
        let (start, end) = match e {
            TraceEvent::Leaf { start, end, .. }
            | TraceEvent::Wait { start, end, .. }
            | TraceEvent::BankConflict { start, end, .. } => (*start, *end),
            TraceEvent::DramReq { issue, done, .. } => (*issue, *done),
            TraceEvent::Instant { at, .. } => (*at, *at),
        };
        assert!(start <= end, "span inverted: {e:?}");
        assert!(end <= r.cycles, "span beyond the run: {e:?}");
    }
    // The workload has leaves and DRAM traffic, so both appear.
    assert!(trace
        .events
        .iter()
        .any(|e| matches!(e, TraceEvent::Leaf { .. })));
    assert!(trace
        .events
        .iter()
        .any(|e| matches!(e, TraceEvent::DramReq { .. })));

    // The export round-trips through the parser.
    let text = trace.chrome_trace(&p).pretty();
    let j = Json::parse(&text).expect("chrome trace parses as JSON");

    let Some(Json::Arr(events)) = get(&j, "traceEvents") else {
        panic!("no traceEvents array");
    };
    assert!(!events.is_empty());
    let mut saw_complete = 0;
    let mut saw_meta = 0;
    for e in events {
        let Some(Json::Str(ph)) = get(e, "ph") else {
            panic!("event missing ph: {e:?}");
        };
        assert!(
            matches!(get(e, "name"), Some(Json::Str(_))),
            "missing name: {e:?}"
        );
        assert!(
            matches!(get(e, "pid"), Some(Json::Int(_))),
            "missing pid: {e:?}"
        );
        assert!(
            matches!(get(e, "tid"), Some(Json::Int(_))),
            "missing tid: {e:?}"
        );
        match ph.as_str() {
            "M" => saw_meta += 1,
            "X" => {
                saw_complete += 1;
                assert!(
                    matches!(get(e, "ts"), Some(Json::Int(v)) if *v >= 0),
                    "X event missing ts: {e:?}"
                );
                assert!(
                    matches!(get(e, "dur"), Some(Json::Int(v)) if *v >= 1),
                    "X event missing dur: {e:?}"
                );
                assert!(
                    matches!(get(e, "cat"), Some(Json::Str(_))),
                    "X event missing cat: {e:?}"
                );
                assert!(
                    matches!(get(e, "args"), Some(Json::Obj(_))),
                    "X event missing args: {e:?}"
                );
            }
            other => panic!("unexpected phase {other:?}"),
        }
    }
    // Metadata names the two processes and every controller thread.
    assert!(saw_meta >= 2 + p.ctrls().len());
    assert_eq!(saw_complete, trace.events.len());
}
