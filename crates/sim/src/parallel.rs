//! Worker-pool engine for the parallel event-driven kernel.
//!
//! [`Resources::fast_forward`](crate::Resources::fast_forward) spans — the
//! stretches where the controller tree is quiescent and only DRAM timing
//! evolves — are the parallel region: within a span no completion is ever
//! routed (a completion immediately ends the span as tree-observable), so
//! the simulator's remaining mutation points decompose into independent
//! per-shard event chains. A shard is a group of DRAM channels plus every
//! coalescing unit whose traffic lands on them (including the
//! offline-channel remap), computed by [`ShardPlan::build`]; with that
//! grouping:
//!
//! - a failed push (channel queue full, head-of-line blocked unit) is pure;
//! - queue capacity frees only when the owning channel issues a column
//!   command, i.e. at the shard's own processed cycles;
//! - a channel's effectful ticks all lie on its own `next_event` chain, so
//!   ticking it at another shard's cycles is a no-op.
//!
//! The coordinator clones each shard, lets workers speculatively run every
//! chain to its first tree-observable cycle (or the span horizon), takes
//! the *minimum* observable cycle `R` across shards, and replays (from the
//! kept pristine copy) any shard that sped past `R`. Merged completions at
//! `R` are ordered by ascending global channel index — exactly the serial
//! kernel's completion order — so the result is byte-identical to serial
//! execution at any worker count. Worker scheduling only decides *when*
//! each chain's result arrives, never what it contains or how it is merged;
//! the interleaving tests below drive the pool through adversarial seeded
//! schedules to pin that.

use plasticine_dram::{ChannelShard, CoalescingUnit, Completion};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;

/// How simulator state is partitioned for a span: channel groups (each a
/// shard) plus the coalescing units bound to each group.
#[derive(Debug)]
pub(crate) struct ShardPlan {
    /// Nominal→serving channel map this plan was built from; a span driver
    /// rebuilds the plan if the live map ever differs (offline remap
    /// changed).
    pub(crate) serving: Vec<usize>,
    /// Global channel indices per shard, ascending; shards ordered by their
    /// smallest member.
    pub(crate) groups: Vec<Vec<usize>>,
    /// Coalescing-unit indices per shard, ascending. Units whose nominal
    /// channel set is empty (more units than channels) are bound to no
    /// shard: they can never hold traffic.
    pub(crate) cu_of_shard: Vec<Vec<usize>>,
}

impl ShardPlan {
    /// Partitions `channels` channels into shards such that each coalescing
    /// unit's traffic (unit `k` serves nominal channels `c ≡ k mod n_cus`,
    /// remapped through `serving`) stays within one shard. Channels that
    /// share a unit are united; offline channels keep their own (refresh
    /// only) shard unless a unit bridges them.
    pub(crate) fn build(channels: usize, n_cus: usize, serving: Vec<usize>) -> ShardPlan {
        let mut parent: Vec<usize> = (0..channels).collect();
        fn find(parent: &mut [usize], mut x: usize) -> usize {
            while parent[x] != x {
                parent[x] = parent[parent[x]];
                x = parent[x];
            }
            x
        }
        for k in 0..n_cus {
            let mut prev: Option<usize> = None;
            let mut c = k;
            while c < channels {
                if let Some(p) = prev {
                    let a = find(&mut parent, p);
                    let b = find(&mut parent, serving[c]);
                    parent[a.max(b)] = a.min(b);
                }
                prev = Some(serving[c]);
                c += n_cus;
            }
        }
        let mut group_of = vec![usize::MAX; channels];
        let mut groups: Vec<Vec<usize>> = Vec::new();
        for c in 0..channels {
            let r = find(&mut parent, c);
            if group_of[r] == usize::MAX {
                group_of[r] = groups.len();
                groups.push(Vec::new());
            }
            group_of[c] = group_of[r];
            groups[group_of[r]].push(c);
        }
        let mut cu_of_shard = vec![Vec::new(); groups.len()];
        for k in 0..n_cus.min(channels) {
            cu_of_shard[group_of[serving[k]]].push(k);
        }
        ShardPlan {
            serving,
            groups,
            cu_of_shard,
        }
    }
}

/// One shard's work order for a span.
#[derive(Debug)]
pub(crate) struct ShardTask {
    pub(crate) shard: ChannelShard,
    /// The shard's coalescing units, ascending global order (matches the
    /// serial issue-pass order restricted to this shard).
    pub(crate) cus: Vec<CoalescingUnit>,
    /// First cycle eligible for processing (the span entry cycle).
    pub(crate) start: u64,
    /// Process cycles strictly below this (the tree-wake / watchdog bound).
    pub(crate) horizon: u64,
    /// Whether a tree pusher is blocked on queue capacity: a column issue
    /// is then tree-observable even without a completion.
    pub(crate) stop_on_cols: bool,
    /// Replay cap: process only cycles `<= cap` (used to truncate a chain
    /// that sped past another shard's observable cycle). A capped replay
    /// can never hit an observable — round one proved none exists below it.
    pub(crate) cap: Option<u64>,
    /// Shared race cap for round one: every chain publishes its candidate
    /// cycle here (`fetch_min`) and stops once its next event lies beyond
    /// the published minimum. Purely a work limiter — the minimum only
    /// shrinks toward the true `R`, every event `<= R` is still processed,
    /// and anything a chain did beyond `R` is discarded by the replay — so
    /// scheduling can change how far a chain *overshoots* but never the
    /// merged result.
    pub(crate) race: Option<Arc<AtomicU64>>,
}

/// The first tree-observable cycle of a chain.
#[derive(Debug)]
pub(crate) struct Candidate {
    pub(crate) at: u64,
    /// Completions at `at`, grouped per global channel index, ascending.
    pub(crate) completions: Vec<(usize, Vec<Completion>)>,
    /// Whether the shard issued column commands at `at`.
    pub(crate) cols: bool,
}

/// A finished chain: the evolved shard state plus everything the
/// coordinator needs to merge deterministically.
#[derive(Debug)]
pub(crate) struct ChainOut {
    pub(crate) shard: ChannelShard,
    pub(crate) cus: Vec<CoalescingUnit>,
    /// Every processed cycle, ascending, with whether columns issued there.
    pub(crate) processed: Vec<(u64, bool)>,
    /// First observable cycle, if one exists below the horizon/cap.
    pub(crate) candidate: Option<Candidate>,
    /// Whether any of the shard's units still holds blocked line requests
    /// after the last processed cycle's issue pass (entry state when the
    /// chain processed nothing).
    pub(crate) pending_after: bool,
}

/// Runs one shard's event chain. Each processed cycle mirrors the serial
/// `begin_cycle` core restricted to the shard: unit issue pass (ascending
/// unit order), then member-channel ticks (ascending channel order). A
/// cycle is processed when it is on the shard's own `next_event` chain, or
/// when the previous processed cycle issued columns while a unit still has
/// pending lines (capacity freed by the tick is visible to the issue pass
/// only one cycle later — the serial kernel's "forced" rule, shard-local).
pub(crate) fn run_chain(task: ShardTask) -> ChainOut {
    let ShardTask {
        mut shard,
        mut cus,
        start,
        horizon,
        stop_on_cols,
        cap,
        race,
    } = task;
    let mut processed = Vec::new();
    let mut candidate = None;
    let mut pending_after = cus.iter().any(|c| c.has_pending_issues());
    let mut force_next = None;
    let mut from = start;
    loop {
        let e = match force_next.take() {
            Some(f) => f,
            None => shard.next_event(from),
        };
        if e >= horizon || cap.is_some_and(|c| e > c) {
            break;
        }
        if let Some(r) = &race {
            // Another chain already observed at a cycle below `e`: nothing
            // this chain does at `e` or later can survive the merge.
            if e > r.load(Ordering::Relaxed) {
                break;
            }
        }
        shard.set_now(e);
        for cu in &mut cus {
            cu.issue(&mut shard);
        }
        pending_after = cus.iter().any(|c| c.has_pending_issues());
        let cols_before = shard.columns();
        let completions = shard.tick(e);
        let cols = shard.columns() != cols_before;
        processed.push((e, cols));
        if !completions.is_empty() || (stop_on_cols && cols) {
            debug_assert!(
                cap.is_none(),
                "capped replay found an observable at {e}; round one should have"
            );
            if let Some(r) = &race {
                r.fetch_min(e, Ordering::Relaxed);
            }
            candidate = Some(Candidate {
                at: e,
                completions,
                cols,
            });
            break;
        }
        if cols && pending_after {
            force_next = Some(e + 1);
        }
        from = e + 1;
    }
    ChainOut {
        shard,
        cus,
        processed,
        candidate,
        pending_after,
    }
}

#[derive(Debug)]
struct Job {
    slot: usize,
    task: ShardTask,
    delay_us: u64,
}

/// One worker's mailbox. The queue mutex is uncontended in practice (main
/// pushes before the worker wakes; the worker drains alone); `ready` is the
/// spin target so the hot path never blocks on the lock.
#[derive(Debug, Default)]
struct Mailbox {
    queue: Mutex<VecDeque<Job>>,
    ready: AtomicUsize,
    parked: AtomicBool,
}

#[derive(Debug)]
struct PoolShared {
    mailboxes: Vec<Mailbox>,
    results: Mutex<Vec<(usize, ChainOut)>>,
    /// Jobs completed in the current batch (worker-side increments are the
    /// release edge the collector's acquire load synchronizes with).
    done: AtomicUsize,
    shutdown: AtomicBool,
}

/// A fixed set of worker threads running [`run_chain`] jobs, plus the
/// calling thread as an extra lane. Fast-forward spans carry only a few
/// microseconds of work, so dispatch latency is everything: workers
/// spin-wait briefly before parking, the caller spin-waits for results
/// (it has its own lane of chains to run meanwhile), and jobs move through
/// per-worker mailboxes instead of channels. Results carry their slot
/// index, so the coordinator's view is canonical no matter which worker
/// finishes first — scheduling is free to be nondeterministic.
#[derive(Debug)]
pub(crate) struct WorkerPool {
    shared: Arc<PoolShared>,
    threads: Vec<thread::Thread>,
    handles: Vec<thread::JoinHandle<()>>,
    /// On a host with fewer than two cores a thread handoff cannot overlap
    /// with anything — it only adds wakeup latency — so delay-free batches
    /// run inline on the caller. Results are identical either way (chains
    /// are deterministic and slot-tagged); only wall-clock time differs.
    inline: bool,
}

/// Spin iterations before a worker gives up and parks. Spans arrive every
/// few microseconds while the engine is hot, so the budget is generous;
/// once the fabric goes busy (no spans) workers park and cost nothing.
const SPIN_BUDGET: u32 = 20_000;

fn worker_loop(shared: Arc<PoolShared>, me: usize) {
    let mailbox = &shared.mailboxes[me];
    loop {
        let mut spins = 0u32;
        loop {
            if shared.shutdown.load(Ordering::Acquire) {
                return;
            }
            if mailbox.ready.load(Ordering::Acquire) > 0 {
                break;
            }
            spins += 1;
            if spins < SPIN_BUDGET {
                std::hint::spin_loop();
            } else {
                // Lost-wakeup-safe park: publish the flag, re-check, then
                // park (an unpark between the check and the park leaves a
                // token that makes the park return immediately).
                mailbox.parked.store(true, Ordering::SeqCst);
                if mailbox.ready.load(Ordering::SeqCst) == 0
                    && !shared.shutdown.load(Ordering::SeqCst)
                {
                    thread::park();
                }
                mailbox.parked.store(false, Ordering::SeqCst);
                spins = 0;
            }
        }
        let job = mailbox.queue.lock().expect("mailbox poisoned").pop_front();
        let Some(job) = job else { continue };
        mailbox.ready.fetch_sub(1, Ordering::Release);
        if job.delay_us > 0 {
            thread::sleep(std::time::Duration::from_micros(job.delay_us));
        }
        let out = run_chain(job.task);
        shared
            .results
            .lock()
            .expect("results poisoned")
            .push((job.slot, out));
        shared.done.fetch_add(1, Ordering::Release);
    }
}

impl WorkerPool {
    pub(crate) fn new(workers: usize) -> WorkerPool {
        let workers = workers.max(1);
        let shared = Arc::new(PoolShared {
            mailboxes: (0..workers).map(|_| Mailbox::default()).collect(),
            results: Mutex::new(Vec::new()),
            done: AtomicUsize::new(0),
            shutdown: AtomicBool::new(false),
        });
        let handles: Vec<_> = (0..workers)
            .map(|me| {
                let shared = Arc::clone(&shared);
                thread::spawn(move || worker_loop(shared, me))
            })
            .collect();
        let threads = handles.iter().map(|h| h.thread().clone()).collect();
        let inline = thread::available_parallelism().map_or(1, |n| n.get()) < 2;
        WorkerPool {
            shared,
            threads,
            handles,
            inline,
        }
    }

    #[cfg(test)]
    pub(crate) fn workers(&self) -> usize {
        self.handles.len()
    }

    /// Execution lanes: the workers plus the caller's own lane.
    pub(crate) fn lanes(&self) -> usize {
        self.handles.len() + 1
    }

    /// Dispatches the tasks round-robin and collects every result. Results
    /// are returned in completion order with their slot tags; callers index
    /// by slot.
    pub(crate) fn run(&mut self, tasks: Vec<(usize, ShardTask)>) -> Vec<(usize, ChainOut)> {
        self.run_with_delays(tasks.into_iter().map(|(s, t)| (s, t, 0)).collect())
    }

    /// Like [`run`](Self::run) but with a per-job startup delay — the
    /// seeded-scheduler shim the interleaving tests use to force adversarial
    /// completion orders.
    ///
    /// The calling thread is lane 0 of `workers + 1` lanes: it runs its own
    /// share of the chains while the workers run theirs, then spin-collects
    /// the rest (worker batches finish within microseconds of the caller's
    /// own lane, so blocking would only add wakeup latency).
    pub(crate) fn run_with_delays(
        &mut self,
        tasks: Vec<(usize, ShardTask, u64)>,
    ) -> Vec<(usize, ChainOut)> {
        let n = tasks.len();
        if n == 0 {
            return Vec::new();
        }
        if self.inline && tasks.iter().all(|(_, _, d)| *d == 0) {
            // Single-core host: run every chain on the caller. Seeded-delay
            // batches still go through the workers so the interleaving tests
            // exercise the real handoff protocol everywhere.
            return tasks
                .into_iter()
                .map(|(slot, task, _)| (slot, run_chain(task)))
                .collect();
        }
        self.shared.done.store(0, Ordering::Relaxed);
        let lanes = self.handles.len() + 1;
        let mut mine = Vec::new();
        let mut dispatched = 0usize;
        for (i, (slot, task, delay_us)) in tasks.into_iter().enumerate() {
            let lane = i % lanes;
            if lane == 0 {
                mine.push((slot, task, delay_us));
                continue;
            }
            let mailbox = &self.shared.mailboxes[lane - 1];
            mailbox
                .queue
                .lock()
                .expect("mailbox poisoned")
                .push_back(Job {
                    slot,
                    task,
                    delay_us,
                });
            mailbox.ready.fetch_add(1, Ordering::SeqCst);
            if mailbox.parked.load(Ordering::SeqCst) {
                self.threads[lane - 1].unpark();
            }
            dispatched += 1;
        }
        let mut outs = Vec::with_capacity(n);
        for (slot, task, delay_us) in mine {
            if delay_us > 0 {
                thread::sleep(std::time::Duration::from_micros(delay_us));
            }
            outs.push((slot, run_chain(task)));
        }
        let mut spins = 0u64;
        while self.shared.done.load(Ordering::Acquire) < dispatched {
            spins += 1;
            if spins.is_multiple_of(100_000) {
                thread::yield_now();
            } else {
                std::hint::spin_loop();
            }
        }
        outs.append(&mut self.shared.results.lock().expect("results poisoned"));
        outs
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        for t in &self.threads {
            t.unpark();
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

/// The worker pool plus the shard plan it serves; built lazily on the first
/// eligible span and kept for the run. Runtime-only — never serialized, so
/// checkpoints stay thread-count-independent.
#[derive(Debug)]
pub(crate) struct ParRuntime {
    pub(crate) pool: WorkerPool,
    pub(crate) plan: ShardPlan,
}

/// Aggregate work accounting for the parallel engine across a run:
/// `total_events` is every chain event processed in fast-forward spans
/// (exactly the events the serial kernel processes there), and
/// `critical_path_events` is the sum over spans of the busiest lane's
/// share. Their ratio bounds the wall-clock speedup the sharding can
/// realize with this thread count on a host with enough cores — a
/// deterministic, machine-independent figure the simkernel bench reports
/// alongside measured wall time. Diagnostic only: never part of
/// `stats_json`, so byte-identity across thread counts is unaffected.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SpanWork {
    /// Chain events processed inside fast-forward spans, summed over the run.
    pub total_events: u64,
    /// Sum over spans of the busiest lane's event count.
    pub critical_path_events: u64,
}

impl SpanWork {
    /// Ideal parallel speedup over the spans the engine ran (None when the
    /// engine never engaged).
    pub fn ideal_speedup(&self) -> Option<f64> {
        (self.critical_path_events > 0)
            .then(|| self.total_events as f64 / self.critical_path_events as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use plasticine_dram::{DramConfig, DramSystem, MemRequest};

    fn loaded_system(lines_per_channel: u64) -> DramSystem {
        let cfg = DramConfig {
            refresh: false,
            ..DramConfig::default()
        };
        let channels = cfg.channels as u64;
        let line = cfg.line_bytes;
        let mut mem = DramSystem::new(cfg);
        for i in 0..lines_per_channel * channels {
            mem.push(MemRequest {
                id: i,
                addr: i * line,
                is_write: false,
            })
            .unwrap();
        }
        mem
    }

    fn singleton_groups(channels: usize) -> Vec<Vec<usize>> {
        (0..channels).map(|c| vec![c]).collect()
    }

    fn tasks_for(mem: &mut DramSystem, horizon: u64) -> Vec<(usize, ShardTask)> {
        let channels = mem.config().channels;
        mem.detach_shards(&singleton_groups(channels))
            .into_iter()
            .enumerate()
            .map(|(i, shard)| {
                (
                    i,
                    ShardTask {
                        shard,
                        cus: Vec::new(),
                        start: 0,
                        horizon,
                        stop_on_cols: false,
                        cap: None,
                        race: None,
                    },
                )
            })
            .collect()
    }

    fn fingerprint(outs: &[(usize, ChainOut)]) -> Vec<String> {
        let mut by_slot: Vec<_> = outs.iter().collect();
        by_slot.sort_by_key(|(slot, _)| *slot);
        by_slot
            .iter()
            .map(|(slot, o)| {
                format!(
                    "{slot}: processed={:?} candidate={:?} pending={} cols={}",
                    o.processed,
                    o.candidate.as_ref().map(|c| (
                        c.at,
                        c.cols,
                        c.completions
                            .iter()
                            .map(|(ch, v)| (
                                *ch,
                                v.iter().map(|x| (x.id, x.at)).collect::<Vec<_>>()
                            ))
                            .collect::<Vec<_>>()
                    )),
                    o.pending_after,
                    o.columns_probe()
                )
            })
            .collect()
    }

    impl ChainOut {
        fn columns_probe(&self) -> u64 {
            self.shard.columns()
        }
    }

    /// The same task set produces slot-identical results at every worker
    /// count, including one worker (fully serial) and more workers than
    /// shards (some workers idle — the empty-shard degenerate case for the
    /// pool).
    #[test]
    fn results_are_canonical_across_worker_counts() {
        let reference = {
            let mut mem = loaded_system(8);
            let mut pool = WorkerPool::new(1);
            fingerprint(&pool.run(tasks_for(&mut mem, 10_000)))
        };
        for workers in [2, 3, 4, 16] {
            let mut mem = loaded_system(8);
            let mut pool = WorkerPool::new(workers);
            assert_eq!(pool.workers(), workers);
            let got = fingerprint(&pool.run(tasks_for(&mut mem, 10_000)));
            assert_eq!(got, reference, "{workers} workers diverged");
        }
    }

    /// Seeded-scheduler shim: adversarial per-job delays permute completion
    /// order arbitrarily (last shard first, interleaved, …); the slot-tagged
    /// results and thus any merge built on them are unchanged.
    #[test]
    fn seeded_schedules_cannot_perturb_the_merge() {
        let reference = {
            let mut mem = loaded_system(8);
            let mut pool = WorkerPool::new(4);
            fingerprint(&pool.run(tasks_for(&mut mem, 10_000)))
        };
        for seed in 1u64..=20 {
            let mut lcg = seed;
            let mut next = || {
                lcg = lcg
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (lcg >> 33) % 3_000
            };
            let mut mem = loaded_system(8);
            let mut pool = WorkerPool::new(4);
            let tasks = tasks_for(&mut mem, 10_000)
                .into_iter()
                .map(|(s, t)| (s, t, next()))
                .collect();
            let got = fingerprint(&pool.run_with_delays(tasks));
            assert_eq!(got, reference, "seed {seed} perturbed the merge");
        }
    }

    /// Degenerate shapes: an empty task set, a single shard, and a shard
    /// with no events in the span (drained channel) all flow through the
    /// pool and chain runner without edge-case surprises.
    #[test]
    fn degenerate_task_sets() {
        let mut pool = WorkerPool::new(4);
        assert!(pool.run(Vec::new()).is_empty());

        // Single shard: chain runs alone, finds its first completion.
        let mut mem = loaded_system(2);
        let mut tasks = tasks_for(&mut mem, 10_000);
        let single = tasks.remove(0);
        let outs = pool.run(vec![single]);
        assert_eq!(outs.len(), 1);
        let o = &outs[0].1;
        assert!(o.candidate.is_some(), "loaded shard must hit a completion");
        assert!(!o.processed.is_empty());

        // Empty shard: a drained channel has no events below the horizon.
        let mut idle = DramSystem::new(DramConfig {
            refresh: false,
            ..DramConfig::default()
        });
        let shard = idle.detach_shards(&[vec![0]]).remove(0);
        let outs = pool.run(vec![(
            7,
            ShardTask {
                shard,
                cus: Vec::new(),
                start: 0,
                horizon: 10_000,
                stop_on_cols: false,
                cap: None,
                race: None,
            },
        )]);
        assert_eq!(outs[0].0, 7);
        assert!(outs[0].1.processed.is_empty());
        assert!(outs[0].1.candidate.is_none());
        assert!(!outs[0].1.pending_after);
    }

    /// With the shared race cap armed, adversarial schedules may change how
    /// far individual chains overshoot (their raw `processed` lists are
    /// timing-dependent), but everything the coordinator consumes — the
    /// minimum observable cycle `R`, the completions merged at `R`, and the
    /// post-replay shard states — is identical across schedules.
    #[test]
    fn race_cap_overshoot_is_invisible_after_replay() {
        // Emulates the coordinator: round one with the race cap and seeded
        // delays, then a capped replay (from pristine copies) of any chain
        // that processed past R.
        let coordinate = |delays: Vec<u64>| {
            let mut mem = loaded_system(8);
            let mut pool = WorkerPool::new(4);
            let race = Arc::new(AtomicU64::new(u64::MAX));
            let tasks: Vec<(usize, ShardTask, u64)> = tasks_for(&mut mem, 10_000)
                .into_iter()
                .zip(&delays)
                .map(|((s, mut t), &d)| {
                    t.race = Some(Arc::clone(&race));
                    (s, t, d)
                })
                .collect();
            let mut outs: Vec<Option<ChainOut>> = (0..tasks.len()).map(|_| None).collect();
            for (slot, out) in pool.run_with_delays(tasks) {
                outs[slot] = Some(out);
            }
            let r = outs
                .iter()
                .filter_map(|o| o.as_ref().unwrap().candidate.as_ref().map(|c| c.at))
                .min()
                .expect("loaded shards must observe a completion");
            let mut pristine = loaded_system(8);
            let replays: Vec<(usize, ShardTask)> = tasks_for(&mut pristine, 10_000)
                .into_iter()
                .filter(|(i, _)| {
                    outs[*i]
                        .as_ref()
                        .unwrap()
                        .processed
                        .iter()
                        .any(|&(e, _)| e > r)
                })
                .map(|(i, mut t)| {
                    t.cap = Some(r);
                    (i, t)
                })
                .collect();
            for (slot, out) in pool.run(replays) {
                outs[slot] = Some(out);
            }
            let per_shard: Vec<String> = outs
                .iter()
                .map(|o| {
                    let o = o.as_ref().unwrap();
                    format!(
                        "cols={} pending={} candidate={:?}",
                        o.shard.columns(),
                        o.pending_after,
                        o.candidate.as_ref().map(|c| (
                            c.at,
                            c.cols,
                            c.completions
                                .iter()
                                .map(|(ch, v)| (
                                    *ch,
                                    v.iter().map(|x| (x.id, x.at)).collect::<Vec<_>>()
                                ))
                                .collect::<Vec<_>>()
                        )),
                    )
                })
                .collect();
            (r, per_shard)
        };
        let reference = coordinate(vec![0, 0, 0, 0]);
        for seed in 1u64..=12 {
            let mut lcg = seed;
            let mut next = || {
                lcg = lcg
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (lcg >> 33) % 2_000
            };
            let delays = (0..4).map(|_| next()).collect();
            assert_eq!(
                coordinate(delays),
                reference,
                "seed {seed} leaked overshoot"
            );
        }
    }

    /// A capped replay reproduces exactly the ≤-cap prefix of the uncapped
    /// chain — the property the coordinator's round-two truncation rests on.
    #[test]
    fn capped_replay_is_a_prefix() {
        let full = {
            let mut mem = loaded_system(8);
            let mut tasks = tasks_for(&mut mem, 10_000);
            run_chain(tasks.remove(0).1)
        };
        assert!(full.processed.len() >= 2, "need a multi-cycle chain");
        let cap = full.processed[full.processed.len() / 2].0;
        let capped = {
            let mut mem = loaded_system(8);
            let mut tasks = tasks_for(&mut mem, 10_000);
            let mut t = tasks.remove(0).1;
            t.cap = Some(cap);
            run_chain(t)
        };
        let prefix: Vec<_> = full
            .processed
            .iter()
            .copied()
            .filter(|&(e, _)| e <= cap)
            .collect();
        assert_eq!(capped.processed, prefix);
        assert!(capped.candidate.is_none());
    }

    #[test]
    fn shard_plan_groups_channels_by_unit_traffic() {
        // 4 channels, 4 units, identity remap: four singleton shards, unit k
        // bound to channel k.
        let p = ShardPlan::build(4, 4, vec![0, 1, 2, 3]);
        assert_eq!(p.groups, vec![vec![0], vec![1], vec![2], vec![3]]);
        assert_eq!(p.cu_of_shard, vec![vec![0], vec![1], vec![2], vec![3]]);

        // One unit serving every channel: a single shard.
        let p = ShardPlan::build(4, 1, vec![0, 1, 2, 3]);
        assert_eq!(p.groups, vec![vec![0, 1, 2, 3]]);
        assert_eq!(p.cu_of_shard, vec![vec![0]]);

        // 2 units over 4 channels: {0,2} and {1,3}.
        let p = ShardPlan::build(4, 2, vec![0, 1, 2, 3]);
        assert_eq!(p.groups, vec![vec![0, 2], vec![1, 3]]);
        assert_eq!(p.cu_of_shard, vec![vec![0], vec![1]]);

        // Channel 1 offline, spilling onto channel 2 (its unit-1 peer 3
        // spills nominally too): unit 1's serving set {2} merges with unit
        // 2's home; the offline channel keeps a refresh-only singleton.
        let p = ShardPlan::build(4, 4, vec![0, 2, 2, 3]);
        assert_eq!(p.groups, vec![vec![0], vec![1], vec![2], vec![3]]);
        assert_eq!(p.cu_of_shard, vec![vec![0], vec![], vec![1, 2], vec![3]]);

        // More units than channels: the surplus units bind nowhere.
        let p = ShardPlan::build(2, 4, vec![0, 1]);
        assert_eq!(p.groups, vec![vec![0], vec![1]]);
        assert_eq!(p.cu_of_shard, vec![vec![0], vec![1]]);

        // Single channel: one shard, every unit on it.
        let p = ShardPlan::build(1, 4, vec![0]);
        assert_eq!(p.groups, vec![vec![0]]);
        assert_eq!(p.cu_of_shard, vec![vec![0]]);
    }
}
