//! Shared cycle-granular resources: invocation slots, scratchpad ports,
//! address generators, the DRAM system, and activity counters.

use crate::deadlock::DeadlockReport;
use crate::model::SimModel;
use crate::trace::{
    SimTrace, Tracer, UnitCycles, UnitStat, UnitStats, CLASS_BUSY, CLASS_IDLE, CLASS_MEM,
};
use plasticine_arch::{EccPolicy, FaultRng, PlasticineParams, TransientFaults, UnitId};
use plasticine_dram::{CoalescingUnit, DramConfig, DramStats, DramSystem, ElemRequest, MemRequest};
use plasticine_json::Json;
use plasticine_ppir::CtrlId;
use std::collections::{BTreeMap, HashMap};

/// Dynamic activity accumulated during simulation — the input to the power
/// model and the source of Table 7's utilization columns.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Activity {
    /// ALU operations executed (element granularity).
    pub fu_ops: u64,
    /// Iterative (transcendental) ops among them.
    pub heavy_ops: u64,
    /// Reduction-tree ops.
    pub red_ops: u64,
    /// Words read from scratchpads.
    pub sram_reads: u64,
    /// Words written to scratchpads.
    pub sram_writes: u64,
    /// Vector-register traffic proxy: vectors issued × pipeline stages.
    pub reg_traffic: u64,
    /// Vector payload × hops moved on the vector network (word-hops).
    pub net_word_hops: u64,
    /// Scalar and control messages.
    pub ctrl_msgs: u64,
    /// PCU-cycles spent actively issuing (for clock gating in the power
    /// model).
    pub pcu_busy_cycles: u64,
    /// PMU-cycles with at least one port active.
    pub pmu_busy_cycles: u64,
    /// AG-cycles spent issuing.
    pub ag_busy_cycles: u64,
}

/// Error while simulating.
#[derive(Debug, Clone)]
pub enum SimError {
    /// The functional interpreter failed.
    Run(plasticine_ppir::RunError),
    /// The schedule made no progress for too long; the report names the
    /// blocked units, what each holds and awaits, and the wait-for cycle.
    Deadlock(Box<DeadlockReport>),
    /// A dropped DRAM response exhausted its retry budget — the fault rate
    /// exceeds what bounded retry-with-backoff can recover from.
    FaultExhaustion {
        /// Cycle at which recovery gave up.
        cycle: u64,
        /// Byte address of the unrecoverable request.
        addr: u64,
        /// Retries attempted before giving up.
        attempts: u32,
    },
    /// The simulation ran to the configured cycle budget without finishing.
    /// Unlike [`SimError::Deadlock`] this carries no claim that the schedule
    /// is stuck — it may simply be slower than the budget allows.
    CycleBudgetExceeded {
        /// Cycle at which the budget check fired.
        cycle: u64,
        /// The configured `max_cycles` budget.
        budget: u64,
    },
    /// The fault/DRAM configuration is unusable (e.g. every channel offline).
    Config(String),
    /// A checkpoint could not be decoded or does not match the run it was
    /// asked to resume (wrong program/bitstream/options, corrupt file).
    Checkpoint(crate::checkpoint::CheckpointError),
    /// An online fault arrival (or ECC-threshold escalation) hit a resource
    /// this run is actually using. The report carries an auto-checkpoint
    /// taken at the degrade boundary and the updated live fault map, so a
    /// healing layer can relocate or recompile the run and resume it.
    FabricDegraded(Box<crate::kernel::DegradedReport>),
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::Run(e) => write!(f, "functional execution failed: {e}"),
            SimError::Deadlock(report) => write!(f, "{report}"),
            SimError::FaultExhaustion {
                cycle,
                addr,
                attempts,
            } => write!(
                f,
                "fault exhaustion at cycle {cycle}: DRAM request at {addr:#x} \
                 still dropped after {attempts} retries"
            ),
            SimError::CycleBudgetExceeded { cycle, budget } => write!(
                f,
                "cycle budget exceeded: simulation reached cycle {cycle} without \
                 finishing (max_cycles = {budget}); the schedule is making progress \
                 but needs a larger budget"
            ),
            SimError::Config(msg) => write!(f, "bad simulation configuration: {msg}"),
            SimError::Checkpoint(e) => write!(f, "{e}"),
            SimError::FabricDegraded(report) => write!(f, "{report}"),
        }
    }
}

impl std::error::Error for SimError {}

impl From<plasticine_ppir::RunError> for SimError {
    fn from(e: plasticine_ppir::RunError) -> SimError {
        SimError::Run(e)
    }
}

/// Transient-fault detection and recovery counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Scratchpad read words whose single-bit flip was corrected in line by
    /// ECC (no timing cost).
    pub ecc_corrected: u64,
    /// Scratchpad read beats replayed after a parity-detected
    /// (ECC-uncorrectable) flip.
    pub parity_replays: u64,
    /// Vector issues replayed after a lane bit flip caught by the residue
    /// check.
    pub lane_replays: u64,
    /// Unit-cycles spent re-doing work for any recovery reason (the sum of
    /// the per-unit `recovery` overlays).
    pub recovery_cycles: u64,
    /// DRAM responses dropped in flight.
    pub dram_dropped: u64,
    /// DRAM requests re-issued after a drop.
    pub dram_retries: u64,
    /// Cycles spent waiting out retry backoff, summed over retries.
    pub dram_retry_wait_cycles: u64,
    /// Unit-cycles spent inside a healing (detection/quiesce) window — an
    /// impacting fault arrival was observed and the run is riding out the
    /// detect delay before its degraded exit (the sum of the per-unit
    /// `healing` overlays).
    pub healing_cycles: u64,
}

impl FaultStats {
    /// Whether any fault was injected or recovered from.
    pub fn any(&self) -> bool {
        *self != FaultStats::default()
    }
}

/// Bits of elem-request ids reserved for the per-job sequence number.
const ELEM_SEQ_BITS: u64 = 24;

/// A DRAM request awaiting re-issue after its response was dropped.
#[derive(Debug, Clone, Copy)]
struct PendingRetry {
    due: u64,
    req: MemRequest,
}

/// Shared simulation resources, reset per cycle where appropriate.
#[derive(Debug)]
pub struct Resources {
    /// Current cycle.
    pub now: u64,
    slots: HashMap<CtrlId, usize>,
    /// Dense port index per scratchpad unit, indexed by raw unit id
    /// (`usize::MAX` = no modelled ports, always satisfies an acquire).
    port_idx: Vec<usize>,
    /// Port capacity per dense index (the refresh source).
    port_caps: Vec<usize>,
    /// Remaining read/write tokens this cycle, refreshed from `port_caps`
    /// at the top of every [`begin_cycle`](Self::begin_cycle).
    read_tokens: Vec<usize>,
    write_tokens: Vec<usize>,
    /// The DRAM timing model.
    pub dram: DramSystem,
    cus: Vec<CoalescingUnit>,
    line_done: HashMap<u64, u64>,
    elem_done: HashMap<u64, u64>,
    req_job: HashMap<u64, u64>,
    req_elem: HashMap<u64, u64>,
    next_dense: u64,
    next_elem_seq: HashMap<u64, u64>,
    coalescing: bool,
    /// Accumulated activity.
    pub activity: Activity,
    /// Dense slot index per tracked unit, indexed by raw unit id
    /// (`usize::MAX` = untracked), for stall attribution.
    unit_slot: Vec<usize>,
    /// Highest-priority class noted for each tracked unit this cycle.
    pending_class: Vec<u8>,
    /// Committed per-unit cycle breakdowns.
    unit_cycles: Vec<UnitCycles>,
    /// Structured event recorder; `None` keeps tracing zero-cost.
    pub(crate) tracer: Option<Tracer>,
    /// Transient-fault injection stream; `None` when all rates are zero, so
    /// the fault-free path takes no RNG draws and stays bit-identical.
    rng: Option<FaultRng>,
    /// Transient-fault rates and retry parameters.
    transients: TransientFaults,
    /// Recovery accounting.
    pub(crate) fault_stats: FaultStats,
    /// While an impacting fault arrival rides out its detect window, every
    /// committed or skipped cycle also accrues the `healing` overlay.
    healing_active: bool,
    /// ECC-threshold escalation policy (inactive by default).
    ecc_policy: EccPolicy,
    /// Physical site charged with a unit's correctable errors, indexed by
    /// raw unit id (`u32::MAX` = not a scratchpad unit). Site-keyed so a
    /// pending escalation survives relocation correctly: after a heal the
    /// logical unit sits on fresh silicon and the old site is no longer
    /// used, which is exactly how resume decides to drop the entry.
    ecc_site: Vec<u32>,
    /// Correctable-error cycles within the rolling window, per site.
    ecc_errs: BTreeMap<u32, Vec<u64>>,
    /// Sites whose correctable-error count crossed the threshold, not yet
    /// drained by the kernel (drained every committed cycle).
    ecc_escalated: Vec<u32>,
    /// Escalations awaiting their degraded exit: (site, escalation cycle).
    /// Serialized so a cadence checkpoint taken inside the detect window
    /// re-arms the pending degrade on resume.
    ecc_pending: Vec<(u32, u64)>,
    /// Drop-retry ledger: request id → attempts so far.
    drop_attempts: HashMap<u64, u32>,
    /// Requests waiting out their retry backoff.
    retry_queue: Vec<PendingRetry>,
    /// Set when a request exceeded its retry budget: (addr, attempts).
    fault_exhausted: Option<(u64, u32)>,
    /// Set whenever any unit acquired a resource, pushed a request, or a
    /// completion arrived this cycle; the run loop uses it to detect
    /// deadlock as sustained lack of progress.
    progress: bool,
    /// Superset of `progress`: also set when a slot was released, a
    /// controller started or retired, or any other state changed that could
    /// alter the *next* cycle's tick. A full iteration with `changed` false
    /// is quiescent — the event kernel may fast-forward from it.
    changed: bool,
    /// Set when a tree tick failed to push a DRAM/coalescer request on
    /// backpressure; cleared by [`pre_tick`](Self::pre_tick). While blocked,
    /// a freed queue slot (column issue) is a tree-observable event.
    push_blocked: bool,
    /// The per-unit class vector committed by the most recent
    /// [`commit_cycle`](Self::commit_cycle); a quiescent cycle re-derives
    /// exactly this vector, so skipped cycles replay it in bulk.
    last_class: Vec<u8>,
    /// begin_cycle effect flags, consulted by the event kernel.
    /// Whether the latest begin_cycle routed any completion to a job.
    begin_routed: bool,
    /// Whether the latest begin_cycle's DRAM tick issued a column command
    /// (i.e. freed a channel-queue slot).
    begin_cols: bool,
    /// Whether, after the latest begin_cycle's coalescer-issue pass, some
    /// coalescing unit still holds line requests blocked on queue capacity.
    cu_pending: bool,
    /// Requested event-kernel worker threads (1 = serial). Runtime-only
    /// configuration, like the thread pool below: never serialized, so
    /// snapshots are thread-count-independent by construction.
    threads: usize,
    /// Lazily built worker pool + shard plan; `None` until the first
    /// eligible fast-forward span.
    par: Option<crate::parallel::ParRuntime>,
    /// Set when the machine cannot be partitioned (single shard); stops
    /// further plan rebuild attempts.
    par_disabled: bool,
    /// Parallel-span work accounting (see [`SpanWork`]); diagnostic only,
    /// never serialized.
    pub(crate) span_work: crate::parallel::SpanWork,
}

/// Outcome of [`Resources::fast_forward`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum FastForward {
    /// The current cycle needs a full iteration (tree wake or watchdog
    /// trigger); the run loop should `begin_cycle` as usual.
    NeedBegin,
    /// `begin_cycle` for the current cycle already ran and produced
    /// tree-observable events; the run loop must tick *without* beginning
    /// again.
    Begun,
}

impl Resources {
    /// Builds the resource pool for a model.
    pub fn new(model: &SimModel, params: &PlasticineParams, dram_cfg: DramConfig) -> Resources {
        let line_bytes = dram_cfg.line_bytes;
        let n_cus = params.coalescing_units.max(1);
        let cus = (0..n_cus)
            .map(|k| {
                CoalescingUnit::with_namespace(
                    params.coalesce_entries,
                    line_bytes,
                    (1 << 62) + (k as u64) * (1 << 56),
                )
            })
            .collect();
        let max_unit = model
            .tracked
            .iter()
            .map(|t| t.unit.0 as usize + 1)
            .chain(model.mem_ports.keys().map(|u| u.0 as usize + 1))
            .max()
            .unwrap_or(0);
        let mut unit_slot = vec![usize::MAX; max_unit];
        for (i, t) in model.tracked.iter().enumerate() {
            unit_slot[t.unit.0 as usize] = i;
        }
        let mut port_idx = vec![usize::MAX; max_unit];
        let mut port_caps = Vec::new();
        for (u, cap) in &model.mem_ports {
            port_idx[u.0 as usize] = port_caps.len();
            port_caps.push(*cap);
        }
        let read_tokens = port_caps.clone();
        let write_tokens = port_caps.clone();
        Resources {
            now: 0,
            slots: model.ctrl_slots.clone(),
            port_idx,
            port_caps,
            read_tokens,
            write_tokens,
            dram: DramSystem::new(dram_cfg),
            cus,
            line_done: HashMap::new(),
            elem_done: HashMap::new(),
            req_job: HashMap::new(),
            req_elem: HashMap::new(),
            next_dense: 0,
            next_elem_seq: HashMap::new(),
            coalescing: true,
            activity: Activity::default(),
            unit_slot,
            pending_class: vec![CLASS_IDLE; model.tracked.len()],
            unit_cycles: vec![UnitCycles::default(); model.tracked.len()],
            tracer: None,
            rng: None,
            transients: TransientFaults::default(),
            fault_stats: FaultStats::default(),
            healing_active: false,
            ecc_policy: EccPolicy::default(),
            ecc_site: Vec::new(),
            ecc_errs: BTreeMap::new(),
            ecc_escalated: Vec::new(),
            ecc_pending: Vec::new(),
            drop_attempts: HashMap::new(),
            retry_queue: Vec::new(),
            fault_exhausted: None,
            progress: false,
            changed: false,
            push_blocked: false,
            last_class: vec![CLASS_IDLE; model.tracked.len()],
            begin_routed: false,
            begin_cols: false,
            cu_pending: false,
            threads: 1,
            par: None,
            par_disabled: false,
            span_work: crate::parallel::SpanWork::default(),
        }
    }

    /// Sets the event-kernel worker-thread count (1 = serial). Results are
    /// byte-identical at any value; extra threads only change wall-clock
    /// time. Ignored in cycle stepping and while tracing (the tracer records
    /// per-cycle spans the parallel driver does not replicate, so traced
    /// runs stay on the serial path).
    pub fn set_threads(&mut self, threads: usize) {
        self.threads = threads.max(1);
    }

    /// Whether the coalescer-capacity ordering rule forces the next cycle
    /// to run as a full iteration (columns issued while units hold blocked
    /// lines). The run loop uses this to bypass the fast-forward entry —
    /// and its tree-wake walk — during backlogged phases, where event
    /// stepping would otherwise degenerate to cycle stepping plus pure
    /// overhead.
    pub(crate) fn is_forced(&self) -> bool {
        self.begin_cols && self.cu_pending
    }

    /// Arms transient-fault injection. With all rates zero this is a no-op
    /// and the simulation stays bit-identical to a fault-free run.
    pub fn set_transients(&mut self, t: &TransientFaults) {
        self.transients = t.clone();
        self.rng = if t.any() {
            Some(FaultRng::new(t.seed))
        } else {
            None
        };
    }

    /// Raises the transient-fault rates in place (each rate is max'ed with
    /// the current one, so escalation is monotone). The RNG stream is left
    /// untouched when already armed; when injection was off it is armed
    /// fresh from `seed` — both paths are replayed identically at resume, so
    /// determinism is preserved.
    pub fn escalate_transients(&mut self, lane: f64, sram: f64, drop: f64, seed: u64) {
        self.transients.lane_flip = self.transients.lane_flip.max(lane);
        self.transients.sram_flip = self.transients.sram_flip.max(sram);
        self.transients.dram_drop = self.transients.dram_drop.max(drop);
        if self.rng.is_none() && self.transients.any() {
            self.rng = Some(FaultRng::new(seed));
        }
    }

    /// Arms ECC-threshold escalation: `policy.threshold` correctable errors
    /// charged to one site within `policy.window` cycles escalate to
    /// permanent unit death. `site_of_unit` maps raw unit ids to the
    /// physical site charged (`u32::MAX` = untracked).
    pub fn set_ecc_policy(&mut self, policy: EccPolicy, site_of_unit: Vec<u32>) {
        self.ecc_policy = policy;
        self.ecc_site = site_of_unit;
    }

    /// Turns the healing overlay on or off (kernel-driven: on while a
    /// degrade deadline is pending, off otherwise).
    pub(crate) fn set_healing(&mut self, on: bool) {
        self.healing_active = on;
    }

    /// Sites whose correctable-error count crossed the ECC threshold since
    /// the last drain.
    pub(crate) fn take_ecc_escalations(&mut self) -> Vec<u32> {
        std::mem::take(&mut self.ecc_escalated)
    }

    /// Escalations awaiting their degraded exit: (site, cycle).
    pub(crate) fn ecc_pending(&self) -> &[(u32, u64)] {
        &self.ecc_pending
    }

    /// Replaces the pending-escalation ledger (resume filters entries that
    /// no longer concern the resumed configuration).
    pub(crate) fn set_ecc_pending(&mut self, pending: Vec<(u32, u64)>) {
        self.ecc_pending = pending;
    }

    /// Takes and clears the progress flag (set when any resource was
    /// granted, any request pushed, or any completion arrived).
    pub(crate) fn take_progress(&mut self) -> bool {
        std::mem::take(&mut self.progress)
    }

    /// Takes and clears the changed flag (superset of progress; see the
    /// field doc). False after a full iteration means the iteration was
    /// quiescent: replaying it verbatim would change nothing.
    pub(crate) fn take_changed(&mut self) -> bool {
        std::mem::take(&mut self.changed)
    }

    /// Marks the current iteration as state-changing (see `changed`).
    pub(crate) fn mark_changed(&mut self) {
        self.changed = true;
    }

    /// Resets per-tick flags; call immediately before each tree tick.
    pub(crate) fn pre_tick(&mut self) {
        self.push_blocked = false;
    }

    /// A request that exceeded its retry budget, if any: `(addr, attempts)`.
    pub(crate) fn take_fault_exhaustion(&mut self) -> Option<(u64, u32)> {
        self.fault_exhausted.take()
    }

    /// Recovery accounting so far.
    pub fn fault_stats(&self) -> FaultStats {
        self.fault_stats
    }

    /// Stall-attribution slot for a unit, if tracked.
    #[inline]
    fn slot_of(&self, unit: UnitId) -> Option<usize> {
        match self.unit_slot.get(unit.0 as usize) {
            Some(&s) if s != usize::MAX => Some(s),
            _ => None,
        }
    }

    /// Dense port index for a unit, if it has modelled ports.
    #[inline]
    fn port_of(&self, unit: UnitId) -> Option<usize> {
        match self.port_idx.get(unit.0 as usize) {
            Some(&p) if p != usize::MAX => Some(p),
            _ => None,
        }
    }

    /// Charges one recovery cycle to a unit (overlay on the four-way
    /// classification) and to the global recovery account.
    pub(crate) fn note_recovery(&mut self, unit: UnitId) {
        if let Some(s) = self.slot_of(unit) {
            self.unit_cycles[s].recovery += 1;
        }
        self.fault_stats.recovery_cycles += 1;
    }

    /// Rolls the transient-fault dice for one vector issue beat that reads
    /// from `reads`. Returns true when the beat must be replayed (lane flip
    /// caught by the residue check, or an ECC-uncorrectable scratchpad
    /// flip caught by parity). Single-bit scratchpad flips are corrected in
    /// line and only counted.
    pub(crate) fn roll_issue_replay(&mut self, reads: &[UnitId]) -> bool {
        let Some(rng) = self.rng.as_mut() else {
            return false;
        };
        let mut replay = false;
        if self.transients.lane_flip > 0.0 && rng.chance(self.transients.lane_flip) {
            self.fault_stats.lane_replays += 1;
            replay = true;
        }
        if self.transients.sram_flip > 0.0 {
            for u in reads {
                if rng.chance(self.transients.sram_flip) {
                    // ~90% of flips are single-bit: ECC corrects them with
                    // no timing cost. The remainder only parity-detects and
                    // forces a beat replay.
                    if rng.below(10) == 0 {
                        self.fault_stats.parity_replays += 1;
                        replay = true;
                    } else {
                        self.fault_stats.ecc_corrected += 1;
                        let site = self.ecc_site.get(u.0 as usize).copied().unwrap_or(u32::MAX);
                        if self.ecc_policy.active() && site != u32::MAX {
                            // ECC-threshold escalation: too many corrected
                            // errors on one scratchpad within the window is
                            // read as incipient permanent failure. The
                            // window clears on escalation so a healed
                            // resume starts the (relocated) unit fresh.
                            let at = self.now;
                            let w = self.ecc_policy.window;
                            let errs = self.ecc_errs.entry(site).or_default();
                            errs.push(at);
                            errs.retain(|&c| c + w > at);
                            if errs.len() as u64 >= self.ecc_policy.threshold as u64 {
                                errs.clear();
                                self.ecc_escalated.push(site);
                                self.ecc_pending.push((site, at));
                            }
                        }
                    }
                }
            }
        }
        replay
    }

    /// Turns on structured event recording.
    pub(crate) fn enable_tracing(&mut self) {
        self.tracer = Some(Tracer::default());
    }

    /// Finishes and takes the event trace, if recording was on.
    pub(crate) fn take_trace(&mut self) -> Option<SimTrace> {
        let now = self.now;
        self.tracer.take().map(|t| t.finish(now))
    }

    /// Notes a cycle-class observation for a unit; the highest-priority
    /// class noted during a cycle wins at [`commit_cycle`](Self::commit_cycle).
    pub(crate) fn note(&mut self, unit: UnitId, class: u8) {
        if let Some(s) = self.slot_of(unit) {
            let p = &mut self.pending_class[s];
            *p = (*p).max(class);
        }
    }

    /// Ends the cycle's attribution: every tracked unit gets exactly one
    /// class (defaulting to idle), so per unit the four counters always sum
    /// to the number of committed cycles.
    pub(crate) fn commit_cycle(&mut self) {
        let heal = self.healing_active;
        for ((p, c), l) in self
            .pending_class
            .iter_mut()
            .zip(&mut self.unit_cycles)
            .zip(&mut self.last_class)
        {
            c.bump(*p);
            if heal {
                c.healing += 1;
            }
            *l = *p;
            *p = CLASS_IDLE;
        }
        if heal {
            self.fault_stats.healing_cycles += self.unit_cycles.len() as u64;
        }
    }

    /// Bulk variant of [`commit_cycle`](Self::commit_cycle) for cycles the
    /// event kernel skipped: a skipped cycle is by construction a verbatim
    /// replay of the last committed one, so each unit repeats its last
    /// class. Keeps the per-unit invariant busy+ctrl+mem+idle == total
    /// cycles exact.
    pub(crate) fn commit_skipped(&mut self, k: u64) {
        let heal = self.healing_active;
        for (l, c) in self.last_class.iter().zip(&mut self.unit_cycles) {
            c.bump_by(*l, k);
            if heal {
                c.healing += k;
            }
        }
        if heal {
            self.fault_stats.healing_cycles += self.unit_cycles.len() as u64 * k;
        }
    }

    /// Advances the clock by `k` cycles without simulating them (all state
    /// is provably static over the span): extends open trace spans, moves
    /// the DRAM clock, and commits the repeated attribution vector.
    pub(crate) fn skip_cycles(&mut self, k: u64) {
        if let Some(t) = self.tracer.as_mut() {
            // Open spans of a quiescent cycle end at the tick-time clock,
            // which is one past the begin-time clock `now`.
            t.extend_open(self.now + 1, k);
        }
        self.now += k;
        self.dram.skip(k);
        self.commit_skipped(k);
    }

    /// Assembles the attribution result using the model's unit identities.
    pub(crate) fn unit_stats(&self, model: &SimModel) -> UnitStats {
        UnitStats {
            total_cycles: self.now,
            units: model
                .tracked
                .iter()
                .zip(&self.unit_cycles)
                .map(|(t, c)| UnitStat {
                    unit: t.unit,
                    kind: t.kind,
                    label: t.label.clone(),
                    cycles: *c,
                })
                .collect(),
        }
    }

    /// Enables or disables coalescing of sparse element requests.
    pub fn set_coalescing(&mut self, on: bool) {
        self.coalescing = on;
    }

    /// Starts a cycle: refreshes port tokens, advances DRAM, injects
    /// response drops, re-issues retries whose backoff expired, and
    /// distributes completions to their jobs.
    pub fn begin_cycle(&mut self) {
        self.read_tokens.copy_from_slice(&self.port_caps);
        self.write_tokens.copy_from_slice(&self.port_caps);
        for cu in &mut self.cus {
            cu.issue(&mut self.dram);
        }
        self.cu_pending = self.cus.iter().any(|cu| cu.has_pending_issues());
        let cols_before = self.dram.issued_columns();
        let mut completions = self.dram.tick();
        self.begin_cols = self.dram.issued_columns() != cols_before;
        // Transient injection: each response may be dropped in flight. A
        // dropped response's request is re-issued after an exponential
        // backoff, up to the retry budget.
        if self.transients.dram_drop > 0.0 {
            let p = self.transients.dram_drop;
            let max_retries = self.transients.max_retries;
            let base = self.transients.retry_base.max(1);
            let now = self.now;
            let mut kept = Vec::with_capacity(completions.len());
            for c in completions.drain(..) {
                let dropped = self.rng.as_mut().is_some_and(|r| r.chance(p));
                if !dropped {
                    self.drop_attempts.remove(&c.id);
                    kept.push(c);
                    continue;
                }
                self.fault_stats.dram_dropped += 1;
                let attempts = self.drop_attempts.entry(c.id).or_insert(0);
                *attempts += 1;
                if *attempts > max_retries {
                    self.fault_exhausted.get_or_insert((c.addr, *attempts - 1));
                    continue;
                }
                // Exponential backoff plus deterministic jitter drawn from
                // the seeded injection stream: many workers replaying drops
                // from the same cycle would otherwise re-issue in lockstep
                // and stampede the channel. Drawing the jitter from the
                // checkpointed `FaultRng` keeps faulty runs bit-reproducible
                // (and resumable) — same seed, same jitter.
                let backoff = base << (*attempts as u64 - 1).min(32);
                let jitter = self.rng.as_mut().map_or(0, |r| r.below(base / 2 + 1));
                let backoff = backoff + jitter;
                self.fault_stats.dram_retry_wait_cycles += backoff;
                self.retry_queue.push(PendingRetry {
                    due: now + backoff,
                    req: MemRequest {
                        id: c.id,
                        addr: c.addr,
                        is_write: c.is_write,
                    },
                });
            }
            completions = kept;
        }
        // Re-issue retries whose backoff has expired (capacity permitting;
        // a full queue just delays the retry another cycle).
        if !self.retry_queue.is_empty() {
            let now = self.now;
            let mut i = 0;
            while i < self.retry_queue.len() {
                let r = &self.retry_queue[i];
                if r.due <= now && self.dram.can_accept(r.req.addr) {
                    let r = self.retry_queue.swap_remove(i);
                    if self.dram.push(r.req).is_ok() {
                        self.fault_stats.dram_retries += 1;
                        self.progress = true;
                        self.changed = true;
                    } else {
                        self.retry_queue.push(r);
                        break;
                    }
                } else {
                    i += 1;
                }
            }
        }
        if !completions.is_empty() {
            self.progress = true;
            self.changed = true;
        }
        self.begin_routed = !completions.is_empty();
        // Route dense completions to jobs.
        for c in &completions {
            if let Some(job) = self.req_job.remove(&c.id) {
                *self.line_done.entry(job).or_insert(0) += 1;
                if let Some(t) = self.tracer.as_mut() {
                    t.dram_done(c.id, c.at);
                }
            } else if let Some(job) = self.req_elem.remove(&c.id) {
                *self.elem_done.entry(job).or_insert(0) += 1;
                if let Some(t) = self.tracer.as_mut() {
                    t.dram_done(c.id, c.at);
                }
            }
        }
        // Route coalesced element completions to jobs.
        let now = self.now;
        for cu in &mut self.cus {
            for e in cu.absorb(&completions) {
                let job = e.id >> ELEM_SEQ_BITS;
                *self.elem_done.entry(job).or_insert(0) += 1;
                if let Some(t) = self.tracer.as_mut() {
                    t.dram_done(e.id, now);
                }
            }
        }
        self.now += 1;
    }

    /// Earliest cycle at which a backed-off retry becomes due. `now` itself
    /// counts: at the fast-forward loop top, cycle `now` has not begun yet,
    /// so a retry due exactly then still needs its begin. Retries whose due
    /// cycle has already begun are capacity-blocked, and capacity frees
    /// exactly at a column-issue event, which the DRAM model already
    /// reports (the retry pass runs after the DRAM tick in
    /// [`begin_cycle`](Self::begin_cycle), so it sees the freed slot the
    /// same cycle).
    fn retry_next_due(&self) -> u64 {
        self.retry_queue
            .iter()
            .filter(|r| r.due >= self.now)
            .map(|r| r.due)
            .min()
            .unwrap_or(u64::MAX)
    }

    /// Fast-forwards from a quiescent iteration to the next cycle where
    /// anything can happen. Callable only right after a full iteration whose
    /// `changed` flag came back false (so replaying the tree tick verbatim
    /// is provably a no-op) and whose watchdog checks passed.
    ///
    /// Event sources, all in the begin-time clock domain (a candidate `m`
    /// means: process cycle `m`, i.e. run its begin with `now == m`):
    ///
    /// - the tree's own wake (`tree_wake`, tick-time domain): the earliest
    ///   pipeline-drain completion; cycle `tree_wake - 1` must run as a full
    ///   iteration so the leaf retires when the tick sees `now == tree_wake`;
    /// - the watchdog trigger: the cycle whose post-commit clock would trip
    ///   the stall watchdog or the cycle budget must also run as a full
    ///   iteration so both step modes fail at the identical cycle;
    /// - the DRAM timing model's next event (command issue, refresh edge,
    ///   or response arrival);
    /// - the earliest not-yet-due fault-retry backoff expiry.
    ///
    /// DRAM-only events run just the cycle's begin here ("begin core"). If
    /// that begin routed a completion, tripped fault exhaustion, or freed
    /// queue capacity a blocked pusher is waiting for, the cycle is
    /// tree-observable: return [`FastForward::Begun`] and let the run loop
    /// tick it for real. Otherwise the tree tick would have been a verbatim
    /// no-op — commit the repeated attribution vector and keep going.
    ///
    /// One ordering subtlety forces an extra event: coalescing units issue
    /// *before* the DRAM tick, so queue capacity freed by a column command
    /// at cycle `m` is visible to a blocked unit only at cycle `m + 1` —
    /// when a begin issues a column while some unit still has pending line
    /// requests, the next cycle must also be processed.
    pub(crate) fn fast_forward(
        &mut self,
        tree_wake: u64,
        stall_limit: u64,
        max_cycles: u64,
        hard_stop: u64,
        last_progress: &mut u64,
    ) -> FastForward {
        loop {
            // First cycle whose post-commit clock (now + 1) would fire a
            // run-loop check; it must be a full iteration.
            let trigger = last_progress
                .saturating_add(stall_limit)
                .saturating_add(1)
                .min(max_cycles);
            let tree_ev = tree_wake.saturating_sub(1);
            let trig_ev = trigger.saturating_sub(1);
            let forced = self.begin_cols && self.cu_pending;
            if !forced {
                // `hard_stop` bounds the span at the next fault-timeline
                // arrival or degrade deadline: the run loop must observe
                // that exact cycle boundary, so the skip never crosses it.
                let cap = tree_ev.min(trig_ev).min(hard_stop);
                if let Some(ff) = self.parallel_span(cap) {
                    return ff;
                }
                let m = cap.min(self.dram.next_event()).min(self.retry_next_due());
                debug_assert!(m >= self.now, "event {m} in the past (now {})", self.now);
                if m > self.now {
                    self.skip_cycles(m - self.now);
                }
            }
            if self.now == tree_ev || self.now == trig_ev || self.now == hard_stop {
                return FastForward::NeedBegin;
            }
            self.begin_cycle();
            let observable = self.begin_routed
                || self.fault_exhausted.is_some()
                || (self.push_blocked && self.begin_cols);
            if observable {
                return FastForward::Begun;
            }
            // Quiet DRAM-only cycle: the tick would have re-noted the same
            // blocked state; extend spans and commit the repeated vector.
            if let Some(t) = self.tracer.as_mut() {
                t.extend_open(self.now, 1);
            }
            self.commit_skipped(1);
            // A retry push inside the begin sets progress; mirror the run
            // loop's post-commit bookkeeping so the watchdog clock matches.
            if self.take_progress() {
                *last_progress = self.now;
            }
        }
    }

    /// Attempts to process the span `[now, horizon)` on the worker pool
    /// instead of the serial fast-forward loop. Returns `None` (state
    /// untouched) when parallel execution is off or not worthwhile; else
    /// the span has been fully processed and the result mirrors what the
    /// serial loop would have returned, byte for byte.
    ///
    /// Within a span no completion is ever routed — any completion ends the
    /// span as tree-observable — so simulator mutation decomposes into
    /// independent per-shard event chains (see `crate::parallel` and
    /// DESIGN.md §12). Workers speculatively run each chain to its first
    /// observable cycle; the coordinator takes the minimum `R`, replays any
    /// shard that sped past it from a pristine clone, merges completions at
    /// `R` by ascending global channel index (the canonical serial order),
    /// and reproduces the serial flag state exactly.
    ///
    /// Gated off whenever span-local effects could couple shards: tracing
    /// (per-cycle span extension), pending or possible DRAM-drop retries
    /// (global RNG draws + cross-channel re-push), or a forced entry.
    fn parallel_span(&mut self, horizon: u64) -> Option<FastForward> {
        use crate::parallel::{ParRuntime, ShardPlan, ShardTask, WorkerPool};
        /// Spans shorter than this cannot amortize dispatch + clone costs.
        const MIN_SPAN: u64 = 32;
        if self.threads < 2
            || self.par_disabled
            || self.tracer.is_some()
            || !self.retry_queue.is_empty()
            || self.transients.dram_drop > 0.0
            || horizon.saturating_sub(self.now) < MIN_SPAN
        {
            return None;
        }
        let channels = self.dram.config().channels;
        let serving: Vec<usize> = (0..channels)
            .map(|c| self.dram.serving_channel(c))
            .collect();
        let rebuild = match &self.par {
            Some(rt) => rt.plan.serving != serving,
            None => true,
        };
        if rebuild {
            let plan = ShardPlan::build(channels, self.cus.len(), serving);
            if plan.groups.len() < 2 {
                self.par_disabled = true;
                return None;
            }
            // The span coordinator runs one lane of chains itself, so it
            // counts toward the thread budget: N threads = N-1 workers + 1
            // caller lane, capped so no lane would sit idle.
            let workers = (self.threads - 1).min(plan.groups.len() - 1).max(1);
            self.par = Some(ParRuntime {
                pool: WorkerPool::new(workers),
                plan,
            });
        }
        let mut rt = self.par.take().expect("runtime built above");
        // Cheap pre-check: parallelism only pays when at least two shards
        // have events inside the span. (A shard with pending coalescer lines
        // but no channel event is inert too: pending implies full queues,
        // and capacity frees only at the shard's own column events.)
        let active = rt
            .plan
            .groups
            .iter()
            .filter(|g| g.iter().any(|&c| self.dram.channel_next_event(c) < horizon))
            .count();
        if active < 2 {
            self.par = Some(rt);
            return None;
        }

        let n0 = self.now;
        let stop_on_cols = self.push_blocked;
        // Detach shard state. Workers get clones; the originals stay behind
        // as pristine copies for the truncation replay.
        let shards = self.dram.detach_shards(&rt.plan.groups);
        let mut cu_slots: Vec<Option<CoalescingUnit>> = std::mem::take(&mut self.cus)
            .into_iter()
            .map(Some)
            .collect();
        let n_shards = shards.len();
        // Cross-shard work limiter: chains publish candidate cycles here and
        // stop once their next event is past the published minimum, keeping
        // overshoot (and thus round-two replays) small.
        let race = std::sync::Arc::new(std::sync::atomic::AtomicU64::new(u64::MAX));
        let mut pristine = Vec::with_capacity(n_shards);
        let mut tasks = Vec::with_capacity(n_shards);
        for (i, shard) in shards.into_iter().enumerate() {
            let cus: Vec<CoalescingUnit> = rt.plan.cu_of_shard[i]
                .iter()
                .map(|&k| cu_slots[k].take().expect("unit assigned once"))
                .collect();
            tasks.push((
                i,
                ShardTask {
                    shard: shard.clone(),
                    cus: cus.clone(),
                    start: n0,
                    horizon,
                    stop_on_cols,
                    cap: None,
                    race: Some(std::sync::Arc::clone(&race)),
                },
            ));
            pristine.push(Some((shard, cus)));
        }
        // Round one: every chain speculates to its first observable cycle
        // (or the horizon). Results are indexed by slot, so worker
        // scheduling cannot influence anything downstream.
        let mut outs: Vec<Option<crate::parallel::ChainOut>> =
            (0..n_shards).map(|_| None).collect();
        for (slot, out) in rt.pool.run(tasks) {
            outs[slot] = Some(out);
        }
        let r_cycle = outs
            .iter()
            .map(|o| o.as_ref().expect("every slot filled"))
            .filter_map(|o| o.candidate.as_ref().map(|c| c.at))
            .min();
        // Round two: truncate chains that sped past R. A capped replay of
        // the pristine copy reproduces the ≤R prefix exactly (chains are
        // deterministic); it can't find a new observable below R — round
        // one already proved none exists there.
        if let Some(r) = r_cycle {
            let replays: Vec<(usize, ShardTask)> = (0..n_shards)
                .filter(|&i| {
                    outs[i]
                        .as_ref()
                        .expect("filled")
                        .processed
                        .iter()
                        .any(|&(e, _)| e > r)
                })
                .map(|i| {
                    let (shard, cus) = pristine[i].take().expect("not yet replayed");
                    (
                        i,
                        ShardTask {
                            shard,
                            cus,
                            start: n0,
                            horizon,
                            stop_on_cols,
                            cap: Some(r),
                            race: None,
                        },
                    )
                })
                .collect();
            if !replays.is_empty() {
                for (slot, out) in rt.pool.run(replays) {
                    outs[slot] = Some(out);
                }
            }
        }
        // Span-work accounting: the post-replay chains hold exactly the
        // events the serial kernel would have processed in this span, and
        // the lane assignment (task index mod lanes, matching the pool's
        // round-robin) gives the critical path — the load-balance bound on
        // multi-core wall-clock speedup, reported by the simkernel bench.
        {
            let lanes = rt.pool.lanes();
            let mut lane_events = vec![0u64; lanes];
            for (i, o) in outs.iter().enumerate() {
                lane_events[i % lanes] +=
                    o.as_ref().expect("every slot filled").processed.len() as u64;
            }
            self.span_work.total_events += lane_events.iter().sum::<u64>();
            self.span_work.critical_path_events += lane_events.iter().max().copied().unwrap_or(0);
        }
        // The serial loop's last begin in a no-observable span is at the
        // maximum processed cycle across shards; capture its column flag
        // before the merge loop consumes the chain outputs.
        let (e_max, cols_at_emax) = {
            let chains = || outs.iter().map(|o| o.as_ref().expect("every slot filled"));
            let em = chains()
                .filter_map(|o| o.processed.last().map(|&(e, _)| e))
                .max();
            let cols = em.is_some_and(|em| {
                chains().any(|o| o.processed.iter().any(|&(e, cols)| e == em && cols))
            });
            (em, cols)
        };
        // Merge: reattach evolved state and reproduce the serial flags.
        let mut merged: Vec<(usize, Vec<plasticine_dram::Completion>)> = Vec::new();
        let mut cols_at_r = false;
        let mut cu_pending = false;
        let mut all_shards = Vec::with_capacity(n_shards);
        for (i, o) in outs.into_iter().enumerate() {
            let mut o = o.expect("every slot filled");
            cu_pending |= o.pending_after;
            if let Some(c) = o.candidate.take() {
                debug_assert_eq!(Some(c.at), r_cycle, "non-minimal candidate survived replay");
                cols_at_r |= c.cols;
                merged.extend(c.completions);
            } else if let Some(r) = r_cycle {
                // A shard that reached R on its own chain without observables
                // still contributes its column issues to `begin_cols`.
                cols_at_r |= o.processed.iter().any(|&(e, cols)| e == r && cols);
            }
            for (&k, cu) in rt.plan.cu_of_shard[i].iter().zip(o.cus) {
                cu_slots[k] = Some(cu);
            }
            all_shards.push(o.shard);
        }
        self.dram.attach_shards(all_shards);
        self.cus = cu_slots
            .into_iter()
            .map(|s| s.expect("every unit returned"))
            .collect();
        self.par = Some(rt);

        match r_cycle {
            Some(r) => {
                // Mirror `begin_cycle` for cycle R: token refresh happened
                // conceptually at every processed cycle; only R's begin is
                // visible to the tree, so refresh once here.
                self.read_tokens.copy_from_slice(&self.port_caps);
                self.write_tokens.copy_from_slice(&self.port_caps);
                self.cu_pending = cu_pending;
                self.begin_cols = cols_at_r;
                merged.sort_by_key(|(ch, _)| *ch);
                let completions: Vec<plasticine_dram::Completion> =
                    merged.into_iter().flat_map(|(_, v)| v).collect();
                if !completions.is_empty() {
                    self.progress = true;
                    self.changed = true;
                }
                self.begin_routed = !completions.is_empty();
                for c in &completions {
                    if let Some(job) = self.req_job.remove(&c.id) {
                        *self.line_done.entry(job).or_insert(0) += 1;
                    } else if let Some(job) = self.req_elem.remove(&c.id) {
                        *self.elem_done.entry(job).or_insert(0) += 1;
                    }
                }
                for cu in &mut self.cus {
                    for e in cu.absorb(&completions) {
                        let job = e.id >> ELEM_SEQ_BITS;
                        *self.elem_done.entry(job).or_insert(0) += 1;
                    }
                }
                self.now = r + 1;
                self.dram.advance_to(r + 1);
                self.commit_skipped(r - n0);
                Some(FastForward::Begun)
            }
            None => {
                // No observable below the horizon: every chain ran dry.
                // Reproduce the flag state of the serial loop's last
                // unobservable begin (at e_max), then stop at the horizon
                // for the full iteration the caller owes.
                debug_assert!(e_max.is_some(), "two active shards processed no cycles");
                self.begin_routed = false;
                self.cu_pending = cu_pending;
                self.begin_cols = cols_at_emax;
                self.now = horizon;
                self.dram.advance_to(horizon);
                self.commit_skipped(horizon - n0);
                Some(FastForward::NeedBegin)
            }
        }
    }

    /// Tries to reserve an invocation slot for a controller.
    pub fn acquire_slot(&mut self, ctrl: CtrlId) -> bool {
        match self.slots.get_mut(&ctrl) {
            Some(n) if *n > 0 => {
                *n -= 1;
                self.progress = true;
                self.changed = true;
                true
            }
            Some(_) => false,
            None => {
                // Controllers without hardware (shouldn't happen); still a
                // state change — the caller transitions on success.
                self.changed = true;
                true
            }
        }
    }

    /// Invocation-slot occupancy for a controller: `(in_use, capacity)`.
    /// Capacity 0 with a missing entry means the controller has no hardware.
    pub(crate) fn slot_usage(&self, ctrl: CtrlId, model: &SimModel) -> (usize, usize) {
        let cap = model.ctrl_slots.get(&ctrl).copied().unwrap_or(0);
        let free = self.slots.get(&ctrl).copied().unwrap_or(cap);
        (cap - free, cap)
    }

    /// Releases an invocation slot.
    pub fn release_slot(&mut self, ctrl: CtrlId) {
        if let Some(n) = self.slots.get_mut(&ctrl) {
            *n += 1;
        }
        // Not `progress` (freeing a slot does not advance work by itself),
        // but the freed slot can unblock a sibling next cycle.
        self.changed = true;
    }

    /// Tries to consume one read port per listed memory unit (duplicates
    /// demand multiple ports) and one write port per written unit, all or
    /// nothing.
    pub fn acquire_ports(&mut self, reads: &[UnitId], writes: &[UnitId]) -> bool {
        // The unit lists are tiny (the model dedups them), so demand counting
        // is a quadratic scan over the slice instead of a per-call hash map.
        // Units without a port index have no modelled ports and always
        // satisfy an acquire.
        let mut ok = true;
        for (i, u) in reads.iter().enumerate() {
            if reads[..i].contains(u) {
                continue; // demand counted at the first occurrence
            }
            if let Some(p) = self.port_of(*u) {
                let n = reads.iter().filter(|v| *v == u).count();
                if self.read_tokens[p] < n {
                    // Attribution: scratchpads that were demanded but could
                    // not serve are port-conflicted this cycle (mem-stall
                    // unless some other consumer made them busy).
                    ok = false;
                    self.note(*u, CLASS_MEM);
                }
            }
        }
        for (i, u) in writes.iter().enumerate() {
            if writes[..i].contains(u) {
                continue;
            }
            if let Some(p) = self.port_of(*u) {
                let n = writes.iter().filter(|v| *v == u).count();
                if self.write_tokens[p] < n {
                    ok = false;
                    self.note(*u, CLASS_MEM);
                }
            }
        }
        if !ok {
            return false;
        }
        for u in reads {
            if let Some(p) = self.port_of(*u) {
                self.read_tokens[p] -= 1;
            }
            self.note(*u, CLASS_BUSY);
        }
        for u in writes {
            if let Some(p) = self.port_of(*u) {
                self.write_tokens[p] -= 1;
            }
            self.note(*u, CLASS_BUSY);
        }
        if !reads.is_empty() || !writes.is_empty() {
            self.activity.pmu_busy_cycles += 1;
        }
        self.progress = true;
        self.changed = true;
        true
    }

    /// Pushes one dense line request for a job. Returns false on
    /// backpressure.
    pub fn push_dense(&mut self, job: u64, byte_addr: u64, is_write: bool) -> bool {
        if !self.dram.can_accept(byte_addr) {
            self.push_blocked = true;
            return false;
        }
        let id = self.next_dense;
        self.next_dense += 1;
        match self.dram.push(MemRequest {
            id,
            addr: byte_addr,
            is_write,
        }) {
            Ok(()) => {
                self.req_job.insert(id, job);
                self.progress = true;
                self.changed = true;
                if let Some(t) = self.tracer.as_mut() {
                    t.dram_issue(id, byte_addr, is_write, false, job, self.now);
                }
                true
            }
            Err(_) => {
                self.push_blocked = true;
                false
            }
        }
    }

    /// Pushes one sparse element request through the coalescing unit owning
    /// the element's channel. Returns false on backpressure.
    pub fn push_sparse(&mut self, job: u64, byte_addr: u64, is_write: bool) -> bool {
        if !self.coalescing {
            // Ablation: every element is its own DRAM burst.
            if !self.dram.can_accept(byte_addr) {
                self.push_blocked = true;
                return false;
            }
            let id = self.next_dense;
            match self.dram.push(MemRequest {
                id,
                addr: byte_addr & !63,
                is_write,
            }) {
                Ok(()) => {
                    self.next_dense += 1;
                    // Report it back through the element channel.
                    self.req_elem.insert(id, job);
                    self.progress = true;
                    self.changed = true;
                    if let Some(t) = self.tracer.as_mut() {
                        t.dram_issue(id, byte_addr & !63, is_write, true, job, self.now);
                    }
                    true
                }
                Err(_) => {
                    self.push_blocked = true;
                    false
                }
            }
        } else {
            let chan = self.dram.config().map(byte_addr).channel;
            let n_cus = self.cus.len();
            let cu = &mut self.cus[chan % n_cus];
            let seq = self.next_elem_seq.entry(job).or_insert(0);
            let id = (job << ELEM_SEQ_BITS) | (*seq & ((1 << ELEM_SEQ_BITS) - 1));
            if cu.try_push(ElemRequest {
                id,
                byte_addr,
                is_write,
            }) {
                *seq += 1;
                self.progress = true;
                self.changed = true;
                if let Some(t) = self.tracer.as_mut() {
                    t.dram_issue(id, byte_addr, is_write, true, job, self.now);
                }
                true
            } else {
                self.push_blocked = true;
                false
            }
        }
    }

    /// Takes the number of dense-line completions accumulated for a job.
    pub fn take_lines(&mut self, job: u64) -> u64 {
        if self.line_done.is_empty() {
            return 0; // common case in compute phases: skip the hash
        }
        self.line_done.remove(&job).unwrap_or(0)
    }

    /// Takes the number of element completions accumulated for a job.
    pub fn take_elems(&mut self, job: u64) -> u64 {
        if self.elem_done.is_empty() {
            return 0;
        }
        self.elem_done.remove(&job).unwrap_or(0)
    }

    /// Aggregate DRAM statistics.
    pub fn dram_stats(&self) -> DramStats {
        self.dram.stats()
    }

    /// Aggregate coalescing statistics (summed over units).
    pub fn coalesce_stats(&self) -> plasticine_dram::CoalesceStats {
        let mut s = plasticine_dram::CoalesceStats::default();
        for cu in &self.cus {
            s.elem_requests += cu.stats.elem_requests;
            s.line_requests += cu.stats.line_requests;
            s.merged += cu.stats.merged;
        }
        s
    }

    // ---- checkpointing ----

    /// Serializes all mutable resource state at a cycle boundary (the top
    /// of the run loop, after `commit_cycle` and the progress/fault takes).
    ///
    /// Derived state is *not* included: port tokens/capacities and the
    /// dense unit/port indices are rebuilt from the model, `pending_class`
    /// is all-idle at a boundary (asserted), and `fault_exhausted` has
    /// been taken. Hash maps are emitted sorted by key so the snapshot
    /// bytes are canonical; `retry_queue` order is preserved verbatim
    /// (retry re-issue order is behaviorally significant).
    pub(crate) fn snapshot(&self) -> Json {
        debug_assert!(
            self.pending_class.iter().all(|&c| c == CLASS_IDLE),
            "snapshot off a cycle boundary: pending classes not committed"
        );
        debug_assert!(
            self.fault_exhausted.is_none(),
            "snapshot with an untaken fault-exhaustion event"
        );
        let hexmap = |m: &HashMap<u64, u64>| {
            let mut kv: Vec<_> = m.iter().map(|(&k, &v)| (k, v)).collect();
            kv.sort_unstable();
            Json::Arr(
                kv.into_iter()
                    .map(|(k, v)| Json::Arr(vec![Json::hex(k), Json::hex(v)]))
                    .collect(),
            )
        };
        let mut slots: Vec<_> = self.slots.iter().map(|(&c, &n)| (c, n)).collect();
        slots.sort_unstable();
        let mut drops: Vec<_> = self.drop_attempts.iter().map(|(&k, &v)| (k, v)).collect();
        drops.sort_unstable();
        let a = &self.activity;
        let f = &self.fault_stats;
        Json::obj([
            ("now", Json::from(self.now)),
            (
                "slots",
                Json::Arr(
                    slots
                        .into_iter()
                        .map(|(c, n)| {
                            Json::Arr(vec![Json::from(u64::from(c.0)), Json::from(n as u64)])
                        })
                        .collect(),
                ),
            ),
            ("dram", self.dram.snapshot()),
            (
                "cus",
                Json::Arr(self.cus.iter().map(|cu| cu.snapshot()).collect()),
            ),
            ("line_done", hexmap(&self.line_done)),
            ("elem_done", hexmap(&self.elem_done)),
            ("req_job", hexmap(&self.req_job)),
            ("req_elem", hexmap(&self.req_elem)),
            ("next_dense", Json::from(self.next_dense)),
            ("next_elem_seq", hexmap(&self.next_elem_seq)),
            (
                "activity",
                Json::obj([
                    ("fu_ops", Json::from(a.fu_ops)),
                    ("heavy_ops", Json::from(a.heavy_ops)),
                    ("red_ops", Json::from(a.red_ops)),
                    ("sram_reads", Json::from(a.sram_reads)),
                    ("sram_writes", Json::from(a.sram_writes)),
                    ("reg_traffic", Json::from(a.reg_traffic)),
                    ("net_word_hops", Json::from(a.net_word_hops)),
                    ("ctrl_msgs", Json::from(a.ctrl_msgs)),
                    ("pcu_busy_cycles", Json::from(a.pcu_busy_cycles)),
                    ("pmu_busy_cycles", Json::from(a.pmu_busy_cycles)),
                    ("ag_busy_cycles", Json::from(a.ag_busy_cycles)),
                ]),
            ),
            (
                "unit_cycles",
                Json::Arr(
                    self.unit_cycles
                        .iter()
                        .map(|u| {
                            Json::obj([
                                ("busy", Json::from(u.busy)),
                                ("ctrl", Json::from(u.ctrl_stall)),
                                ("mem", Json::from(u.mem_stall)),
                                ("idle", Json::from(u.idle)),
                                ("rec", Json::from(u.recovery)),
                                ("heal", Json::from(u.healing)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "rng",
                self.rng
                    .as_ref()
                    .map(|r| Json::hex(r.state()))
                    .unwrap_or(Json::Null),
            ),
            (
                "fault_stats",
                Json::obj([
                    ("ecc_corrected", Json::from(f.ecc_corrected)),
                    ("parity_replays", Json::from(f.parity_replays)),
                    ("lane_replays", Json::from(f.lane_replays)),
                    ("recovery_cycles", Json::from(f.recovery_cycles)),
                    ("dram_dropped", Json::from(f.dram_dropped)),
                    ("dram_retries", Json::from(f.dram_retries)),
                    (
                        "dram_retry_wait_cycles",
                        Json::from(f.dram_retry_wait_cycles),
                    ),
                    ("healing_cycles", Json::from(f.healing_cycles)),
                ]),
            ),
            (
                "ecc",
                if self.ecc_policy.active() {
                    Json::obj([
                        (
                            "errs",
                            Json::Arr(
                                self.ecc_errs
                                    .iter()
                                    .filter(|(_, cs)| !cs.is_empty())
                                    .map(|(&u, cs)| {
                                        Json::Arr(vec![
                                            Json::from(u64::from(u)),
                                            Json::Arr(cs.iter().map(|&c| Json::from(c)).collect()),
                                        ])
                                    })
                                    .collect(),
                            ),
                        ),
                        (
                            "pending",
                            Json::Arr(
                                self.ecc_pending
                                    .iter()
                                    .map(|&(u, c)| {
                                        Json::Arr(vec![Json::from(u64::from(u)), Json::from(c)])
                                    })
                                    .collect(),
                            ),
                        ),
                    ])
                } else {
                    Json::Null
                },
            ),
            (
                "drop_attempts",
                Json::Arr(
                    drops
                        .into_iter()
                        .map(|(k, v)| Json::Arr(vec![Json::hex(k), Json::from(u64::from(v))]))
                        .collect(),
                ),
            ),
            (
                "retry_queue",
                Json::Arr(
                    self.retry_queue
                        .iter()
                        .map(|r| {
                            Json::obj([
                                ("due", Json::from(r.due)),
                                ("id", Json::hex(r.req.id)),
                                ("addr", Json::hex(r.req.addr)),
                                ("w", Json::from(r.req.is_write)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "flags",
                Json::obj([
                    ("progress", Json::from(self.progress)),
                    ("changed", Json::from(self.changed)),
                    ("push_blocked", Json::from(self.push_blocked)),
                    ("begin_routed", Json::from(self.begin_routed)),
                    ("begin_cols", Json::from(self.begin_cols)),
                    ("cu_pending", Json::from(self.cu_pending)),
                ]),
            ),
            (
                "last_class",
                Json::Arr(
                    self.last_class
                        .iter()
                        .map(|&c| Json::from(u64::from(c)))
                        .collect(),
                ),
            ),
        ])
    }

    /// Restores state captured by [`snapshot`](Self::snapshot) into a pool
    /// freshly built by [`new`](Self::new) for the same model and options
    /// (with `set_transients`/`set_coalescing`/`set_offline` already
    /// applied — restore overlays the mutable state on top).
    ///
    /// # Errors
    ///
    /// Fails with a message on a malformed snapshot or one whose shape
    /// does not match this pool's model.
    pub(crate) fn restore(&mut self, j: &Json) -> Result<(), String> {
        use plasticine_json::decode::{arr_of, bool_of, field, hex_of, u64_of};
        let pairs = |j: &Json, k: &str| -> Result<Vec<(u64, u64)>, String> {
            let mut out = Vec::new();
            for e in arr_of(j, k)? {
                let p = e
                    .as_arr()
                    .filter(|p| p.len() == 2)
                    .ok_or_else(|| format!("field `{k}`: entry is not a pair"))?;
                let k = p[0]
                    .as_hex()
                    .ok_or_else(|| "pair key is not a hex string".to_string())?;
                let v = p[1]
                    .as_hex()
                    .ok_or_else(|| "pair value is not a hex string".to_string())?;
                out.push((k, v));
            }
            Ok(out)
        };
        self.now = u64_of(j, "now")?;
        self.slots.clear();
        for e in arr_of(j, "slots")? {
            let p = e
                .as_arr()
                .filter(|p| p.len() == 2)
                .ok_or_else(|| "slot entry is not a pair".to_string())?;
            let c = p[0]
                .as_u64()
                .and_then(|v| u32::try_from(v).ok())
                .ok_or_else(|| "bad slot ctrl id".to_string())?;
            let n = p[1]
                .as_usize()
                .ok_or_else(|| "bad slot count".to_string())?;
            self.slots.insert(CtrlId(c), n);
        }
        self.dram.restore(field(j, "dram")?)?;
        let cus = arr_of(j, "cus")?;
        if cus.len() != self.cus.len() {
            return Err(format!(
                "coalescing-unit count mismatch: snapshot {} vs model {}",
                cus.len(),
                self.cus.len()
            ));
        }
        for (cu, cj) in self.cus.iter_mut().zip(cus) {
            cu.restore(cj)?;
        }
        self.line_done = pairs(j, "line_done")?.into_iter().collect();
        self.elem_done = pairs(j, "elem_done")?.into_iter().collect();
        self.req_job = pairs(j, "req_job")?.into_iter().collect();
        self.req_elem = pairs(j, "req_elem")?.into_iter().collect();
        self.next_dense = u64_of(j, "next_dense")?;
        self.next_elem_seq = pairs(j, "next_elem_seq")?.into_iter().collect();
        let a = field(j, "activity")?;
        self.activity = Activity {
            fu_ops: u64_of(a, "fu_ops")?,
            heavy_ops: u64_of(a, "heavy_ops")?,
            red_ops: u64_of(a, "red_ops")?,
            sram_reads: u64_of(a, "sram_reads")?,
            sram_writes: u64_of(a, "sram_writes")?,
            reg_traffic: u64_of(a, "reg_traffic")?,
            net_word_hops: u64_of(a, "net_word_hops")?,
            ctrl_msgs: u64_of(a, "ctrl_msgs")?,
            pcu_busy_cycles: u64_of(a, "pcu_busy_cycles")?,
            pmu_busy_cycles: u64_of(a, "pmu_busy_cycles")?,
            ag_busy_cycles: u64_of(a, "ag_busy_cycles")?,
        };
        let ucs = arr_of(j, "unit_cycles")?;
        if ucs.len() != self.unit_cycles.len() {
            return Err(format!(
                "tracked-unit count mismatch: snapshot {} vs model {}",
                ucs.len(),
                self.unit_cycles.len()
            ));
        }
        for (uc, uj) in self.unit_cycles.iter_mut().zip(ucs) {
            *uc = UnitCycles {
                busy: u64_of(uj, "busy")?,
                ctrl_stall: u64_of(uj, "ctrl")?,
                mem_stall: u64_of(uj, "mem")?,
                idle: u64_of(uj, "idle")?,
                recovery: u64_of(uj, "rec")?,
                healing: u64_of(uj, "heal")?,
            };
        }
        self.rng = match field(j, "rng")? {
            Json::Null => None,
            v => Some(FaultRng::from_state(
                v.as_hex().ok_or_else(|| "bad rng state".to_string())?,
            )),
        };
        let f = field(j, "fault_stats")?;
        self.fault_stats = FaultStats {
            ecc_corrected: u64_of(f, "ecc_corrected")?,
            parity_replays: u64_of(f, "parity_replays")?,
            lane_replays: u64_of(f, "lane_replays")?,
            recovery_cycles: u64_of(f, "recovery_cycles")?,
            dram_dropped: u64_of(f, "dram_dropped")?,
            dram_retries: u64_of(f, "dram_retries")?,
            dram_retry_wait_cycles: u64_of(f, "dram_retry_wait_cycles")?,
            healing_cycles: u64_of(f, "healing_cycles")?,
        };
        self.ecc_errs.clear();
        self.ecc_pending.clear();
        self.ecc_escalated.clear();
        match field(j, "ecc")? {
            Json::Null => {}
            e => {
                for entry in arr_of(e, "errs")? {
                    let p = entry
                        .as_arr()
                        .filter(|p| p.len() == 2)
                        .ok_or_else(|| "ecc errs entry is not a pair".to_string())?;
                    let u = p[0]
                        .as_u64()
                        .and_then(|v| u32::try_from(v).ok())
                        .ok_or_else(|| "bad ecc unit id".to_string())?;
                    let cs = p[1]
                        .as_arr()
                        .ok_or_else(|| "ecc cycles is not an array".to_string())?
                        .iter()
                        .map(|c| c.as_u64().ok_or_else(|| "bad ecc cycle".to_string()))
                        .collect::<Result<Vec<_>, _>>()?;
                    self.ecc_errs.insert(u, cs);
                }
                for entry in arr_of(e, "pending")? {
                    let p = entry
                        .as_arr()
                        .filter(|p| p.len() == 2)
                        .ok_or_else(|| "ecc pending entry is not a pair".to_string())?;
                    let u = p[0]
                        .as_u64()
                        .and_then(|v| u32::try_from(v).ok())
                        .ok_or_else(|| "bad ecc unit id".to_string())?;
                    let c = p[1]
                        .as_u64()
                        .ok_or_else(|| "bad ecc escalation cycle".to_string())?;
                    self.ecc_pending.push((u, c));
                }
            }
        }
        self.healing_active = false;
        self.drop_attempts.clear();
        for e in arr_of(j, "drop_attempts")? {
            let p = e
                .as_arr()
                .filter(|p| p.len() == 2)
                .ok_or_else(|| "drop entry is not a pair".to_string())?;
            let k = p[0]
                .as_hex()
                .ok_or_else(|| "bad drop request id".to_string())?;
            let v = p[1]
                .as_u64()
                .and_then(|v| u32::try_from(v).ok())
                .ok_or_else(|| "bad drop attempt count".to_string())?;
            self.drop_attempts.insert(k, v);
        }
        self.retry_queue.clear();
        for rj in arr_of(j, "retry_queue")? {
            self.retry_queue.push(PendingRetry {
                due: u64_of(rj, "due")?,
                req: MemRequest {
                    id: hex_of(rj, "id")?,
                    addr: hex_of(rj, "addr")?,
                    is_write: bool_of(rj, "w")?,
                },
            });
        }
        let fl = field(j, "flags")?;
        self.progress = bool_of(fl, "progress")?;
        self.changed = bool_of(fl, "changed")?;
        self.push_blocked = bool_of(fl, "push_blocked")?;
        self.begin_routed = bool_of(fl, "begin_routed")?;
        self.begin_cols = bool_of(fl, "begin_cols")?;
        self.cu_pending = bool_of(fl, "cu_pending")?;
        let lc = arr_of(j, "last_class")?;
        if lc.len() != self.last_class.len() {
            return Err("class-vector length mismatch".to_string());
        }
        for (dst, cj) in self.last_class.iter_mut().zip(lc) {
            *dst = cj
                .as_u64()
                .and_then(|v| u8::try_from(v).ok())
                .ok_or_else(|| "bad class value".to_string())?;
        }
        self.fault_exhausted = None;
        self.pending_class.fill(CLASS_IDLE);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn empty_model() -> SimModel {
        SimModel {
            compute: HashMap::new(),
            transfer: HashMap::new(),
            outer: HashMap::new(),
            ctrl_slots: HashMap::new(),
            mem_ports: HashMap::new(),
            dram_base: vec![],
            sram_words: HashMap::new(),
            tracked: vec![],
        }
    }

    #[test]
    fn slots_are_counted() {
        let mut m = empty_model();
        m.ctrl_slots.insert(CtrlId(0), 2);
        let mut r = Resources::new(&m, &PlasticineParams::paper_final(), DramConfig::default());
        assert!(r.acquire_slot(CtrlId(0)));
        assert!(r.acquire_slot(CtrlId(0)));
        assert!(!r.acquire_slot(CtrlId(0)));
        r.release_slot(CtrlId(0));
        assert!(r.acquire_slot(CtrlId(0)));
    }

    #[test]
    fn ports_reset_each_cycle() {
        let mut m = empty_model();
        m.mem_ports.insert(UnitId(0), 1);
        let mut r = Resources::new(&m, &PlasticineParams::paper_final(), DramConfig::default());
        r.begin_cycle();
        assert!(r.acquire_ports(&[UnitId(0)], &[]));
        assert!(!r.acquire_ports(&[UnitId(0)], &[]));
        // Write port is independent.
        assert!(r.acquire_ports(&[], &[UnitId(0)]));
        r.begin_cycle();
        assert!(r.acquire_ports(&[UnitId(0)], &[]));
    }

    #[test]
    fn dense_and_sparse_requests_complete() {
        let m = empty_model();
        let mut r = Resources::new(
            &m,
            &PlasticineParams::paper_final(),
            DramConfig {
                refresh: false,
                ..DramConfig::default()
            },
        );
        assert!(r.push_dense(7, 0, false));
        assert!(r.push_sparse(9, 4096, false));
        let mut lines = 0;
        let mut elems = 0;
        for _ in 0..10_000 {
            r.begin_cycle();
            lines += r.take_lines(7);
            elems += r.take_elems(9);
            if lines == 1 && elems == 1 {
                break;
            }
        }
        assert_eq!(lines, 1);
        assert_eq!(elems, 1);
    }
}
