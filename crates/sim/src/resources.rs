//! Shared cycle-granular resources: invocation slots, scratchpad ports,
//! address generators, the DRAM system, and activity counters.

use crate::model::SimModel;
use crate::trace::{
    SimTrace, Tracer, UnitCycles, UnitStat, UnitStats, CLASS_BUSY, CLASS_IDLE, CLASS_MEM,
};
use plasticine_arch::{PlasticineParams, UnitId};
use plasticine_dram::{CoalescingUnit, DramConfig, DramStats, DramSystem, ElemRequest, MemRequest};
use plasticine_ppir::CtrlId;
use std::collections::HashMap;

/// Dynamic activity accumulated during simulation — the input to the power
/// model and the source of Table 7's utilization columns.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Activity {
    /// ALU operations executed (element granularity).
    pub fu_ops: u64,
    /// Iterative (transcendental) ops among them.
    pub heavy_ops: u64,
    /// Reduction-tree ops.
    pub red_ops: u64,
    /// Words read from scratchpads.
    pub sram_reads: u64,
    /// Words written to scratchpads.
    pub sram_writes: u64,
    /// Vector-register traffic proxy: vectors issued × pipeline stages.
    pub reg_traffic: u64,
    /// Vector payload × hops moved on the vector network (word-hops).
    pub net_word_hops: u64,
    /// Scalar and control messages.
    pub ctrl_msgs: u64,
    /// PCU-cycles spent actively issuing (for clock gating in the power
    /// model).
    pub pcu_busy_cycles: u64,
    /// PMU-cycles with at least one port active.
    pub pmu_busy_cycles: u64,
    /// AG-cycles spent issuing.
    pub ag_busy_cycles: u64,
}

/// Error while simulating.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// The functional interpreter failed.
    Run(plasticine_ppir::RunError),
    /// The schedule made no progress for too long.
    Deadlock {
        /// Cycle at which the simulation gave up.
        cycle: u64,
    },
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::Run(e) => write!(f, "functional execution failed: {e}"),
            SimError::Deadlock { cycle } => {
                write!(f, "simulation deadlocked at cycle {cycle}")
            }
        }
    }
}

impl std::error::Error for SimError {}

impl From<plasticine_ppir::RunError> for SimError {
    fn from(e: plasticine_ppir::RunError) -> SimError {
        SimError::Run(e)
    }
}

/// Bits of elem-request ids reserved for the per-job sequence number.
const ELEM_SEQ_BITS: u64 = 24;

/// Shared simulation resources, reset per cycle where appropriate.
#[derive(Debug)]
pub struct Resources {
    /// Current cycle.
    pub now: u64,
    slots: HashMap<CtrlId, usize>,
    read_tokens: HashMap<UnitId, usize>,
    write_tokens: HashMap<UnitId, usize>,
    mem_ports: HashMap<UnitId, usize>,
    /// The DRAM timing model.
    pub dram: DramSystem,
    cus: Vec<CoalescingUnit>,
    line_done: HashMap<u64, u64>,
    elem_done: HashMap<u64, u64>,
    req_job: HashMap<u64, u64>,
    req_elem: HashMap<u64, u64>,
    next_dense: u64,
    next_elem_seq: HashMap<u64, u64>,
    coalescing: bool,
    /// Accumulated activity.
    pub activity: Activity,
    /// Dense slot index per tracked unit (stall attribution).
    unit_slot: HashMap<UnitId, usize>,
    /// Highest-priority class noted for each tracked unit this cycle.
    pending_class: Vec<u8>,
    /// Committed per-unit cycle breakdowns.
    unit_cycles: Vec<UnitCycles>,
    /// Structured event recorder; `None` keeps tracing zero-cost.
    pub(crate) tracer: Option<Tracer>,
}

impl Resources {
    /// Builds the resource pool for a model.
    pub fn new(model: &SimModel, params: &PlasticineParams, dram_cfg: DramConfig) -> Resources {
        let line_bytes = dram_cfg.line_bytes;
        let n_cus = params.coalescing_units.max(1);
        let cus = (0..n_cus)
            .map(|k| {
                CoalescingUnit::with_namespace(
                    params.coalesce_entries,
                    line_bytes,
                    (1 << 62) + (k as u64) * (1 << 56),
                )
            })
            .collect();
        let unit_slot = model
            .tracked
            .iter()
            .enumerate()
            .map(|(i, t)| (t.unit, i))
            .collect();
        Resources {
            now: 0,
            slots: model.ctrl_slots.clone(),
            read_tokens: HashMap::new(),
            write_tokens: HashMap::new(),
            mem_ports: model.mem_ports.clone(),
            dram: DramSystem::new(dram_cfg),
            cus,
            line_done: HashMap::new(),
            elem_done: HashMap::new(),
            req_job: HashMap::new(),
            req_elem: HashMap::new(),
            next_dense: 0,
            next_elem_seq: HashMap::new(),
            coalescing: true,
            activity: Activity::default(),
            unit_slot,
            pending_class: vec![CLASS_IDLE; model.tracked.len()],
            unit_cycles: vec![UnitCycles::default(); model.tracked.len()],
            tracer: None,
        }
    }

    /// Turns on structured event recording.
    pub(crate) fn enable_tracing(&mut self) {
        self.tracer = Some(Tracer::default());
    }

    /// Finishes and takes the event trace, if recording was on.
    pub(crate) fn take_trace(&mut self) -> Option<SimTrace> {
        let now = self.now;
        self.tracer.take().map(|t| t.finish(now))
    }

    /// Notes a cycle-class observation for a unit; the highest-priority
    /// class noted during a cycle wins at [`commit_cycle`](Self::commit_cycle).
    pub(crate) fn note(&mut self, unit: UnitId, class: u8) {
        if let Some(&s) = self.unit_slot.get(&unit) {
            let p = &mut self.pending_class[s];
            *p = (*p).max(class);
        }
    }

    /// Ends the cycle's attribution: every tracked unit gets exactly one
    /// class (defaulting to idle), so per unit the four counters always sum
    /// to the number of committed cycles.
    pub(crate) fn commit_cycle(&mut self) {
        for (p, c) in self.pending_class.iter_mut().zip(&mut self.unit_cycles) {
            c.bump(*p);
            *p = CLASS_IDLE;
        }
    }

    /// Assembles the attribution result using the model's unit identities.
    pub(crate) fn unit_stats(&self, model: &SimModel) -> UnitStats {
        UnitStats {
            total_cycles: self.now,
            units: model
                .tracked
                .iter()
                .zip(&self.unit_cycles)
                .map(|(t, c)| UnitStat {
                    unit: t.unit,
                    kind: t.kind,
                    label: t.label.clone(),
                    cycles: *c,
                })
                .collect(),
        }
    }

    /// Enables or disables coalescing of sparse element requests.
    pub fn set_coalescing(&mut self, on: bool) {
        self.coalescing = on;
    }

    /// Starts a cycle: refreshes port tokens, advances DRAM, distributes
    /// completions to their jobs.
    pub fn begin_cycle(&mut self) {
        for (u, cap) in &self.mem_ports {
            self.read_tokens.insert(*u, *cap);
            self.write_tokens.insert(*u, *cap);
        }
        for cu in &mut self.cus {
            cu.issue(&mut self.dram);
        }
        let completions = self.dram.tick();
        // Route dense completions to jobs.
        for c in &completions {
            if let Some(job) = self.req_job.remove(&c.id) {
                *self.line_done.entry(job).or_insert(0) += 1;
                if let Some(t) = self.tracer.as_mut() {
                    t.dram_done(c.id, c.at);
                }
            } else if let Some(job) = self.req_elem.remove(&c.id) {
                *self.elem_done.entry(job).or_insert(0) += 1;
                if let Some(t) = self.tracer.as_mut() {
                    t.dram_done(c.id, c.at);
                }
            }
        }
        // Route coalesced element completions to jobs.
        let now = self.now;
        for cu in &mut self.cus {
            for e in cu.absorb(&completions) {
                let job = e.id >> ELEM_SEQ_BITS;
                *self.elem_done.entry(job).or_insert(0) += 1;
                if let Some(t) = self.tracer.as_mut() {
                    t.dram_done(e.id, now);
                }
            }
        }
        self.now += 1;
    }

    /// Tries to reserve an invocation slot for a controller.
    pub fn acquire_slot(&mut self, ctrl: CtrlId) -> bool {
        match self.slots.get_mut(&ctrl) {
            Some(n) if *n > 0 => {
                *n -= 1;
                true
            }
            Some(_) => false,
            None => true, // controllers without hardware (shouldn't happen)
        }
    }

    /// Releases an invocation slot.
    pub fn release_slot(&mut self, ctrl: CtrlId) {
        if let Some(n) = self.slots.get_mut(&ctrl) {
            *n += 1;
        }
    }

    /// Tries to consume one read port per listed memory unit (duplicates
    /// demand multiple ports) and one write port per written unit, all or
    /// nothing.
    pub fn acquire_ports(&mut self, reads: &[UnitId], writes: &[UnitId]) -> bool {
        let mut rd_demand: HashMap<UnitId, usize> = HashMap::new();
        for u in reads {
            *rd_demand.entry(*u).or_insert(0) += 1;
        }
        let mut wr_demand: HashMap<UnitId, usize> = HashMap::new();
        for u in writes {
            *wr_demand.entry(*u).or_insert(0) += 1;
        }
        let ok_r = rd_demand
            .iter()
            .all(|(u, n)| self.read_tokens.get(u).copied().unwrap_or(*n) >= *n);
        let ok_w = wr_demand
            .iter()
            .all(|(u, n)| self.write_tokens.get(u).copied().unwrap_or(*n) >= *n);
        if !(ok_r && ok_w) {
            // Attribution: scratchpads that were demanded but could not
            // serve are port-conflicted this cycle (mem-stall unless some
            // other consumer made them busy).
            for (u, n) in &rd_demand {
                if self.read_tokens.get(u).copied().unwrap_or(*n) < *n {
                    self.note(*u, CLASS_MEM);
                }
            }
            for (u, n) in &wr_demand {
                if self.write_tokens.get(u).copied().unwrap_or(*n) < *n {
                    self.note(*u, CLASS_MEM);
                }
            }
            return false;
        }
        for (u, n) in &rd_demand {
            if let Some(t) = self.read_tokens.get_mut(u) {
                *t -= n;
            }
            self.note(*u, CLASS_BUSY);
        }
        for (u, n) in &wr_demand {
            if let Some(t) = self.write_tokens.get_mut(u) {
                *t -= n;
            }
            self.note(*u, CLASS_BUSY);
        }
        if !reads.is_empty() || !writes.is_empty() {
            self.activity.pmu_busy_cycles += 1;
        }
        true
    }

    /// Pushes one dense line request for a job. Returns false on
    /// backpressure.
    pub fn push_dense(&mut self, job: u64, byte_addr: u64, is_write: bool) -> bool {
        if !self.dram.can_accept(byte_addr) {
            return false;
        }
        let id = self.next_dense;
        self.next_dense += 1;
        match self.dram.push(MemRequest {
            id,
            addr: byte_addr,
            is_write,
        }) {
            Ok(()) => {
                self.req_job.insert(id, job);
                if let Some(t) = self.tracer.as_mut() {
                    t.dram_issue(id, byte_addr, is_write, false, job, self.now);
                }
                true
            }
            Err(_) => false,
        }
    }

    /// Pushes one sparse element request through the coalescing unit owning
    /// the element's channel. Returns false on backpressure.
    pub fn push_sparse(&mut self, job: u64, byte_addr: u64, is_write: bool) -> bool {
        if !self.coalescing {
            // Ablation: every element is its own DRAM burst.
            if !self.dram.can_accept(byte_addr) {
                return false;
            }
            let id = self.next_dense;
            match self.dram.push(MemRequest {
                id,
                addr: byte_addr & !63,
                is_write,
            }) {
                Ok(()) => {
                    self.next_dense += 1;
                    // Report it back through the element channel.
                    self.req_elem.insert(id, job);
                    if let Some(t) = self.tracer.as_mut() {
                        t.dram_issue(id, byte_addr & !63, is_write, true, job, self.now);
                    }
                    true
                }
                Err(_) => false,
            }
        } else {
            let chan = self.dram.config().map(byte_addr).channel;
            let n_cus = self.cus.len();
            let cu = &mut self.cus[chan % n_cus];
            let seq = self.next_elem_seq.entry(job).or_insert(0);
            let id = (job << ELEM_SEQ_BITS) | (*seq & ((1 << ELEM_SEQ_BITS) - 1));
            if cu.try_push(ElemRequest {
                id,
                byte_addr,
                is_write,
            }) {
                *seq += 1;
                if let Some(t) = self.tracer.as_mut() {
                    t.dram_issue(id, byte_addr, is_write, true, job, self.now);
                }
                true
            } else {
                false
            }
        }
    }

    /// Takes the number of dense-line completions accumulated for a job.
    pub fn take_lines(&mut self, job: u64) -> u64 {
        self.line_done.remove(&job).unwrap_or(0)
    }

    /// Takes the number of element completions accumulated for a job.
    pub fn take_elems(&mut self, job: u64) -> u64 {
        self.elem_done.remove(&job).unwrap_or(0)
    }

    /// Aggregate DRAM statistics.
    pub fn dram_stats(&self) -> DramStats {
        self.dram.stats()
    }

    /// Aggregate coalescing statistics (summed over units).
    pub fn coalesce_stats(&self) -> plasticine_dram::CoalesceStats {
        let mut s = plasticine_dram::CoalesceStats::default();
        for cu in &self.cus {
            s.elem_requests += cu.stats.elem_requests;
            s.line_requests += cu.stats.line_requests;
            s.merged += cu.stats.merged;
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn empty_model() -> SimModel {
        SimModel {
            compute: HashMap::new(),
            transfer: HashMap::new(),
            outer: HashMap::new(),
            ctrl_slots: HashMap::new(),
            mem_ports: HashMap::new(),
            dram_base: vec![],
            sram_words: HashMap::new(),
            tracked: vec![],
        }
    }

    #[test]
    fn slots_are_counted() {
        let mut m = empty_model();
        m.ctrl_slots.insert(CtrlId(0), 2);
        let mut r = Resources::new(&m, &PlasticineParams::paper_final(), DramConfig::default());
        assert!(r.acquire_slot(CtrlId(0)));
        assert!(r.acquire_slot(CtrlId(0)));
        assert!(!r.acquire_slot(CtrlId(0)));
        r.release_slot(CtrlId(0));
        assert!(r.acquire_slot(CtrlId(0)));
    }

    #[test]
    fn ports_reset_each_cycle() {
        let mut m = empty_model();
        m.mem_ports.insert(UnitId(0), 1);
        let mut r = Resources::new(&m, &PlasticineParams::paper_final(), DramConfig::default());
        r.begin_cycle();
        assert!(r.acquire_ports(&[UnitId(0)], &[]));
        assert!(!r.acquire_ports(&[UnitId(0)], &[]));
        // Write port is independent.
        assert!(r.acquire_ports(&[], &[UnitId(0)]));
        r.begin_cycle();
        assert!(r.acquire_ports(&[UnitId(0)], &[]));
    }

    #[test]
    fn dense_and_sparse_requests_complete() {
        let m = empty_model();
        let mut r = Resources::new(
            &m,
            &PlasticineParams::paper_final(),
            DramConfig {
                refresh: false,
                ..DramConfig::default()
            },
        );
        assert!(r.push_dense(7, 0, false));
        assert!(r.push_sparse(9, 4096, false));
        let mut lines = 0;
        let mut elems = 0;
        for _ in 0..10_000 {
            r.begin_cycle();
            lines += r.take_lines(7);
            elems += r.take_elems(9);
            if lines == 1 && elems == 1 {
                break;
            }
        }
        assert_eq!(lines, 1);
        assert_eq!(elems, 1);
    }
}
