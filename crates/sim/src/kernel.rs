//! Resumable simulation kernel: the run loop of [`simulate`] as a
//! pausable object.
//!
//! [`SimKernel`] owns everything one program's simulation needs — the
//! traced program, its compiled output, the timing model, the resource
//! state, and the schedule tree — and exposes the run loop as
//! [`advance`](SimKernel::advance), which executes until the program
//! finishes or an optional `until` cycle is reached at a cycle boundary.
//! Pause points coincide exactly with checkpoint points (the top of the
//! loop, before `begin_cycle`), so a paused kernel can always be
//! [checkpointed](SimKernel::checkpoint) — this is what eviction in the
//! multi-tenant scheduler uses.
//!
//! The single-program entry points ([`simulate`], [`simulate_traced`],
//! [`simulate_checkpointed`]) are thin wrappers that create a kernel and
//! advance it to completion; the multi-tenant driver
//! ([`MultiSim`](crate::MultiSim)) interleaves several kernels in
//! deterministic round-robin quanta. Because every kernel is fully
//! self-contained, tenants cannot observe each other — which is precisely
//! the isolation invariant the scheduler advertises.
//!
//! [`simulate`]: crate::simulate
//! [`simulate_traced`]: crate::simulate_traced
//! [`simulate_checkpointed`]: crate::simulate_checkpointed

use crate::checkpoint::{Checkpoint, CheckpointError, CheckpointPolicy};
use crate::deadlock::DeadlockReport;
use crate::model::SimModel;
use crate::resources::FastForward;
use crate::resources::{Resources, SimError};
use crate::sched::Node;
use crate::trace::{SimTrace, TraceEvent};
use crate::{SimOptions, SimResult, StepMode};
use plasticine_arch::{FaultArrival, FaultMap, SiteId, SiteKind, SwitchId, UnitCfg};
use plasticine_compiler::CompileOutput;
use plasticine_ppir::{Machine, Program, TraceRecorder};
use std::collections::BTreeSet;
use std::fmt;

/// Why [`SimKernel::advance`] returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Advance {
    /// The program ran to completion; harvest stats with
    /// [`SimKernel::finish`].
    Finished,
    /// The `until` cycle was reached at a cycle boundary. The kernel can
    /// be checkpointed or advanced further.
    Paused,
}

/// Everything a healing layer needs after a degraded exit
/// ([`SimError::FabricDegraded`]): what broke, when, the complete live
/// fault map, and an auto-checkpoint taken at the degrade boundary.
///
/// The checkpoint was taken with the *same* options (including the fault
/// timeline) the run started with, so resuming it — on a relocated
/// pattern-equivalent band or on the same degraded fabric — reproduces the
/// interrupted run bit for bit from the degrade cycle on.
#[derive(Debug, Clone)]
pub struct DegradedReport {
    /// Cycle the degraded exit happened at (the checkpoint's cycle).
    pub cycle: u64,
    /// Cycle the first impacting arrival of this detect window fired at.
    pub detected_at: u64,
    /// Every arrival that fired during this run segment (including
    /// ECC-threshold escalations, reported as unit deaths), in firing
    /// order with the cycle each fired at.
    pub arrivals: Vec<(u64, FaultArrival)>,
    /// Human-readable descriptions of the impacting arrivals — the ones
    /// that hit resources this run was actually using and forced the exit.
    pub impact: Vec<String>,
    /// The live fault map at exit: the map the run started under plus
    /// every fired arrival. A healing layer merges this into its per-chip
    /// health state and compiles replacements against it.
    pub faults: FaultMap,
    /// Auto-checkpoint at [`cycle`](Self::cycle); resume it to continue
    /// the run after relocation.
    pub checkpoint: Checkpoint,
}

impl fmt::Display for DegradedReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "fabric degraded at cycle {} (detected at {}): {}",
            self.cycle,
            self.detected_at,
            self.impact.join("; ")
        )
    }
}

/// An armed degraded exit: the first impacting arrival fired at
/// `detected_at` and the kernel rides out the detect delay until `at`.
#[derive(Debug, Clone)]
struct PendingDegrade {
    at: u64,
    detected_at: u64,
    impact: Vec<String>,
}

/// Where periodic and on-error checkpoints go during
/// [`SimKernel::advance`]. The `emit` callback owns persistence (and its
/// error handling) so the run loop never blocks on I/O decisions.
pub struct CheckpointSink<'a> {
    /// When to emit checkpoints.
    pub policy: CheckpointPolicy,
    /// Receives each emitted checkpoint.
    pub emit: &'a mut dyn FnMut(&Checkpoint),
}

/// One program's simulation as a pausable state machine (see the module
/// docs). Construction runs the functional interpreter and builds the
/// timing-side state at cycle 0 (or overlays a resume checkpoint);
/// [`advance`](SimKernel::advance) then moves simulated time forward.
pub struct SimKernel {
    p: Program,
    out: CompileOutput,
    opts: SimOptions,
    model: SimModel,
    res: Resources,
    root: Node,
    last_progress: u64,
    /// Next cycle at which a periodic checkpoint is due (lazily seeded
    /// from the first sink that sets a cadence).
    next_due: Option<u64>,
    /// Set when the event kernel already ran this cycle's `begin_cycle`
    /// (it found the cycle tree-observable): the next iteration must tick
    /// without beginning again — and the kernel must NOT pause there.
    skip_begin: bool,
    done: bool,
    /// Physical PCU/PMU sites this configuration occupies (impact check).
    used_sites: BTreeSet<SiteId>,
    /// Undirected switch-mesh edges traversed by this configuration's
    /// routed links, canonical lower-id first (impact check).
    used_links: BTreeSet<(SwitchId, SwitchId)>,
    /// Live fault map: the options' map plus every fired arrival.
    live_faults: FaultMap,
    /// Arrivals fired during this run segment, in firing order.
    fired: Vec<(u64, FaultArrival)>,
    /// Index of the next unfired timeline event.
    tl_next: usize,
    /// Armed degraded exit, if an impacting arrival is riding out its
    /// detect window.
    pending: Option<PendingDegrade>,
}

impl SimKernel {
    /// Runs the program functionally (on `machine`, which the caller
    /// pre-loads with input data) and builds the timing-side state,
    /// optionally overlaying a resume checkpoint.
    ///
    /// `Node::build` is deterministic, so the fresh tree has the same
    /// shape and leaf job ids as the one a checkpointing run built; the
    /// snapshot supplies only the mutable progress state.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Run`] if functional execution fails,
    /// [`SimError::Config`] if the fault map disables every DRAM channel,
    /// and [`SimError::Checkpoint`] when `resume` does not match this
    /// program/bitstream/options or is corrupt.
    pub fn new(
        p: &Program,
        out: &CompileOutput,
        machine: &mut Machine,
        opts: &SimOptions,
        traced: bool,
        resume: Option<&Checkpoint>,
    ) -> Result<SimKernel, SimError> {
        let mut rec = TraceRecorder::new();
        machine.run_traced(&mut rec)?;
        let trace = rec.into_trace();

        let mut model = SimModel::build(p, out);
        if let Some(cap) = opts.credit_cap {
            for om in model.outer.values_mut() {
                for d in &mut om.deps {
                    d.2 = d.2.min(cap);
                }
            }
        }
        let mut res = Resources::new(&model, &out.config.params, opts.dram.clone());
        res.set_coalescing(opts.coalescing);
        res.set_transients(&opts.faults.transient);
        res.set_threads(opts.threads);
        if !opts.faults.offline_channels.is_empty() {
            let offline: Vec<usize> = opts.faults.offline_channels.iter().copied().collect();
            if !res.dram.set_offline(&offline) {
                return Err(SimError::Config(
                    "fault map takes every DRAM channel offline".to_string(),
                ));
            }
        }
        if opts.timeline.ecc.active() {
            // ECC escalation charges errors to the first physical PMU site
            // of the scratchpad unit whose read rolled them.
            let site_of_unit: Vec<u32> = out
                .config
                .units
                .iter()
                .map(|u| match u {
                    UnitCfg::Memory(m) => m.sites.first().map(|s| s.0).unwrap_or(u32::MAX),
                    _ => u32::MAX,
                })
                .collect();
            res.set_ecc_policy(opts.timeline.ecc, site_of_unit);
        }
        if traced {
            res.enable_tracing();
        }
        let mut next_job = 1u64;
        let mut root = Node::build(trace, &model, &mut next_job);

        let mut last_progress = 0u64;
        if let Some(c) = resume {
            c.matches(p, &out.config, opts)
                .map_err(SimError::Checkpoint)?;
            res.restore(&c.resources)
                .map_err(|m| SimError::Checkpoint(CheckpointError::Format(m)))?;
            root.restore(&c.tree, &model)
                .map_err(|m| SimError::Checkpoint(CheckpointError::Format(m)))?;
            last_progress = c.last_progress;
        }
        let (used_sites, used_links) = used_resources(out);
        let mut k = SimKernel {
            p: p.clone(),
            out: out.clone(),
            opts: opts.clone(),
            model,
            res,
            root,
            last_progress,
            next_due: None,
            skip_begin: false,
            done: false,
            used_sites,
            used_links,
            live_faults: opts.faults.clone(),
            fired: Vec::new(),
            tl_next: 0,
            pending: None,
        };
        k.init_timeline(resume.is_some())?;
        Ok(k)
    }

    /// Replays the fault timeline up to the construction cycle (0 for a
    /// fresh run, the checkpoint cycle on resume): folds already-elapsed
    /// arrivals into the live fault map and transient rates, applies the
    /// merged offline-channel set, re-arms a degrade window that was
    /// still open at the checkpoint, and refuses a resume onto a fabric
    /// where an elapsed arrival still impacts this configuration.
    fn init_timeline(&mut self, resumed: bool) -> Result<(), SimError> {
        if self.opts.timeline.is_empty() && self.res.ecc_pending().is_empty() {
            return Ok(());
        }
        let now = self.res.now;
        let detect = self.opts.timeline.detect_delay;
        let elapsed: Vec<_> = self
            .opts
            .timeline
            .fired_by(now)
            .iter()
            .map(|e| (e.cycle, e.arrival.clone()))
            .collect();
        self.tl_next = elapsed.len();
        for (cycle, arrival) in elapsed {
            if let FaultArrival::TransientEscalation { lane, sram, drop } = &arrival {
                // Rates re-applied in event order; on resume the snapshot
                // then overlays the RNG state, so the stream continues
                // exactly where the interrupted run left it.
                self.res
                    .escalate_transients(*lane, *sram, *drop, self.opts.faults.transient.seed);
            } else if !matches!(arrival, FaultArrival::ChannelFailure { .. }) {
                if let Some(desc) = self.arrival_impact(&arrival) {
                    let deadline = cycle.saturating_add(detect);
                    if resumed && deadline <= now {
                        return Err(SimError::Config(format!(
                            "cannot resume at cycle {now}: unhealed fault arrival \
                             ({desc} at cycle {cycle}) still impacts this configuration"
                        )));
                    }
                    self.arm_degrade(cycle, deadline, desc);
                }
            }
            arrival.apply_to(&mut self.live_faults);
            self.fired.push((cycle, arrival));
        }
        // Channel failures resolve at (re)construction: the merged offline
        // set is applied and in-flight restored traffic drains onto the
        // survivors (the drain-then-retire rule — never mid-run).
        if self.live_faults.offline_channels != self.opts.faults.offline_channels {
            let offline: Vec<usize> = self
                .live_faults
                .offline_channels
                .iter()
                .copied()
                .filter(|&c| c < self.opts.dram.channels)
                .collect();
            if !self.res.dram.set_offline(&offline) {
                return Err(SimError::Config(
                    "fault timeline takes every DRAM channel offline".to_string(),
                ));
            }
        }
        // Re-arm (or resolve) ECC escalations that were inside their
        // detect window at the checkpoint. Site-keyed: a relocated
        // configuration no longer uses the dying site, which retires the
        // entry; the same configuration re-arms it.
        let mut kept = Vec::new();
        for &(site, at) in &self.res.ecc_pending().to_vec() {
            if !self.used_sites.contains(&SiteId(site)) {
                continue;
            }
            let arrival = FaultArrival::UnitDeath {
                site: SiteId(site),
                kind: SiteKind::Pmu,
            };
            let desc = format!("{} (ECC threshold)", arrival.describe());
            let deadline = at.saturating_add(detect);
            if resumed && deadline <= now {
                return Err(SimError::Config(format!(
                    "cannot resume at cycle {now}: unhealed ECC escalation \
                     ({desc} at cycle {at}) still impacts this configuration"
                )));
            }
            self.arm_degrade(at, deadline, desc);
            kept.push((site, at));
        }
        self.res.set_ecc_pending(kept);
        Ok(())
    }

    /// Whether an arrival hits a resource this configuration uses and is
    /// not already dead in the live map; returns its description if so.
    fn arrival_impact(&self, a: &FaultArrival) -> Option<String> {
        let hit = match a {
            FaultArrival::UnitDeath { site, .. } => {
                !self.live_faults.dead_pcus.contains(site)
                    && !self.live_faults.dead_pmus.contains(site)
                    && self.used_sites.contains(site)
            }
            FaultArrival::LinkDeath { a, b } => {
                let key = if a <= b { (*a, *b) } else { (*b, *a) };
                !self.live_faults.dead_links.contains(&key) && self.used_links.contains(&key)
            }
            FaultArrival::BankFailure { site } => self.used_sites.contains(site),
            FaultArrival::ChannelFailure { channel } => {
                *channel < self.opts.dram.channels
                    && !self.live_faults.offline_channels.contains(channel)
            }
            FaultArrival::TransientEscalation { .. } => false,
        };
        hit.then(|| a.describe())
    }

    /// Arms (or tightens) the degraded exit and turns the healing overlay
    /// on.
    fn arm_degrade(&mut self, detected_at: u64, deadline: u64, desc: String) {
        match &mut self.pending {
            Some(p) => {
                p.at = p.at.min(deadline);
                p.impact.push(desc);
            }
            None => {
                self.pending = Some(PendingDegrade {
                    at: deadline,
                    detected_at,
                    impact: vec![desc],
                });
                self.res.set_healing(true);
            }
        }
    }

    /// Fires one timeline arrival at run time (the run loop reached its
    /// cycle): escalations apply immediately; hard arrivals are recorded
    /// in the live map and, when impacting, arm the degraded exit.
    fn fire_arrival(&mut self, cycle: u64, arrival: FaultArrival) {
        if let FaultArrival::TransientEscalation { lane, sram, drop } = &arrival {
            self.res
                .escalate_transients(*lane, *sram, *drop, self.opts.faults.transient.seed);
        } else if let Some(desc) = self.arrival_impact(&arrival) {
            let deadline = cycle.saturating_add(self.opts.timeline.detect_delay);
            self.arm_degrade(cycle, deadline, desc);
        }
        arrival.apply_to(&mut self.live_faults);
        self.fired.push((cycle, arrival));
    }

    /// Current simulated cycle.
    pub fn now(&self) -> u64 {
        self.res.now
    }

    /// Whether the program has run to completion.
    pub fn is_done(&self) -> bool {
        self.done
    }

    /// The program this kernel simulates.
    pub fn program(&self) -> &Program {
        &self.p
    }

    /// The compiled output this kernel simulates against.
    pub fn output(&self) -> &CompileOutput {
        &self.out
    }

    /// Runs the simulation loop until the program finishes or — when
    /// `until` is given — the first cycle boundary at or past `until`.
    /// In event stepping a quiescent fast-forward may overshoot `until`;
    /// the pause lands on the next boundary after it, which is still a
    /// valid checkpoint point.
    ///
    /// # Errors
    ///
    /// [`SimError::Deadlock`] if the schedule stops making progress for
    /// `stall_limit` cycles, [`SimError::CycleBudgetExceeded`] at
    /// `max_cycles`, and [`SimError::FaultExhaustion`] when transient
    /// injection exhausts its retry budget.
    pub fn advance(
        &mut self,
        until: Option<u64>,
        mut ckpt: Option<CheckpointSink<'_>>,
    ) -> Result<Advance, SimError> {
        if self.done {
            return Ok(Advance::Finished);
        }
        if self.next_due.is_none() {
            if let Some(e) = ckpt.as_ref().and_then(|s| s.policy.every) {
                self.next_due = Some((self.res.now / e + 1) * e);
            }
        }
        loop {
            if !self.skip_begin {
                // Online fault arrivals fire here — before the pause
                // check, so firing is independent of where a caller
                // happened to pause, and before `begin_cycle`, so an
                // arrival cycle is always a clean boundary.
                while let Some(e) = self.opts.timeline.events.get(self.tl_next) {
                    if e.cycle > self.res.now {
                        break;
                    }
                    let (cycle, arrival) = (e.cycle, e.arrival.clone());
                    self.tl_next += 1;
                    self.fire_arrival(cycle, arrival);
                }
                if let Some(p) = &self.pending {
                    if p.at <= self.res.now {
                        let report = self.degraded_report();
                        if let Some(s) = ckpt.as_mut() {
                            if s.policy.on_error {
                                (s.emit)(&report.checkpoint);
                            }
                        }
                        return Err(SimError::FabricDegraded(Box::new(report)));
                    }
                }
                // Pause/checkpoint point: top of the loop, *before*
                // `begin_cycle`, where the state is exactly what a fresh
                // build-plus-restore reproduces.
                if until.is_some_and(|u| self.res.now >= u) {
                    return Ok(Advance::Paused);
                }
                if let (Some(due), Some(s)) = (self.next_due, ckpt.as_mut()) {
                    if self.res.now >= due {
                        let c = self.checkpoint();
                        (s.emit)(&c);
                        let e = s.policy.every.expect("next_due implies every");
                        self.next_due = Some((self.res.now / e + 1) * e);
                    }
                }
                self.res.begin_cycle();
            }
            self.skip_begin = false;
            self.res.pre_tick();
            let done = self.root.tick(&mut self.res, &self.model);
            // Exactly one commit per simulated cycle (including the last),
            // so every unit's busy + ctrl + mem + idle total equals
            // `res.now`.
            self.res.commit_cycle();
            if self.res.take_progress() {
                self.last_progress = self.res.now;
            }
            if let Some((addr, attempts)) = self.res.take_fault_exhaustion() {
                return Err(SimError::FaultExhaustion {
                    cycle: self.res.now,
                    addr,
                    attempts,
                });
            }
            // ECC-threshold escalations observed by this cycle's rolls:
            // the charged site dies, which arms the degraded exit like any
            // other impacting unit death.
            for site in self.res.take_ecc_escalations() {
                let cycle = self.res.now;
                let arrival = FaultArrival::UnitDeath {
                    site: SiteId(site),
                    kind: SiteKind::Pmu,
                };
                let desc = format!("{} (ECC threshold)", arrival.describe());
                let deadline = cycle.saturating_add(self.opts.timeline.detect_delay);
                self.arm_degrade(cycle, deadline, desc);
                arrival.apply_to(&mut self.live_faults);
                self.fired.push((cycle, arrival));
            }
            if done {
                self.done = true;
                return Ok(Advance::Finished);
            }
            let changed = self.res.take_changed();
            if self.res.now >= self.opts.max_cycles {
                self.emit_on_error(&mut ckpt);
                return Err(SimError::CycleBudgetExceeded {
                    cycle: self.res.now,
                    budget: self.opts.max_cycles,
                });
            }
            if self.res.now.saturating_sub(self.last_progress) > self.opts.stall_limit {
                self.emit_on_error(&mut ckpt);
                let mut report = DeadlockReport {
                    cycle: self.res.now,
                    stall_limit: self.opts.stall_limit,
                    last_progress: self.last_progress,
                    ..DeadlockReport::default()
                };
                self.root
                    .collect_blocked(&self.res, &self.model, &mut report.blocked);
                report.finalize(|c| self.p.ctrl(c).name.clone());
                if let Some(mut t) = self.res.take_trace() {
                    let now = self.res.now;
                    for b in &report.blocked {
                        let what = b
                            .waits
                            .iter()
                            .map(|w| w.to_string())
                            .collect::<Vec<_>>()
                            .join("; ");
                        t.events.push(TraceEvent::Instant {
                            ctrl: b.ctrl,
                            label: format!("DEADLOCK: awaits {what}"),
                            at: now,
                        });
                    }
                    report.trace = Some(t);
                }
                return Err(SimError::Deadlock(Box::new(report)));
            }
            if self.opts.step == StepMode::Event && !changed && !self.res.is_forced() {
                // The iteration was quiescent: replaying it verbatim would
                // change nothing, so jump to the next cycle where anything
                // can. A forced cycle (columns issued while coalescer
                // lines wait on capacity) must run as a full iteration
                // anyway, so skip the fast-forward entry — and its
                // per-entry tree-wake walk — while the DRAM backlog
                // drains; this is what keeps event stepping ≥ cycle
                // stepping even in latency-bound phases.
                // The fast-forward must not skip past the next timeline
                // arrival or an armed degrade deadline: both have to be
                // observed at their exact cycle boundary.
                let hard_stop = self.pending.as_ref().map(|p| p.at).unwrap_or(u64::MAX).min(
                    self.opts
                        .timeline
                        .events
                        .get(self.tl_next)
                        .map(|e| e.cycle)
                        .unwrap_or(u64::MAX),
                );
                match self.res.fast_forward(
                    self.root.next_wake(),
                    self.opts.stall_limit,
                    self.opts.max_cycles,
                    hard_stop,
                    &mut self.last_progress,
                ) {
                    FastForward::NeedBegin => {}
                    FastForward::Begun => self.skip_begin = true,
                }
            }
        }
    }

    /// Snapshot at the current cycle boundary. Only valid when the kernel
    /// is at a pause point — right after construction or an
    /// [`Advance::Paused`] return — which the kernel guarantees by never
    /// returning `Paused` mid-fast-forward.
    pub fn checkpoint(&self) -> Checkpoint {
        debug_assert!(!self.skip_begin, "checkpoint taken mid-fast-forward");
        Checkpoint::new(
            &self.p,
            &self.out.config,
            &self.opts,
            self.res.now,
            self.last_progress,
            self.res.snapshot(),
            self.root.snapshot(),
        )
    }

    /// Assembles the degraded exit: auto-checkpoint at the current
    /// boundary plus the live fault map and the fired-arrival history.
    /// Only called at the top of the run loop (a valid checkpoint point)
    /// when the pending deadline has been reached.
    fn degraded_report(&mut self) -> DegradedReport {
        let p = self
            .pending
            .take()
            .expect("degraded exit without a pending window");
        self.res.set_healing(false);
        let checkpoint = self.checkpoint();
        DegradedReport {
            cycle: self.res.now,
            detected_at: p.detected_at,
            arrivals: self.fired.clone(),
            impact: p.impact,
            faults: self.live_faults.clone(),
            checkpoint,
        }
    }

    /// Emits a snapshot of the current state if the sink's `on_error`
    /// asks for one. Called at the `CycleBudgetExceeded` and watchdog
    /// error sites; the state there is a valid cycle-boundary checkpoint
    /// (the cycle has committed), so a diagnosed failure still leaves a
    /// resumable artifact — resume with a bigger `max_cycles` /
    /// `stall_limit`.
    fn emit_on_error(&self, ckpt: &mut Option<CheckpointSink<'_>>) {
        if let Some(s) = ckpt {
            if s.policy.on_error {
                let c = Checkpoint::new(
                    &self.p,
                    &self.out.config,
                    &self.opts,
                    self.res.now,
                    self.last_progress,
                    self.res.snapshot(),
                    self.root.snapshot(),
                );
                (s.emit)(&c);
            }
        }
    }

    /// The live fault map: the map the run started under plus every fired
    /// arrival so far.
    pub fn live_faults(&self) -> &FaultMap {
        &self.live_faults
    }

    /// Harvests the final stats (and the event trace, when tracing was
    /// enabled). Call after [`advance`](SimKernel::advance) returned
    /// [`Advance::Finished`].
    pub fn finish(mut self) -> (SimResult, Option<SimTrace>) {
        let units = self.res.unit_stats(&self.model);
        let sim_trace = self.res.take_trace();
        (
            SimResult {
                cycles: self.res.now,
                activity: self.res.activity,
                dram: self.res.dram_stats(),
                coalesce: self.res.coalesce_stats(),
                units,
                faults: self.res.fault_stats(),
                span_work: self.res.span_work,
            },
            sim_trace,
        )
    }
}

/// The physical resources a configuration occupies: PCU/PMU sites and the
/// undirected switch-mesh edges its routed links traverse (canonical
/// lower-id first). Fault arrivals outside these sets cannot impact the
/// run — they are recorded in the live map but do not degrade it.
fn used_resources(out: &CompileOutput) -> (BTreeSet<SiteId>, BTreeSet<(SwitchId, SwitchId)>) {
    let mut sites = BTreeSet::new();
    for u in &out.config.units {
        match u {
            UnitCfg::Compute(c) => sites.extend(c.sites.iter().copied()),
            UnitCfg::Memory(m) => sites.extend(m.sites.iter().copied()),
            UnitCfg::Ag(_) | UnitCfg::Outer(_) => {}
        }
    }
    let mut links = BTreeSet::new();
    for l in &out.config.links {
        for w in l.path.windows(2) {
            let (a, b) = (w[0], w[1]);
            links.insert(if a <= b { (a, b) } else { (b, a) });
        }
    }
    (sites, links)
}
