//! Resumable simulation kernel: the run loop of [`simulate`] as a
//! pausable object.
//!
//! [`SimKernel`] owns everything one program's simulation needs — the
//! traced program, its compiled output, the timing model, the resource
//! state, and the schedule tree — and exposes the run loop as
//! [`advance`](SimKernel::advance), which executes until the program
//! finishes or an optional `until` cycle is reached at a cycle boundary.
//! Pause points coincide exactly with checkpoint points (the top of the
//! loop, before `begin_cycle`), so a paused kernel can always be
//! [checkpointed](SimKernel::checkpoint) — this is what eviction in the
//! multi-tenant scheduler uses.
//!
//! The single-program entry points ([`simulate`], [`simulate_traced`],
//! [`simulate_checkpointed`]) are thin wrappers that create a kernel and
//! advance it to completion; the multi-tenant driver
//! ([`MultiSim`](crate::MultiSim)) interleaves several kernels in
//! deterministic round-robin quanta. Because every kernel is fully
//! self-contained, tenants cannot observe each other — which is precisely
//! the isolation invariant the scheduler advertises.
//!
//! [`simulate`]: crate::simulate
//! [`simulate_traced`]: crate::simulate_traced
//! [`simulate_checkpointed`]: crate::simulate_checkpointed

use crate::checkpoint::{Checkpoint, CheckpointError, CheckpointPolicy};
use crate::deadlock::DeadlockReport;
use crate::model::SimModel;
use crate::resources::FastForward;
use crate::resources::{Resources, SimError};
use crate::sched::Node;
use crate::trace::{SimTrace, TraceEvent};
use crate::{SimOptions, SimResult, StepMode};
use plasticine_compiler::CompileOutput;
use plasticine_ppir::{Machine, Program, TraceRecorder};

/// Why [`SimKernel::advance`] returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Advance {
    /// The program ran to completion; harvest stats with
    /// [`SimKernel::finish`].
    Finished,
    /// The `until` cycle was reached at a cycle boundary. The kernel can
    /// be checkpointed or advanced further.
    Paused,
}

/// Where periodic and on-error checkpoints go during
/// [`SimKernel::advance`]. The `emit` callback owns persistence (and its
/// error handling) so the run loop never blocks on I/O decisions.
pub struct CheckpointSink<'a> {
    /// When to emit checkpoints.
    pub policy: CheckpointPolicy,
    /// Receives each emitted checkpoint.
    pub emit: &'a mut dyn FnMut(&Checkpoint),
}

/// One program's simulation as a pausable state machine (see the module
/// docs). Construction runs the functional interpreter and builds the
/// timing-side state at cycle 0 (or overlays a resume checkpoint);
/// [`advance`](SimKernel::advance) then moves simulated time forward.
pub struct SimKernel {
    p: Program,
    out: CompileOutput,
    opts: SimOptions,
    model: SimModel,
    res: Resources,
    root: Node,
    last_progress: u64,
    /// Next cycle at which a periodic checkpoint is due (lazily seeded
    /// from the first sink that sets a cadence).
    next_due: Option<u64>,
    /// Set when the event kernel already ran this cycle's `begin_cycle`
    /// (it found the cycle tree-observable): the next iteration must tick
    /// without beginning again — and the kernel must NOT pause there.
    skip_begin: bool,
    done: bool,
}

impl SimKernel {
    /// Runs the program functionally (on `machine`, which the caller
    /// pre-loads with input data) and builds the timing-side state,
    /// optionally overlaying a resume checkpoint.
    ///
    /// `Node::build` is deterministic, so the fresh tree has the same
    /// shape and leaf job ids as the one a checkpointing run built; the
    /// snapshot supplies only the mutable progress state.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Run`] if functional execution fails,
    /// [`SimError::Config`] if the fault map disables every DRAM channel,
    /// and [`SimError::Checkpoint`] when `resume` does not match this
    /// program/bitstream/options or is corrupt.
    pub fn new(
        p: &Program,
        out: &CompileOutput,
        machine: &mut Machine,
        opts: &SimOptions,
        traced: bool,
        resume: Option<&Checkpoint>,
    ) -> Result<SimKernel, SimError> {
        let mut rec = TraceRecorder::new();
        machine.run_traced(&mut rec)?;
        let trace = rec.into_trace();

        let mut model = SimModel::build(p, out);
        if let Some(cap) = opts.credit_cap {
            for om in model.outer.values_mut() {
                for d in &mut om.deps {
                    d.2 = d.2.min(cap);
                }
            }
        }
        let mut res = Resources::new(&model, &out.config.params, opts.dram.clone());
        res.set_coalescing(opts.coalescing);
        res.set_transients(&opts.faults.transient);
        res.set_threads(opts.threads);
        if !opts.faults.offline_channels.is_empty() {
            let offline: Vec<usize> = opts.faults.offline_channels.iter().copied().collect();
            if !res.dram.set_offline(&offline) {
                return Err(SimError::Config(
                    "fault map takes every DRAM channel offline".to_string(),
                ));
            }
        }
        if traced {
            res.enable_tracing();
        }
        let mut next_job = 1u64;
        let mut root = Node::build(trace, &model, &mut next_job);

        let mut last_progress = 0u64;
        if let Some(c) = resume {
            c.matches(p, &out.config, opts)
                .map_err(SimError::Checkpoint)?;
            res.restore(&c.resources)
                .map_err(|m| SimError::Checkpoint(CheckpointError::Format(m)))?;
            root.restore(&c.tree, &model)
                .map_err(|m| SimError::Checkpoint(CheckpointError::Format(m)))?;
            last_progress = c.last_progress;
        }
        Ok(SimKernel {
            p: p.clone(),
            out: out.clone(),
            opts: opts.clone(),
            model,
            res,
            root,
            last_progress,
            next_due: None,
            skip_begin: false,
            done: false,
        })
    }

    /// Current simulated cycle.
    pub fn now(&self) -> u64 {
        self.res.now
    }

    /// Whether the program has run to completion.
    pub fn is_done(&self) -> bool {
        self.done
    }

    /// The program this kernel simulates.
    pub fn program(&self) -> &Program {
        &self.p
    }

    /// The compiled output this kernel simulates against.
    pub fn output(&self) -> &CompileOutput {
        &self.out
    }

    /// Runs the simulation loop until the program finishes or — when
    /// `until` is given — the first cycle boundary at or past `until`.
    /// In event stepping a quiescent fast-forward may overshoot `until`;
    /// the pause lands on the next boundary after it, which is still a
    /// valid checkpoint point.
    ///
    /// # Errors
    ///
    /// [`SimError::Deadlock`] if the schedule stops making progress for
    /// `stall_limit` cycles, [`SimError::CycleBudgetExceeded`] at
    /// `max_cycles`, and [`SimError::FaultExhaustion`] when transient
    /// injection exhausts its retry budget.
    pub fn advance(
        &mut self,
        until: Option<u64>,
        mut ckpt: Option<CheckpointSink<'_>>,
    ) -> Result<Advance, SimError> {
        if self.done {
            return Ok(Advance::Finished);
        }
        if self.next_due.is_none() {
            if let Some(e) = ckpt.as_ref().and_then(|s| s.policy.every) {
                self.next_due = Some((self.res.now / e + 1) * e);
            }
        }
        loop {
            if !self.skip_begin {
                // Pause/checkpoint point: top of the loop, *before*
                // `begin_cycle`, where the state is exactly what a fresh
                // build-plus-restore reproduces.
                if until.is_some_and(|u| self.res.now >= u) {
                    return Ok(Advance::Paused);
                }
                if let (Some(due), Some(s)) = (self.next_due, ckpt.as_mut()) {
                    if self.res.now >= due {
                        let c = self.checkpoint();
                        (s.emit)(&c);
                        let e = s.policy.every.expect("next_due implies every");
                        self.next_due = Some((self.res.now / e + 1) * e);
                    }
                }
                self.res.begin_cycle();
            }
            self.skip_begin = false;
            self.res.pre_tick();
            let done = self.root.tick(&mut self.res, &self.model);
            // Exactly one commit per simulated cycle (including the last),
            // so every unit's busy + ctrl + mem + idle total equals
            // `res.now`.
            self.res.commit_cycle();
            if self.res.take_progress() {
                self.last_progress = self.res.now;
            }
            if let Some((addr, attempts)) = self.res.take_fault_exhaustion() {
                return Err(SimError::FaultExhaustion {
                    cycle: self.res.now,
                    addr,
                    attempts,
                });
            }
            if done {
                self.done = true;
                return Ok(Advance::Finished);
            }
            let changed = self.res.take_changed();
            if self.res.now >= self.opts.max_cycles {
                self.emit_on_error(&mut ckpt);
                return Err(SimError::CycleBudgetExceeded {
                    cycle: self.res.now,
                    budget: self.opts.max_cycles,
                });
            }
            if self.res.now.saturating_sub(self.last_progress) > self.opts.stall_limit {
                self.emit_on_error(&mut ckpt);
                let mut report = DeadlockReport {
                    cycle: self.res.now,
                    stall_limit: self.opts.stall_limit,
                    last_progress: self.last_progress,
                    ..DeadlockReport::default()
                };
                self.root
                    .collect_blocked(&self.res, &self.model, &mut report.blocked);
                report.finalize(|c| self.p.ctrl(c).name.clone());
                if let Some(mut t) = self.res.take_trace() {
                    let now = self.res.now;
                    for b in &report.blocked {
                        let what = b
                            .waits
                            .iter()
                            .map(|w| w.to_string())
                            .collect::<Vec<_>>()
                            .join("; ");
                        t.events.push(TraceEvent::Instant {
                            ctrl: b.ctrl,
                            label: format!("DEADLOCK: awaits {what}"),
                            at: now,
                        });
                    }
                    report.trace = Some(t);
                }
                return Err(SimError::Deadlock(Box::new(report)));
            }
            if self.opts.step == StepMode::Event && !changed && !self.res.is_forced() {
                // The iteration was quiescent: replaying it verbatim would
                // change nothing, so jump to the next cycle where anything
                // can. A forced cycle (columns issued while coalescer
                // lines wait on capacity) must run as a full iteration
                // anyway, so skip the fast-forward entry — and its
                // per-entry tree-wake walk — while the DRAM backlog
                // drains; this is what keeps event stepping ≥ cycle
                // stepping even in latency-bound phases.
                match self.res.fast_forward(
                    self.root.next_wake(),
                    self.opts.stall_limit,
                    self.opts.max_cycles,
                    &mut self.last_progress,
                ) {
                    FastForward::NeedBegin => {}
                    FastForward::Begun => self.skip_begin = true,
                }
            }
        }
    }

    /// Snapshot at the current cycle boundary. Only valid when the kernel
    /// is at a pause point — right after construction or an
    /// [`Advance::Paused`] return — which the kernel guarantees by never
    /// returning `Paused` mid-fast-forward.
    pub fn checkpoint(&self) -> Checkpoint {
        debug_assert!(!self.skip_begin, "checkpoint taken mid-fast-forward");
        Checkpoint::new(
            &self.p,
            &self.out.config,
            &self.opts,
            self.res.now,
            self.last_progress,
            self.res.snapshot(),
            self.root.snapshot(),
        )
    }

    /// Emits a snapshot of the current state if the sink's `on_error`
    /// asks for one. Called at the `CycleBudgetExceeded` and watchdog
    /// error sites; the state there is a valid cycle-boundary checkpoint
    /// (the cycle has committed), so a diagnosed failure still leaves a
    /// resumable artifact — resume with a bigger `max_cycles` /
    /// `stall_limit`.
    fn emit_on_error(&self, ckpt: &mut Option<CheckpointSink<'_>>) {
        if let Some(s) = ckpt {
            if s.policy.on_error {
                let c = Checkpoint::new(
                    &self.p,
                    &self.out.config,
                    &self.opts,
                    self.res.now,
                    self.last_progress,
                    self.res.snapshot(),
                    self.root.snapshot(),
                );
                (s.emit)(&c);
            }
        }
    }

    /// Harvests the final stats (and the event trace, when tracing was
    /// enabled). Call after [`advance`](SimKernel::advance) returned
    /// [`Advance::Finished`].
    pub fn finish(mut self) -> (SimResult, Option<SimTrace>) {
        let units = self.res.unit_stats(&self.model);
        let sim_trace = self.res.take_trace();
        (
            SimResult {
                cycles: self.res.now,
                activity: self.res.activity,
                dram: self.res.dram_stats(),
                coalesce: self.res.coalesce_stats(),
                units,
                faults: self.res.fault_stats(),
                span_work: self.res.span_work,
            },
            sim_trace,
        )
    }
}
