//! The hierarchical scheduler: controller-tree state machines implementing
//! the three control protocols of §3.5 (sequential, coarse-grained
//! pipelining with tokens and credits, streaming) over the shared
//! [`Resources`].

use crate::deadlock::{BlockedUnit, HeldResource, WaitCause};
use crate::model::{SimModel, TransferModel};
use crate::resources::Resources;
use crate::trace::{WaitKind, CLASS_BUSY, CLASS_CTRL, CLASS_MEM};
use plasticine_arch::UnitId;
use plasticine_dram::lines_for_range;
use plasticine_json::Json;
use plasticine_ppir::{CtrlId, LeafWork, Schedule, TraceNode};

/// The hardware unit a leaf controller occupies, if it has any.
fn unit_of(model: &SimModel, ctrl: CtrlId) -> Option<UnitId> {
    model
        .compute
        .get(&ctrl)
        .map(|c| c.unit)
        .or_else(|| model.transfer.get(&ctrl).map(|t| t.unit))
}

/// The request list a transfer leaf walks in `Xfer`: per-element accesses
/// for sparse transfers, 64-byte lines for dense ones. Deterministic in
/// `(work, model)`, so checkpoints store only the walk cursor and rebuild
/// the list on restore.
fn xfer_reqs(work: &LeafWork, tm: &TransferModel, model: &SimModel) -> Vec<(u64, bool)> {
    let mut reqs = Vec::new();
    if tm.sparse {
        for r in &work.dram {
            let base = model.dram_base[r.dram.0 as usize];
            for k in 0..r.len {
                reqs.push((base + (r.offset as u64 + k as u64) * 4, r.is_write));
            }
        }
    } else {
        for r in &work.dram {
            let base = model.dram_base[r.dram.0 as usize];
            let start = base + r.offset as u64 * 4;
            for line in lines_for_range(start, r.len as u64 * 4, 64) {
                reqs.push((line, r.is_write));
            }
        }
    }
    reqs
}

/// One node of the runtime schedule tree.
#[derive(Debug)]
pub enum Node {
    /// An outer-controller invocation.
    Outer(OuterNode),
    /// A leaf invocation.
    Leaf(LeafNode),
}

impl Node {
    /// Builds the schedule tree from a recorded trace.
    pub fn build(trace: TraceNode, model: &SimModel, next_job: &mut u64) -> Node {
        match trace {
            TraceNode::Leaf { ctrl, work } => {
                let job = *next_job;
                *next_job += 1;
                Node::Leaf(LeafNode {
                    ctrl,
                    work,
                    job,
                    state: LeafState::Idle,
                    slot_released: false,
                    started_at: 0,
                })
            }
            TraceNode::Outer { ctrl, iters } => {
                let om = model.outer.get(&ctrl).expect("outer model");
                let n_children = om.children.len();
                // Index the dep edges per child once, so the per-cycle start
                // gates don't rescan the whole edge list.
                let mut deps_in = vec![Vec::new(); n_children];
                let mut deps_out = vec![Vec::new(); n_children];
                for &(pr, co, depth) in &om.deps {
                    deps_in[co].push(pr);
                    deps_out[pr].push((co, depth));
                }
                let iters: Vec<Vec<Option<Node>>> = iters
                    .into_iter()
                    .map(|ch| {
                        ch.into_iter()
                            .map(|t| Some(Node::build(t, model, next_job)))
                            .collect()
                    })
                    .collect();
                let n_iters = iters.len();
                Node::Outer(OuterNode {
                    ctrl,
                    schedule: om.schedule,
                    width: om.width,
                    deps: om.deps.clone(),
                    deps_in,
                    deps_out,
                    in_flight: vec![0; n_children],
                    children: om.children.clone(),
                    n_children,
                    n_iters,
                    iters,
                    started: vec![0; n_children],
                    completed: vec![Vec::new(); n_children],
                    water: vec![0; n_children],
                    active: Vec::new(),
                    holds_slot: false,
                    done: false,
                    seq_cursor: (0, 0),
                })
            }
        }
    }

    /// Advances one cycle. Returns true when the node has fully completed.
    pub fn tick(&mut self, res: &mut Resources, model: &SimModel) -> bool {
        match self {
            Node::Leaf(l) => l.tick(res, model),
            Node::Outer(o) => o.tick(res, model),
        }
    }

    /// Whether the node still occupies its hardware (a draining pipeline
    /// has released the unit: the next invocation streams in behind it).
    fn occupying(&self) -> bool {
        match self {
            Node::Leaf(l) => !matches!(l.state, LeafState::Drain { .. } | LeafState::Done),
            Node::Outer(o) => !o.done,
        }
    }

    /// Earliest future cycle at which the tree changes state *on its own*,
    /// in the tick-time clock domain: the minimum pending pipeline-drain
    /// completion. Every other way the tree can unblock — a DRAM response,
    /// freed queue capacity, a retry expiry — is an externally generated
    /// event the run loop's event kernel tracks separately; and in a
    /// quiescent cycle no purely internal transition is pending (anything
    /// startable would have started and marked the cycle changed).
    pub(crate) fn next_wake(&self) -> u64 {
        match self {
            Node::Leaf(l) => match &l.state {
                LeafState::Drain { finish, .. } => *finish,
                _ => u64::MAX,
            },
            Node::Outer(o) => {
                if o.done {
                    u64::MAX
                } else {
                    o.active
                        .iter()
                        .map(|(_, _, n)| n.next_wake())
                        .min()
                        .unwrap_or(u64::MAX)
                }
            }
        }
    }

    /// Walks the live tree and records every blocked unit with what it
    /// holds and awaits — the raw material of a
    /// [`DeadlockReport`](crate::DeadlockReport). Mirrors the start
    /// conditions of `tick` without mutating anything.
    pub fn collect_blocked(&self, res: &Resources, model: &SimModel, out: &mut Vec<BlockedUnit>) {
        match self {
            Node::Leaf(l) => l.collect_blocked(res, model, out),
            Node::Outer(o) => o.collect_blocked(res, model, out),
        }
    }

    // ---- checkpointing ----

    /// Serializes the mutable invocation state of the tree. Structure is
    /// *not* serialized: [`build`](Self::build) is deterministic in the
    /// trace and model, so a resume re-runs the functional interpreter,
    /// rebuilds an identical fresh tree, and overlays this snapshot via
    /// [`restore`](Self::restore). `active` order is preserved verbatim —
    /// the tick loop iterates it in order, so it is behaviorally
    /// significant.
    pub(crate) fn snapshot(&self) -> Json {
        match self {
            Node::Leaf(l) => {
                let state = match &l.state {
                    LeafState::Idle => Json::obj([("k", Json::from("idle"))]),
                    LeafState::Issue { remaining, beat } => Json::obj([
                        ("k", Json::from("issue")),
                        ("remaining", Json::from(*remaining)),
                        ("beat", Json::from(*beat)),
                    ]),
                    LeafState::Xfer {
                        next,
                        outstanding,
                        issued_requests,
                        ..
                    } => Json::obj([
                        ("k", Json::from("xfer")),
                        ("next", Json::from(*next as u64)),
                        ("outstanding", Json::from(*outstanding)),
                        ("issued", Json::from(*issued_requests)),
                    ]),
                    LeafState::Drain { finish, xfer } => Json::obj([
                        ("k", Json::from("drain")),
                        ("finish", Json::from(*finish)),
                        ("xfer", Json::from(*xfer)),
                    ]),
                    LeafState::Done => Json::obj([("k", Json::from("done"))]),
                };
                Json::obj([
                    ("t", Json::from("leaf")),
                    ("slot_released", Json::from(l.slot_released)),
                    ("started_at", Json::from(l.started_at)),
                    ("state", state),
                ])
            }
            Node::Outer(o) => Json::obj([
                ("t", Json::from("outer")),
                (
                    "started",
                    Json::Arr(o.started.iter().map(|&v| Json::from(v as u64)).collect()),
                ),
                (
                    "water",
                    Json::Arr(o.water.iter().map(|&v| Json::from(v as u64)).collect()),
                ),
                (
                    "completed",
                    Json::Arr(
                        o.completed
                            .iter()
                            .map(|c| {
                                Json::Arr(c.iter().map(|&b| Json::from(u64::from(b))).collect())
                            })
                            .collect(),
                    ),
                ),
                ("holds_slot", Json::from(o.holds_slot)),
                ("done", Json::from(o.done)),
                (
                    "seq",
                    Json::Arr(vec![
                        Json::from(o.seq_cursor.0 as u64),
                        Json::from(o.seq_cursor.1 as u64),
                    ]),
                ),
                (
                    "active",
                    Json::Arr(
                        o.active
                            .iter()
                            .map(|(it, ch, n)| {
                                Json::obj([
                                    ("it", Json::from(*it as u64)),
                                    ("ch", Json::from(*ch as u64)),
                                    ("node", n.snapshot()),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ]),
        }
    }

    /// Overlays a [`snapshot`](Self::snapshot) onto a freshly built tree.
    /// Started-but-unfinished invocations are re-taken from `iters` and
    /// restored recursively; completed positions are taken and dropped so
    /// they cannot restart.
    ///
    /// # Errors
    ///
    /// Fails with a message when the snapshot does not match the tree's
    /// shape (wrong program, corrupt snapshot).
    pub(crate) fn restore(&mut self, j: &Json, model: &SimModel) -> Result<(), String> {
        use plasticine_json::decode::{arr_of, bool_of, field, str_of, u64_of, usize_of};
        match self {
            Node::Leaf(l) => {
                if str_of(j, "t")? != "leaf" {
                    return Err("tree shape mismatch: expected a leaf node".to_string());
                }
                l.slot_released = bool_of(j, "slot_released")?;
                l.started_at = u64_of(j, "started_at")?;
                let s = field(j, "state")?;
                l.state = match str_of(s, "k")? {
                    "idle" => LeafState::Idle,
                    "issue" => LeafState::Issue {
                        remaining: u64_of(s, "remaining")?,
                        beat: u64_of(s, "beat")?,
                    },
                    "xfer" => {
                        let tm = model
                            .transfer
                            .get(&l.ctrl)
                            .ok_or_else(|| "xfer state on a non-transfer leaf".to_string())?;
                        let reqs = xfer_reqs(&l.work, tm, model);
                        let next = usize_of(s, "next")?;
                        if next > reqs.len() {
                            return Err("xfer cursor out of range".to_string());
                        }
                        LeafState::Xfer {
                            reqs,
                            next,
                            outstanding: u64_of(s, "outstanding")?,
                            issued_requests: u64_of(s, "issued")?,
                        }
                    }
                    "drain" => LeafState::Drain {
                        finish: u64_of(s, "finish")?,
                        xfer: bool_of(s, "xfer")?,
                    },
                    "done" => LeafState::Done,
                    k => return Err(format!("unknown leaf state `{k}`")),
                };
                Ok(())
            }
            Node::Outer(o) => {
                if str_of(j, "t")? != "outer" {
                    return Err("tree shape mismatch: expected an outer node".to_string());
                }
                let started = arr_of(j, "started")?;
                let water = arr_of(j, "water")?;
                let completed = arr_of(j, "completed")?;
                if started.len() != o.n_children
                    || water.len() != o.n_children
                    || completed.len() != o.n_children
                {
                    return Err("child count mismatch".to_string());
                }
                for (dst, v) in o.started.iter_mut().zip(started) {
                    *dst = v.as_usize().ok_or_else(|| "bad started".to_string())?;
                }
                for (dst, v) in o.water.iter_mut().zip(water) {
                    *dst = v.as_usize().ok_or_else(|| "bad water".to_string())?;
                }
                for (ch, cj) in completed.iter().enumerate() {
                    let flags = cj
                        .as_arr()
                        .ok_or_else(|| "completed row is not an array".to_string())?;
                    if flags.len() > o.n_iters {
                        return Err("completed row longer than iteration count".to_string());
                    }
                    let mut row = Vec::with_capacity(flags.len());
                    for f in flags {
                        row.push(match f.as_u64() {
                            Some(0) => false,
                            Some(1) => true,
                            _ => return Err("bad completed flag".to_string()),
                        });
                    }
                    // Completed positions were started: take and drop them.
                    for (it, &done) in row.iter().enumerate() {
                        if done && o.iters[it][ch].take().is_none() {
                            return Err("completed position taken twice".to_string());
                        }
                    }
                    o.completed[ch] = row;
                }
                o.holds_slot = bool_of(j, "holds_slot")?;
                o.done = bool_of(j, "done")?;
                let seq = arr_of(j, "seq")?;
                if seq.len() != 2 {
                    return Err("bad seq cursor".to_string());
                }
                o.seq_cursor = (
                    seq[0]
                        .as_usize()
                        .ok_or_else(|| "bad seq iter".to_string())?,
                    seq[1]
                        .as_usize()
                        .ok_or_else(|| "bad seq child".to_string())?,
                );
                o.active.clear();
                for aj in arr_of(j, "active")? {
                    let it = usize_of(aj, "it")?;
                    let ch = usize_of(aj, "ch")?;
                    if it >= o.n_iters || ch >= o.n_children {
                        return Err("active position out of range".to_string());
                    }
                    let mut node = o.iters[it][ch]
                        .take()
                        .ok_or_else(|| "active position taken twice".to_string())?;
                    node.restore(field(aj, "node")?, model)?;
                    o.active.push((it, ch, node));
                }
                Ok(())
            }
        }
    }
}

/// Runtime state of an outer-controller invocation.
#[derive(Debug)]
pub struct OuterNode {
    ctrl: CtrlId,
    schedule: Schedule,
    width: usize,
    deps: Vec<(usize, usize, usize)>,
    /// Producers per consumer child (dep edges indexed by consumer).
    deps_in: Vec<Vec<usize>>,
    /// `(consumer, depth)` per producer child (dep edges indexed by producer).
    deps_out: Vec<Vec<(usize, usize)>>,
    /// Per-child occupying-invocation counts, recomputed by
    /// [`start_pipelined`](Self::start_pipelined) each tick (scratch buffer).
    in_flight: Vec<usize>,
    /// Child controllers, in program order (for stall attribution).
    children: Vec<CtrlId>,
    n_children: usize,
    n_iters: usize,
    /// `iters[i][j]` is taken (`None`) once started.
    iters: Vec<Vec<Option<Node>>>,
    started: Vec<usize>,
    completed: Vec<Vec<bool>>,
    /// Contiguous completed-iteration prefix per child.
    water: Vec<usize>,
    active: Vec<(usize, usize, Node)>,
    holds_slot: bool,
    done: bool,
    seq_cursor: (usize, usize),
}

impl OuterNode {
    fn mark_done(&mut self, iter: usize, child: usize) {
        let c = &mut self.completed[child];
        if c.len() <= iter {
            c.resize(iter + 1, false);
        }
        c[iter] = true;
        while self.water[child] < c.len() && c[self.water[child]] {
            self.water[child] += 1;
        }
    }

    fn all_done(&self) -> bool {
        self.active.is_empty() && self.water.iter().all(|&w| w >= self.n_iters)
    }

    fn tick(&mut self, res: &mut Resources, model: &SimModel) -> bool {
        if self.done {
            return true;
        }
        if !self.holds_slot {
            if !res.acquire_slot(self.ctrl) {
                return false;
            }
            self.holds_slot = true;
            res.activity.ctrl_msgs += 1; // parent token
        }
        if self.n_iters == 0 {
            self.finish(res);
            return true;
        }
        // Tick active children; retire completed ones.
        let mut i = 0;
        while i < self.active.len() {
            let (it, ch, node) = &mut self.active[i];
            if node.tick(res, model) {
                let (it, ch) = (*it, *ch);
                self.active.swap_remove(i);
                self.mark_done(it, ch);
                res.activity.ctrl_msgs += 1; // done token back to parent
                res.mark_changed(); // retirement may unblock siblings
            } else {
                i += 1;
            }
        }
        // Start new children under the protocol.
        match self.schedule {
            Schedule::Sequential => self.start_sequential(res),
            Schedule::Pipelined | Schedule::Streaming => self.start_pipelined(res, model),
        }
        if self.all_done() {
            self.finish(res);
            return true;
        }
        false
    }

    fn finish(&mut self, res: &mut Resources) {
        if self.holds_slot {
            res.release_slot(self.ctrl);
            self.holds_slot = false;
        }
        self.done = true;
    }

    /// Sequential: one child at a time, program order, iteration by
    /// iteration ("only one data dependent child is active at any time").
    fn start_sequential(&mut self, res: &mut Resources) {
        if !self.active.is_empty() {
            return;
        }
        let (mut it, mut ch) = self.seq_cursor;
        // Skip over already-finished positions.
        while it < self.n_iters {
            if ch >= self.n_children {
                it += 1;
                ch = 0;
                continue;
            }
            break;
        }
        if it >= self.n_iters {
            return;
        }
        if let Some(node) = self.iters[it][ch].take() {
            self.active.push((it, ch, node));
            self.started[ch] = self.started[ch].max(it + 1);
            res.mark_changed(); // a fresh invocation entered the tree
        }
        self.seq_cursor = (it, ch + 1);
    }

    /// Coarse-grained pipelining: children overlap across parent
    /// iterations, gated by tokens (producers finished the same iteration),
    /// credits (consumers at most `depth-1` iterations behind), per-child
    /// hardware width, and in-order starts.
    fn start_pipelined(&mut self, res: &mut Resources, model: &SimModel) {
        // One pass over the active set; starts below only ever add
        // invocations for the child being considered, so incrementing the
        // started child's own count keeps the tally exact.
        self.in_flight.fill(0);
        for (_, c, n) in &self.active {
            if n.occupying() {
                self.in_flight[*c] += 1;
            }
        }
        for ch in 0..self.n_children {
            loop {
                let i = self.started[ch];
                if i >= self.n_iters {
                    break;
                }
                if self.in_flight[ch] >= self.width {
                    break;
                }
                // Tokens: all producers have finished iteration i.
                let tokens_ok = self.deps_in[ch].iter().all(|pr| self.water[*pr] > i);
                if !tokens_ok {
                    self.note_blocked(res, model, ch, WaitKind::Token);
                    break;
                }
                // Credits: don't run further ahead of any consumer than the
                // buffer between allows.
                let credits_ok = self.deps_out[ch]
                    .iter()
                    .all(|(co, depth)| i < self.water[*co] + *depth);
                if !credits_ok {
                    self.note_blocked(res, model, ch, WaitKind::Credit);
                    break;
                }
                let Some(node) = self.iters[i][ch].take() else {
                    break;
                };
                if node.occupying() {
                    self.in_flight[ch] += 1;
                }
                self.active.push((i, ch, node));
                self.started[ch] = i + 1;
                res.mark_changed(); // a fresh invocation entered the tree
            }
        }
    }

    /// Records this node's blocked units: itself (when slot-starved), its
    /// active children (recursively), and — for the pipelined protocols —
    /// every child whose next iteration fails the token or credit gate,
    /// using the exact conditions of [`start_pipelined`](Self::start_pipelined).
    fn collect_blocked(&self, res: &Resources, model: &SimModel, out: &mut Vec<BlockedUnit>) {
        if self.done {
            return;
        }
        if !self.holds_slot {
            let (in_use, cap) = res.slot_usage(self.ctrl, model);
            out.push(BlockedUnit {
                ctrl: self.ctrl,
                name: String::new(),
                waits: vec![WaitCause::Slot { in_use, cap }],
                holds: vec![],
            });
            return;
        }
        for (_, _, node) in &self.active {
            node.collect_blocked(res, model, out);
        }
        if matches!(self.schedule, Schedule::Sequential) {
            return;
        }
        for ch in 0..self.n_children {
            let i = self.started[ch];
            if i >= self.n_iters {
                continue;
            }
            let in_flight = self
                .active
                .iter()
                .filter(|(_, c, n)| *c == ch && n.occupying())
                .count();
            if in_flight >= self.width {
                continue; // width-limited, not a protocol wait
            }
            let mut waits = Vec::new();
            for (pr, _, _) in self.deps.iter().filter(|(_, c, _)| *c == ch) {
                if self.water[*pr] <= i {
                    waits.push(WaitCause::Token {
                        producer: self.children[*pr],
                        producer_name: String::new(),
                        iter: i,
                        produced: self.water[*pr],
                    });
                }
            }
            for (_, co, depth) in self.deps.iter().filter(|(pr, _, _)| *pr == ch) {
                if i >= self.water[*co] + *depth {
                    waits.push(WaitCause::Credit {
                        consumer: self.children[*co],
                        consumer_name: String::new(),
                        iter: i,
                        consumed: self.water[*co],
                        depth: *depth,
                    });
                }
            }
            if !waits.is_empty() {
                out.push(BlockedUnit {
                    ctrl: self.children[ch],
                    name: String::new(),
                    waits,
                    holds: vec![HeldResource::Tokens {
                        produced: self.water[ch],
                    }],
                });
            }
        }
    }

    /// Charges a control stall to the blocked child's hardware unit (leaf
    /// children only; a blocked outer child shows up through its own
    /// children) and records the wait span. Units busy with an earlier
    /// iteration the same cycle stay busy: [`Resources::note`] keeps the
    /// strongest class.
    fn note_blocked(&self, res: &mut Resources, model: &SimModel, ch: usize, kind: WaitKind) {
        let ctrl = self.children[ch];
        if let Some(u) = unit_of(model, ctrl) {
            res.note(u, CLASS_CTRL);
        }
        let now = res.now;
        if let Some(t) = res.tracer.as_mut() {
            t.wait(ctrl, kind, now);
        }
    }
}

/// Runtime state of a leaf invocation.
#[derive(Debug)]
pub struct LeafNode {
    ctrl: CtrlId,
    work: LeafWork,
    job: u64,
    state: LeafState,
    slot_released: bool,
    /// Cycle this invocation acquired its slot (start of its trace span).
    started_at: u64,
}

#[derive(Debug)]
enum LeafState {
    Idle,
    Issue {
        remaining: u64,
        /// Vector beats issued so far; only every `issue_factor`-th beat is
        /// useful work, the rest are bank-conflict serialization replays.
        beat: u64,
    },
    Xfer {
        /// (byte address, is_write) — lines for dense, elements for sparse.
        reqs: Vec<(u64, bool)>,
        next: usize,
        outstanding: u64,
        issued_requests: u64,
    },
    Drain {
        finish: u64,
        xfer: bool,
    },
    Done,
}

impl LeafNode {
    fn tick(&mut self, res: &mut Resources, model: &SimModel) -> bool {
        loop {
            match &mut self.state {
                LeafState::Idle => {
                    if !res.acquire_slot(self.ctrl) {
                        if let Some(u) = unit_of(model, self.ctrl) {
                            res.note(u, CLASS_CTRL);
                        }
                        let now = res.now;
                        if let Some(t) = res.tracer.as_mut() {
                            t.wait(self.ctrl, WaitKind::Slot, now);
                        }
                        return false;
                    }
                    self.started_at = res.now;
                    if let Some(cm) = model.compute.get(&self.ctrl) {
                        let vecs = self.work.trips.div_ceil(cm.lanes as u64);
                        self.state = LeafState::Issue {
                            remaining: vecs * cm.issue_factor,
                            beat: 0,
                        };
                    } else if let Some(tm) = model.transfer.get(&self.ctrl) {
                        self.state = LeafState::Xfer {
                            reqs: xfer_reqs(&self.work, tm, model),
                            next: 0,
                            outstanding: 0,
                            issued_requests: 0,
                        };
                    } else {
                        // No hardware (empty program corner): finish next cycle.
                        self.state = LeafState::Drain {
                            finish: res.now + 1,
                            xfer: false,
                        };
                        return false;
                    }
                    // Fall through to make progress in the same cycle.
                }
                LeafState::Issue { remaining, beat } => {
                    if *remaining == 0 {
                        let cm = &model.compute[&self.ctrl];
                        // The pipeline drains behind the next invocation:
                        // release the unit as soon as issuing completes.
                        res.release_slot(self.ctrl);
                        self.slot_released = true;
                        self.state = LeafState::Drain {
                            finish: res.now + cm.in_hops + cm.depth as u64 + cm.out_hops,
                            xfer: false,
                        };
                        continue;
                    }
                    let cm = &model.compute[&self.ctrl];
                    let mut issued_any = false;
                    let mut useful = false;
                    let mut replayed = false;
                    for _ in 0..cm.own_copies {
                        if *remaining == 0 {
                            break;
                        }
                        if res.acquire_ports(&cm.reads, &cm.writes) {
                            issued_any = true;
                            if res.roll_issue_replay(&cm.reads) {
                                // Transient fault caught in flight: the beat
                                // is squashed and reissued, so `remaining`
                                // stays and the cycle is pure recovery.
                                replayed = true;
                                continue;
                            }
                            *remaining -= 1;
                            if *beat % cm.issue_factor == 0 {
                                useful = true;
                            }
                            *beat += 1;
                        } else {
                            break;
                        }
                    }
                    if issued_any {
                        res.activity.pcu_busy_cycles +=
                            (cm.phys_pcus / cm.slots.max(1)).max(1) as u64;
                    }
                    let unit = cm.unit;
                    if replayed {
                        res.note_recovery(unit);
                    }
                    if issued_any && useful {
                        res.note(unit, CLASS_BUSY);
                    } else {
                        // Every beat this cycle was either a bank-conflict
                        // serialization replay or blocked on scratchpad
                        // ports: memory-bound either way.
                        res.note(unit, CLASS_MEM);
                        let now = res.now;
                        if let Some(t) = res.tracer.as_mut() {
                            t.conflict(self.ctrl, now);
                        }
                    }
                    return false;
                }
                LeafState::Xfer {
                    reqs,
                    next,
                    outstanding,
                    issued_requests,
                } => {
                    let tm: &TransferModel = &model.transfer[&self.ctrl];
                    *outstanding = outstanding.saturating_sub(if tm.sparse {
                        res.take_elems(self.job)
                    } else {
                        res.take_lines(self.job)
                    });
                    let mut pushed = 0usize;
                    while pushed < tm.copies && *next < reqs.len() {
                        let (addr, w) = reqs[*next];
                        let ok = if tm.sparse {
                            res.push_sparse(self.job, addr, w)
                        } else {
                            res.push_dense(self.job, addr, w)
                        };
                        if !ok {
                            break;
                        }
                        *next += 1;
                        *outstanding += 1;
                        *issued_requests += 1;
                        pushed += 1;
                    }
                    if pushed > 0 {
                        res.activity.ag_busy_cycles += 1;
                        res.note(tm.unit, CLASS_BUSY);
                    } else if *next < reqs.len() || *outstanding > 0 {
                        // Blocked on a full channel queue, a busy coalescing
                        // unit, or in-flight DRAM responses.
                        res.note(tm.unit, CLASS_MEM);
                    }
                    if *next == reqs.len() && *outstanding == 0 {
                        res.release_slot(self.ctrl);
                        self.slot_released = true;
                        self.state = LeafState::Drain {
                            finish: res.now + tm.hops,
                            xfer: true,
                        };
                    }
                    return false;
                }
                LeafState::Drain { finish, xfer } => {
                    if res.now < *finish {
                        return false;
                    }
                    let xfer = *xfer;
                    self.retire(res, model, xfer);
                    self.state = LeafState::Done;
                    return true;
                }
                LeafState::Done => return true,
            }
        }
    }

    /// Records this invocation when it is blocked: slot-starved in `Idle`,
    /// port-starved in `Issue`, or awaiting DRAM in `Xfer`.
    fn collect_blocked(&self, res: &Resources, model: &SimModel, out: &mut Vec<BlockedUnit>) {
        match &self.state {
            LeafState::Idle => {
                let (in_use, cap) = res.slot_usage(self.ctrl, model);
                if cap > 0 && in_use >= cap {
                    out.push(BlockedUnit {
                        ctrl: self.ctrl,
                        name: String::new(),
                        waits: vec![WaitCause::Slot { in_use, cap }],
                        holds: vec![],
                    });
                }
            }
            LeafState::Issue { .. } => {
                out.push(BlockedUnit {
                    ctrl: self.ctrl,
                    name: String::new(),
                    waits: vec![WaitCause::Ports],
                    holds: vec![HeldResource::Slot],
                });
            }
            LeafState::Xfer { outstanding, .. } => {
                out.push(BlockedUnit {
                    ctrl: self.ctrl,
                    name: String::new(),
                    waits: vec![WaitCause::Dram {
                        outstanding: *outstanding,
                    }],
                    holds: vec![HeldResource::Slot, HeldResource::DramRequests(*outstanding)],
                });
            }
            LeafState::Drain { .. } | LeafState::Done => {}
        }
    }

    /// Books completion activity.
    fn retire(&mut self, res: &mut Resources, model: &SimModel, _xfer: bool) {
        if !self.slot_released {
            res.release_slot(self.ctrl);
        }
        let now = res.now;
        if let Some(t) = res.tracer.as_mut() {
            t.leaf(self.ctrl, self.job, self.started_at, now);
        }
        if let Some(cm) = model.compute.get(&self.ctrl) {
            let a = &mut res.activity;
            a.fu_ops += self.work.trips * cm.ops_per_trip;
            a.heavy_ops += self.work.trips * cm.heavy_per_trip;
            let vecs = self.work.trips.div_ceil(cm.lanes as u64);
            a.red_ops += vecs * cm.red_ops_per_vec;
            a.fu_ops += vecs * cm.red_ops_per_vec;
            let (rd, wr) = model.sram_words.get(&self.ctrl).copied().unwrap_or((0, 0));
            a.sram_reads += self.work.trips * rd;
            if self.work.emitted > 0 {
                a.sram_writes += self.work.emitted;
            } else {
                a.sram_writes += self.work.trips * wr;
            }
            a.reg_traffic += vecs * cm.depth as u64 * cm.lanes as u64;
            a.net_word_hops += vecs * cm.lanes as u64 * (cm.in_hops + cm.out_hops);
        }
        // Transfers: DRAM traffic is counted by the DRAM model itself; the
        // network share:
        if let Some(tm) = model.transfer.get(&self.ctrl) {
            let words: u64 = self.work.dram.iter().map(|r| r.len as u64).sum();
            res.activity.net_word_hops += words * tm.hops;
        }
    }
}
