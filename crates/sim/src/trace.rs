//! Cycle-level observability: per-unit stall attribution and an optional
//! structured event trace exportable as Chrome trace-viewer JSON.
//!
//! The attribution classifies **every cycle of every PCU, PMU, and AG**
//! into exactly one of four classes, so per unit the four counters always
//! sum to the total simulated cycles:
//!
//! * **busy** — the unit did useful work this cycle (issued a vector,
//!   served a scratchpad port, pushed a DRAM request),
//! * **ctrl-stall** — blocked by the control protocol of §3.5 (waiting for
//!   an invocation slot, missing producer tokens, exhausted credits),
//! * **mem-stall** — blocked by the memory system (bank-conflict
//!   serialization, port conflicts, DRAM backpressure, outstanding DRAM
//!   returns),
//! * **idle** — no work pending.
//!
//! Within a cycle the classes are prioritized
//! `busy > mem-stall > ctrl-stall > idle`: a unit that issued *and*
//! waited counts as busy, which is what makes the sum invariant hold by
//! construction.
//!
//! The event trace ([`SimTrace`]) is recorded only when requested through
//! [`simulate_traced`](crate::simulate_traced); the disabled path costs one
//! `Option` check per event site.

use plasticine_arch::UnitId;
use plasticine_json::Json;
use plasticine_ppir::{CtrlId, Program};
use std::collections::HashMap;

/// Cycle-class codes, priority-ordered: higher wins within a cycle.
pub(crate) const CLASS_IDLE: u8 = 0;
pub(crate) const CLASS_CTRL: u8 = 1;
pub(crate) const CLASS_MEM: u8 = 2;
pub(crate) const CLASS_BUSY: u8 = 3;

/// The hardware class of a tracked unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnitKind {
    /// Pattern compute unit (or a chained group of them).
    Pcu,
    /// Pattern memory unit (scratchpad).
    Pmu,
    /// Address generator.
    Ag,
}

impl UnitKind {
    /// Short lowercase name used in tables and JSON.
    pub fn as_str(&self) -> &'static str {
        match self {
            UnitKind::Pcu => "pcu",
            UnitKind::Pmu => "pmu",
            UnitKind::Ag => "ag",
        }
    }
}

/// Per-unit cycle classification. Exactly one class is incremented per
/// simulated cycle, so `total()` equals the simulation's cycle count.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct UnitCycles {
    /// Cycles doing useful work.
    pub busy: u64,
    /// Cycles blocked on the control protocol (slots, tokens, credits).
    pub ctrl_stall: u64,
    /// Cycles blocked on the memory system (bank conflicts, DRAM).
    pub mem_stall: u64,
    /// Cycles with nothing pending.
    pub idle: u64,
    /// Recovery overlay: cycles the unit spent re-doing work because of a
    /// detected transient fault (parity/lane replays, DRAM retries). These
    /// cycles are *also* classified into one of the four classes above, so
    /// `recovery` is NOT part of [`total`](Self::total) — it attributes
    /// fault-recovery cost without breaking the sum invariant.
    pub recovery: u64,
    /// Healing overlay: cycles spent inside a degrade detect window — an
    /// online fault arrival impacted this run and the kernel is riding out
    /// the detection delay before its degraded exit. Like `recovery`, an
    /// overlay on the four exclusive classes, excluded from
    /// [`total`](Self::total).
    pub healing: u64,
}

impl UnitCycles {
    /// Sum of the four exclusive classes — always the total simulated
    /// cycles (the `recovery` overlay is excluded).
    pub fn total(&self) -> u64 {
        self.busy + self.ctrl_stall + self.mem_stall + self.idle
    }

    /// Busy fraction of the total (0 when no cycles elapsed).
    pub fn busy_frac(&self) -> f64 {
        let t = self.total();
        if t == 0 {
            0.0
        } else {
            self.busy as f64 / t as f64
        }
    }

    /// Accumulates another unit's counters (for per-kind aggregates).
    pub fn accumulate(&mut self, o: &UnitCycles) {
        self.busy += o.busy;
        self.ctrl_stall += o.ctrl_stall;
        self.mem_stall += o.mem_stall;
        self.idle += o.idle;
        self.recovery += o.recovery;
        self.healing += o.healing;
    }

    pub(crate) fn bump(&mut self, class: u8) {
        self.bump_by(class, 1);
    }

    /// Bulk form of [`bump`](Self::bump): attributes `k` cycles to one
    /// class in a single step. The event-driven kernel uses it to commit a
    /// whole skipped span at once while keeping the sum invariant exact.
    pub(crate) fn bump_by(&mut self, class: u8, k: u64) {
        match class {
            CLASS_BUSY => self.busy += k,
            CLASS_MEM => self.mem_stall += k,
            CLASS_CTRL => self.ctrl_stall += k,
            _ => self.idle += k,
        }
    }
}

/// Identity of a unit tracked by the stall attribution (derived from the
/// compiled configuration when the [`SimModel`](crate::SimModel) is built).
#[derive(Debug, Clone)]
pub struct TrackedUnit {
    /// The logical unit in the machine configuration.
    pub unit: UnitId,
    /// Hardware class.
    pub kind: UnitKind,
    /// Human-readable label: the controller name for PCUs and AGs, the
    /// scratchpad name for PMUs.
    pub label: String,
}

/// One tracked unit's attribution result.
#[derive(Debug, Clone)]
pub struct UnitStat {
    /// The logical unit.
    pub unit: UnitId,
    /// Hardware class.
    pub kind: UnitKind,
    /// Human-readable label.
    pub label: String,
    /// The four-way cycle breakdown.
    pub cycles: UnitCycles,
}

/// Stall attribution for every PCU, PMU, and AG of a simulation.
#[derive(Debug, Clone, Default)]
pub struct UnitStats {
    /// Total simulated cycles (each unit's breakdown sums to this).
    pub total_cycles: u64,
    /// Per-unit breakdowns, in machine-configuration unit order.
    pub units: Vec<UnitStat>,
}

impl UnitStats {
    /// Sums the breakdowns of all units of one kind.
    pub fn aggregate(&self, kind: UnitKind) -> UnitCycles {
        let mut agg = UnitCycles::default();
        for u in self.units.iter().filter(|u| u.kind == kind) {
            agg.accumulate(&u.cycles);
        }
        agg
    }

    /// JSON form used by `--stats-json` and the golden-stats tests.
    pub fn to_json(&self) -> Json {
        Json::Arr(
            self.units
                .iter()
                .map(|u| {
                    let mut fields = vec![
                        ("unit", Json::from(u.unit.0)),
                        ("kind", Json::from(u.kind.as_str())),
                        ("label", Json::from(u.label.as_str())),
                        ("busy", Json::from(u.cycles.busy)),
                        ("ctrl_stall", Json::from(u.cycles.ctrl_stall)),
                        ("mem_stall", Json::from(u.cycles.mem_stall)),
                        ("idle", Json::from(u.cycles.idle)),
                        ("recovery", Json::from(u.cycles.recovery)),
                    ];
                    // Omitted when zero so fault-free runs keep their
                    // historical stats bytes.
                    if u.cycles.healing != 0 {
                        fields.push(("healing", Json::from(u.cycles.healing)));
                    }
                    Json::obj(fields)
                })
                .collect(),
        )
    }
}

/// What a controller was waiting for during a ctrl-stall span.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WaitKind {
    /// An invocation slot on its hardware unit.
    Slot,
    /// Producer tokens (an upstream sibling has not finished the iteration).
    Token,
    /// Credits (a downstream sibling is too far behind the N-buffer depth).
    Credit,
}

impl WaitKind {
    /// Short lowercase name used in trace labels.
    pub fn as_str(&self) -> &'static str {
        match self {
            WaitKind::Slot => "slot",
            WaitKind::Token => "token",
            WaitKind::Credit => "credit",
        }
    }
}

/// One structured simulation event. Spans are half-open: `[start, end)`.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// A leaf invocation occupied its unit from slot acquisition to
    /// retirement.
    Leaf {
        /// The leaf controller.
        ctrl: CtrlId,
        /// Unique invocation id.
        job: u64,
        /// Cycle the invocation acquired its slot.
        start: u64,
        /// Cycle it retired.
        end: u64,
    },
    /// A controller sat blocked by the control protocol.
    Wait {
        /// The blocked controller.
        ctrl: CtrlId,
        /// What it waited for.
        kind: WaitKind,
        /// First blocked cycle.
        start: u64,
        /// One past the last blocked cycle.
        end: u64,
    },
    /// A compute pipe serialized vector issue over scratchpad banks or
    /// ports instead of issuing usefully.
    BankConflict {
        /// The serializing compute controller.
        ctrl: CtrlId,
        /// First serialized cycle.
        start: u64,
        /// One past the last serialized cycle.
        end: u64,
    },
    /// One DRAM request from issue (AG push) to data return.
    DramReq {
        /// Issuing job (leaf invocation id).
        job: u64,
        /// Byte address.
        addr: u64,
        /// Write (true) or read.
        is_write: bool,
        /// Sparse element request (through a coalescing unit) or dense line.
        sparse: bool,
        /// Cycle the AG issued it.
        issue: u64,
        /// Cycle its data returned.
        done: u64,
    },
    /// A point-in-time marker (e.g. "deadlocked: waiting tokens from X"),
    /// attached to a controller's track.
    Instant {
        /// The controller the marker belongs to.
        ctrl: CtrlId,
        /// Marker label.
        label: String,
        /// Cycle of the event.
        at: u64,
    },
}

impl TraceEvent {
    fn sort_key(&self) -> (u64, u8, u64, u64) {
        match self {
            TraceEvent::Leaf {
                ctrl, start, end, ..
            } => (*start, 0, ctrl.0 as u64, *end),
            TraceEvent::Wait {
                ctrl, start, end, ..
            } => (*start, 1, ctrl.0 as u64, *end),
            TraceEvent::BankConflict { ctrl, start, end } => (*start, 2, ctrl.0 as u64, *end),
            TraceEvent::DramReq {
                job, issue, done, ..
            } => (*issue, 3, *job, *done),
            TraceEvent::Instant { ctrl, at, .. } => (*at, 4, ctrl.0 as u64, *at),
        }
    }
}

/// A finished structured event trace.
#[derive(Debug, Clone, Default)]
pub struct SimTrace {
    /// All events, sorted by start cycle.
    pub events: Vec<TraceEvent>,
}

impl SimTrace {
    /// Exports the trace in Chrome trace-viewer JSON (the "trace event
    /// format": load the file at `chrome://tracing` or
    /// <https://ui.perfetto.dev>). Timestamps are core cycles; controllers
    /// appear as process 0 with one thread per controller, DRAM requests as
    /// process 1 with one thread per issuing job.
    pub fn chrome_trace(&self, p: &Program) -> Json {
        let mut evs: Vec<Json> = Vec::new();
        let meta = |name: &str, pid: u32, tid: u32, value: &str| {
            Json::obj([
                ("name", Json::from(name)),
                ("ph", Json::from("M")),
                ("pid", Json::from(pid)),
                ("tid", Json::from(tid)),
                ("args", Json::obj([("name", Json::from(value))])),
            ])
        };
        evs.push(meta("process_name", 0, 0, "controllers"));
        evs.push(meta("process_name", 1, 0, "dram"));
        for (i, c) in p.ctrls().iter().enumerate() {
            evs.push(meta("thread_name", 0, i as u32, &c.name));
        }
        let span = |name: String, cat: &str, tid: u32, start: u64, end: u64, args: Json| {
            Json::obj([
                ("name", Json::from(name)),
                ("cat", Json::from(cat)),
                ("ph", Json::from("X")),
                ("pid", Json::from(if cat == "dram" { 1u32 } else { 0 })),
                ("tid", Json::from(tid)),
                ("ts", Json::from(start)),
                ("dur", Json::from(end.saturating_sub(start).max(1))),
                ("args", args),
            ])
        };
        for e in &self.events {
            evs.push(match e {
                TraceEvent::Leaf {
                    ctrl,
                    job,
                    start,
                    end,
                } => span(
                    p.ctrl(*ctrl).name.clone(),
                    "leaf",
                    ctrl.0,
                    *start,
                    *end,
                    Json::obj([("job", Json::from(*job))]),
                ),
                TraceEvent::Wait {
                    ctrl,
                    kind,
                    start,
                    end,
                } => span(
                    format!("wait:{}", kind.as_str()),
                    "ctrl-stall",
                    ctrl.0,
                    *start,
                    *end,
                    Json::Obj(Vec::new()),
                ),
                TraceEvent::BankConflict { ctrl, start, end } => span(
                    "bank-conflict".to_string(),
                    "mem-stall",
                    ctrl.0,
                    *start,
                    *end,
                    Json::Obj(Vec::new()),
                ),
                TraceEvent::DramReq {
                    job,
                    addr,
                    is_write,
                    sparse,
                    issue,
                    done,
                } => span(
                    format!(
                        "{}{}",
                        if *is_write { "wr" } else { "rd" },
                        if *sparse { ":sparse" } else { "" }
                    ),
                    "dram",
                    *job as u32,
                    *issue,
                    *done,
                    Json::obj([("addr", Json::from(*addr))]),
                ),
                TraceEvent::Instant { ctrl, label, at } => Json::obj([
                    ("name", Json::from(label.as_str())),
                    ("cat", Json::from("deadlock")),
                    ("ph", Json::from("i")),
                    ("s", Json::from("g")),
                    ("pid", Json::from(0u32)),
                    ("tid", Json::from(ctrl.0)),
                    ("ts", Json::from(*at)),
                ]),
            });
        }
        Json::obj([
            ("traceEvents", Json::Arr(evs)),
            ("displayTimeUnit", Json::from("ms")),
            (
                "metadata",
                Json::obj([("time-unit", Json::from("core-cycles"))]),
            ),
        ])
    }
}

/// In-flight span state: `(start, one past the last extended cycle)`.
type OpenSpan = (u64, u64);

fn extend(
    open: &mut HashMap<(u32, u8), OpenSpan>,
    closed: &mut Vec<((u32, u8), OpenSpan)>,
    key: (u32, u8),
    now: u64,
) {
    match open.get_mut(&key) {
        Some((_, end)) if *end == now => *end = now + 1,
        Some(span) => {
            closed.push((key, *span));
            *span = (now, now + 1);
        }
        None => {
            open.insert(key, (now, now + 1));
        }
    }
}

/// Crate-internal recorder behind the `Option` gate in `Resources`.
/// Coalesces per-cycle wait/conflict notes into spans online so long
/// stalls cost one event, not one per cycle.
#[derive(Debug, Default)]
pub(crate) struct Tracer {
    events: Vec<TraceEvent>,
    open_waits: HashMap<(u32, u8), OpenSpan>,
    closed_waits: Vec<((u32, u8), OpenSpan)>,
    open_conflicts: HashMap<(u32, u8), OpenSpan>,
    closed_conflicts: Vec<((u32, u8), OpenSpan)>,
    /// id → (issue cycle, byte addr, is_write, sparse, job).
    dram_inflight: HashMap<u64, (u64, u64, bool, bool, u64)>,
}

impl Tracer {
    pub(crate) fn wait(&mut self, ctrl: CtrlId, kind: WaitKind, now: u64) {
        let k = match kind {
            WaitKind::Slot => 0,
            WaitKind::Token => 1,
            WaitKind::Credit => 2,
        };
        extend(
            &mut self.open_waits,
            &mut self.closed_waits,
            (ctrl.0, k),
            now,
        );
    }

    pub(crate) fn conflict(&mut self, ctrl: CtrlId, now: u64) {
        extend(
            &mut self.open_conflicts,
            &mut self.closed_conflicts,
            (ctrl.0, 0),
            now,
        );
    }

    /// Extends every open wait/conflict span ending exactly at `end` by `k`
    /// cycles. During a span of cycles the event kernel skips (or processes
    /// without a tree tick), a per-cycle stepper would have re-noted the
    /// same blocked state every cycle — this is the bulk equivalent, so
    /// exported traces stay bit-identical between step modes.
    pub(crate) fn extend_open(&mut self, end: u64, k: u64) {
        for span in self.open_waits.values_mut() {
            if span.1 == end {
                span.1 += k;
            }
        }
        for span in self.open_conflicts.values_mut() {
            if span.1 == end {
                span.1 += k;
            }
        }
    }

    pub(crate) fn leaf(&mut self, ctrl: CtrlId, job: u64, start: u64, end: u64) {
        self.events.push(TraceEvent::Leaf {
            ctrl,
            job,
            start,
            end,
        });
    }

    pub(crate) fn dram_issue(
        &mut self,
        id: u64,
        addr: u64,
        is_write: bool,
        sparse: bool,
        job: u64,
        now: u64,
    ) {
        self.dram_inflight
            .insert(id, (now, addr, is_write, sparse, job));
    }

    pub(crate) fn dram_done(&mut self, id: u64, now: u64) {
        if let Some((issue, addr, is_write, sparse, job)) = self.dram_inflight.remove(&id) {
            self.events.push(TraceEvent::DramReq {
                job,
                addr,
                is_write,
                sparse,
                issue,
                done: now,
            });
        }
    }

    /// Closes all open spans and returns the sorted trace.
    pub(crate) fn finish(mut self, now: u64) -> SimTrace {
        let wait_kind = |k: u8| match k {
            0 => WaitKind::Slot,
            1 => WaitKind::Token,
            _ => WaitKind::Credit,
        };
        self.closed_waits.extend(self.open_waits.drain());
        for ((ctrl, k), (start, end)) in self.closed_waits.drain(..) {
            self.events.push(TraceEvent::Wait {
                ctrl: CtrlId(ctrl),
                kind: wait_kind(k),
                start,
                end,
            });
        }
        self.closed_conflicts.extend(self.open_conflicts.drain());
        for ((ctrl, _), (start, end)) in self.closed_conflicts.drain(..) {
            self.events.push(TraceEvent::BankConflict {
                ctrl: CtrlId(ctrl),
                start,
                end,
            });
        }
        // Requests still in flight at the end (shouldn't happen for a
        // completed simulation, but don't lose them).
        let mut inflight: Vec<_> = self.dram_inflight.drain().collect();
        inflight.sort_by_key(|(id, _)| *id);
        for (_, (issue, addr, is_write, sparse, job)) in inflight {
            self.events.push(TraceEvent::DramReq {
                job,
                addr,
                is_write,
                sparse,
                issue,
                done: now,
            });
        }
        self.events.sort_by_key(TraceEvent::sort_key);
        SimTrace {
            events: self.events,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_cycles_sum_and_aggregate() {
        let a = UnitCycles {
            busy: 3,
            ctrl_stall: 2,
            mem_stall: 1,
            idle: 4,
            recovery: 0,
            healing: 0,
        };
        assert_eq!(a.total(), 10);
        assert!((a.busy_frac() - 0.3).abs() < 1e-12);
        let stats = UnitStats {
            total_cycles: 10,
            units: vec![
                UnitStat {
                    unit: UnitId(0),
                    kind: UnitKind::Pcu,
                    label: "a".into(),
                    cycles: a,
                },
                UnitStat {
                    unit: UnitId(1),
                    kind: UnitKind::Pcu,
                    label: "b".into(),
                    cycles: a,
                },
                UnitStat {
                    unit: UnitId(2),
                    kind: UnitKind::Ag,
                    label: "c".into(),
                    cycles: a,
                },
            ],
        };
        let pcu = stats.aggregate(UnitKind::Pcu);
        assert_eq!(pcu.busy, 6);
        assert_eq!(pcu.total(), 20);
        assert_eq!(stats.aggregate(UnitKind::Pmu).total(), 0);
    }

    #[test]
    fn tracer_coalesces_consecutive_waits() {
        let mut t = Tracer::default();
        // Cycles 1,2,3 blocked; gap; cycles 7,8 blocked.
        for now in [1, 2, 3, 7, 8] {
            t.wait(CtrlId(4), WaitKind::Token, now);
        }
        let trace = t.finish(10);
        let waits: Vec<_> = trace
            .events
            .iter()
            .filter_map(|e| match e {
                TraceEvent::Wait { start, end, .. } => Some((*start, *end)),
                _ => None,
            })
            .collect();
        assert_eq!(waits, vec![(1, 4), (7, 9)]);
    }

    #[test]
    fn tracer_matches_dram_issue_to_return() {
        let mut t = Tracer::default();
        t.dram_issue(42, 0x1000, false, true, 7, 5);
        t.dram_done(42, 30);
        t.dram_done(99, 31); // unknown id (a coalescer-internal line): ignored
        let trace = t.finish(40);
        assert_eq!(
            trace.events,
            vec![TraceEvent::DramReq {
                job: 7,
                addr: 0x1000,
                is_write: false,
                sparse: true,
                issue: 5,
                done: 30,
            }]
        );
    }
}
