//! Process exit statuses shared by every Plasticine CLI surface.
//!
//! The CLI, CI smoke jobs, and documentation all refer to these codes;
//! they live here (rather than in the binary) so tests and scripts can
//! name them instead of repeating magic numbers.

use crate::resources::SimError;

/// Exit status of a CLI invocation, with one stable process exit code per
/// failure class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExitStatus {
    /// Success.
    Ok,
    /// Runtime failure that fits no more specific class (verification
    /// mismatch, I/O error, functional-execution failure).
    Runtime,
    /// Bad command line: unknown subcommand, flag, or flag value.
    Usage,
    /// Compilation failed ([`plasticine_compiler::CompileError`], including
    /// `InsufficientFabric` once parallelization reduction is exhausted).
    Compile,
    /// The simulated schedule deadlocked ([`SimError::Deadlock`]).
    Deadlock,
    /// Transient-fault recovery exhausted its retry budget
    /// ([`SimError::FaultExhaustion`]).
    FaultExhaustion,
    /// The simulation hit its cycle budget without finishing
    /// ([`SimError::CycleBudgetExceeded`]).
    CycleBudget,
    /// An online fault arrival degraded a resource the run was using
    /// ([`SimError::FabricDegraded`]); the run exited with an
    /// auto-checkpoint for a healing layer to relocate and resume.
    /// (Code `7` is reserved: the serve protocol uses it for
    /// overloaded/shutting-down responses.)
    FabricDegraded,
}

impl ExitStatus {
    /// The process exit code: `0` ok, `1` runtime, `2` usage, `3` compile,
    /// `4` deadlock, `5` fault exhaustion, `6` cycle budget, `8` fabric
    /// degraded (`7` is reserved for the serve protocol's
    /// overloaded/shutting-down responses).
    pub fn code(self) -> i32 {
        match self {
            ExitStatus::Ok => 0,
            ExitStatus::Runtime => 1,
            ExitStatus::Usage => 2,
            ExitStatus::Compile => 3,
            ExitStatus::Deadlock => 4,
            ExitStatus::FaultExhaustion => 5,
            ExitStatus::CycleBudget => 6,
            ExitStatus::FabricDegraded => 8,
        }
    }

    /// The stable wire name of this status, used as the `status` field of
    /// `plasticine-run serve` responses. Like [`code`](Self::code), these
    /// strings are part of the protocol contract.
    pub fn name(self) -> &'static str {
        match self {
            ExitStatus::Ok => "ok",
            ExitStatus::Runtime => "runtime",
            ExitStatus::Usage => "usage",
            ExitStatus::Compile => "compile",
            ExitStatus::Deadlock => "deadlock",
            ExitStatus::FaultExhaustion => "fault_exhaustion",
            ExitStatus::CycleBudget => "cycle_budget",
            ExitStatus::FabricDegraded => "fabric_degraded",
        }
    }

    /// The failure class of a simulation error.
    pub fn from_sim_error(e: &SimError) -> ExitStatus {
        match e {
            SimError::Deadlock(_) => ExitStatus::Deadlock,
            SimError::FaultExhaustion { .. } => ExitStatus::FaultExhaustion,
            SimError::CycleBudgetExceeded { .. } => ExitStatus::CycleBudget,
            SimError::Run(_) | SimError::Config(_) => ExitStatus::Runtime,
            // A checkpoint that cannot be decoded or does not match the
            // run is a caller mistake (wrong file / wrong flags).
            SimError::Checkpoint(_) => ExitStatus::Usage,
            SimError::FabricDegraded(_) => ExitStatus::FabricDegraded,
        }
    }
}

impl From<&SimError> for ExitStatus {
    fn from(e: &SimError) -> ExitStatus {
        ExitStatus::from_sim_error(e)
    }
}

impl From<ExitStatus> for std::process::ExitCode {
    fn from(s: ExitStatus) -> std::process::ExitCode {
        // `code()` is always in 0..=8, so the cast is lossless.
        std::process::ExitCode::from(s.code() as u8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_stable() {
        // These values are part of the CLI contract (DESIGN.md, CI jobs);
        // changing one is a breaking change.
        assert_eq!(ExitStatus::Ok.code(), 0);
        assert_eq!(ExitStatus::Runtime.code(), 1);
        assert_eq!(ExitStatus::Usage.code(), 2);
        assert_eq!(ExitStatus::Compile.code(), 3);
        assert_eq!(ExitStatus::Deadlock.code(), 4);
        assert_eq!(ExitStatus::FaultExhaustion.code(), 5);
        assert_eq!(ExitStatus::CycleBudget.code(), 6);
        assert_eq!(ExitStatus::FabricDegraded.code(), 8);
    }

    #[test]
    fn names_are_stable() {
        // The serve protocol's `status` strings; as load-bearing as the
        // numeric codes.
        for (s, name) in [
            (ExitStatus::Ok, "ok"),
            (ExitStatus::Runtime, "runtime"),
            (ExitStatus::Usage, "usage"),
            (ExitStatus::Compile, "compile"),
            (ExitStatus::Deadlock, "deadlock"),
            (ExitStatus::FaultExhaustion, "fault_exhaustion"),
            (ExitStatus::CycleBudget, "cycle_budget"),
            (ExitStatus::FabricDegraded, "fabric_degraded"),
        ] {
            assert_eq!(s.name(), name);
        }
    }

    #[test]
    fn sim_errors_map_to_their_class() {
        let e = SimError::FaultExhaustion {
            cycle: 1,
            addr: 0,
            attempts: 3,
        };
        assert_eq!(ExitStatus::from(&e), ExitStatus::FaultExhaustion);
        let e = SimError::CycleBudgetExceeded {
            cycle: 10,
            budget: 10,
        };
        assert_eq!(ExitStatus::from(&e), ExitStatus::CycleBudget);
        let e = SimError::Config("x".into());
        assert_eq!(ExitStatus::from(&e), ExitStatus::Runtime);
        let e = SimError::Checkpoint(crate::checkpoint::CheckpointError::Mismatch("x".into()));
        assert_eq!(ExitStatus::from(&e), ExitStatus::Usage);
    }
}
