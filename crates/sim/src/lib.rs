//! # plasticine-sim — cycle-accurate simulator for Plasticine
//!
//! The evaluation methodology of §4.2 of the paper, rebuilt from scratch:
//! the reference interpreter executes the program functionally and records
//! a work trace (what every leaf controller did); this crate replays the
//! trace against a compiled [`MachineConfig`]
//! with cycle-level models of
//!
//! * PCU issue (SIMD lanes, pipeline depth, unroll copies),
//! * PMU ports and bank conflicts (duplication banking removes
//!   serialization for data-dependent reads),
//! * the static interconnect (registered hop latencies from the router),
//! * the three control protocols of §3.5 (sequential, coarse-grain
//!   pipelined with tokens/credits and N-buffering, streaming),
//! * address generators, the coalescing units, and the full DDR3 timing
//!   model from [`plasticine_dram`].
//!
//! Functional results are *identical* to the interpreter's by construction
//! (the interpreter produces them); the simulator contributes cycles and
//! activity counters for performance, utilization, and power.
//!
//! # Examples
//!
//! ```no_run
//! use plasticine_arch::PlasticineParams;
//! use plasticine_compiler::compile;
//! use plasticine_sim::{simulate, SimOptions};
//! use plasticine_ppir::Machine;
//! # fn get_program() -> plasticine_ppir::Program { unimplemented!() }
//! let program = get_program();
//! let out = compile(&program, &PlasticineParams::paper_final()).unwrap();
//! let mut machine = Machine::new(&program);
//! let result = simulate(&program, &out, &mut machine, &SimOptions::default()).unwrap();
//! println!("{} cycles", result.cycles);
//! ```

#![warn(missing_docs)]

mod checkpoint;
mod deadlock;
mod exit;
mod kernel;
mod model;
mod multi;
mod parallel;
mod resources;
mod sched;
mod trace;

pub use checkpoint::{Checkpoint, CheckpointError, CheckpointPolicy};
pub use deadlock::{BlockedUnit, DeadlockReport, HeldResource, WaitCause};
pub use exit::ExitStatus;
pub use kernel::{Advance, CheckpointSink, DegradedReport, SimKernel};
pub use model::{ComputeModel, OuterModel, SimModel, TransferModel};
pub use multi::{MultiSim, Tenant, TenantId};
pub use parallel::SpanWork;
pub use resources::{Activity, FaultStats, Resources, SimError};
pub use sched::Node;
pub use trace::{
    SimTrace, TraceEvent, TrackedUnit, UnitCycles, UnitKind, UnitStat, UnitStats, WaitKind,
};

use plasticine_arch::{FaultMap, FaultTimeline, MachineConfig};
use plasticine_compiler::CompileOutput;
use plasticine_dram::{CoalesceStats, DramConfig, DramStats};
use plasticine_json::Json;
use plasticine_ppir::{Machine, Program};

/// How the run loop advances simulated time.
///
/// Both modes produce bit-identical results — cycle counts, per-unit stall
/// attribution, DRAM statistics, traces, RNG draw sequences, and error
/// cycles all match exactly. Event stepping is the default because it is
/// dramatically faster on memory-bound schedules; cycle stepping remains as
/// the slow reference the equivalence suite checks against.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum StepMode {
    /// Event-driven: after a quiescent cycle, jump straight to the next
    /// cycle where anything can happen (a pipeline-drain completion, a DRAM
    /// command/response/refresh edge, a retry-backoff expiry, or the
    /// watchdog trigger), attributing the skipped span in bulk.
    #[default]
    Event,
    /// Walk the full controller tree every cycle (the pre-event-kernel
    /// behavior).
    Cycle,
}

/// Simulation options.
#[derive(Debug, Clone)]
pub struct SimOptions {
    /// DRAM configuration (default: the paper's 4×DDR3-1600).
    pub dram: DramConfig,
    /// Cycle budget before declaring deadlock.
    pub max_cycles: u64,
    /// Whether sparse accesses go through the coalescing units (§3.4).
    /// Disabling issues one DRAM burst per element — the ablation of the
    /// coalescing-cache design decision.
    pub coalescing: bool,
    /// Fault map to run under. The hard faults must match the map the
    /// program was compiled against; the transient rates drive injection
    /// and the offline channels remap DRAM traffic. The default (pristine)
    /// map leaves every run bit-identical to the fault-free baseline.
    pub faults: FaultMap,
    /// Online fault-arrival schedule. Arrivals fire at exact simulated
    /// cycles in either step mode; an arrival that impacts a resource the
    /// run is using rides out the timeline's detect delay (attributed to
    /// the `healing` overlay) and then exits with
    /// [`SimError::FabricDegraded`] carrying an auto-checkpoint. The
    /// timeline participates in the checkpoint options guard: resuming
    /// must present the same timeline, which is what makes healed resumes
    /// bit-identical to manual ones. The default (empty) timeline leaves
    /// every run bit-identical to a timeline-free one.
    pub timeline: FaultTimeline,
    /// Cycles without global progress (no grant, push, or completion
    /// anywhere) before the run is declared deadlocked and diagnosed. Must
    /// comfortably exceed the largest DRAM-retry backoff.
    pub stall_limit: u64,
    /// Testing hook: clamp every producer→consumer buffer depth to this
    /// many credits. `Some(0)` starves every pipelined dependence — the
    /// canonical under-credited deadlock.
    pub credit_cap: Option<usize>,
    /// Time-advance strategy; see [`StepMode`].
    pub step: StepMode,
    /// Worker threads for the event-driven kernel (1 = serial). Results are
    /// byte-identical at any value — extra threads only change wall-clock
    /// time; quiescent spans are partitioned into per-DRAM-channel shards
    /// and merged in canonical order (DESIGN.md §12). Ignored in cycle
    /// stepping and while tracing.
    pub threads: usize,
}

impl Default for SimOptions {
    fn default() -> SimOptions {
        SimOptions {
            dram: DramConfig::default(),
            max_cycles: 500_000_000,
            coalescing: true,
            faults: FaultMap::default(),
            timeline: FaultTimeline::default(),
            stall_limit: 100_000,
            credit_cap: None,
            step: StepMode::default(),
            threads: 1,
        }
    }
}

/// Result of a simulation.
#[derive(Debug, Clone)]
pub struct SimResult {
    /// Total cycles from configuration load to completion.
    pub cycles: u64,
    /// Dynamic activity (power-model input).
    pub activity: Activity,
    /// DRAM statistics.
    pub dram: DramStats,
    /// Coalescing statistics.
    pub coalesce: CoalesceStats,
    /// Per-unit cycle breakdown: every cycle of every PCU/PMU/AG classified
    /// as busy, control stall, memory stall, or idle.
    pub units: UnitStats,
    /// Transient-fault detection and recovery counters (all zero on a
    /// fault-free run).
    pub faults: FaultStats,
    /// Parallel-engine work accounting (zeroes when the engine never
    /// engaged). Deliberately absent from [`stats_json`](Self::stats_json):
    /// it varies with the thread count, and the stats snapshot must not.
    pub span_work: SpanWork,
}

impl SimResult {
    /// Wall-clock seconds at a given core clock.
    pub fn seconds(&self, clock_ghz: f64) -> f64 {
        self.cycles as f64 / (clock_ghz * 1e9)
    }

    /// Functional-unit utilization: executed ALU ops over the op slots of
    /// the *used* PCUs across the whole run (Table 7's "FU" column).
    pub fn fu_utilization(&self, cfg: &MachineConfig) -> f64 {
        let slots = cfg.usage.pcus as f64
            * cfg.params.pcu.lanes as f64
            * cfg.params.pcu.stages as f64
            * self.cycles as f64;
        if slots == 0.0 {
            return 0.0;
        }
        (self.activity.fu_ops as f64 / slots).min(1.0)
    }

    /// Pipeline-register utilization proxy: register traffic over the
    /// register slots of used PCUs (Table 7's "Register" column).
    pub fn reg_utilization(&self, cfg: &MachineConfig) -> f64 {
        let slots = cfg.usage.pcus as f64
            * cfg.params.pcu.lanes as f64
            * cfg.params.pcu.stages as f64
            * cfg.params.pcu.regs_per_stage as f64
            * self.cycles as f64;
        if slots == 0.0 {
            return 0.0;
        }
        (self.activity.reg_traffic as f64 / slots).min(1.0)
    }

    /// Bytes moved to/from DRAM.
    pub fn dram_bytes(&self) -> u64 {
        (self.dram.reads + self.dram.writes) * 64
    }

    /// Achieved DRAM bandwidth in GB/s at a clock.
    pub fn dram_gbps(&self, clock_ghz: f64) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        self.dram_bytes() as f64 / self.cycles as f64 * clock_ghz
    }

    /// A machine-readable snapshot of everything deterministic about the
    /// run: cycles, activity counters, DRAM and coalescing statistics, and
    /// the per-unit stall breakdown. This is the payload the golden-stats
    /// regression suite diffs.
    pub fn stats_json(&self) -> Json {
        let a = &self.activity;
        let d = &self.dram;
        let c = &self.coalesce;
        Json::obj([
            ("cycles", Json::from(self.cycles)),
            (
                "activity",
                Json::obj([
                    ("fu_ops", Json::from(a.fu_ops)),
                    ("heavy_ops", Json::from(a.heavy_ops)),
                    ("red_ops", Json::from(a.red_ops)),
                    ("sram_reads", Json::from(a.sram_reads)),
                    ("sram_writes", Json::from(a.sram_writes)),
                    ("reg_traffic", Json::from(a.reg_traffic)),
                    ("net_word_hops", Json::from(a.net_word_hops)),
                    ("ctrl_msgs", Json::from(a.ctrl_msgs)),
                    ("pcu_busy_cycles", Json::from(a.pcu_busy_cycles)),
                    ("pmu_busy_cycles", Json::from(a.pmu_busy_cycles)),
                    ("ag_busy_cycles", Json::from(a.ag_busy_cycles)),
                ]),
            ),
            (
                "dram",
                Json::obj([
                    ("reads", Json::from(d.reads)),
                    ("writes", Json::from(d.writes)),
                    ("row_hits", Json::from(d.row_hits)),
                    ("activates", Json::from(d.activates)),
                    ("precharges", Json::from(d.precharges)),
                    ("busy_cycles", Json::from(d.busy_cycles)),
                    ("read_latency_cycles", Json::from(d.read_latency_cycles)),
                    ("write_latency_cycles", Json::from(d.write_latency_cycles)),
                    ("max_latency_cycles", Json::from(d.max_latency_cycles)),
                ]),
            ),
            (
                "coalesce",
                Json::obj([
                    ("elem_requests", Json::from(c.elem_requests)),
                    ("line_requests", Json::from(c.line_requests)),
                    ("merged", Json::from(c.merged)),
                ]),
            ),
            (
                "faults",
                Json::obj({
                    let mut fields = vec![
                        ("ecc_corrected", Json::from(self.faults.ecc_corrected)),
                        ("parity_replays", Json::from(self.faults.parity_replays)),
                        ("lane_replays", Json::from(self.faults.lane_replays)),
                        ("recovery_cycles", Json::from(self.faults.recovery_cycles)),
                        ("dram_dropped", Json::from(self.faults.dram_dropped)),
                        ("dram_retries", Json::from(self.faults.dram_retries)),
                        (
                            "dram_retry_wait_cycles",
                            Json::from(self.faults.dram_retry_wait_cycles),
                        ),
                    ];
                    // Omitted when zero so timeline-free runs keep their
                    // historical stats bytes.
                    if self.faults.healing_cycles != 0 {
                        fields.push(("healing_cycles", Json::from(self.faults.healing_cycles)));
                    }
                    fields
                }),
            ),
            ("units", self.units.to_json()),
        ])
    }
}

/// Runs a program functionally (on `machine`, which the caller pre-loads
/// with input data) and replays its trace for timing.
///
/// # Errors
///
/// Returns [`SimError::Run`] if functional execution fails,
/// [`SimError::Deadlock`] if the schedule stops making progress for
/// `stall_limit` cycles, and [`SimError::CycleBudgetExceeded`] if the run
/// reaches `max_cycles` without finishing.
pub fn simulate(
    p: &Program,
    out: &CompileOutput,
    machine: &mut Machine,
    opts: &SimOptions,
) -> Result<SimResult, SimError> {
    let mut k = SimKernel::new(p, out, machine, opts, false, None)?;
    k.advance(None, None)?;
    Ok(k.finish().0)
}

/// Like [`simulate`], but also records the structured event trace (leaf
/// spans, token/credit/slot waits, bank-conflict serialization, per-request
/// DRAM issue/return). Tracing costs memory proportional to the event
/// count; the plain [`simulate`] path allocates nothing for it.
///
/// # Errors
///
/// Same conditions as [`simulate`].
pub fn simulate_traced(
    p: &Program,
    out: &CompileOutput,
    machine: &mut Machine,
    opts: &SimOptions,
) -> Result<(SimResult, SimTrace), SimError> {
    let mut k = SimKernel::new(p, out, machine, opts, true, None)?;
    k.advance(None, None)?;
    let (r, t) = k.finish();
    Ok((r, t.expect("tracing was enabled")))
}

/// Like [`simulate`], but with checkpoint support: emits a [`Checkpoint`]
/// through `emit` per `policy`, and — when `resume` is given — validates
/// its guard hashes and continues from its cycle instead of cycle 0.
/// Resuming produces bit-identical final stats to an uninterrupted run in
/// either step mode. Tracing is not supported on this path (a trace
/// cannot be reconstructed across a kill), which is why there is no
/// traced variant.
///
/// # Errors
///
/// Same conditions as [`simulate`], plus [`SimError::Checkpoint`] when
/// `resume` does not match this program/bitstream/options or is corrupt.
pub fn simulate_checkpointed(
    p: &Program,
    out: &CompileOutput,
    machine: &mut Machine,
    opts: &SimOptions,
    policy: CheckpointPolicy,
    resume: Option<&Checkpoint>,
    emit: &mut dyn FnMut(&Checkpoint),
) -> Result<SimResult, SimError> {
    let mut k = SimKernel::new(p, out, machine, opts, false, resume)?;
    k.advance(None, Some(CheckpointSink { policy, emit }))?;
    Ok(k.finish().0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use plasticine_arch::PlasticineParams;
    use plasticine_compiler::compile;
    use plasticine_ppir::*;

    /// Tiled elementwise square: load → compute → store over `tiles` tiles.
    fn tiled_square(
        tiles: usize,
        tile: usize,
        sched: Schedule,
        par: usize,
    ) -> (Program, DramId, DramId) {
        tiled_square_passes(tiles, tile, sched, par, 1)
    }

    /// Like `tiled_square` but recomputing each tile `passes` times,
    /// raising arithmetic intensity so compute (not DRAM bandwidth)
    /// dominates.
    fn tiled_square_passes(
        tiles: usize,
        tile: usize,
        sched: Schedule,
        par: usize,
        passes: usize,
    ) -> (Program, DramId, DramId) {
        let n = tiles * tile;
        let mut b = ProgramBuilder::new("sq");
        let d_in = b.dram("in", DType::F32, n);
        let d_out = b.dram("out", DType::F32, n);
        let s_in = b.sram("t_in", DType::F32, &[tile]);
        let s_out = b.sram("t_out", DType::F32, &[tile]);
        let t = b.counter(0, tiles as i64, 1, par);
        let ti = t.index;
        let mut basef = Func::new("base");
        let tv = basef.index(ti);
        let tl = basef.konst(Elem::I32(tile as i32));
        let off = basef.binary(BinOp::Mul, tv, tl);
        basef.set_outputs(vec![off]);
        let basef = b.func(basef);
        let ld = b.inner(
            "ld",
            vec![],
            InnerOp::LoadTile(TileTransfer {
                dram: d_in,
                dram_base: basef,
                rows: 1,
                cols: tile,
                dram_row_stride: tile,
                sram: s_in,
            }),
        );
        let k = b.counter(0, passes as i64, 1, 1);
        let i = b.counter(0, tile as i64, 1, 16);
        let mut body = Func::new("sq");
        let iv = body.index(i.index);
        let v = body.load(s_in, vec![iv]);
        let sq = body.binary(BinOp::Mul, v, v);
        body.set_outputs(vec![sq]);
        let body = b.func(body);
        let mut wa = Func::new("wa");
        let iv = wa.index(i.index);
        wa.set_outputs(vec![iv]);
        let wa = b.func(wa);
        let mp = b.inner(
            "sq",
            vec![k, i],
            InnerOp::Map(MapPipe {
                body,
                writes: vec![PipeWrite {
                    sram: s_out,
                    addr: wa,
                    value_slot: 0,
                    mode: WriteMode::Overwrite,
                }],
            }),
        );
        let st = b.inner(
            "st",
            vec![],
            InnerOp::StoreTile(TileTransfer {
                dram: d_out,
                dram_base: basef,
                rows: 1,
                cols: tile,
                dram_row_stride: tile,
                sram: s_out,
            }),
        );
        let root = b.outer("tiles", sched, vec![t], vec![ld, mp, st]);
        (b.finish(root).unwrap(), d_in, d_out)
    }

    fn run(p: &Program, d_in: DramId) -> (SimResult, Vec<Elem>) {
        let params = PlasticineParams::paper_final();
        let out = compile(p, &params).unwrap();
        let mut m = Machine::new(p);
        let data: Vec<Elem> = (0..p.dram(d_in).len)
            .map(|i| Elem::F32(i as f32 * 0.5))
            .collect();
        m.write_dram(d_in, &data);
        let r = simulate(p, &out, &mut m, &SimOptions::default()).unwrap();
        (r, m.dram_data(DramId(1)).to_vec())
    }

    #[test]
    fn functional_results_match_interpreter() {
        let (p, d_in, d_out) = tiled_square(4, 64, Schedule::Pipelined, 1);
        let (r, out_data) = run(&p, d_in);
        assert!(r.cycles > 0);
        // Golden: plain interpreter.
        let mut gm = Machine::new(&p);
        let data: Vec<Elem> = (0..p.dram(d_in).len)
            .map(|i| Elem::F32(i as f32 * 0.5))
            .collect();
        gm.write_dram(d_in, &data);
        gm.run().unwrap();
        assert_eq!(out_data, gm.dram_data(d_out));
    }

    #[test]
    fn more_work_takes_more_cycles() {
        let (p1, d1, _) = tiled_square(2, 64, Schedule::Sequential, 1);
        let (p4, d4, _) = tiled_square(8, 64, Schedule::Sequential, 1);
        let (r1, _) = run(&p1, d1);
        let (r4, _) = run(&p4, d4);
        assert!(
            r4.cycles > 2 * r1.cycles,
            "8 tiles {} vs 2 tiles {}",
            r4.cycles,
            r1.cycles
        );
    }

    #[test]
    fn pipelining_beats_sequential() {
        let (ps, ds, _) = tiled_square(16, 256, Schedule::Sequential, 1);
        let (pp, dp, _) = tiled_square(16, 256, Schedule::Pipelined, 1);
        let (rs, _) = run(&ps, ds);
        let (rp, _) = run(&pp, dp);
        assert!(
            (rp.cycles as f64) < 0.75 * rs.cycles as f64,
            "pipelined {} vs sequential {}",
            rp.cycles,
            rs.cycles
        );
    }

    #[test]
    fn unrolling_speeds_up_dense_compute() {
        // 16 recompute passes per tile make the kernel compute-bound; a
        // 1-op streaming kernel is DRAM-bound and unrolling cannot help
        // (exactly the paper's InnerProduct/TPCH-Q6 observation).
        let (p1, d1, _) = tiled_square_passes(16, 512, Schedule::Pipelined, 1, 16);
        let (p4, d4, _) = tiled_square_passes(16, 512, Schedule::Pipelined, 4, 16);
        let (r1, _) = run(&p1, d1);
        let (r4, _) = run(&p4, d4);
        assert!(
            (r4.cycles as f64) < 0.7 * r1.cycles as f64,
            "par4 {} vs par1 {}",
            r4.cycles,
            r1.cycles
        );
    }

    #[test]
    fn streaming_kernel_is_bandwidth_bound() {
        // A 1-op/element kernel saturates DRAM: unrolling buys little.
        let (p1, d1, _) = tiled_square(16, 512, Schedule::Pipelined, 1);
        let (p4, d4, _) = tiled_square(16, 512, Schedule::Pipelined, 4);
        let (r1, _) = run(&p1, d1);
        let (r4, _) = run(&p4, d4);
        assert!(
            (r4.cycles as f64) > 0.7 * r1.cycles as f64,
            "bandwidth-bound kernel should not scale: par4 {} vs par1 {}",
            r4.cycles,
            r1.cycles
        );
        // And the achieved bandwidth is a large share of the 51.2 GB/s peak.
        assert!(r4.dram_gbps(1.0) > 25.0, "got {}", r4.dram_gbps(1.0));
    }

    #[test]
    fn activity_counters_are_populated() {
        let (p, d_in, _) = tiled_square(4, 64, Schedule::Pipelined, 1);
        let (r, _) = run(&p, d_in);
        // 4 tiles × 64 elements × 1 multiply.
        assert_eq!(r.activity.fu_ops, 256);
        assert_eq!(r.activity.sram_reads, 256);
        assert_eq!(r.activity.sram_writes, 256);
        assert!(r.activity.pcu_busy_cycles > 0);
        assert!(r.activity.ag_busy_cycles > 0);
        // 4 tiles × 64 floats = 1 KiB in, 1 KiB out = 16+16 lines.
        assert_eq!(r.dram.reads, 16);
        assert_eq!(r.dram.writes, 16);
    }

    #[test]
    fn utilization_metrics_bounded() {
        let (p, d_in, _) = tiled_square(8, 256, Schedule::Pipelined, 2);
        let params = PlasticineParams::paper_final();
        let out = compile(&p, &params).unwrap();
        let mut m = Machine::new(&p);
        let data: Vec<Elem> = (0..p.dram(d_in).len).map(|i| Elem::F32(i as f32)).collect();
        m.write_dram(d_in, &data);
        let r = simulate(&p, &out, &mut m, &SimOptions::default()).unwrap();
        let fu = r.fu_utilization(&out.config);
        let reg = r.reg_utilization(&out.config);
        assert!(fu > 0.0 && fu <= 1.0, "fu={fu}");
        assert!(reg > 0.0 && reg <= 1.0, "reg={reg}");
        assert!(r.dram_gbps(1.0) > 0.0);
    }
}
