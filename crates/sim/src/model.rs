//! Static per-controller timing models derived from a compiled
//! configuration: issue widths, pipeline depths, port bindings, link
//! latencies, and bank-conflict factors.

use crate::trace::{TrackedUnit, UnitKind};
use plasticine_arch::{AgMode, MachineConfig, UnitCfg, UnitId};
use plasticine_compiler::CompileOutput;
use plasticine_ppir::{BankingMode, CtrlBody, CtrlId, Expr, InnerOp, Program, Schedule, SramId};
use std::collections::HashMap;

/// Timing model of one compute leaf controller.
#[derive(Debug, Clone)]
pub struct ComputeModel {
    /// Logical unit implementing it.
    pub unit: UnitId,
    /// SIMD lanes per vector.
    pub lanes: usize,
    /// Vectors issuable per cycle (intra-invocation unroll).
    pub own_copies: usize,
    /// Concurrent invocations allowed (ancestor unroll).
    pub slots: usize,
    /// Pipeline latency in stages across chained PCUs.
    pub depth: usize,
    /// Distinct memory units read per vector (one port each per issue).
    pub reads: Vec<UnitId>,
    /// Distinct memory units written per vector.
    pub writes: Vec<UnitId>,
    /// Cycles per vector issue: the maximum of (a) bank-conflict
    /// serialization — `lanes` for data-dependent addressing on a
    /// non-duplicated scratchpad (§3.2's duplication mode removes it) —
    /// and (b) port serialization when one PMU feeds several operand
    /// streams of the same pipe.
    pub issue_factor: u64,
    /// Worst input link latency (cycles).
    pub in_hops: u64,
    /// Worst output link latency (cycles).
    pub out_hops: u64,
    /// ALU ops per index tuple (for activity counting).
    pub ops_per_trip: u64,
    /// Iterative (transcendental) ops per index tuple.
    pub heavy_per_trip: u64,
    /// Extra reduction-tree op slots per vector (folds).
    pub red_ops_per_vec: u64,
    /// Physical PCUs occupied (all copies).
    pub phys_pcus: usize,
}

/// Timing model of one transfer leaf controller.
#[derive(Debug, Clone)]
pub struct TransferModel {
    /// Logical AG unit.
    pub unit: UnitId,
    /// Sparse (gather/scatter) or dense.
    pub sparse: bool,
    /// Store direction.
    pub store: bool,
    /// Parallel AG streams.
    pub copies: usize,
    /// Concurrent invocations allowed.
    pub slots: usize,
    /// Link latency between AG and its scratchpad partner.
    pub hops: u64,
}

/// Scheduling model of an outer controller.
#[derive(Debug, Clone)]
pub struct OuterModel {
    /// Schedule of its children.
    pub schedule: Schedule,
    /// Children controllers in program order.
    pub children: Vec<CtrlId>,
    /// Dependency edges `(producer_child_idx, consumer_child_idx, depth)`.
    pub deps: Vec<(usize, usize, usize)>,
    /// Concurrent iterations each child may process within one invocation
    /// of this controller (the controller's own unroll factor).
    pub width: usize,
}

/// All per-controller models plus global bookkeeping.
#[derive(Debug)]
pub struct SimModel {
    /// Compute models keyed by controller id.
    pub compute: HashMap<CtrlId, ComputeModel>,
    /// Transfer models keyed by controller id.
    pub transfer: HashMap<CtrlId, TransferModel>,
    /// Outer models keyed by controller id.
    pub outer: HashMap<CtrlId, OuterModel>,
    /// Invocation slots per controller (ancestor unroll copies).
    pub ctrl_slots: HashMap<CtrlId, usize>,
    /// Port capacity per logical memory unit (physical PMUs backing it).
    pub mem_ports: HashMap<UnitId, usize>,
    /// DRAM buffer byte bases (copied from the config).
    pub dram_base: Vec<u64>,
    /// Words of scratchpad traffic per trip, per compute ctrl (reads, writes).
    pub sram_words: HashMap<CtrlId, (u64, u64)>,
    /// Every PCU/PMU/AG unit, in configuration order, with display labels —
    /// the population the stall attribution classifies each cycle.
    pub tracked: Vec<TrackedUnit>,
}

/// Whether any load in the function has a data-dependent (non-affine)
/// address: its address subgraph itself contains a load.
fn load_is_random(f: &plasticine_ppir::Func, addr_roots: &[plasticine_ppir::ExprId]) -> bool {
    let mut stack: Vec<usize> = addr_roots.iter().map(|e| e.0 as usize).collect();
    let mut seen = std::collections::HashSet::new();
    while let Some(n) = stack.pop() {
        if !seen.insert(n) {
            continue;
        }
        match &f.nodes()[n] {
            Expr::Load { .. } => return true,
            Expr::Unary(_, a) => stack.push(a.0 as usize),
            Expr::Binary(_, a, b) => {
                stack.push(a.0 as usize);
                stack.push(b.0 as usize);
            }
            Expr::Mux(c, a, b) => {
                stack.push(c.0 as usize);
                stack.push(a.0 as usize);
                stack.push(b.0 as usize);
            }
            _ => {}
        }
    }
    false
}

/// Collects `(sram, random?)` for every load in a function.
fn func_loads(f: &plasticine_ppir::Func) -> Vec<(SramId, bool)> {
    let mut out = Vec::new();
    for n in f.nodes() {
        if let Expr::Load { mem, addr } = n {
            out.push((*mem, load_is_random(f, addr)));
        }
    }
    out
}

impl SimModel {
    /// Builds the model from a compiled program.
    pub fn build(p: &Program, out: &CompileOutput) -> SimModel {
        let cfg: &MachineConfig = &out.config;
        let an = &out.analysis;

        // Memory lookup and port capacities.
        let mut mem_unit: HashMap<SramId, UnitId> = HashMap::new();
        let mut mem_ports: HashMap<UnitId, usize> = HashMap::new();
        let mut mem_banking: HashMap<SramId, BankingMode> = HashMap::new();
        for (i, u) in cfg.units.iter().enumerate() {
            if let UnitCfg::Memory(m) = u {
                mem_unit.insert(m.sram, UnitId(i as u32));
                mem_ports.insert(UnitId(i as u32), m.sites.len());
                mem_banking.insert(m.sram, m.banking);
            }
        }

        // Link hop maps.
        let mut max_in: HashMap<UnitId, u64> = HashMap::new();
        let mut max_out: HashMap<UnitId, u64> = HashMap::new();
        for l in &cfg.links {
            let e = max_in.entry(l.dst).or_insert(0);
            *e = (*e).max(l.hops as u64);
            let e = max_out.entry(l.src).or_insert(0);
            *e = (*e).max(l.hops as u64);
        }

        let mut compute = HashMap::new();
        let mut transfer = HashMap::new();
        let mut sram_words = HashMap::new();
        let mut ctrl_slots = HashMap::new();

        for (i, u) in cfg.units.iter().enumerate() {
            let uid = UnitId(i as u32);
            match u {
                UnitCfg::Compute(c) => {
                    let cid = c.ctrl;
                    let idx = cid.0 as usize;
                    let anc = an.anc_copies[idx].max(1);
                    let own = (an.copies[idx] / anc).max(1);
                    let v = out
                        .virtual_design
                        .pcus
                        .iter()
                        .find(|x| x.ctrl == cid)
                        .expect("virtual pcu for compute unit");
                    // Reads / writes with conflict factors.
                    let mut reads: Vec<(UnitId, u64)> = Vec::new();
                    let mut writes: Vec<UnitId> = Vec::new();
                    let mut rd_words = 0u64;
                    let mut wr_words = 0u64;
                    if let CtrlBody::Inner(op) = &p.ctrl(cid).body {
                        let mut note_reads = |fid: plasticine_ppir::FuncId| {
                            for (sram, random) in func_loads(p.func(fid)) {
                                let Some(&mu) = mem_unit.get(&sram) else {
                                    continue;
                                };
                                let factor =
                                    if random && mem_banking[&sram] != BankingMode::Duplication {
                                        c.lanes as u64
                                    } else {
                                        1
                                    };
                                reads.push((mu, factor));
                                rd_words += 1;
                            }
                        };
                        match op {
                            InnerOp::Map(m) => {
                                note_reads(m.body);
                                for w in &m.writes {
                                    if let Some(&mu) = mem_unit.get(&w.sram) {
                                        writes.push(mu);
                                        wr_words += 1;
                                    }
                                }
                            }
                            InnerOp::Fold(fl) => {
                                note_reads(fl.map);
                                for w in &fl.writes {
                                    if let Some(&mu) = mem_unit.get(&w.sram) {
                                        writes.push(mu);
                                    }
                                }
                            }
                            InnerOp::Filter(fi) => {
                                note_reads(fi.body);
                                if let Some(&mu) = mem_unit.get(&fi.out) {
                                    writes.push(mu);
                                    wr_words += 1;
                                }
                            }
                            InnerOp::RegWrite(rw) => note_reads(rw.func),
                            _ => {}
                        }
                    }
                    let red_ops_per_vec = if v.reduction_lanes > 1 {
                        (v.reduction_lanes - 1) as u64
                    } else {
                        0
                    };
                    // Consolidate per-unit port demand: several operand
                    // streams on one PMU serialize over extra cycles.
                    let conflict = reads.iter().map(|r| r.1).max().unwrap_or(1);
                    let mut rd_demand: HashMap<UnitId, u64> = HashMap::new();
                    for (u, _) in &reads {
                        *rd_demand.entry(*u).or_insert(0) += 1;
                    }
                    let mut wr_demand: HashMap<UnitId, u64> = HashMap::new();
                    for u in &writes {
                        *wr_demand.entry(*u).or_insert(0) += 1;
                    }
                    let mut port_factor = 1u64;
                    for (u, n) in rd_demand.iter().chain(wr_demand.iter()) {
                        let cap = mem_ports.get(u).copied().unwrap_or(1).max(1) as u64;
                        port_factor = port_factor.max(n.div_ceil(cap));
                    }
                    let issue_factor = conflict.max(port_factor);
                    // Deduplicated, sorted unit lists: per-beat port demand
                    // is then one token per listed unit, which makes every
                    // `acquire_ports` outcome a pure function of the
                    // begin-of-cycle token refresh. The event kernel's
                    // quiescence argument leans on this — a port-starved
                    // beat that fails one cycle fails identically the next,
                    // so the cycle can be skipped without re-ticking.
                    let mut rd_units: Vec<UnitId> = rd_demand.keys().copied().collect();
                    rd_units.sort();
                    let mut wr_units: Vec<UnitId> = wr_demand.keys().copied().collect();
                    wr_units.sort();
                    compute.insert(
                        cid,
                        ComputeModel {
                            unit: uid,
                            lanes: c.lanes,
                            own_copies: own,
                            slots: anc,
                            depth: c.pipeline_depth.max(1),
                            reads: rd_units,
                            writes: wr_units,
                            issue_factor,
                            in_hops: max_in.get(&uid).copied().unwrap_or(2),
                            out_hops: max_out.get(&uid).copied().unwrap_or(2),
                            ops_per_trip: v.ops.len() as u64,
                            heavy_per_trip: v.ops.iter().filter(|o| o.heavy).count() as u64,
                            red_ops_per_vec,
                            phys_pcus: c.sites.len(),
                        },
                    );
                    sram_words.insert(cid, (rd_words, wr_words));
                    ctrl_slots.insert(cid, anc);
                }
                UnitCfg::Ag(a) => {
                    let cid = a.ctrl;
                    let anc = an.anc_copies[cid.0 as usize].max(1);
                    transfer.insert(
                        cid,
                        TransferModel {
                            unit: uid,
                            sparse: a.mode == AgMode::Sparse,
                            store: matches!(
                                &p.ctrl(cid).body,
                                CtrlBody::Inner(InnerOp::StoreTile(_))
                                    | CtrlBody::Inner(InnerOp::Scatter(_))
                            ),
                            copies: a.ags.len().max(1),
                            slots: anc,
                            hops: max_in
                                .get(&uid)
                                .copied()
                                .unwrap_or(2)
                                .max(max_out.get(&uid).copied().unwrap_or(2)),
                        },
                    );
                    ctrl_slots.insert(cid, anc);
                }
                _ => {}
            }
        }

        // Outer models.
        let mut outer = HashMap::new();
        for u in &cfg.units {
            if let UnitCfg::Outer(o) = u {
                let cid = o.ctrl;
                if let CtrlBody::Outer { schedule, children } = &p.ctrl(cid).body {
                    outer.insert(
                        cid,
                        OuterModel {
                            schedule: *schedule,
                            children: children.clone(),
                            deps: an.sibling_deps(p, cid),
                            width: p.ctrl(cid).total_par().max(1),
                        },
                    );
                }
                ctrl_slots.insert(cid, an.anc_copies[cid.0 as usize].max(1));
            }
        }

        // Stall-attribution population: one entry per PCU/PMU/AG unit.
        let mut tracked = Vec::new();
        for (i, u) in cfg.units.iter().enumerate() {
            let unit = UnitId(i as u32);
            match u {
                UnitCfg::Compute(c) => tracked.push(TrackedUnit {
                    unit,
                    kind: UnitKind::Pcu,
                    label: p.ctrl(c.ctrl).name.clone(),
                }),
                UnitCfg::Memory(m) => tracked.push(TrackedUnit {
                    unit,
                    kind: UnitKind::Pmu,
                    label: p.sram(m.sram).name.clone(),
                }),
                UnitCfg::Ag(a) => tracked.push(TrackedUnit {
                    unit,
                    kind: UnitKind::Ag,
                    label: p.ctrl(a.ctrl).name.clone(),
                }),
                UnitCfg::Outer(_) => {}
            }
        }

        SimModel {
            compute,
            transfer,
            outer,
            ctrl_slots,
            mem_ports,
            dram_base: cfg.alloc.base.clone(),
            sram_words,
            tracked,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use plasticine_arch::PlasticineParams;
    use plasticine_compiler::compile;
    use plasticine_ppir::*;

    fn tiny_program() -> Program {
        let mut b = ProgramBuilder::new("tiny");
        let d = b.dram("d", DType::F32, 64);
        let s = b.sram("s", DType::F32, &[64]);
        let o = b.sram("o", DType::F32, &[64]);
        let mut zf = Func::new("z");
        let z = zf.konst(Elem::I32(0));
        zf.set_outputs(vec![z]);
        let zf = b.func(zf);
        let ld = b.inner(
            "ld",
            vec![],
            InnerOp::LoadTile(TileTransfer {
                dram: d,
                dram_base: zf,
                rows: 1,
                cols: 64,
                dram_row_stride: 64,
                sram: s,
            }),
        );
        let i = b.counter(0, 64, 1, 16);
        let mut body = Func::new("sq");
        let iv = body.index(i.index);
        let vv = body.load(s, vec![iv]);
        let sq = body.binary(BinOp::Mul, vv, vv);
        body.set_outputs(vec![sq]);
        let body = b.func(body);
        let mut wa = Func::new("wa");
        let iv = wa.index(i.index);
        wa.set_outputs(vec![iv]);
        let wa = b.func(wa);
        let mp = b.inner(
            "sq",
            vec![i],
            InnerOp::Map(MapPipe {
                body,
                writes: vec![PipeWrite {
                    sram: o,
                    addr: wa,
                    value_slot: 0,
                    mode: WriteMode::Overwrite,
                }],
            }),
        );
        let root = b.outer("root", Schedule::Sequential, vec![], vec![ld, mp]);
        b.finish(root).unwrap()
    }

    #[test]
    fn model_extracts_compute_shape() {
        let p = tiny_program();
        let out = compile(&p, &PlasticineParams::paper_final()).unwrap();
        let m = SimModel::build(&p, &out);
        assert_eq!(m.compute.len(), 1);
        assert_eq!(m.transfer.len(), 1);
        assert_eq!(m.outer.len(), 1);
        let cm = m.compute.values().next().unwrap();
        assert_eq!(cm.lanes, 16);
        assert_eq!(cm.own_copies, 1);
        assert_eq!(cm.reads.len(), 1);
        assert_eq!(cm.issue_factor, 1, "linear access: no conflict factor");
        assert_eq!(cm.writes.len(), 1);
        assert_eq!(cm.ops_per_trip, 1);
        assert!(cm.in_hops >= 2);
    }

    #[test]
    fn random_access_gets_conflict_factor() {
        // body reads x[idx[i]] from a strided scratchpad → factor = lanes.
        let mut b = ProgramBuilder::new("rand");
        let xs = b.sram("x", DType::F32, &[64]);
        let idx = b.sram("idx", DType::I32, &[64]);
        let os = b.sram("o", DType::F32, &[64]);
        let i = b.counter(0, 64, 1, 16);
        let mut body = Func::new("gather");
        let iv = body.index(i.index);
        let id = body.load(idx, vec![iv]);
        let x = body.load(xs, vec![id]);
        body.set_outputs(vec![x]);
        let body = b.func(body);
        let mut wa = Func::new("wa");
        let iv = wa.index(i.index);
        wa.set_outputs(vec![iv]);
        let wa = b.func(wa);
        let mp = b.inner(
            "g",
            vec![i],
            InnerOp::Map(MapPipe {
                body,
                writes: vec![PipeWrite {
                    sram: os,
                    addr: wa,
                    value_slot: 0,
                    mode: WriteMode::Overwrite,
                }],
            }),
        );
        let root = b.outer("root", Schedule::Sequential, vec![], vec![mp]);
        let p = b.finish(root).unwrap();
        let out = compile(&p, &PlasticineParams::paper_final()).unwrap();
        let m = SimModel::build(&p, &out);
        let cm = m.compute.values().next().unwrap();
        // x is read with a data-dependent address: serialized over the
        // lanes (factor 16).
        assert_eq!(cm.issue_factor, 16);
        assert_eq!(cm.reads.len(), 2);
    }

    #[test]
    fn duplication_banking_removes_conflicts() {
        let mut b = ProgramBuilder::new("dup");
        let xs = b.sram_banked("x", DType::F32, &[64], BankingMode::Duplication);
        let idx = b.sram("idx", DType::I32, &[64]);
        let os = b.sram("o", DType::F32, &[64]);
        let i = b.counter(0, 64, 1, 16);
        let mut body = Func::new("gather");
        let iv = body.index(i.index);
        let id = body.load(idx, vec![iv]);
        let x = body.load(xs, vec![id]);
        body.set_outputs(vec![x]);
        let body = b.func(body);
        let mut wa = Func::new("wa");
        let iv = wa.index(i.index);
        wa.set_outputs(vec![iv]);
        let wa = b.func(wa);
        let mp = b.inner(
            "g",
            vec![i],
            InnerOp::Map(MapPipe {
                body,
                writes: vec![PipeWrite {
                    sram: os,
                    addr: wa,
                    value_slot: 0,
                    mode: WriteMode::Overwrite,
                }],
            }),
        );
        let root = b.outer("root", Schedule::Sequential, vec![], vec![mp]);
        let p = b.finish(root).unwrap();
        let out = compile(&p, &PlasticineParams::paper_final()).unwrap();
        let m = SimModel::build(&p, &out);
        let cm = m.compute.values().next().unwrap();
        assert_eq!(cm.issue_factor, 1);
    }
}
