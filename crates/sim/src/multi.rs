//! Multi-tenant simulation: several programs co-resident on one chip.
//!
//! Each tenant occupies a disjoint fabric [`Partition`] (a horizontal
//! band) and a disjoint DRAM-channel share, so co-residents share no
//! physical resource: sites, switches, in-band links, edge AGs, and
//! memory channels are all private. [`MultiSim`] therefore interleaves
//! one independent [`SimKernel`] per tenant in deterministic weighted
//! round-robin quanta — a tenant with a `c`-channel share advances
//! `c × quantum` cycles per round — and each tenant's final
//! [`SimResult`] is *byte-identical* to running it alone on a dedicated
//! fabric of its partition's geometry. That is the headline isolation
//! invariant, and it holds by construction: the per-tenant kernel is the
//! same object the solo path runs, fed the same inputs.
//!
//! The quantum only schedules wall-clock work between tenants; it is
//! invisible in any tenant's stats. Eviction ([`MultiSim::evict`])
//! checkpoints a tenant at a quantum boundary; because checkpoint config
//! hashes are partition-offset-normalized, the evicted tenant can resume
//! ([`MultiSim::admit`] with a resume checkpoint) on any free
//! [pattern-equivalent](Partition::pattern_equivalent) band — same
//! height, offset congruent modulo the grid mix's vertical period — and
//! still finish with byte-identical stats. Bands at incompatible offsets
//! cover a different PCU/PMU site pattern and the checkpoint guard
//! refuses them; callers pick resume bands accordingly.

use crate::kernel::{Advance, SimKernel};
use crate::{Checkpoint, SimError, SimOptions, SimResult};
use plasticine_arch::Partition;
use plasticine_compiler::CompileOutput;
use plasticine_ppir::{Machine, Program};

/// Identifies a tenant within one [`MultiSim`] (its admission index;
/// stable for the life of the simulation — evicted and finished tenants
/// keep their slot).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TenantId(pub usize);

enum State {
    Running(Box<SimKernel>),
    Evicted { at: u64 },
    Done(Box<SimResult>),
}

/// One co-resident program: identity, band, and progress.
pub struct Tenant {
    name: String,
    partition: Option<Partition>,
    weight: u64,
    state: State,
}

impl Tenant {
    /// The tenant's display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The fabric band the tenant's bitstream targets (`None` = the
    /// whole chip, only possible for a lone tenant).
    pub fn partition(&self) -> Option<Partition> {
        self.partition
    }

    /// The tenant's round-robin credit weight (its DRAM-channel share).
    pub fn weight(&self) -> u64 {
        self.weight
    }

    /// The tenant's current simulated cycle (final cycle once done, the
    /// eviction cycle while evicted).
    pub fn now(&self) -> u64 {
        match &self.state {
            State::Running(k) => k.now(),
            State::Evicted { at } => *at,
            State::Done(r) => r.cycles,
        }
    }

    /// Whether the tenant ran to completion.
    pub fn is_done(&self) -> bool {
        matches!(self.state, State::Done(_))
    }

    /// Whether the tenant was evicted (checkpointed off the fabric) and
    /// has not been re-admitted.
    pub fn is_evicted(&self) -> bool {
        matches!(self.state, State::Evicted { .. })
    }

    /// The final result, once [`Tenant::is_done`].
    pub fn result(&self) -> Option<&SimResult> {
        match &self.state {
            State::Done(r) => Some(r),
            _ => None,
        }
    }
}

/// Deterministic driver for co-resident tenant simulations (see the
/// module docs).
pub struct MultiSim {
    quantum: u64,
    channels: usize,
    tenants: Vec<Tenant>,
}

impl MultiSim {
    /// A driver over a chip with `channels` DRAM channels, advancing each
    /// tenant `weight × quantum` cycles per round (`quantum` is clamped
    /// to ≥ 1).
    pub fn new(channels: usize, quantum: u64) -> MultiSim {
        MultiSim {
            quantum: quantum.max(1),
            channels,
            tenants: Vec::new(),
        }
    }

    /// All tenants in admission order (including finished and evicted
    /// ones — slots are never reused).
    pub fn tenants(&self) -> &[Tenant] {
        &self.tenants
    }

    /// Admits a program onto the fabric: builds its kernel (running the
    /// functional interpreter on `machine`, which the caller pre-loads
    /// with input data), optionally resuming from an eviction checkpoint.
    ///
    /// The bitstream's partition must be disjoint from every live
    /// tenant's band, fit the channel budget, and agree with the
    /// tenant's DRAM configuration (`opts.dram.channels` must equal the
    /// band's channel share — the tenant simulates against exactly its
    /// share of the memory system).
    ///
    /// # Errors
    ///
    /// [`SimError::Config`] on partition conflicts, plus every
    /// [`SimKernel::new`] error.
    pub fn admit(
        &mut self,
        name: &str,
        p: &Program,
        out: &CompileOutput,
        machine: &mut Machine,
        opts: &SimOptions,
        resume: Option<&Checkpoint>,
    ) -> Result<TenantId, SimError> {
        let band = out.config.partition;
        let live: Vec<&Tenant> = self
            .tenants
            .iter()
            .filter(|t| matches!(t.state, State::Running(_)))
            .collect();
        match band {
            Some(b) => {
                if opts.dram.channels != b.channels {
                    return Err(SimError::Config(format!(
                        "tenant `{name}` simulates {} DRAM channels but its partition \
                         owns {}",
                        opts.dram.channels, b.channels
                    )));
                }
                let share: usize = live
                    .iter()
                    .filter_map(|t| t.partition)
                    .map(|q| q.channels)
                    .sum();
                if share + b.channels > self.channels {
                    return Err(SimError::Config(format!(
                        "tenant `{name}` wants {} DRAM channels but only {} of {} are free",
                        b.channels,
                        self.channels - share,
                        self.channels
                    )));
                }
                for t in &live {
                    match t.partition {
                        Some(q) if b.y0 < q.y0 + q.rows && q.y0 < b.y0 + b.rows => {
                            return Err(SimError::Config(format!(
                                "tenant `{name}` partition {b} overlaps tenant `{}` \
                                 partition {q}",
                                t.name
                            )));
                        }
                        None => {
                            return Err(SimError::Config(format!(
                                "tenant `{}` owns the whole chip; no band is free",
                                t.name
                            )));
                        }
                        _ => {}
                    }
                }
            }
            None => {
                if let Some(t) = live.first() {
                    return Err(SimError::Config(format!(
                        "tenant `{name}` wants the whole chip but tenant `{}` is \
                         resident",
                        t.name
                    )));
                }
            }
        }
        let kernel = SimKernel::new(p, out, machine, opts, false, resume)?;
        let weight = band.map(|b| b.channels as u64).unwrap_or(1);
        self.tenants.push(Tenant {
            name: name.to_string(),
            partition: band,
            weight,
            state: State::Running(Box::new(kernel)),
        });
        Ok(TenantId(self.tenants.len() - 1))
    }

    /// Runs one round-robin round: every live tenant advances
    /// `weight × quantum` cycles (or to completion). Returns whether all
    /// tenants are settled (done or evicted).
    ///
    /// # Errors
    ///
    /// The first failing tenant's id and error; the other tenants keep
    /// their state and can still be evicted or inspected.
    pub fn round(&mut self) -> Result<bool, (TenantId, SimError)> {
        let mut settled = true;
        for (i, t) in self.tenants.iter_mut().enumerate() {
            let State::Running(k) = &mut t.state else {
                continue;
            };
            let target = k.now() + t.weight * self.quantum;
            match k.advance(Some(target), None) {
                Ok(Advance::Finished) => {
                    let State::Running(k) = std::mem::replace(
                        &mut t.state,
                        State::Evicted { at: 0 }, // placeholder, replaced below
                    ) else {
                        unreachable!("matched Running above");
                    };
                    t.state = State::Done(Box::new(k.finish().0));
                }
                Ok(Advance::Paused) => settled = false,
                Err(e) => return Err((TenantId(i), e)),
            }
        }
        Ok(settled)
    }

    /// Runs rounds until every tenant is done or evicted.
    ///
    /// # Errors
    ///
    /// Same as [`MultiSim::round`].
    pub fn run(&mut self) -> Result<(), (TenantId, SimError)> {
        while !self.round()? {}
        Ok(())
    }

    /// Evicts a live tenant: checkpoints it at its current quantum
    /// boundary and frees its band. Returns `None` when the tenant is
    /// already done/evicted or the id is unknown. Resume the checkpoint
    /// with [`MultiSim::admit`] against a bitstream compiled for any
    /// same-geometry band.
    pub fn evict(&mut self, id: TenantId) -> Option<Checkpoint> {
        let t = self.tenants.get_mut(id.0)?;
        let State::Running(k) = &t.state else {
            return None;
        };
        let c = k.checkpoint();
        t.state = State::Evicted { at: c.cycle };
        Some(c)
    }

    /// Removes a running tenant *without* checkpointing it — the degraded
    /// exit already carries its auto-checkpoint, so when a healing layer
    /// relocates the tenant it re-admits from the report, not from here.
    /// The partition is released like a normal eviction. Returns false if
    /// the tenant is not running or the id is unknown.
    pub fn expel(&mut self, id: TenantId) -> bool {
        let Some(t) = self.tenants.get_mut(id.0) else {
            return false;
        };
        let State::Running(k) = &t.state else {
            return false;
        };
        let at = k.now();
        t.state = State::Evicted { at };
        true
    }
}
