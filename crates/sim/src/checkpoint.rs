//! Versioned, content-hashed simulation checkpoints.
//!
//! A [`Checkpoint`] captures the full timing-side state of a run at a
//! cycle boundary — the control tree's per-invocation FSMs, the dense
//! `Resources` bookkeeping, in-flight DRAM transactions and retry queues,
//! stall-attribution accumulators, and the fault-injection RNG stream.
//! The functional side (scratchpad and DRAM *data*) is deliberately not
//! serialized: simulation is two-phase, so a resume re-runs the
//! deterministic functional interpreter, rebuilds an identical fresh
//! schedule tree, and overlays the snapshot. Resuming from cycle `N`
//! therefore produces bit-identical final [`SimResult`](crate::SimResult)
//! stats to an uninterrupted run, in both step modes.
//!
//! The artifact follows the `compiler::artifact` conventions: a `version`
//! field, hex-string `u64` hashes, and a `content_hash` (shared FNV-1a
//! over the compact payload encoding) verified on decode. Three guard
//! hashes pin what the checkpoint may resume against:
//!
//! * `program_hash` — the program actually simulated (post-degradation),
//! * `config_hash` — the placed-and-routed [`MachineConfig`], so a
//!   checkpoint cannot resume against the wrong bitstream. The config is
//!   [normalized](MachineConfig::normalized) (translated to partition
//!   offset 0) before hashing, so an evicted tenant may resume on any
//!   *pattern-equivalent* band of its original geometry — one whose
//!   offset is congruent modulo the grid mix's vertical period (same
//!   parity on the checkerboard), where relocation is exactly a vertical
//!   translation, which the hash deliberately ignores. A band at an
//!   incompatible offset covers a different PCU/PMU site pattern,
//!   compiles to a genuinely different bitstream, and is refused,
//! * `options_hash` — the determinism-relevant simulation options (DRAM
//!   config, coalescing, fault map, credit cap). `max_cycles`,
//!   `stall_limit`, and the step mode are deliberately *excluded*: the
//!   main use of an auto-checkpoint taken on `CycleBudgetExceeded` or a
//!   watchdog deadlock is resuming with a bigger budget, and the two step
//!   modes are bit-identical by construction.

use crate::{SimOptions, StepMode};
use plasticine_arch::MachineConfig;
use plasticine_json::decode::{field, hex_of, str_of, u64_of};
use plasticine_json::hash::fnv1a;
use plasticine_json::Json;
use plasticine_ppir::{stable_hash_of, Program};
use std::path::Path;

/// Current checkpoint format version. Version 2 added the healing overlay
/// (`heal` per unit, `healing_cycles`) and the ECC escalation window
/// (`ecc`) to the resources snapshot, and folded the fault timeline into
/// the options guard.
pub const VERSION: u32 = 2;

/// Why a checkpoint could not be decoded or resumed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckpointError {
    /// Malformed JSON, or a missing / ill-typed / out-of-range field.
    Format(String),
    /// The file declares a format version this build does not support.
    Version {
        /// Version found in the file.
        found: u32,
        /// Version this build writes.
        expected: u32,
    },
    /// The stored content hash does not match the payload — the file was
    /// corrupted or hand-edited.
    Corrupt {
        /// Hash stored in the file.
        stored: u64,
        /// Hash recomputed over the payload.
        computed: u64,
    },
    /// The checkpoint was taken from a different program, bitstream, or
    /// simulation options than the resume attempt.
    Mismatch(String),
    /// Filesystem error while loading or saving.
    Io(String),
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Format(m) => write!(f, "bad checkpoint: {m}"),
            CheckpointError::Version { found, expected } => write!(
                f,
                "unsupported checkpoint version {found} (this build reads version {expected})"
            ),
            CheckpointError::Corrupt { stored, computed } => write!(
                f,
                "checkpoint content hash mismatch: stored {stored:016x}, computed {computed:016x}"
            ),
            CheckpointError::Mismatch(m) => write!(f, "checkpoint does not match this run: {m}"),
            CheckpointError::Io(m) => write!(f, "checkpoint I/O error: {m}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

/// When the simulator writes checkpoints.
#[derive(Debug, Clone, Copy, Default)]
pub struct CheckpointPolicy {
    /// Emit a checkpoint at the first eligible cycle boundary at or past
    /// every multiple of this many cycles. In `StepMode::Cycle` the
    /// cadence is exact; in `StepMode::Event` quiescent spans are skipped
    /// in bulk, so the checkpoint lands on the first full iteration past
    /// the due cycle.
    pub every: Option<u64>,
    /// Emit a final checkpoint when the run fails with
    /// `CycleBudgetExceeded` or a watchdog-diagnosed deadlock, so the
    /// simulated cycles survive the failure (resume with a bigger
    /// `max_cycles` / `stall_limit`).
    pub on_error: bool,
}

/// A resumable snapshot of a simulation at a cycle boundary.
#[derive(Debug, Clone)]
pub struct Checkpoint {
    /// Format version ([`VERSION`]).
    pub version: u32,
    /// Name of the simulated program.
    pub program_name: String,
    /// [`Program::stable_hash`] of the program actually simulated.
    pub program_hash: u64,
    /// Stable hash of the placed-and-routed [`MachineConfig`], normalized
    /// to partition offset 0 (offset-independent: see the module docs).
    pub config_hash: u64,
    /// Stable hash of the determinism-relevant [`SimOptions`] (see the
    /// module docs for what is excluded and why).
    pub options_hash: u64,
    /// Step mode the checkpointing run used (informational — both modes
    /// are bit-identical, so a resume may use either).
    pub step: StepMode,
    /// Cycle the snapshot was taken at.
    pub cycle: u64,
    /// FNV-1a over the compact payload encoding, verified on decode.
    pub content_hash: u64,
    /// Last cycle the run loop observed global progress (watchdog state).
    pub(crate) last_progress: u64,
    /// [`Resources`](crate::Resources) snapshot.
    pub(crate) resources: Json,
    /// Schedule-tree snapshot.
    pub(crate) tree: Json,
}

/// The options-guard hash: DRAM config, coalescing, fault map, fault
/// timeline, and credit cap — everything that steers the deterministic
/// event stream. Budgets (`max_cycles`, `stall_limit`) and the step mode
/// are excluded so a budget-failure checkpoint can resume with bigger
/// limits. The timeline is included because resuming under a different
/// arrival schedule would diverge from the interrupted run — and because
/// requiring the *same* schedule is what makes a healed resume bit-identical
/// to a manual one.
pub(crate) fn options_guard_hash(opts: &SimOptions) -> u64 {
    stable_hash_of(&(
        &opts.dram,
        opts.coalescing,
        &opts.faults,
        &opts.timeline,
        opts.credit_cap,
    ))
}

impl Checkpoint {
    /// Assembles a checkpoint and computes its content hash.
    pub(crate) fn new(
        p: &Program,
        config: &MachineConfig,
        opts: &SimOptions,
        cycle: u64,
        last_progress: u64,
        resources: Json,
        tree: Json,
    ) -> Checkpoint {
        let mut c = Checkpoint {
            version: VERSION,
            program_name: p.name().to_string(),
            program_hash: p.stable_hash(),
            config_hash: stable_hash_of(&config.normalized()),
            options_hash: options_guard_hash(opts),
            step: opts.step,
            cycle,
            content_hash: 0,
            last_progress,
            resources,
            tree,
        };
        c.content_hash = fnv1a(c.payload_json().compact().as_bytes());
        c
    }

    /// Checks the guard hashes against a resume attempt.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Mismatch`] naming the first guard that differs.
    pub fn matches(
        &self,
        p: &Program,
        config: &MachineConfig,
        opts: &SimOptions,
    ) -> Result<(), CheckpointError> {
        if self.program_hash != p.stable_hash() {
            return Err(CheckpointError::Mismatch(format!(
                "program hash {:016x} was checkpointed from `{}`, not this program \
                 (hash {:016x}) — same bench name, scale, and fault map required",
                self.program_hash,
                self.program_name,
                p.stable_hash()
            )));
        }
        if self.config_hash != stable_hash_of(&config.normalized()) {
            return Err(CheckpointError::Mismatch(
                "bitstream (machine configuration) differs from the checkpointing run \
                 (pattern-equivalent bands — same height, offset congruent modulo the \
                 grid mix's vertical period — are interchangeable; others are not)"
                    .to_string(),
            ));
        }
        if self.options_hash != options_guard_hash(opts) {
            return Err(CheckpointError::Mismatch(
                "simulation options (DRAM config, coalescing, faults, or credit cap) \
                 differ from the checkpointing run"
                    .to_string(),
            ));
        }
        Ok(())
    }

    /// Everything except the content hash, in canonical field order.
    fn payload_json(&self) -> Json {
        Json::obj([
            ("version", Json::from(u64::from(self.version))),
            ("program_name", Json::from(self.program_name.as_str())),
            ("program_hash", Json::hex(self.program_hash)),
            ("config_hash", Json::hex(self.config_hash)),
            ("options_hash", Json::hex(self.options_hash)),
            (
                "step",
                Json::from(match self.step {
                    StepMode::Event => "event",
                    StepMode::Cycle => "cycle",
                }),
            ),
            ("cycle", Json::from(self.cycle)),
            ("last_progress", Json::from(self.last_progress)),
            ("resources", self.resources.clone()),
            ("tree", self.tree.clone()),
        ])
    }

    /// Serializes the checkpoint (content hash first, then the payload).
    pub fn encode(&self) -> String {
        let mut fields = vec![("content_hash".to_string(), Json::hex(self.content_hash))];
        match self.payload_json() {
            Json::Obj(m) => fields.extend(m),
            _ => unreachable!("payload is an object"),
        }
        Json::Obj(fields).pretty()
    }

    /// Parses a checkpoint and verifies its content hash.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Format`] on malformed input,
    /// [`CheckpointError::Version`] on an unsupported version, and
    /// [`CheckpointError::Corrupt`] when the stored content hash does not
    /// match the payload.
    pub fn decode(text: &str) -> Result<Checkpoint, CheckpointError> {
        let j = Json::parse(text).map_err(|e| CheckpointError::Format(e.to_string()))?;
        let fmt = CheckpointError::Format;
        let version = u64_of(&j, "version").map_err(fmt)?;
        let version = u32::try_from(version)
            .map_err(|_| CheckpointError::Format("version out of range".to_string()))?;
        if version != VERSION {
            return Err(CheckpointError::Version {
                found: version,
                expected: VERSION,
            });
        }
        let step = match str_of(&j, "step").map_err(fmt)? {
            "event" => StepMode::Event,
            "cycle" => StepMode::Cycle,
            s => return Err(CheckpointError::Format(format!("unknown step mode `{s}`"))),
        };
        let mut c = Checkpoint {
            version,
            program_name: str_of(&j, "program_name").map_err(fmt)?.to_string(),
            program_hash: hex_of(&j, "program_hash").map_err(fmt)?,
            config_hash: hex_of(&j, "config_hash").map_err(fmt)?,
            options_hash: hex_of(&j, "options_hash").map_err(fmt)?,
            step,
            cycle: u64_of(&j, "cycle").map_err(fmt)?,
            content_hash: hex_of(&j, "content_hash").map_err(fmt)?,
            last_progress: u64_of(&j, "last_progress").map_err(fmt)?,
            resources: field(&j, "resources").map_err(fmt)?.clone(),
            tree: field(&j, "tree").map_err(fmt)?.clone(),
        };
        let computed = fnv1a(c.payload_json().compact().as_bytes());
        if computed != c.content_hash {
            return Err(CheckpointError::Corrupt {
                stored: c.content_hash,
                computed,
            });
        }
        c.content_hash = computed;
        Ok(c)
    }

    /// Writes the encoded checkpoint to a file.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Io`] on filesystem failure.
    pub fn save(&self, path: &Path) -> Result<(), CheckpointError> {
        std::fs::write(path, self.encode() + "\n")
            .map_err(|e| CheckpointError::Io(format!("writing {}: {e}", path.display())))
    }

    /// Reads and decodes a checkpoint file.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Io`] on filesystem failure, plus every
    /// [`decode`](Self::decode) error.
    pub fn load(path: &Path) -> Result<Checkpoint, CheckpointError> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| CheckpointError::Io(format!("reading {}: {e}", path.display())))?;
        Checkpoint::decode(&text)
    }
}
