//! Deadlock diagnosis: when the schedule stops making progress, walk the
//! live schedule tree, record what every blocked unit holds and awaits, and
//! search the wait-for graph for a cycle.
//!
//! The §3.5 control protocol can deadlock when tokens and credits form a
//! loop: a producer cannot start its next iteration because a consumer is
//! out of credits, while the consumer cannot finish because it is missing
//! the producer's token. The report names that loop explicitly instead of
//! printing a bare "deadlocked at cycle N".

use crate::trace::SimTrace;
use plasticine_ppir::CtrlId;
use std::collections::HashMap;
use std::fmt;

/// What a blocked unit is waiting for.
#[derive(Debug, Clone, PartialEq)]
pub enum WaitCause {
    /// Missing a producer token: `producer` has not finished iteration
    /// `iter` yet (its completed-iteration watermark is `produced`).
    Token {
        /// The producing sibling controller.
        producer: CtrlId,
        /// The producer's name (filled in by [`DeadlockReport::finalize`]).
        producer_name: String,
        /// Iteration the waiter wants to start.
        iter: usize,
        /// Iterations the producer has completed so far.
        produced: usize,
    },
    /// Out of credits: starting iteration `iter` would run more than
    /// `depth` iterations ahead of `consumer` (whose watermark is
    /// `consumed`).
    Credit {
        /// The consuming sibling controller.
        consumer: CtrlId,
        /// The consumer's name (filled in by [`DeadlockReport::finalize`]).
        consumer_name: String,
        /// Iteration the waiter wants to start.
        iter: usize,
        /// Iterations the consumer has completed so far.
        consumed: usize,
        /// Buffer depth between the pair (credits available at start).
        depth: usize,
    },
    /// Waiting for an invocation slot on its own hardware.
    Slot {
        /// Slots currently held by earlier invocations.
        in_use: usize,
        /// Total slots the hardware provides.
        cap: usize,
    },
    /// Waiting on outstanding DRAM responses.
    Dram {
        /// Responses still in flight.
        outstanding: u64,
    },
    /// Waiting on scratchpad ports.
    Ports,
}

impl fmt::Display for WaitCause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WaitCause::Token {
                producer_name,
                iter,
                produced,
                ..
            } => write!(
                f,
                "token for iter {iter} from {producer_name} (producer at {produced})"
            ),
            WaitCause::Credit {
                consumer_name,
                iter,
                consumed,
                depth,
                ..
            } => write!(
                f,
                "credit for iter {iter} from {consumer_name} (depth {depth}, consumer at {consumed})"
            ),
            WaitCause::Slot { in_use, cap } => {
                write!(f, "an invocation slot ({in_use}/{cap} in use)")
            }
            WaitCause::Dram { outstanding } => {
                write!(f, "{outstanding} outstanding DRAM response(s)")
            }
            WaitCause::Ports => write!(f, "scratchpad ports"),
        }
    }
}

/// What a blocked unit currently holds.
#[derive(Debug, Clone, PartialEq)]
pub enum HeldResource {
    /// An invocation slot on its hardware.
    Slot,
    /// Tokens already produced (completed iterations visible to consumers).
    Tokens {
        /// Iterations completed.
        produced: usize,
    },
    /// In-flight DRAM requests.
    DramRequests(u64),
}

impl fmt::Display for HeldResource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HeldResource::Slot => write!(f, "an invocation slot"),
            HeldResource::Tokens { produced } => write!(f, "{produced} produced token(s)"),
            HeldResource::DramRequests(n) => write!(f, "{n} in-flight DRAM request(s)"),
        }
    }
}

/// One blocked unit in a deadlock report.
#[derive(Debug, Clone, PartialEq)]
pub struct BlockedUnit {
    /// The blocked controller.
    pub ctrl: CtrlId,
    /// Its name (filled in by [`DeadlockReport::finalize`]).
    pub name: String,
    /// Everything it is waiting for.
    pub waits: Vec<WaitCause>,
    /// Everything it holds while waiting.
    pub holds: Vec<HeldResource>,
}

/// The full diagnosis attached to [`SimError::Deadlock`](crate::SimError).
#[derive(Debug, Clone, Default)]
pub struct DeadlockReport {
    /// Cycle at which the simulation gave up.
    pub cycle: u64,
    /// The stall watchdog's limit: cycles without global progress before
    /// the run is declared deadlocked.
    pub stall_limit: u64,
    /// Last cycle at which any unit made progress (the watchdog fired
    /// because `cycle - last_progress` exceeded `stall_limit`).
    pub last_progress: u64,
    /// Every unit found blocked, with held and awaited resources.
    pub blocked: Vec<BlockedUnit>,
    /// Controller names forming a wait-for cycle (first name repeated at
    /// the end), empty when no cycle exists — e.g. the blockage is a
    /// many-way resource starvation rather than a token/credit loop. A run
    /// that merely outlives its cycle budget is *not* reported here; that
    /// is [`SimError::CycleBudgetExceeded`](crate::SimError).
    pub cycle_chain: Vec<String>,
    /// The structured event trace up to the deadlock, when the run was
    /// traced; instant markers for each blocked unit are appended so the
    /// deadlock is visible in the Chrome trace.
    pub trace: Option<SimTrace>,
}

impl DeadlockReport {
    /// Resolves controller names and computes the wait-for cycle. Called
    /// once by the simulator with the program's name table.
    pub fn finalize(&mut self, name_of: impl Fn(CtrlId) -> String) {
        for b in &mut self.blocked {
            b.name = name_of(b.ctrl);
            for w in &mut b.waits {
                match w {
                    WaitCause::Token {
                        producer,
                        producer_name,
                        ..
                    } => *producer_name = name_of(*producer),
                    WaitCause::Credit {
                        consumer,
                        consumer_name,
                        ..
                    } => *consumer_name = name_of(*consumer),
                    _ => {}
                }
            }
        }
        self.cycle_chain = find_cycle(&self.blocked).into_iter().map(name_of).collect();
    }
}

impl fmt::Display for DeadlockReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "simulation deadlocked at cycle {}: {} unit(s) blocked",
            self.cycle,
            self.blocked.len()
        )?;
        if self.cycle_chain.is_empty() {
            writeln!(
                f,
                "  no wait-for token/credit cycle found; the stall watchdog fired after \
                 {} cycles without progress (last progress at cycle {})",
                self.stall_limit, self.last_progress
            )?;
        } else {
            writeln!(f, "  wait-for cycle: {}", self.cycle_chain.join(" -> "))?;
        }
        for b in &self.blocked {
            let holds = if b.holds.is_empty() {
                "nothing".to_string()
            } else {
                b.holds
                    .iter()
                    .map(|h| h.to_string())
                    .collect::<Vec<_>>()
                    .join(", ")
            };
            let waits = b
                .waits
                .iter()
                .map(|w| w.to_string())
                .collect::<Vec<_>>()
                .join("; ");
            writeln!(
                f,
                "  - {} (ctrl {}): holds {holds}; awaits {waits}",
                b.name, b.ctrl.0
            )?;
        }
        Ok(())
    }
}

/// Finds a cycle in the wait-for graph (edges: waiter → blocker via tokens
/// and credits). Returns the controllers on the cycle with the first
/// repeated at the end, or empty when the graph is acyclic.
pub fn find_cycle(blocked: &[BlockedUnit]) -> Vec<CtrlId> {
    let mut adj: HashMap<CtrlId, Vec<CtrlId>> = HashMap::new();
    for b in blocked {
        for w in &b.waits {
            match w {
                WaitCause::Token { producer, .. } => {
                    adj.entry(b.ctrl).or_default().push(*producer);
                }
                WaitCause::Credit { consumer, .. } => {
                    adj.entry(b.ctrl).or_default().push(*consumer);
                }
                _ => {}
            }
        }
    }
    let mut state: HashMap<CtrlId, u8> = HashMap::new();
    let mut roots: Vec<CtrlId> = adj.keys().copied().collect();
    roots.sort();
    let mut path = Vec::new();
    for r in roots {
        if state.get(&r).copied().unwrap_or(0) == 0 {
            if let Some(c) = dfs(r, &adj, &mut state, &mut path) {
                return c;
            }
        }
    }
    Vec::new()
}

fn dfs(
    n: CtrlId,
    adj: &HashMap<CtrlId, Vec<CtrlId>>,
    state: &mut HashMap<CtrlId, u8>,
    path: &mut Vec<CtrlId>,
) -> Option<Vec<CtrlId>> {
    state.insert(n, 1);
    path.push(n);
    for &m in adj.get(&n).into_iter().flatten() {
        match state.get(&m).copied().unwrap_or(0) {
            0 => {
                if let Some(c) = dfs(m, adj, state, path) {
                    return Some(c);
                }
            }
            1 => {
                let pos = path
                    .iter()
                    .position(|&x| x == m)
                    .expect("on-stack node is on the path");
                let mut c = path[pos..].to_vec();
                c.push(m);
                return Some(c);
            }
            _ => {}
        }
    }
    path.pop();
    state.insert(n, 2);
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit(ctrl: u32, waits: Vec<WaitCause>) -> BlockedUnit {
        BlockedUnit {
            ctrl: CtrlId(ctrl),
            name: String::new(),
            waits,
            holds: vec![],
        }
    }

    #[test]
    fn two_unit_token_credit_loop_is_found() {
        let blocked = vec![
            unit(
                1,
                vec![WaitCause::Credit {
                    consumer: CtrlId(2),
                    consumer_name: String::new(),
                    iter: 3,
                    consumed: 2,
                    depth: 1,
                }],
            ),
            unit(
                2,
                vec![WaitCause::Token {
                    producer: CtrlId(1),
                    producer_name: String::new(),
                    iter: 2,
                    produced: 2,
                }],
            ),
        ];
        let c = find_cycle(&blocked);
        assert_eq!(c.first(), c.last());
        assert_eq!(c.len(), 3);
        assert!(c.contains(&CtrlId(1)) && c.contains(&CtrlId(2)));
    }

    #[test]
    fn acyclic_waits_have_no_cycle() {
        let blocked = vec![unit(
            1,
            vec![WaitCause::Token {
                producer: CtrlId(2),
                producer_name: String::new(),
                iter: 0,
                produced: 0,
            }],
        )];
        assert!(find_cycle(&blocked).is_empty());
    }

    #[test]
    fn report_display_names_units_and_resources() {
        let mut report = DeadlockReport {
            cycle: 1234,
            stall_limit: 1000,
            last_progress: 234,
            blocked: vec![
                BlockedUnit {
                    ctrl: CtrlId(1),
                    name: String::new(),
                    waits: vec![WaitCause::Credit {
                        consumer: CtrlId(2),
                        consumer_name: String::new(),
                        iter: 3,
                        consumed: 2,
                        depth: 1,
                    }],
                    holds: vec![HeldResource::Slot, HeldResource::Tokens { produced: 3 }],
                },
                BlockedUnit {
                    ctrl: CtrlId(2),
                    name: String::new(),
                    waits: vec![WaitCause::Token {
                        producer: CtrlId(1),
                        producer_name: String::new(),
                        iter: 2,
                        produced: 2,
                    }],
                    holds: vec![HeldResource::DramRequests(4)],
                },
            ],
            cycle_chain: vec![],
            trace: None,
        };
        report.finalize(|c| format!("ctrl{}", c.0));
        let s = report.to_string();
        assert!(s.contains("deadlocked at cycle 1234"), "{s}");
        assert!(s.contains("wait-for cycle:"), "{s}");
        assert!(s.contains("ctrl1"), "{s}");
        assert!(s.contains("ctrl2"), "{s}");
        assert!(s.contains("an invocation slot"), "{s}");
        assert!(s.contains("credit for iter 3 from ctrl2"), "{s}");
        assert!(s.contains("token for iter 2 from ctrl1"), "{s}");
        assert!(s.contains("4 in-flight DRAM request(s)"), "{s}");
    }

    /// Without a token/credit loop the report must blame the stall
    /// watchdog (with its parameters), never the cycle budget — budget
    /// overruns are a different error entirely.
    #[test]
    fn report_without_cycle_names_stall_watchdog() {
        let report = DeadlockReport {
            cycle: 5678,
            stall_limit: 1000,
            last_progress: 4567,
            blocked: vec![unit(1, vec![WaitCause::Slot { in_use: 2, cap: 2 }])],
            ..DeadlockReport::default()
        };
        let s = report.to_string();
        assert!(s.contains("stall watchdog"), "{s}");
        assert!(s.contains("1000 cycles without progress"), "{s}");
        assert!(s.contains("last progress at cycle 4567"), "{s}");
        assert!(!s.contains("cycle budget"), "{s}");
    }
}
