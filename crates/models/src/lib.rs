//! # plasticine-models — area, power, and design-space exploration
//!
//! The modelling half of the paper's methodology:
//!
//! * [`AreaModel`] — a 28 nm component-level area model inverted from the
//!   paper's published synthesis breakdown (Table 5), able to price
//!   arbitrary PCU/PMU parameterizations;
//! * [`PowerModel`] — event-energy power estimation over the simulator's
//!   activity counters (PrimeTime-with-traces methodology, §4.2),
//!   anchored at the paper's 49 W peak and Table 7 power range;
//! * [`dse`] — the §3.7 design-space exploration: parameter sweeps with
//!   benchmark-normalized area overheads (Figure 7) and the
//!   ASIC-to-generalized-fabric overhead chain (Table 6).

#![warn(missing_docs)]

mod area;
pub mod dse;
mod power;

pub use area::{AreaConstants, AreaModel, ChipArea, PcuArea, PmuArea};
pub use power::{EnergyConstants, PowerEstimate, PowerModel};
