//! Activity-based power model (28 nm, 1 GHz).
//!
//! The paper profiles unit power with Synopsys PrimeTime on RTL traces and
//! reports "static power for the entire chip and dynamic power for utilized
//! units" (§4.2). We reproduce the methodology with an event-energy model:
//! the simulator's activity counters (ALU ops, scratchpad words, network
//! word-hops, DRAM lines, control events) are priced with representative
//! 28 nm event energies, calibrated against two published anchors — the
//! 49 W maximum chip power at full utilization and the 10.7–42.6 W range
//! of Table 7.

use crate::area::AreaModel;
use plasticine_arch::MachineConfig;
use plasticine_sim::SimResult;

/// Event energies in picojoules.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyConstants {
    /// One 32-bit FU operation (FP add/mul class).
    pub fu_op_pj: f64,
    /// Extra energy of an iterative (transcendental) op.
    pub heavy_extra_pj: f64,
    /// One 32-bit scratchpad word read or written.
    pub sram_word_pj: f64,
    /// One 32-bit pipeline-register traversal.
    pub reg_pj: f64,
    /// One 32-bit word moved one switch hop.
    pub net_word_hop_pj: f64,
    /// One control-network event.
    pub ctrl_pj: f64,
    /// Memory-controller energy per 64-byte line (excluding DRAM devices,
    /// which are off-chip).
    pub dram_line_pj: f64,
    /// Leakage power density over the whole chip, W/mm².
    pub leakage_w_per_mm2: f64,
}

impl Default for EnergyConstants {
    fn default() -> EnergyConstants {
        EnergyConstants {
            fu_op_pj: 3.4,
            heavy_extra_pj: 22.0,
            sram_word_pj: 6.0,
            reg_pj: 0.35,
            net_word_hop_pj: 1.8,
            ctrl_pj: 1.0,
            dram_line_pj: 600.0,
            leakage_w_per_mm2: 0.085,
        }
    }
}

/// Power estimate for one run.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PowerEstimate {
    /// Dynamic power of utilized units, W.
    pub dynamic_w: f64,
    /// Whole-chip static power, W.
    pub static_w: f64,
    /// Total, W.
    pub total_w: f64,
    /// Total energy, mJ.
    pub energy_mj: f64,
}

/// The power model.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PowerModel {
    /// Event energies.
    pub k: EnergyConstants,
    /// Area model supplying the leakage base.
    pub area: AreaModel,
}

impl PowerModel {
    /// Model with default constants.
    pub fn new() -> PowerModel {
        PowerModel::default()
    }

    /// Prices a simulation result on a configuration.
    pub fn estimate(&self, r: &SimResult, cfg: &MachineConfig) -> PowerEstimate {
        let a = &r.activity;
        let k = &self.k;
        let energy_pj = a.fu_ops as f64 * k.fu_op_pj
            + a.heavy_ops as f64 * k.heavy_extra_pj
            + (a.sram_reads + a.sram_writes) as f64 * k.sram_word_pj
            + a.reg_traffic as f64 * k.reg_pj
            + a.net_word_hops as f64 * k.net_word_hop_pj
            + a.ctrl_msgs as f64 * k.ctrl_pj
            + (r.dram.reads + r.dram.writes) as f64 * k.dram_line_pj;
        let seconds = r.cycles as f64 / (cfg.params.clock_ghz * 1e9);
        let dynamic_w = if seconds > 0.0 {
            energy_pj * 1e-12 / seconds
        } else {
            0.0
        };
        let chip = self.area.chip(&cfg.params);
        let static_w = k.leakage_w_per_mm2 * chip.total;
        let total_w = dynamic_w + static_w;
        PowerEstimate {
            dynamic_w,
            static_w,
            total_w,
            energy_mj: total_w * seconds * 1e3,
        }
    }

    /// The chip's maximum power: every FU, register, scratchpad port, and
    /// network link active every cycle (the paper's "maximum power of 49 W
    /// at a 1 GHz clock").
    pub fn peak_power(&self, cfg: &MachineConfig) -> f64 {
        let p = &cfg.params;
        let k = &self.k;
        let fus = (p.num_pcus() * p.pcu.lanes * p.pcu.stages) as f64;
        let pmu_words = (p.num_pmus() * p.pmu.banks) as f64; // words/cycle
        let net_words = (((p.cols + 1) * (p.rows + 1)) as f64) * p.pcu.lanes as f64;
        // One register traversal per FU per cycle; not every register
        // toggles every cycle even at peak.
        let regs = fus;
        // Events per cycle × pJ = pJ/cycle; at 1 cycle/ns that is mW.
        let pj_per_cycle = fus * k.fu_op_pj
            + pmu_words * 2.0 * k.sram_word_pj
            + regs * k.reg_pj
            + net_words * k.net_word_hop_pj
            + 0.8 * k.dram_line_pj; // 4 channels × 0.2 lines/cycle
        let dynamic = pj_per_cycle * p.clock_ghz * 1e-3;
        dynamic + k.leakage_w_per_mm2 * self.area.chip(p).total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use plasticine_arch::{DramAlloc, PlasticineParams, ResourceUsage};
    use plasticine_sim::Activity;

    fn empty_cfg() -> MachineConfig {
        MachineConfig {
            params: PlasticineParams::paper_final(),
            program_name: "t".into(),
            units: vec![],
            links: vec![],
            alloc: DramAlloc::default(),
            usage: ResourceUsage::default(),
            partition: None,
        }
    }

    fn result(activity: Activity, cycles: u64) -> SimResult {
        SimResult {
            cycles,
            activity,
            dram: plasticine_dram::DramStats::default(),
            coalesce: plasticine_dram::CoalesceStats::default(),
            units: plasticine_sim::UnitStats::default(),
            faults: plasticine_sim::FaultStats::default(),
            span_work: plasticine_sim::SpanWork::default(),
        }
    }

    #[test]
    fn idle_chip_draws_static_power_only() {
        let m = PowerModel::new();
        let e = m.estimate(&result(Activity::default(), 1000), &empty_cfg());
        assert!(e.dynamic_w < 1e-9);
        // Static power is the Table 7 floor (~10 W for SGD at 10.7 W).
        assert!(
            e.static_w > 8.0 && e.static_w < 11.0,
            "static {}",
            e.static_w
        );
    }

    #[test]
    fn peak_power_matches_paper_49w() {
        let m = PowerModel::new();
        let peak = m.peak_power(&empty_cfg());
        assert!((peak - 49.0).abs() < 6.0, "peak {peak}");
    }

    #[test]
    fn busier_runs_draw_more_power() {
        let m = PowerModel::new();
        let light = Activity {
            fu_ops: 1_000,
            ..Default::default()
        };
        let mut heavy = light;
        heavy.fu_ops = 1_000_000;
        let cfg = empty_cfg();
        let pl = m.estimate(&result(light, 10_000), &cfg);
        let ph = m.estimate(&result(heavy, 10_000), &cfg);
        assert!(ph.total_w > pl.total_w);
        assert!(ph.energy_mj > pl.energy_mj);
    }

    #[test]
    fn energy_scales_with_time_at_fixed_power() {
        let m = PowerModel::new();
        let cfg = empty_cfg();
        let e1 = m.estimate(&result(Activity::default(), 1000), &cfg);
        let e2 = m.estimate(&result(Activity::default(), 2000), &cfg);
        assert!((e2.energy_mj / e1.energy_mj - 2.0).abs() < 1e-9);
    }
}
