//! Design-space exploration (§3.7): the engine behind Figure 7, Table 3,
//! and Table 6.
//!
//! The methodology follows the paper: for a candidate parameter value, each
//! benchmark's virtual PCUs are partitioned into physical PCUs under that
//! value (invalid points — where some virtual unit cannot be realized at
//! all — are the × marks of Figure 7); the benchmark's "PCU area" is the
//! resulting unit count times the area of one PCU, sized tightly for
//! everything not under the sweep; overheads are normalized to the
//! benchmark's own minimum over the sweep.

use crate::area::AreaModel;
use plasticine_arch::{PcuParams, PmuParams};
use plasticine_compiler::{partition, ChunkStats, VirtualDesign};

/// Which PCU parameter a sweep varies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PcuParamKind {
    /// Pipeline stages (Figure 7a).
    Stages,
    /// Registers per FU (Figure 7b).
    Regs,
    /// Scalar inputs (Figure 7c).
    ScalarIns,
    /// Scalar outputs (Figure 7d).
    ScalarOuts,
    /// Vector inputs (Figure 7e).
    VectorIns,
    /// Vector outputs (Figure 7f).
    VectorOuts,
}

impl PcuParamKind {
    /// Sets the field on a parameter set.
    pub fn apply(self, p: &mut PcuParams, v: usize) {
        match self {
            PcuParamKind::Stages => p.stages = v,
            PcuParamKind::Regs => p.regs_per_stage = v,
            PcuParamKind::ScalarIns => p.scalar_ins = v,
            PcuParamKind::ScalarOuts => p.scalar_outs = v,
            PcuParamKind::VectorIns => p.vector_ins = v,
            PcuParamKind::VectorOuts => p.vector_outs = v,
        }
    }

    /// Panel label as in Figure 7.
    pub fn label(self) -> &'static str {
        match self {
            PcuParamKind::Stages => "Stages",
            PcuParamKind::Regs => "Registers",
            PcuParamKind::ScalarIns => "ScalarIns",
            PcuParamKind::ScalarOuts => "ScalarOuts",
            PcuParamKind::VectorIns => "VectorIns",
            PcuParamKind::VectorOuts => "VectorOuts",
        }
    }
}

/// The Table 3 sweep bounds: everything not yet tuned is left unrestricted
/// at its maximum.
pub fn unrestricted() -> PcuParams {
    PcuParams {
        lanes: 16,
        stages: 16,
        regs_per_stage: 16,
        scalar_ins: 16,
        scalar_outs: 6,
        vector_ins: 10,
        vector_outs: 6,
        fifo_depth: 16,
        counters: 4,
    }
}

/// One point of a sweep: `None` overhead means the value is invalid for the
/// application (× in Figure 7).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepPoint {
    /// The parameter value.
    pub value: usize,
    /// `AreaPCU / MinPCU − 1`, or `None` when unrealizable.
    pub overhead: Option<f64>,
}

/// One benchmark's sweep results.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepRow {
    /// Benchmark name.
    pub app: String,
    /// One point per swept value.
    pub points: Vec<SweepPoint>,
}

/// A parameter sweep specification: the target, its values, and the
/// already-tuned parameters fixed at their chosen values (Figure 7's panel
/// captions: "Registers per FU *with 6 stages*", …).
#[derive(Debug, Clone)]
pub struct SweepSpec {
    /// Parameter under study.
    pub target: PcuParamKind,
    /// Candidate values.
    pub values: Vec<usize>,
    /// Previously-tuned parameters.
    pub fixed: Vec<(PcuParamKind, usize)>,
}

/// Absolute benchmark PCU area (mm²) for one candidate value, or `None` if
/// unrealizable.
fn candidate_area(
    design: &VirtualDesign,
    spec: &SweepSpec,
    value: usize,
    model: &AreaModel,
) -> Option<f64> {
    // Feasibility parameters: target + fixed; the rest unrestricted.
    let mut feas = unrestricted();
    for (k, v) in &spec.fixed {
        k.apply(&mut feas, *v);
    }
    spec.target.apply(&mut feas, value);

    let mut total_pcus = 0usize;
    let mut all_chunks: Vec<ChunkStats> = Vec::new();
    for u in &design.pcus {
        let mut u = u.clone();
        if u.lanes > feas.lanes {
            u.copies *= u.lanes.div_ceil(feas.lanes);
            if u.reduction_lanes > 1 {
                u.reduction_lanes = feas.lanes;
            }
            u.lanes = feas.lanes;
        }
        let chunks = partition(&u, &feas).ok()?;
        total_pcus += chunks.len() * u.copies;
        all_chunks.extend(chunks);
    }
    if total_pcus == 0 {
        return Some(0.0);
    }

    // Pricing: the target and fixed parameters at their chosen values,
    // everything else tightly sized to the maximum observed usage.
    let used = |f: fn(&ChunkStats) -> usize| all_chunks.iter().map(f).max().unwrap_or(1).max(1);
    let mut price = PcuParams {
        lanes: 16,
        stages: used(|c| c.stages),
        regs_per_stage: used(|c| c.max_live),
        scalar_ins: used(|c| c.scal_ins),
        scalar_outs: used(|c| c.scal_outs),
        vector_ins: used(|c| c.vec_ins),
        vector_outs: used(|c| c.vec_outs),
        fifo_depth: 16,
        counters: 4,
    };
    for (k, v) in &spec.fixed {
        k.apply(&mut price, *v);
    }
    spec.target.apply(&mut price, value);

    Some(model.pcu(&price).total() * total_pcus as f64)
}

/// One benchmark's full sweep row.
fn sweep_app(name: &str, design: &VirtualDesign, spec: &SweepSpec, model: &AreaModel) -> SweepRow {
    let areas: Vec<Option<f64>> = spec
        .values
        .iter()
        .map(|&v| candidate_area(design, spec, v, model))
        .collect();
    let min = areas
        .iter()
        .flatten()
        .copied()
        .fold(f64::INFINITY, f64::min);
    // A non-positive minimum means the area model degenerated (e.g. a
    // design with no PCU work at all prices every candidate to zero);
    // "overhead over the minimum" is undefined there, so every point
    // reports invalid rather than a fabricated 0.0. An infinite minimum
    // (no valid candidate) leaves every area `None` already.
    let degenerate = min <= 0.0;
    let points = spec
        .values
        .iter()
        .zip(&areas)
        .map(|(&value, a)| SweepPoint {
            value,
            overhead: a.and_then(|x| (!degenerate).then(|| x / min - 1.0)),
        })
        .collect();
    SweepRow {
        app: name.to_string(),
        points,
    }
}

/// Runs a Figure 7 sweep over a set of benchmarks, fanning the
/// per-benchmark work out over a pool of worker threads (one per
/// available core, at most one per app). Workers claim apps from a
/// shared counter and store rows by index, so each row is independent
/// (per-app partitioning against a shared read-only area model) and the
/// result is element-for-element identical to [`sweep_serial`] — only
/// the wall-clock differs.
pub fn sweep(
    apps: &[(String, VirtualDesign)],
    spec: &SweepSpec,
    model: &AreaModel,
) -> Vec<SweepRow> {
    let workers = std::thread::available_parallelism().map_or(1, |n| n.get());
    sweep_with_workers(apps, spec, model, workers)
}

/// [`sweep`] with an explicit worker count (1 runs the serial loop on the
/// calling thread).
pub fn sweep_with_workers(
    apps: &[(String, VirtualDesign)],
    spec: &SweepSpec,
    model: &AreaModel,
    workers: usize,
) -> Vec<SweepRow> {
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;
    let workers = workers.min(apps.len());
    if workers <= 1 {
        return sweep_serial(apps, spec, model);
    }
    let next = AtomicUsize::new(0);
    let rows: Mutex<Vec<Option<SweepRow>>> = Mutex::new((0..apps.len()).map(|_| None).collect());
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some((name, design)) = apps.get(i) else {
                    return;
                };
                let row = sweep_app(name, design, spec, model);
                rows.lock().unwrap()[i] = Some(row);
            });
        }
    });
    rows.into_inner()
        .unwrap()
        .into_iter()
        .map(|r| r.expect("every index was claimed by a worker"))
        .collect()
}

/// The serial reference implementation of [`sweep`]: same rows, one app at
/// a time. Kept callable so benchmarks can measure the parallel speedup
/// and tests can cross-check equality.
pub fn sweep_serial(
    apps: &[(String, VirtualDesign)],
    spec: &SweepSpec,
    model: &AreaModel,
) -> Vec<SweepRow> {
    apps.iter()
        .map(|(name, design)| sweep_app(name, design, spec, model))
        .collect()
}

/// Average overhead across benchmarks at each value (the "Average" row of
/// Figure 7); invalid points are excluded from the average. Rows of
/// different lengths (ragged input) are handled defensively: each column
/// averages whichever rows reach it, and the column's value is taken from
/// the first row that has it.
pub fn average_row(rows: &[SweepRow]) -> Vec<SweepPoint> {
    let n_vals = rows.iter().map(|r| r.points.len()).max().unwrap_or(0);
    (0..n_vals)
        .map(|i| {
            let vals: Vec<f64> = rows
                .iter()
                .filter_map(|r| r.points.get(i).and_then(|p| p.overhead))
                .collect();
            let value = rows
                .iter()
                .find_map(|r| r.points.get(i).map(|p| p.value))
                .expect("some row has index i, since i < the max row length");
            SweepPoint {
                value,
                overhead: if vals.is_empty() {
                    None
                } else {
                    Some(vals.iter().sum::<f64>() / vals.len() as f64)
                },
            }
        })
        .collect()
}

/// Multi-objective value of one full-chip design point, as scored by the
/// `dse search` autotuner: performance and perf-per-watt are maximized,
/// area is minimized.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Objectives {
    /// Workload-mix performance (geometric-mean throughput, runs/s);
    /// higher is better.
    pub perf: f64,
    /// Chip area in mm²; lower is better.
    pub area_mm2: f64,
    /// Performance per watt (geometric mean of per-workload
    /// throughput/power); higher is better.
    pub perf_per_w: f64,
}

impl Objectives {
    /// All three objectives are finite numbers (a prerequisite for a
    /// meaningful dominance comparison).
    pub fn is_finite(&self) -> bool {
        self.perf.is_finite() && self.area_mm2.is_finite() && self.perf_per_w.is_finite()
    }

    /// Strict Pareto dominance: at least as good on every objective and
    /// strictly better on at least one. Points with identical objectives
    /// do not dominate each other — both stay on the frontier.
    pub fn dominates(&self, o: &Objectives) -> bool {
        let ge =
            self.perf >= o.perf && self.area_mm2 <= o.area_mm2 && self.perf_per_w >= o.perf_per_w;
        let gt = self.perf > o.perf || self.area_mm2 < o.area_mm2 || self.perf_per_w > o.perf_per_w;
        ge && gt
    }
}

/// One design point held by a [`ParetoFrontier`].
#[derive(Debug, Clone, PartialEq)]
pub struct FrontierPoint {
    /// Stable identifier (the search uses the point label).
    pub id: String,
    /// Its objective values.
    pub obj: Objectives,
}

/// An incrementally-pruned Pareto frontier.
///
/// [`insert`](Self::insert) rejects a dominated candidate and evicts
/// every resident the candidate dominates, so the set always holds
/// exactly the non-dominated points seen so far. Because strict
/// dominance is a partial order, the final set is the same for every
/// insertion order — the parallel search driver relies on this to be
/// deterministic across worker counts. Survivors keep insertion order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ParetoFrontier {
    entries: Vec<FrontierPoint>,
}

impl ParetoFrontier {
    /// An empty frontier.
    pub fn new() -> ParetoFrontier {
        ParetoFrontier::default()
    }

    /// Offers a candidate. Returns `true` if it joined the frontier,
    /// `false` if an existing point dominates it (or its objectives are
    /// not finite — NaN would poison every later comparison).
    pub fn insert(&mut self, p: FrontierPoint) -> bool {
        if !p.obj.is_finite() {
            return false;
        }
        if self.entries.iter().any(|e| e.obj.dominates(&p.obj)) {
            return false;
        }
        self.entries.retain(|e| !p.obj.dominates(&e.obj));
        self.entries.push(p);
        true
    }

    /// The non-dominated points, in insertion order of the survivors.
    pub fn entries(&self) -> &[FrontierPoint] {
        &self.entries
    }

    /// Number of points on the frontier.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the frontier is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Table 6: estimated successive and cumulative area overheads of
/// generalizing ASIC designs into the Plasticine fabric.
#[derive(Debug, Clone, PartialEq)]
pub struct OverheadRow {
    /// Benchmark name.
    pub app: String,
    /// a. Reconfigurable heterogeneous units vs ASIC.
    pub a: f64,
    /// b. Homogeneous PMUs (successive).
    pub b: f64,
    /// c. Homogeneous PCUs (successive).
    pub c: f64,
    /// d. PMUs generalized across applications (successive).
    pub d: f64,
    /// e. PCUs generalized across applications (successive).
    pub e: f64,
}

impl OverheadRow {
    /// Cumulative overhead after each column.
    pub fn cumulative(&self) -> [f64; 5] {
        [
            self.a,
            self.a * self.b,
            self.a * self.b * self.c,
            self.a * self.b * self.c * self.d,
            self.a * self.b * self.c * self.d * self.e,
        ]
    }
}

/// ASIC discount factors: reconfigurable components pay for operand muxing,
/// opcode storage, and configurable banking that a fixed-function design
/// omits.
const ASIC_FU_DISCOUNT: f64 = 2.2;
const ASIC_SRAM_DISCOUNT: f64 = 1.25;
const ASIC_AG_DISCOUNT: f64 = 2.0;

fn pmu_params_for_kb(kb: usize, m: &VirtualPmuLike) -> PmuParams {
    PmuParams {
        stages: m.stages.max(1),
        regs_per_stage: 6,
        scalar_ins: 4,
        scalar_outs: 0,
        vector_ins: 3,
        vector_outs: 1,
        banks: 16,
        bank_kb: kb.div_ceil(16).max(1),
        fifo_depth: 16,
        counters: 2,
    }
}

struct VirtualPmuLike {
    kb: usize,
    stages: usize,
    copies: usize,
}

/// Computes the Table 6 overhead chain for one benchmark.
pub fn overheads(design: &VirtualDesign, model: &AreaModel) -> OverheadRow {
    let k = &model.k;
    let paper_pcu = PcuParams::paper_final();
    let paper_pmu = PmuParams::paper_final();

    let pmus: Vec<VirtualPmuLike> = design
        .pmus
        .iter()
        .map(|m| VirtualPmuLike {
            kb: (m.required_words() * 4).div_ceil(1024).max(1),
            stages: m.write_addr_ops.max(m.read_addr_ops).max(1),
            copies: m.copies,
        })
        .collect();

    // ---- ASIC baseline: exact compute + exact memory, no config logic ----
    let mut asic = 0.0;
    for u in &design.pcus {
        let per_lane_ops = u.ops.len() as f64 + u.reduction_stages() as f64;
        asic += u.copies as f64
            * (per_lane_ops * u.lanes as f64 * k.fu / ASIC_FU_DISCOUNT
                + per_lane_ops * u.lanes as f64 * 2.0 * k.reg);
    }
    for m in &pmus {
        asic += m.copies as f64 * (m.kb as f64 * k.sram_per_kb / ASIC_SRAM_DISCOUNT);
    }
    for a in &design.ags {
        asic += a.copies as f64 * k.ag / ASIC_AG_DISCOUNT;
    }
    let asic = asic.max(1e-6);

    // ---- a. heterogeneous reconfigurable units (exact per-unit sizing) ----
    let hetero_pcus: f64 = design
        .pcus
        .iter()
        .map(|u| {
            let chunks = partition(u, &unrestricted()).unwrap_or_default();
            let stages: usize = chunks.iter().map(|c| c.stages).sum();
            let p = PcuParams {
                lanes: u.lanes.max(1),
                stages: stages.max(1),
                regs_per_stage: chunks.iter().map(|c| c.max_live).max().unwrap_or(1).max(1),
                scalar_ins: u.scal_ins.max(1),
                scalar_outs: u.scal_outs,
                vector_ins: u.vec_ins.max(1),
                vector_outs: u.vec_outs.max(1),
                fifo_depth: 16,
                counters: 4,
            };
            u.copies as f64 * model.pcu(&p).total()
        })
        .sum();
    let hetero_pmus: f64 = pmus
        .iter()
        .map(|m| m.copies as f64 * model.pmu(&pmu_params_for_kb(m.kb, m)).total())
        .sum();
    let ags_area: f64 = design.ags.iter().map(|a| a.copies as f64 * k.ag).sum();
    let cum_a = hetero_pcus + hetero_pmus + ags_area;

    // ---- b. homogeneous PMUs within the benchmark (sized to the max) ----
    let max_kb = pmus.iter().map(|m| m.kb).max().unwrap_or(1);
    let max_stages = pmus.iter().map(|m| m.stages).max().unwrap_or(1);
    let homog_pmu = model
        .pmu(&pmu_params_for_kb(
            max_kb,
            &VirtualPmuLike {
                kb: max_kb,
                stages: max_stages,
                copies: 1,
            },
        ))
        .total();
    let n_pmu_units: f64 = pmus.iter().map(|m| m.copies as f64).sum();
    let cum_b = hetero_pcus + homog_pmu * n_pmu_units + ags_area;

    // ---- c. homogeneous PCUs within the benchmark ----
    // Search the best uniform stage count; registers and IO are sized to
    // the benchmark's maxima; lanes are uniform at the widest pipe (narrow
    // sequential pipes now waste lanes — the paper's PageRank effect).
    let uni_lanes = design.pcus.iter().map(|u| u.lanes).max().unwrap_or(16);
    let mut best_c = f64::INFINITY;
    for stages in 2..=16usize {
        let mut feas = unrestricted();
        feas.stages = stages;
        let mut n = 0usize;
        let mut chunks_all: Vec<ChunkStats> = Vec::new();
        let mut ok = true;
        for u in &design.pcus {
            match partition(u, &feas) {
                Ok(ch) => {
                    n += ch.len() * u.copies;
                    chunks_all.extend(ch);
                }
                Err(_) => {
                    ok = false;
                    break;
                }
            }
        }
        if !ok || n == 0 {
            continue;
        }
        let p = PcuParams {
            lanes: uni_lanes,
            stages,
            regs_per_stage: chunks_all
                .iter()
                .map(|c| c.max_live)
                .max()
                .unwrap_or(1)
                .max(1),
            scalar_ins: chunks_all
                .iter()
                .map(|c| c.scal_ins)
                .max()
                .unwrap_or(1)
                .max(1),
            scalar_outs: chunks_all.iter().map(|c| c.scal_outs).max().unwrap_or(0),
            vector_ins: chunks_all
                .iter()
                .map(|c| c.vec_ins)
                .max()
                .unwrap_or(1)
                .max(1),
            vector_outs: chunks_all
                .iter()
                .map(|c| c.vec_outs)
                .max()
                .unwrap_or(1)
                .max(1),
            fifo_depth: 16,
            counters: 4,
        };
        best_c = best_c.min(n as f64 * model.pcu(&p).total());
    }
    if !best_c.is_finite() {
        best_c = hetero_pcus;
    }
    let cum_c = best_c + homog_pmu * n_pmu_units + ags_area;

    // ---- d. PMUs generalized across applications (paper-final 256 KiB) ----
    let paper_pmu_area = model.pmu(&paper_pmu).total();
    let pmu_units_d: f64 = pmus
        .iter()
        .map(|m| (m.copies * m.kb.div_ceil(paper_pmu.banks * paper_pmu.bank_kb).max(1)) as f64)
        .sum();
    let cum_d = best_c + paper_pmu_area * pmu_units_d + ags_area;

    // ---- e. PCUs generalized across applications (paper-final params) ----
    let mut n_e = 0usize;
    for u in &design.pcus {
        let mut u = u.clone();
        if u.lanes > paper_pcu.lanes {
            u.copies *= u.lanes.div_ceil(paper_pcu.lanes);
            u.lanes = paper_pcu.lanes;
        }
        if let Ok(ch) = partition(&u, &paper_pcu) {
            n_e += ch.len() * u.copies;
        }
    }
    let cum_e =
        n_e as f64 * model.pcu(&paper_pcu).total() + paper_pmu_area * pmu_units_d + ags_area;

    let a = cum_a / asic;
    OverheadRow {
        app: String::new(),
        a,
        b: cum_b / cum_a,
        c: cum_c / cum_b,
        d: cum_d / cum_c,
        e: cum_e / cum_d,
    }
}

/// Table 6 for a benchmark suite, with the geometric-mean row appended.
pub fn table6(apps: &[(String, VirtualDesign)], model: &AreaModel) -> Vec<OverheadRow> {
    let mut rows: Vec<OverheadRow> = apps
        .iter()
        .map(|(name, d)| {
            let mut r = overheads(d, model);
            r.app = name.clone();
            r
        })
        .collect();
    if !rows.is_empty() {
        let n = rows.len() as f64;
        let gm = |f: fn(&OverheadRow) -> f64| {
            (rows.iter().map(|r| f(r).max(1e-12).ln()).sum::<f64>() / n).exp()
        };
        rows.push(OverheadRow {
            app: "GeoMean".into(),
            a: gm(|r| r.a),
            b: gm(|r| r.b),
            c: gm(|r| r.c),
            d: gm(|r| r.d),
            e: gm(|r| r.e),
        });
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use plasticine_compiler::{VOp, VSrc, VirtualAg, VirtualPcu, VirtualPmu};
    use plasticine_ppir::{BankingMode, CtrlId, SramId};

    fn chain_design(n_ops: usize, words: usize) -> VirtualDesign {
        let ops = (0..n_ops)
            .map(|i| VOp {
                srcs: if i == 0 {
                    vec![VSrc::VecIn(0)]
                } else {
                    vec![VSrc::Op(i - 1)]
                },
                heavy: false,
            })
            .collect::<Vec<_>>();
        VirtualDesign {
            pcus: vec![VirtualPcu {
                name: "p".into(),
                ctrl: CtrlId(1),
                outputs: vec![VSrc::Op(n_ops - 1)],
                ops,
                vec_ins: 1,
                scal_ins: 0,
                vec_outs: 1,
                scal_outs: 0,
                reduction_lanes: 0,
                lanes: 16,
                copies: 1,
            }],
            pmus: vec![VirtualPmu {
                sram: SramId(0),
                words,
                nbuf: 1,
                banking: BankingMode::Strided,
                write_addr_ops: 1,
                read_addr_ops: 1,
                copies: 1,
            }],
            ags: vec![VirtualAg {
                ctrl: CtrlId(2),
                sparse: false,
                store: false,
                addr_ops: 2,
                copies: 1,
            }],
            outers: vec![CtrlId(0)],
        }
    }

    #[test]
    fn stage_sweep_minimum_at_even_divisor() {
        let apps = vec![("chain12".to_string(), chain_design(12, 4096))];
        let spec = SweepSpec {
            target: PcuParamKind::Stages,
            values: (4..=16).collect(),
            fixed: vec![],
        };
        let rows = sweep(&apps, &spec, &AreaModel::new());
        let pts = &rows[0].points;
        // All points valid for a plain chain.
        assert!(pts.iter().all(|p| p.overhead.is_some()));
        // 12 ops divide evenly at 4, 6, 12: those should be no worse than 5.
        let get = |v: usize| pts.iter().find(|p| p.value == v).unwrap().overhead.unwrap();
        assert!(get(6) <= get(5) + 1e-9);
        assert!(get(12) <= get(11) + 1e-9);
        // The minimum has zero overhead by construction.
        let min = pts
            .iter()
            .filter_map(|p| p.overhead)
            .fold(f64::INFINITY, f64::min);
        assert!(min.abs() < 1e-12);
    }

    #[test]
    fn fold_marks_small_stage_counts_invalid() {
        let mut d = chain_design(2, 1024);
        d.pcus[0].reduction_lanes = 16;
        d.pcus[0].scal_outs = 1;
        let apps = vec![("fold".to_string(), d)];
        let spec = SweepSpec {
            target: PcuParamKind::Stages,
            values: (4..=8).collect(),
            fixed: vec![],
        };
        let rows = sweep(&apps, &spec, &AreaModel::new());
        let pts = &rows[0].points;
        // 16-lane reduction needs 5 stages: 4 is ×.
        assert!(pts[0].overhead.is_none(), "stages=4 must be invalid");
        assert!(pts[1].overhead.is_some(), "stages=5 must be valid");
    }

    #[test]
    fn overhead_chain_is_ordered_and_positive() {
        let d = chain_design(20, 16384);
        let r = overheads(&d, &AreaModel::new());
        assert!(
            r.a > 1.0,
            "reconfigurable units cost more than ASIC: {}",
            r.a
        );
        assert!(r.b >= 1.0 - 1e-9);
        assert!(r.c >= 1.0 - 1e-9);
        assert!(r.d >= 1.0 - 1e-9);
        let cum = r.cumulative();
        assert!(cum[4] >= cum[0] - 1e-9);
    }

    #[test]
    fn geomean_row_is_appended() {
        let apps = vec![
            ("a".to_string(), chain_design(8, 2048)),
            ("b".to_string(), chain_design(30, 65536)),
        ];
        let rows = table6(&apps, &AreaModel::new());
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[2].app, "GeoMean");
        let gm = (rows[0].a * rows[1].a).sqrt();
        assert!((rows[2].a - gm).abs() < 1e-9);
    }

    #[test]
    fn parallel_sweep_matches_serial() {
        let mut fold = chain_design(3, 2048);
        fold.pcus[0].reduction_lanes = 16;
        fold.pcus[0].scal_outs = 1;
        let apps = vec![
            ("a".to_string(), chain_design(8, 2048)),
            ("fold".to_string(), fold),
            ("c".to_string(), chain_design(30, 65536)),
        ];
        let spec = SweepSpec {
            target: PcuParamKind::Stages,
            values: (4..=12).collect(),
            fixed: vec![],
        };
        let model = AreaModel::new();
        // Force the threaded pool even on single-core machines (where
        // `sweep` would fall back to the serial loop).
        let par = sweep_with_workers(&apps, &spec, &model, 2);
        let ser = sweep_serial(&apps, &spec, &model);
        assert_eq!(par.len(), ser.len());
        for (p, s) in par.iter().zip(&ser) {
            assert_eq!(p.app, s.app);
            assert_eq!(p.points.len(), s.points.len());
            for (pp, sp) in p.points.iter().zip(&s.points) {
                assert_eq!(pp.value, sp.value);
                assert_eq!(pp.overhead, sp.overhead, "row {} value {}", p.app, pp.value);
            }
        }
    }

    #[test]
    fn degenerate_zero_minimum_marks_every_point_invalid() {
        // A design whose PCU list prices to zero area (no PCUs at all)
        // yields `min == 0.0`; "overhead over the minimum" is undefined,
        // so the row must be all-invalid rather than all-zero (the
        // pre-fix behavior silently reported a perfect 0.0 overhead for
        // every candidate).
        let mut d = chain_design(4, 2048);
        d.pcus.clear();
        let apps = vec![("nopcu".to_string(), d)];
        let spec = SweepSpec {
            target: PcuParamKind::Stages,
            values: (4..=8).collect(),
            fixed: vec![],
        };
        let rows = sweep(&apps, &spec, &AreaModel::new());
        assert!(
            rows[0].points.iter().all(|p| p.overhead.is_none()),
            "degenerate minimum must invalidate the whole row: {:?}",
            rows[0].points
        );
    }

    #[test]
    fn average_row_handles_ragged_rows() {
        // Rows of unequal lengths (e.g. assembled from different sweep
        // specs) must average defensively instead of indexing past the
        // short row's end (the pre-fix behavior panicked).
        let rows = vec![
            SweepRow {
                app: "short".into(),
                points: vec![SweepPoint {
                    value: 4,
                    overhead: Some(1.0),
                }],
            },
            SweepRow {
                app: "long".into(),
                points: vec![
                    SweepPoint {
                        value: 4,
                        overhead: Some(3.0),
                    },
                    SweepPoint {
                        value: 5,
                        overhead: Some(0.5),
                    },
                    SweepPoint {
                        value: 6,
                        overhead: None,
                    },
                ],
            },
        ];
        let avg = average_row(&rows);
        assert_eq!(avg.len(), 3);
        assert_eq!(avg[0].value, 4);
        assert_eq!(avg[0].overhead, Some(2.0));
        // Only the long row reaches columns 1 and 2.
        assert_eq!(avg[1].value, 5);
        assert_eq!(avg[1].overhead, Some(0.5));
        assert_eq!(avg[2].value, 6);
        assert_eq!(avg[2].overhead, None);
        assert!(average_row(&[]).is_empty());
    }

    fn fp(id: &str, perf: f64, area: f64, ppw: f64) -> FrontierPoint {
        FrontierPoint {
            id: id.into(),
            obj: Objectives {
                perf,
                area_mm2: area,
                perf_per_w: ppw,
            },
        }
    }

    #[test]
    fn frontier_prunes_dominated_points_incrementally() {
        let mut f = ParetoFrontier::new();
        assert!(f.insert(fp("mid", 10.0, 100.0, 1.0)));
        // Dominated on every axis: rejected.
        assert!(!f.insert(fp("worse", 5.0, 150.0, 0.5)));
        // Dominates the resident: evicts it.
        assert!(f.insert(fp("better", 20.0, 80.0, 2.0)));
        assert_eq!(f.len(), 1);
        assert_eq!(f.entries()[0].id, "better");
        // Incomparable (smaller but slower): joins.
        assert!(f.insert(fp("small", 1.0, 10.0, 1.5)));
        assert_eq!(f.len(), 2);
        // Equal objectives under a different id: neither dominates.
        assert!(f.insert(fp("twin", 1.0, 10.0, 1.5)));
        assert_eq!(f.len(), 3);
        // NaN never joins.
        assert!(!f.insert(fp("nan", f64::NAN, 10.0, 1.0)));
    }

    #[test]
    fn frontier_is_insertion_order_independent() {
        let pts = [
            fp("a", 10.0, 100.0, 1.0),
            fp("b", 20.0, 120.0, 0.8),
            fp("c", 5.0, 50.0, 1.2),
            fp("d", 20.0, 90.0, 1.0), // dominates a and b
            fp("e", 4.0, 60.0, 1.1),  // dominated by c
            fp("f", 20.0, 90.0, 1.0), // twin of d
        ];
        // All 720 permutations of 6 points end on the same set.
        let mut perms: Vec<Vec<usize>> = Vec::new();
        fn permute(cur: &mut Vec<usize>, rest: &mut Vec<usize>, out: &mut Vec<Vec<usize>>) {
            if rest.is_empty() {
                out.push(cur.clone());
                return;
            }
            for i in 0..rest.len() {
                let x = rest.remove(i);
                cur.push(x);
                permute(cur, rest, out);
                cur.pop();
                rest.insert(i, x);
            }
        }
        permute(&mut Vec::new(), &mut (0..pts.len()).collect(), &mut perms);
        let mut want: Option<Vec<String>> = None;
        for perm in perms {
            let mut f = ParetoFrontier::new();
            for &i in &perm {
                f.insert(pts[i].clone());
            }
            let mut ids: Vec<String> = f.entries().iter().map(|e| e.id.clone()).collect();
            ids.sort();
            match &want {
                None => want = Some(ids),
                Some(w) => assert_eq!(&ids, w, "order {perm:?} diverged"),
            }
        }
        assert_eq!(want.unwrap(), ["c", "d", "f"]);
    }

    #[test]
    fn average_row_skips_invalid_points() {
        let mut d = chain_design(2, 1024);
        d.pcus[0].reduction_lanes = 16;
        d.pcus[0].scal_outs = 1;
        let apps = vec![
            ("fold".to_string(), d),
            ("chain".to_string(), chain_design(6, 1024)),
        ];
        let spec = SweepSpec {
            target: PcuParamKind::Stages,
            values: (4..=8).collect(),
            fixed: vec![],
        };
        let rows = sweep(&apps, &spec, &AreaModel::new());
        let avg = average_row(&rows);
        // stages=4: only the chain contributes, but an average still exists.
        assert!(avg[0].overhead.is_some());
    }
}
