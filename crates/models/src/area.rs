//! 28 nm area model, calibrated to the paper's published synthesis results
//! (Table 5).
//!
//! We cannot re-run Synopsys Design Compiler, but the paper publishes a
//! complete component-level breakdown of the final chip: per-PCU areas of
//! FUs / pipeline registers / FIFOs / control, per-PMU areas of scratchpad /
//! FIFOs / registers / FUs / control, plus interconnect and memory
//! controller totals. This module inverts that breakdown into per-component
//! unit areas and rebuilds parameterized area functions, so that (a) the
//! Table 5 totals are reproduced exactly at the paper's parameters and
//! (b) the design-space exploration of §3.7 can price arbitrary parameter
//! choices.

use plasticine_arch::{PcuParams, PlasticineParams, PmuParams};

/// Unit areas in mm² (28 nm), inverted from Table 5.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AreaConstants {
    /// One 32-bit floating-point-capable reconfigurable FU.
    pub fu: f64,
    /// One 32-bit pipeline register.
    pub reg: f64,
    /// One 32-bit word-slot of PCU input FIFO.
    pub pcu_fifo_word: f64,
    /// PCU control box (counters, state machines, LUTs).
    pub pcu_control: f64,
    /// Output crossbar per output bus per lane.
    pub pcu_xbar_per_bus_lane: f64,
    /// Scratchpad SRAM per KiB (includes banking decoders).
    pub sram_per_kb: f64,
    /// One 32-bit word-slot of PMU input FIFO.
    pub pmu_fifo_word: f64,
    /// One PMU address-datapath register.
    pub pmu_reg: f64,
    /// One PMU scalar ALU stage.
    pub pmu_fu: f64,
    /// PMU control box.
    pub pmu_control: f64,
    /// One switch (all three networks).
    pub switch: f64,
    /// One address generator.
    pub ag: f64,
    /// One coalescing unit (buffers + coalescing cache + arbitration).
    pub coalescing_unit: f64,
}

impl Default for AreaConstants {
    fn default() -> AreaConstants {
        // Inversion of Table 5 at the paper-final parameters:
        //   PCU: FUs 0.622 over 16 lanes × 6 stages;
        //        registers 0.144 over 16 × 6 × 6;
        //        FIFOs 0.082 over (3 vec-in × 16 lanes + 6 scal-in) × 16 deep;
        //        control 0.001; crossbar folded into the FIFO/control resid.
        //   PMU: scratchpad 0.477 over 256 KiB; FIFOs 0.024 over
        //        (3 × 16 + 4) × 16 slots; registers 0.023 over 4 × 6;
        //        FUs 0.007 over 4 stages; control 0.001.
        //   Interconnect 18.796 over 17 × 9 switches;
        //   Memory controller 5.616 over 4 CUs + 34 AGs.
        AreaConstants {
            fu: 0.622 / 96.0,
            reg: 0.144 / 576.0,
            pcu_fifo_word: 0.082 / ((3.0 * 16.0 + 6.0) * 16.0),
            pcu_control: 0.001,
            pcu_xbar_per_bus_lane: 0.0,
            sram_per_kb: 0.477 / 256.0,
            pmu_fifo_word: 0.024 / ((3.0 * 16.0 + 4.0) * 16.0),
            pmu_reg: 0.023 / 24.0,
            pmu_fu: 0.007 / 4.0,
            pmu_control: 0.001,
            switch: 18.796 / 153.0,
            ag: 0.08,
            coalescing_unit: (5.616 - 34.0 * 0.08) / 4.0,
        }
    }
}

/// Per-component breakdown of one PCU.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PcuArea {
    /// Functional units.
    pub fus: f64,
    /// Pipeline registers.
    pub registers: f64,
    /// Input FIFOs.
    pub fifos: f64,
    /// Control box.
    pub control: f64,
}

impl PcuArea {
    /// Total mm².
    pub fn total(&self) -> f64 {
        self.fus + self.registers + self.fifos + self.control
    }
}

/// Per-component breakdown of one PMU.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PmuArea {
    /// Banked scratchpad SRAM.
    pub scratchpad: f64,
    /// Input FIFOs.
    pub fifos: f64,
    /// Address-datapath registers.
    pub registers: f64,
    /// Address-datapath ALUs.
    pub fus: f64,
    /// Control box.
    pub control: f64,
}

impl PmuArea {
    /// Total mm².
    pub fn total(&self) -> f64 {
        self.scratchpad + self.fifos + self.registers + self.fus + self.control
    }
}

/// Chip-level breakdown (Table 5's rows).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ChipArea {
    /// One PCU.
    pub pcu: PcuArea,
    /// One PMU.
    pub pmu: PmuArea,
    /// All PCUs.
    pub pcus_total: f64,
    /// All PMUs.
    pub pmus_total: f64,
    /// Interconnect (all switches).
    pub interconnect: f64,
    /// Memory controller (coalescing units + AGs).
    pub memory_controller: f64,
    /// Whole chip.
    pub total: f64,
}

/// The area model.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct AreaModel {
    /// Unit areas.
    pub k: AreaConstants,
}

impl AreaModel {
    /// Model with default (paper-calibrated) constants.
    pub fn new() -> AreaModel {
        AreaModel::default()
    }

    /// Area of one PCU with the given parameters.
    pub fn pcu(&self, p: &PcuParams) -> PcuArea {
        let lanes = p.lanes as f64;
        let stages = p.stages as f64;
        let fifo_slots = (p.vector_ins as f64 * lanes + p.scalar_ins as f64) * p.fifo_depth as f64;
        PcuArea {
            fus: self.k.fu * lanes * stages,
            registers: self.k.reg * lanes * stages * p.regs_per_stage as f64,
            fifos: self.k.pcu_fifo_word * fifo_slots
                + self.k.pcu_xbar_per_bus_lane
                    * (p.vector_outs as f64 * lanes + p.scalar_outs as f64),
            control: self.k.pcu_control,
        }
    }

    /// Area of one PMU with the given parameters.
    pub fn pmu(&self, m: &PmuParams) -> PmuArea {
        let kb = (m.banks * m.bank_kb) as f64;
        let fifo_slots = (m.vector_ins as f64 * 16.0 + m.scalar_ins as f64) * m.fifo_depth as f64;
        PmuArea {
            scratchpad: self.k.sram_per_kb * kb,
            fifos: self.k.pmu_fifo_word * fifo_slots,
            registers: self.k.pmu_reg * (m.stages * m.regs_per_stage) as f64,
            fus: self.k.pmu_fu * m.stages as f64,
            control: self.k.pmu_control,
        }
    }

    /// Full chip breakdown — regenerates Table 5 for arbitrary parameters.
    pub fn chip(&self, params: &PlasticineParams) -> ChipArea {
        let pcu = self.pcu(&params.pcu);
        let pmu = self.pmu(&params.pmu);
        let switches = ((params.cols + 1) * (params.rows + 1)) as f64;
        let pcus_total = pcu.total() * params.num_pcus() as f64;
        let pmus_total = pmu.total() * params.num_pmus() as f64;
        let interconnect = self.k.switch * switches;
        let memory_controller =
            self.k.ag * params.ags as f64 + self.k.coalescing_unit * params.coalescing_units as f64;
        ChipArea {
            pcu,
            pmu,
            pcus_total,
            pmus_total,
            interconnect,
            memory_controller,
            total: pcus_total + pmus_total + interconnect + memory_controller,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_final_pcu_matches_table5() {
        let m = AreaModel::new();
        let a = m.pcu(&PcuParams::paper_final());
        assert!((a.fus - 0.622).abs() < 1e-9, "fus {}", a.fus);
        assert!((a.registers - 0.144).abs() < 1e-9);
        assert!((a.fifos - 0.082).abs() < 1e-9);
        assert!((a.total() - 0.849).abs() < 1e-3, "total {}", a.total());
    }

    #[test]
    fn paper_final_pmu_matches_table5() {
        let m = AreaModel::new();
        let a = m.pmu(&PmuParams::paper_final());
        assert!((a.scratchpad - 0.477).abs() < 1e-9);
        assert!((a.fifos - 0.024).abs() < 1e-9);
        assert!((a.registers - 0.023).abs() < 1e-9);
        assert!((a.fus - 0.007).abs() < 1e-9);
        assert!((a.total() - 0.532).abs() < 1e-3);
    }

    #[test]
    fn paper_final_chip_is_113_mm2() {
        let m = AreaModel::new();
        let c = m.chip(&PlasticineParams::paper_final());
        assert!((c.interconnect - 18.796).abs() < 1e-6);
        assert!((c.memory_controller - 5.616).abs() < 1e-6);
        // Paper: 112.77–112.8 mm².
        assert!((c.total - 112.8).abs() < 0.3, "total {}", c.total);
    }

    #[test]
    fn area_scales_with_parameters() {
        let m = AreaModel::new();
        let base = m.pcu(&PcuParams::paper_final());
        let mut wide = PcuParams::paper_final();
        wide.lanes = 32;
        let w = m.pcu(&wide);
        assert!(w.fus > 1.9 * base.fus);
        let mut deep = PcuParams::paper_final();
        deep.stages = 12;
        let d = m.pcu(&deep);
        assert!((d.fus / base.fus - 2.0).abs() < 1e-9);
    }

    #[test]
    fn scratchpad_dominates_pmu() {
        let m = AreaModel::new();
        let a = m.pmu(&PmuParams::paper_final());
        assert!(a.scratchpad / a.total() > 0.85);
    }
}
