//! Property-based tests for the area/power models and DSE.

use plasticine_arch::{
    DramAlloc, MachineConfig, PcuParams, PlasticineParams, PmuParams, ResourceUsage,
};
use plasticine_models::dse::{sweep, PcuParamKind, SweepSpec};
use plasticine_models::{AreaModel, PowerModel};
use plasticine_sim::{Activity, SimResult};
use proptest::prelude::*;

fn pcu_params() -> impl Strategy<Value = PcuParams> {
    (
        prop::sample::select(vec![4usize, 8, 16, 32]),
        1usize..=16,
        2usize..=16,
        1usize..=16,
        1usize..=6,
        1usize..=10,
        1usize..=6,
    )
        .prop_map(|(lanes, stages, regs, si, so, vi, vo)| PcuParams {
            lanes,
            stages,
            regs_per_stage: regs,
            scalar_ins: si,
            scalar_outs: so,
            vector_ins: vi,
            vector_outs: vo,
            fifo_depth: 16,
            counters: 4,
        })
}

fn cfg() -> MachineConfig {
    MachineConfig {
        params: PlasticineParams::paper_final(),
        program_name: "t".into(),
        units: vec![],
        links: vec![],
        alloc: DramAlloc::default(),
        usage: ResourceUsage::default(),
        partition: None,
    }
}

fn result(a: Activity, cycles: u64) -> SimResult {
    SimResult {
        cycles,
        activity: a,
        dram: plasticine_dram::DramStats::default(),
        coalesce: plasticine_dram::CoalesceStats::default(),
        units: plasticine_sim::UnitStats::default(),
        faults: plasticine_sim::FaultStats::default(),
        span_work: plasticine_sim::SpanWork::default(),
    }
}

proptest! {
    #[test]
    fn pcu_area_is_positive_and_monotone_in_stages(p in pcu_params()) {
        let m = AreaModel::new();
        let a = m.pcu(&p).total();
        prop_assert!(a > 0.0);
        let mut bigger = p;
        bigger.stages += 1;
        prop_assert!(m.pcu(&bigger).total() > a);
    }

    #[test]
    fn pcu_area_is_monotone_in_every_field(p in pcu_params()) {
        let m = AreaModel::new();
        let base = m.pcu(&p).total();
        for bump in 0..5 {
            let mut b = p;
            match bump {
                0 => b.regs_per_stage += 1,
                1 => b.scalar_ins += 1,
                2 => b.vector_ins += 1,
                3 => b.lanes *= 2,
                _ => b.fifo_depth += 8,
            }
            prop_assert!(m.pcu(&b).total() >= base, "bump {bump}");
        }
    }

    #[test]
    fn pmu_area_dominated_by_sram(bank_kb in 4usize..=64, banks in prop::sample::select(vec![4usize, 8, 16, 32])) {
        let m = AreaModel::new();
        let p = PmuParams { bank_kb, banks, ..PmuParams::paper_final() };
        let a = m.pmu(&p);
        prop_assert!(a.total() > 0.0);
        if bank_kb * banks >= 64 {
            prop_assert!(a.scratchpad / a.total() > 0.5);
        }
    }

    #[test]
    fn chip_area_scales_with_grid(cols in 4usize..24, rows in 2usize..12) {
        let m = AreaModel::new();
        let mut p = PlasticineParams::paper_final();
        p.cols = cols;
        p.rows = rows;
        let a = m.chip(&p);
        let mut p2 = p.clone();
        p2.cols += 2;
        let a2 = m.chip(&p2);
        prop_assert!(a2.total > a.total);
        prop_assert!((a.pcus_total - a.pcu.total() * p.num_pcus() as f64).abs() < 1e-9);
    }

    #[test]
    fn power_is_monotone_in_activity(fu in 0u64..10_000_000, sram in 0u64..10_000_000,
                                     cycles in 1_000u64..1_000_000) {
        let m = PowerModel::new();
        let c = cfg();
        let a = Activity {
            fu_ops: fu,
            sram_reads: sram,
            ..Default::default()
        };
        let p1 = m.estimate(&result(a, cycles), &c);
        let mut a2 = a;
        a2.fu_ops += 1_000;
        let p2 = m.estimate(&result(a2, cycles), &c);
        prop_assert!(p2.total_w >= p1.total_w);
        prop_assert!(p1.total_w >= p1.static_w);
        // Energy consistency: total power × time = energy.
        let seconds = cycles as f64 / 1e9;
        prop_assert!((p1.energy_mj - p1.total_w * seconds * 1e3).abs() < 1e-9);
    }

    #[test]
    fn power_stays_below_peak_for_sane_activity(cycles in 10_000u64..1_000_000) {
        let m = PowerModel::new();
        let c = cfg();
        // Full-throttle activity: every FU slot busy every cycle.
        let p = &c.params;
        let fus = (p.num_pcus() * p.pcu.lanes * p.pcu.stages) as u64;
        let a = Activity {
            fu_ops: fus * cycles,
            sram_reads: (p.num_pmus() * p.pmu.banks) as u64 * cycles,
            reg_traffic: fus * cycles,
            ..Default::default()
        };
        let est = m.estimate(&result(a, cycles), &c);
        let peak = m.peak_power(&c);
        prop_assert!(est.total_w <= peak * 1.35, "est {} peak {}", est.total_w, peak);
    }
}

#[test]
fn sweep_overheads_are_normalized() {
    // A small synthetic app: 10-op chain.
    use plasticine_compiler::{VOp, VSrc, VirtualDesign, VirtualPcu};
    use plasticine_ppir::CtrlId;
    let ops = (0..10)
        .map(|i| VOp {
            srcs: if i == 0 {
                vec![VSrc::VecIn(0)]
            } else {
                vec![VSrc::Op(i - 1)]
            },
            heavy: false,
        })
        .collect::<Vec<_>>();
    let design = VirtualDesign {
        pcus: vec![VirtualPcu {
            name: "p".into(),
            ctrl: CtrlId(0),
            outputs: vec![VSrc::Op(9)],
            ops,
            vec_ins: 1,
            scal_ins: 0,
            vec_outs: 1,
            scal_outs: 0,
            reduction_lanes: 0,
            lanes: 16,
            copies: 1,
        }],
        pmus: vec![],
        ags: vec![],
        outers: vec![],
    };
    let spec = SweepSpec {
        target: PcuParamKind::Stages,
        values: (4..=16).collect(),
        fixed: vec![],
    };
    let rows = sweep(&[("x".into(), design)], &spec, &AreaModel::new());
    let overheads: Vec<f64> = rows[0].points.iter().filter_map(|p| p.overhead).collect();
    assert!(!overheads.is_empty());
    let min = overheads.iter().copied().fold(f64::INFINITY, f64::min);
    assert!(min.abs() < 1e-12, "minimum must normalize to zero");
    assert!(overheads.iter().all(|&o| o >= -1e-12));
}
