//! End-to-end validation: every Table 4 benchmark must
//! (1) run on the reference interpreter and match its host golden,
//! (2) compile onto the paper-final Plasticine configuration,
//! (3) simulate cycle-accurately with the same functional results.

use plasticine_arch::PlasticineParams;
use plasticine_compiler::compile;
use plasticine_ppir::Machine;
use plasticine_sim::{simulate, SimOptions};
use plasticine_workloads::{all, Bench, Scale};

fn end_to_end(bench: &Bench) -> plasticine_sim::SimResult {
    let params = PlasticineParams::paper_final();
    let out = compile(&bench.program, &params)
        .unwrap_or_else(|e| panic!("{}: compile failed: {e}", bench.name));
    let mut m = Machine::new(&bench.program);
    bench.load(&mut m);
    let r = simulate(&bench.program, &out, &mut m, &SimOptions::default())
        .unwrap_or_else(|e| panic!("{}: simulation failed: {e}", bench.name));
    bench
        .verify(&m)
        .unwrap_or_else(|e| panic!("{}: verification failed: {e}", bench.name));
    assert!(r.cycles > 0, "{}: zero cycles", bench.name);
    r
}

#[test]
fn all_benchmarks_compile_simulate_and_verify() {
    for bench in all(Scale::tiny()) {
        let r = end_to_end(&bench);
        println!(
            "{:>14}: {:>9} cycles, {:>6} fu_ops, {} dram lines",
            bench.name,
            r.cycles,
            r.activity.fu_ops,
            r.dram.reads + r.dram.writes
        );
    }
}

#[test]
fn utilizations_are_sane_for_all_benchmarks() {
    let params = PlasticineParams::paper_final();
    for bench in all(Scale::tiny()) {
        let out = compile(&bench.program, &params).unwrap();
        let (pcu, pmu, ag) = out.config.utilization();
        assert!(pcu > 0.0 && pcu <= 1.0, "{}: pcu {pcu}", bench.name);
        assert!(pmu > 0.0 && pmu <= 1.0, "{}: pmu {pmu}", bench.name);
        assert!(ag <= 1.0, "{}: ag {ag}", bench.name);
    }
}

#[test]
fn sparse_apps_exercise_the_coalescing_units() {
    for name in ["PageRank", "BFS"] {
        let bench = all(Scale::tiny())
            .into_iter()
            .find(|b| b.name == name)
            .unwrap();
        let r = end_to_end(&bench);
        assert!(
            r.coalesce.elem_requests > 0,
            "{name}: no sparse element requests"
        );
        assert!(r.coalesce.line_requests > 0);
        assert!(
            r.coalesce.line_requests <= r.coalesce.elem_requests,
            "{name}: coalescing cannot amplify requests"
        );
    }
}

#[test]
fn scaling_up_increases_work_proportionally() {
    let b1 = plasticine_workloads::dense::inner_product(Scale(1));
    let b2 = plasticine_workloads::dense::inner_product(Scale(2));
    let r1 = end_to_end(&b1);
    let r2 = end_to_end(&b2);
    assert_eq!(r2.activity.fu_ops, 2 * r1.activity.fu_ops);
    assert!(r2.cycles > r1.cycles);
}
