//! Convolutional neural network layer: 3×3 convolutions over multi-channel
//! feature maps, with kernel weights held in a PMU and sliding-window reuse
//! captured by line-buffer banking (§4.5).

use crate::util::*;
use crate::{Bench, Scale};
use plasticine_fpga::AppProfile;
use plasticine_ppir::*;

/// One convolution layer: `out[co][y][x] = Σ_{ci,ky,kx}
/// w[co][ci][ky][kx] · in[ci][y+ky][x+kx]`.
pub fn cnn(scale: Scale) -> Bench {
    let cin = 8usize;
    let cout = 4 * scale.0.max(1);
    let (h, w) = (16usize, 16usize);
    let k = 3usize;
    let (oh, ow) = (h - k + 1, w - k + 1);
    let kk = k * k;

    let mut b = ProgramBuilder::new("CNN");
    let d_in = b.dram("in", DType::F32, cin * h * w);
    let d_w = b.dram("weights", DType::F32, cout * cin * kk);
    let d_out = b.dram("out", DType::F32, cout * oh * ow);
    let s_in = b.sram_banked("s_in", DType::F32, &[cin, h, w], BankingMode::LineBuffer);
    let s_w = b.sram("s_w", DType::F32, &[cout, cin * kk]);
    let s_out = b.sram("s_out", DType::F32, &[oh, ow]);

    let zero = const_func(&mut b, 0);
    let ld_in = load_1d(&mut b, "ld_in", d_in, zero, s_in, cin * h * w);
    let ld_w = load_1d(&mut b, "ld_w", d_w, zero, s_w, cout * cin * kk);

    // Output-channel loop.
    let cco = b.counter(0, cout as i64, 1, 4);
    let coi = cco.index;
    // Output pixel loops.
    let cy = b.counter(0, oh as i64, 1, 2);
    let cx = b.counter(0, ow as i64, 1, 2);
    let (yi, xi) = (cy.index, cx.index);
    // Flattened reduction over (ci, ky, kx).
    let cq = b.counter(0, (cin * kk) as i64, 1, 16);
    let qi = cq.index;

    let mut f = Func::new("mac");
    let co = f.index(coi);
    let y = f.index(yi);
    let x = f.index(xi);
    let q = f.index(qi);
    let kk_c = f.konst(Elem::I32(kk as i32));
    let k_c = f.konst(Elem::I32(k as i32));
    let ci = f.binary(BinOp::Div, q, kk_c);
    let rem = f.binary(BinOp::Rem, q, kk_c);
    let ky = f.binary(BinOp::Div, rem, k_c);
    let kx = f.binary(BinOp::Rem, rem, k_c);
    let iy = f.binary(BinOp::Add, y, ky);
    let ix = f.binary(BinOp::Add, x, kx);
    let wv = f.load(s_w, vec![co, q]);
    let inv = f.load(s_in, vec![ci, iy, ix]);
    let prod = f.binary(BinOp::Mul, wv, inv);
    f.set_outputs(vec![prod]);
    let f = b.func(f);
    let oaddr = coords_func(&mut b, &[yi, xi]);
    let conv = b.inner(
        "conv",
        vec![cq],
        InnerOp::Fold(FoldPipe {
            map: f,
            combine: vec![BinOp::Add],
            init: vec![FoldInit::Const(Elem::F32(0.0))],
            out_regs: vec![None],
            writes: vec![PipeWrite {
                sram: s_out,
                addr: oaddr,
                value_slot: 0,
                mode: WriteMode::Overwrite,
            }],
        }),
    );
    let yx = b.outer("yx", Schedule::Pipelined, vec![cy, cx], vec![conv]);
    let base_out = affine_func(&mut b, &[(coi, (oh * ow) as i64)], 0);
    let st_out = store_1d(&mut b, "st_out", d_out, base_out, s_out, oh * ow);
    let co_loop = b.outer("co", Schedule::Pipelined, vec![cco], vec![yx, st_out]);
    let root = b.outer(
        "root",
        Schedule::Sequential,
        vec![],
        vec![ld_in, ld_w, co_loop],
    );
    let program = b.finish(root).expect("cnn validates");

    // Data + golden (same q-ascending accumulation order).
    let input: Vec<Elem> = (0..cin * h * w)
        .map(|i| Elem::F32(hash_unit_f32(i as u64, 60) - 0.5))
        .collect();
    let weights: Vec<Elem> = (0..cout * cin * kk)
        .map(|i| Elem::F32(hash_unit_f32(i as u64, 61) - 0.5))
        .collect();
    let mut out = vec![Elem::F32(0.0); cout * oh * ow];
    for co in 0..cout {
        for y in 0..oh {
            for x in 0..ow {
                let mut acc = 0.0f32;
                for q in 0..cin * kk {
                    let ci = q / kk;
                    let rem = q % kk;
                    let (ky, kx) = (rem / k, rem % k);
                    let wv = weights[co * cin * kk + q].as_f32().unwrap();
                    let iv = input[ci * h * w + (y + ky) * w + (x + kx)]
                        .as_f32()
                        .unwrap();
                    acc += wv * iv;
                }
                out[co * oh * ow + y * ow + x] = Elem::F32(acc);
            }
        }
    }

    Bench {
        name: "CNN".into(),
        program,
        inputs: vec![(d_in, input), (d_w, weights)],
        expect_drams: vec![(d_out, out)],
        expect_regs: vec![],
        fpga: AppProfile {
            name: "CNN".into(),
            total_ops: (cout * oh * ow * cin * kk * 2) as f64,
            fp_muls: (cout * oh * ow * cin * kk) as f64,
            fp_adds: (cout * oh * ow * cin * kk) as f64,
            // MAC granularity: the DHDL-generated FPGA design unrolls the
            // (ci,ky,kx) reduction 16-wide; multi-ported line buffers cap
            // further unrolling (the paper's stated FPGA limiter).
            ops_per_elem: 2.0,
            dense_bytes: 4.0 * (cin * h * w + cout * cin * kk + cout * oh * ow) as f64,
            random_elems: 0.0,
            buffer_kb: ((cin * h * w + cin * kk + oh * ow) * 4 * 2) as f64 / 1024.0,
            app_parallelism: 16.0,
            sequential_frac: 0.0,
            serial_iters: 0.0,
            serial_cycles: 0.0,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cnn_functional() {
        cnn(Scale::tiny()).run_and_verify().unwrap();
    }
}
