//! Sparse benchmarks: SMDV, PageRank, and BFS (Table 4) — data-dependent
//! trip counts, on-chip gathers through duplicated scratchpads, and
//! off-chip gather/scatter through the coalescing units.

use crate::util::*;
use crate::{Bench, Scale};
use plasticine_fpga::AppProfile;
use plasticine_ppir::*;

/// CSR structure generated with the paper's sparsity (`E[NNZ/row] ≈ 60`
/// for SMDV, `E[edges] ≈ 8` for graphs).
struct Csr {
    ptr: Vec<i32>,
    idx: Vec<i32>,
}

fn gen_csr(rows: usize, cols: usize, avg: usize, spread: usize, seed: u64) -> Csr {
    let mut ptr = Vec::with_capacity(rows + 1);
    let mut idx = Vec::new();
    ptr.push(0);
    for r in 0..rows {
        let len = avg - spread / 2 + (hash_u64(r as u64, seed) % (spread as u64 + 1)) as usize;
        for j in 0..len {
            idx.push((hash_u64((r * 131 + j) as u64, seed + 1) % cols as u64) as i32);
        }
        ptr.push(idx.len() as i32);
    }
    Csr { ptr, idx }
}

/// Sparse matrix – dense vector multiply over CSR, with the dense vector
/// held in a *duplicated* scratchpad so every lane has a random-read port.
pub fn smdv(scale: Scale) -> Bench {
    let rows = 64 * scale.0;
    let cols = rows;
    let avg = 60usize;
    let csr = gen_csr(rows, cols, avg, 40, 70);
    let nnz = csr.idx.len();

    let mut b = ProgramBuilder::new("SMDV");
    let d_ptr = b.dram("ptr", DType::I32, rows + 1);
    let d_col = b.dram("col", DType::I32, nnz);
    let d_val = b.dram("val", DType::F32, nnz);
    let d_x = b.dram("x", DType::F32, cols);
    let d_y = b.dram("y", DType::F32, rows);
    let s_ptr = b.sram("s_ptr", DType::I32, &[rows + 1]);
    let s_col = b.sram("s_col", DType::I32, &[nnz]);
    let s_val = b.sram("s_val", DType::F32, &[nnz]);
    let s_x = b.sram_banked("s_x", DType::F32, &[cols], BankingMode::Duplication);
    let s_y = b.sram("s_y", DType::F32, &[rows]);
    let r_s = b.reg("row_start", DType::I32);
    let r_e = b.reg("row_end", DType::I32);

    let zero = const_func(&mut b, 0);
    let ld_ptr = load_1d(&mut b, "ld_ptr", d_ptr, zero, s_ptr, rows + 1);
    let ld_col = load_1d(&mut b, "ld_col", d_col, zero, s_col, nnz);
    let ld_val = load_1d(&mut b, "ld_val", d_val, zero, s_val, nnz);
    let ld_x = load_1d(&mut b, "ld_x", d_x, zero, s_x, cols);

    let cr = b.counter(0, rows as i64, 1, 4);
    let ri = cr.index;
    let mut sf = Func::new("row_start");
    let rv = sf.index(ri);
    let sp = sf.load(s_ptr, vec![rv]);
    sf.set_outputs(vec![sp]);
    let sf = b.func(sf);
    let set_s = b.inner(
        "set_s",
        vec![],
        InnerOp::RegWrite(RegWrite { reg: r_s, func: sf }),
    );
    let mut ef = Func::new("row_end");
    let rv = ef.index(ri);
    let one = ef.konst(Elem::I32(1));
    let r1 = ef.binary(BinOp::Add, rv, one);
    let ep = ef.load(s_ptr, vec![r1]);
    ef.set_outputs(vec![ep]);
    let ef = b.func(ef);
    let set_e = b.inner(
        "set_e",
        vec![],
        InnerOp::RegWrite(RegWrite { reg: r_e, func: ef }),
    );

    let cj = Counter {
        index: b.fresh_index(),
        min: CBound::Reg(r_s),
        max: CBound::Reg(r_e),
        stride: 1,
        par: 16,
    };
    let ji = cj.index;
    let mut mf = Func::new("mac");
    let jv = mf.index(ji);
    let val = mf.load(s_val, vec![jv]);
    let col = mf.load(s_col, vec![jv]);
    let xv = mf.load(s_x, vec![col]); // on-chip gather via duplication
    let prod = mf.binary(BinOp::Mul, val, xv);
    mf.set_outputs(vec![prod]);
    let mf = b.func(mf);
    let yaddr = coords_func(&mut b, &[ri]);
    let dot = b.inner(
        "dot",
        vec![cj],
        InnerOp::Fold(FoldPipe {
            map: mf,
            combine: vec![BinOp::Add],
            init: vec![FoldInit::Const(Elem::F32(0.0))],
            out_regs: vec![None],
            writes: vec![PipeWrite {
                sram: s_y,
                addr: yaddr,
                value_slot: 0,
                mode: WriteMode::Overwrite,
            }],
        }),
    );
    let row_work = b.outer("row", Schedule::Sequential, vec![], vec![set_s, set_e, dot]);
    let rows_loop = b.outer("rows", Schedule::Pipelined, vec![cr], vec![row_work]);
    let st_y = store_1d(&mut b, "st_y", d_y, zero, s_y, rows);
    let root = b.outer(
        "root",
        Schedule::Sequential,
        vec![],
        vec![ld_ptr, ld_col, ld_val, ld_x, rows_loop, st_y],
    );
    let program = b.finish(root).expect("smdv validates");

    let vals: Vec<Elem> = (0..nnz)
        .map(|i| Elem::F32(hash_unit_f32(i as u64, 72) - 0.5))
        .collect();
    let x: Vec<Elem> = (0..cols)
        .map(|i| Elem::F32(hash_unit_f32(i as u64, 73) - 0.5))
        .collect();
    let mut y = vec![Elem::F32(0.0); rows];
    for (r, yr) in y.iter_mut().enumerate() {
        let mut acc = 0.0f32;
        for j in csr.ptr[r] as usize..csr.ptr[r + 1] as usize {
            acc += vals[j].as_f32().unwrap() * x[csr.idx[j] as usize].as_f32().unwrap();
        }
        *yr = Elem::F32(acc);
    }

    Bench {
        name: "SMDV".into(),
        program,
        inputs: vec![
            (d_ptr, csr.ptr.iter().map(|&v| Elem::I32(v)).collect()),
            (d_col, csr.idx.iter().map(|&v| Elem::I32(v)).collect()),
            (d_val, vals),
            (d_x, x),
        ],
        expect_drams: vec![(d_y, y)],
        expect_regs: vec![],
        fpga: AppProfile {
            name: "SMDV".into(),
            total_ops: 2.0 * nnz as f64,
            fp_muls: nnz as f64,
            fp_adds: nnz as f64,
            ops_per_elem: 2.0,
            dense_bytes: 4.0 * (2 * nnz + 2 * rows + cols) as f64,
            // x fits in FPGA BRAM, but block RAM is dual-ported: at most
            // two random reads of x per cycle, capping lane parallelism.
            random_elems: 0.0,
            buffer_kb: 16.0,
            app_parallelism: 2.0,
            sequential_frac: 0.0,
            serial_iters: 0.0,
            serial_cycles: 0.0,
        },
    }
}

/// PageRank with off-chip gathers of per-page contributions through the
/// coalescing units.
pub fn pagerank(scale: Scale) -> Bench {
    let n = 64 * scale.0;
    let iters = 3usize;
    let damp = 0.85f32;
    let csr = gen_csr(n, n, 8, 8, 80); // in-edges per page
    let nnz = csr.idx.len();
    let max_deg = (0..n)
        .map(|r| (csr.ptr[r + 1] - csr.ptr[r]) as usize)
        .max()
        .unwrap_or(1);

    let mut b = ProgramBuilder::new("PageRank");
    let d_ptr = b.dram("ptr", DType::I32, n + 1);
    let d_src = b.dram("src", DType::I32, nnz);
    let d_r = b.dram("rank", DType::F32, n);
    let d_deg = b.dram("deg", DType::F32, n);
    let d_c = b.dram("contrib", DType::F32, n);
    let d_rnew = b.dram("rank_new", DType::F32, n);
    let s_ptr = b.sram("s_ptr", DType::I32, &[n + 1]);
    let s_src = b.sram("s_src", DType::I32, &[nnz]);
    let s_r = b.sram("s_r", DType::F32, &[n]);
    let s_deg = b.sram("s_deg", DType::F32, &[n]);
    let s_c = b.sram("s_c", DType::F32, &[n]);
    let s_gbuf = b.sram("s_gbuf", DType::F32, &[max_deg]);
    let s_rnew = b.sram("s_rnew", DType::F32, &[n]);
    let r_s = b.reg("row_start", DType::I32);
    let r_len = b.reg("row_len", DType::I32);
    let sum = b.reg("sum", DType::F32);

    let zero = const_func(&mut b, 0);
    let ld_ptr = load_1d(&mut b, "ld_ptr", d_ptr, zero, s_ptr, n + 1);
    let ld_src = load_1d(&mut b, "ld_src", d_src, zero, s_src, nnz);

    // Per iteration.
    let ld_r = load_1d(&mut b, "ld_r", d_r, zero, s_r, n);
    let ld_deg = load_1d(&mut b, "ld_deg", d_deg, zero, s_deg, n);
    let cv = b.counter(0, n as i64, 1, 16);
    let vi = cv.index;
    let mut cf = Func::new("contrib");
    let vv = cf.index(vi);
    let rv = cf.load(s_r, vec![vv]);
    let dv = cf.load(s_deg, vec![vv]);
    let c = cf.binary(BinOp::Div, rv, dv);
    cf.set_outputs(vec![c]);
    let cf = b.func(cf);
    let caddr = coords_func(&mut b, &[vi]);
    let contrib = b.inner(
        "contrib",
        vec![cv],
        InnerOp::Map(MapPipe {
            body: cf,
            writes: vec![PipeWrite {
                sram: s_c,
                addr: caddr,
                value_slot: 0,
                mode: WriteMode::Overwrite,
            }],
        }),
    );
    let st_c = store_1d(&mut b, "st_c", d_c, zero, s_c, n);

    // Per page: gather contributions of in-neighbours from DRAM, reduce.
    let cp = b.counter(0, n as i64, 1, 8);
    let pgi = cp.index;
    let mut sf = Func::new("start");
    let pv = sf.index(pgi);
    let sp = sf.load(s_ptr, vec![pv]);
    sf.set_outputs(vec![sp]);
    let sf = b.func(sf);
    let set_s = b.inner(
        "set_s",
        vec![],
        InnerOp::RegWrite(RegWrite { reg: r_s, func: sf }),
    );
    let mut lf = Func::new("len");
    let pv = lf.index(pgi);
    let one = lf.konst(Elem::I32(1));
    let p1 = lf.binary(BinOp::Add, pv, one);
    let e = lf.load(s_ptr, vec![p1]);
    let s = lf.read_reg(r_s);
    let len = lf.binary(BinOp::Sub, e, s);
    lf.set_outputs(vec![len]);
    let lf = b.func(lf);
    let set_len = b.inner(
        "set_len",
        vec![],
        InnerOp::RegWrite(RegWrite {
            reg: r_len,
            func: lf,
        }),
    );
    let gather = b.inner(
        "gather",
        vec![],
        InnerOp::Gather(GatherOp {
            dram: d_c,
            base: zero,
            indices: s_src,
            idx_base: CBound::Reg(r_s),
            dst: s_gbuf,
            len: CBound::Reg(r_len),
        }),
    );
    let cg = b.counter(0, CBound::Reg(r_len), 1, 8);
    let gi = cg.index;
    let mut gf = Func::new("sum");
    let gv = gf.index(gi);
    let x = gf.load(s_gbuf, vec![gv]);
    gf.set_outputs(vec![x]);
    let gf = b.func(gf);
    let sum_fold = b.inner(
        "sum",
        vec![cg],
        InnerOp::Fold(FoldPipe {
            map: gf,
            combine: vec![BinOp::Add],
            init: vec![FoldInit::Const(Elem::F32(0.0))],
            out_regs: vec![Some(sum)],
            writes: vec![],
        }),
    );
    let mut nf = Func::new("newrank");
    let sv = nf.read_reg(sum);
    let dc = nf.konst(Elem::F32(damp));
    let basec = nf.konst(Elem::F32((1.0 - damp) / n as f32));
    let scaled = nf.binary(BinOp::Mul, dc, sv);
    let nr = nf.binary(BinOp::Add, basec, scaled);
    nf.set_outputs(vec![nr]);
    let nf = b.func(nf);
    let naddr = coords_func(&mut b, &[pgi]);
    let setnew = b.inner(
        "setnew",
        vec![],
        InnerOp::Map(MapPipe {
            body: nf,
            writes: vec![PipeWrite {
                sram: s_rnew,
                addr: naddr,
                value_slot: 0,
                mode: WriteMode::Overwrite,
            }],
        }),
    );
    let page_work = b.outer(
        "page",
        Schedule::Sequential,
        vec![],
        vec![set_s, set_len, gather, sum_fold, setnew],
    );
    let pages = b.outer("pages", Schedule::Pipelined, vec![cp], vec![page_work]);
    let st_rnew = store_1d(&mut b, "st_rnew", d_rnew, zero, s_rnew, n);
    let st_back = store_1d(&mut b, "st_back", d_r, zero, s_rnew, n);

    let it = b.counter(0, iters as i64, 1, 1);
    let iter_loop = b.outer(
        "iters",
        Schedule::Sequential,
        vec![it],
        vec![ld_r, ld_deg, contrib, st_c, pages, st_rnew, st_back],
    );
    let root = b.outer(
        "root",
        Schedule::Sequential,
        vec![],
        vec![ld_ptr, ld_src, iter_loop],
    );
    let program = b.finish(root).expect("pagerank validates");

    // Out-degrees (≥1) and initial ranks.
    let deg: Vec<Elem> = (0..n)
        .map(|i| Elem::F32(1.0 + (hash_u64(i as u64, 81) % 8) as f32))
        .collect();
    let r0: Vec<Elem> = vec![Elem::F32(1.0 / n as f32); n];
    // Golden.
    let mut rank: Vec<f32> = r0.iter().map(|e| e.as_f32().unwrap()).collect();
    for _ in 0..iters {
        let c: Vec<f32> = (0..n).map(|v| rank[v] / deg[v].as_f32().unwrap()).collect();
        let mut newr = vec![0.0f32; n];
        for (p, nr) in newr.iter_mut().enumerate() {
            let mut s = 0.0f32;
            for j in csr.ptr[p] as usize..csr.ptr[p + 1] as usize {
                s += c[csr.idx[j] as usize];
            }
            *nr = (1.0 - damp) / n as f32 + damp * s;
        }
        rank = newr;
    }
    let rank: Vec<Elem> = rank.into_iter().map(Elem::F32).collect();

    Bench {
        name: "PageRank".into(),
        program,
        inputs: vec![
            (d_ptr, csr.ptr.iter().map(|&v| Elem::I32(v)).collect()),
            (d_src, csr.idx.iter().map(|&v| Elem::I32(v)).collect()),
            (d_r, r0),
            (d_deg, deg),
        ],
        expect_drams: vec![(d_rnew, rank)],
        expect_regs: vec![],
        fpga: AppProfile {
            name: "PageRank".into(),
            total_ops: (iters * (nnz + 3 * n)) as f64,
            fp_muls: (iters * 2 * n) as f64,
            fp_adds: (iters * nnz) as f64,
            ops_per_elem: 2.0,
            dense_bytes: (iters * 5 * n * 4) as f64,
            random_elems: (iters * nnz) as f64,
            buffer_kb: 8.0,
            app_parallelism: 16.0,
            sequential_frac: 0.2,
            serial_iters: 0.0,
            serial_cycles: 0.0,
        },
    }
}

/// Breadth-first search: frontier expansion with data-dependent trip
/// counts, off-chip edge gathers, a `FlatMap` filter compacting newly
/// discovered nodes, and distance scatters back to DRAM.
pub fn bfs(scale: Scale) -> Bench {
    let n = 64 * scale.0;
    let levels = 5usize;
    let max_deg = 16usize;
    let csr = gen_csr(n, n, 8, 8, 90); // out-edges
    let nnz = csr.idx.len();
    assert!(
        (0..n).all(|r| (csr.ptr[r + 1] - csr.ptr[r]) as usize <= max_deg),
        "generator respects max degree"
    );

    let mut b = ProgramBuilder::new("BFS");
    let d_ptr = b.dram("ptr", DType::I32, n + 1);
    let d_edges = b.dram("edges", DType::I32, nnz);
    let d_dist_scatter = b.dram("dist_scatter", DType::I32, n);
    let d_dist_full = b.dram("dist_full", DType::I32, n);
    let s_ptr = b.sram("s_ptr", DType::I32, &[n + 1]);
    let s_iota = b.sram("s_iota", DType::I32, &[max_deg]);
    let s_nbrs = b.sram("s_nbrs", DType::I32, &[max_deg]);
    let s_dist = b.sram("s_dist", DType::I32, &[n]);
    let s_frontier = b.sram("s_frontier", DType::I32, &[n]);
    let s_fnext = b.sram("s_fnext", DType::I32, &[n]);
    let s_newly = b.sram("s_newly", DType::I32, &[max_deg]);
    let s_lvlbuf = b.sram("s_lvlbuf", DType::I32, &[max_deg]);
    let r_u = b.reg("u", DType::I32);
    let r_s = b.reg("es", DType::I32);
    let r_elen = b.reg("elen", DType::I32);
    let r_cnt = b.reg("cnt", DType::I32);
    let r_fsize = b.reg("fsize", DType::I32);
    let r_nsize = b.reg("nsize", DType::I32);

    let zero = const_func(&mut b, 0);
    let one_f = const_func(&mut b, 1);
    let ld_ptr = load_1d(&mut b, "ld_ptr", d_ptr, zero, s_ptr, n + 1);

    // iota[j] = j.
    let cio = b.counter(0, max_deg as i64, 1, 16);
    let ioi = cio.index;
    let mut iof = Func::new("iota");
    let j = iof.index(ioi);
    iof.set_outputs(vec![j]);
    let iof = b.func(iof);
    let ioaddr = coords_func(&mut b, &[ioi]);
    let iota = b.inner(
        "iota",
        vec![cio],
        InnerOp::Map(MapPipe {
            body: iof,
            writes: vec![PipeWrite {
                sram: s_iota,
                addr: ioaddr,
                value_slot: 0,
                mode: WriteMode::Overwrite,
            }],
        }),
    );

    // dist[v] = −1; dist[0] = 0; frontier[0] = 0; fsize = 1.
    let cdv = b.counter(0, n as i64, 1, 16);
    let dvi = cdv.index;
    let mut mf = Func::new("minus1");
    let m1 = mf.konst(Elem::I32(-1));
    mf.set_outputs(vec![m1]);
    let mf = b.func(mf);
    let daddr = coords_func(&mut b, &[dvi]);
    let init_dist = b.inner(
        "init_dist",
        vec![cdv],
        InnerOp::Map(MapPipe {
            body: mf,
            writes: vec![PipeWrite {
                sram: s_dist,
                addr: daddr,
                value_slot: 0,
                mode: WriteMode::Overwrite,
            }],
        }),
    );
    let mut zf = Func::new("zero0");
    let z0 = zf.konst(Elem::I32(0));
    zf.set_outputs(vec![z0]);
    let zf = b.func(zf);
    let zaddr = {
        let mut f = Func::new("addr0");
        let c = f.konst(Elem::I32(0));
        f.set_outputs(vec![c]);
        b.func(f)
    };
    let set_root_dist = b.inner(
        "root_dist",
        vec![],
        InnerOp::Map(MapPipe {
            body: zf,
            writes: vec![PipeWrite {
                sram: s_dist,
                addr: zaddr,
                value_slot: 0,
                mode: WriteMode::Overwrite,
            }],
        }),
    );
    let set_root_frontier = b.inner(
        "root_frontier",
        vec![],
        InnerOp::Map(MapPipe {
            body: zf,
            writes: vec![PipeWrite {
                sram: s_frontier,
                addr: zaddr,
                value_slot: 0,
                mode: WriteMode::Overwrite,
            }],
        }),
    );
    let set_fsize = b.inner(
        "set_fsize",
        vec![],
        InnerOp::RegWrite(RegWrite {
            reg: r_fsize,
            func: one_f,
        }),
    );

    // Level loop.
    let clvl = b.counter(0, levels as i64, 1, 1);
    let lvli = clvl.index;
    let zero_nsize = b.inner(
        "zero_nsize",
        vec![],
        InnerOp::RegWrite(RegWrite {
            reg: r_nsize,
            func: zero,
        }),
    );

    // Per frontier node.
    let cfi = Counter {
        index: b.fresh_index(),
        min: CBound::Const(0),
        max: CBound::Reg(r_fsize),
        stride: 1,
        par: 4,
    };
    let fii = cfi.index;
    let mut uf = Func::new("u");
    let fv = uf.index(fii);
    let u = uf.load(s_frontier, vec![fv]);
    uf.set_outputs(vec![u]);
    let uf = b.func(uf);
    let set_u = b.inner(
        "set_u",
        vec![],
        InnerOp::RegWrite(RegWrite { reg: r_u, func: uf }),
    );
    let mut sf = Func::new("estart");
    let uv = sf.read_reg(r_u);
    let sp = sf.load(s_ptr, vec![uv]);
    sf.set_outputs(vec![sp]);
    let sf = b.func(sf);
    let set_s = b.inner(
        "set_es",
        vec![],
        InnerOp::RegWrite(RegWrite { reg: r_s, func: sf }),
    );
    let mut elf = Func::new("elen");
    let uv = elf.read_reg(r_u);
    let c1 = elf.konst(Elem::I32(1));
    let u1 = elf.binary(BinOp::Add, uv, c1);
    let ep = elf.load(s_ptr, vec![u1]);
    let sv = elf.read_reg(r_s);
    let el = elf.binary(BinOp::Sub, ep, sv);
    elf.set_outputs(vec![el]);
    let elf = b.func(elf);
    let set_elen = b.inner(
        "set_elen",
        vec![],
        InnerOp::RegWrite(RegWrite {
            reg: r_elen,
            func: elf,
        }),
    );
    // Gather the adjacency slice edges[s .. s+len] from DRAM.
    let mut basef = Func::new("ebase");
    let sv = basef.read_reg(r_s);
    basef.set_outputs(vec![sv]);
    let basef = b.func(basef);
    let gather_nbrs = b.inner(
        "gather_nbrs",
        vec![],
        InnerOp::Gather(GatherOp {
            dram: d_edges,
            base: basef,
            indices: s_iota,
            idx_base: CBound::Const(0),
            dst: s_nbrs,
            len: CBound::Reg(r_elen),
        }),
    );
    // Filter: keep unvisited neighbours.
    let cj = Counter {
        index: b.fresh_index(),
        min: CBound::Const(0),
        max: CBound::Reg(r_elen),
        stride: 1,
        par: 8,
    };
    let jji = cj.index;
    let mut ff = Func::new("undiscovered");
    let jv = ff.index(jji);
    let v = ff.load(s_nbrs, vec![jv]);
    let dv = ff.load(s_dist, vec![v]);
    let zc = ff.konst(Elem::I32(0));
    let pred = ff.binary(BinOp::Lt, dv, zc);
    ff.set_outputs(vec![v, pred]);
    let ff = b.func(ff);
    let filter_new = b.inner(
        "filter_new",
        vec![cj],
        InnerOp::Filter(FilterPipe {
            body: ff,
            out: s_newly,
            count_reg: r_cnt,
        }),
    );
    // Mark: set dist, append to next frontier, stage scatter values.
    let cm = Counter {
        index: b.fresh_index(),
        min: CBound::Const(0),
        max: CBound::Reg(r_cnt),
        stride: 1,
        par: 1,
    };
    let mi = cm.index;
    let mut mkf = Func::new("mark");
    let mv = mkf.index(mi);
    let v = mkf.load(s_newly, vec![mv]);
    let lv = mkf.index(lvli);
    let c1 = mkf.konst(Elem::I32(1));
    let l1 = mkf.binary(BinOp::Add, lv, c1);
    mkf.set_outputs(vec![v, l1]);
    let mkf = b.func(mkf);
    let mut fnaddr = Func::new("fnext_addr");
    let ns = fnaddr.read_reg(r_nsize);
    let mv2 = fnaddr.index(mi);
    let a = fnaddr.binary(BinOp::Add, ns, mv2);
    fnaddr.set_outputs(vec![a]);
    let fnaddr = b.func(fnaddr);
    let mut distaddr = Func::new("dist_addr");
    let mv3 = distaddr.index(mi);
    let vv = distaddr.load(s_newly, vec![mv3]);
    distaddr.set_outputs(vec![vv]);
    let distaddr = b.func(distaddr);
    let lvladdr = coords_func(&mut b, &[mi]);
    let mark = b.inner(
        "mark",
        vec![cm],
        InnerOp::Map(MapPipe {
            body: mkf,
            writes: vec![
                PipeWrite {
                    sram: s_fnext,
                    addr: fnaddr,
                    value_slot: 0,
                    mode: WriteMode::Overwrite,
                },
                PipeWrite {
                    sram: s_dist,
                    addr: distaddr,
                    value_slot: 1,
                    mode: WriteMode::Overwrite,
                },
                PipeWrite {
                    sram: s_lvlbuf,
                    addr: lvladdr,
                    value_slot: 1,
                    mode: WriteMode::Overwrite,
                },
            ],
        }),
    );
    // Scatter the new distances to DRAM.
    let scatter_d = b.inner(
        "scatter_dist",
        vec![],
        InnerOp::Scatter(ScatterOp {
            dram: d_dist_scatter,
            base: zero,
            indices: s_newly,
            idx_base: CBound::Const(0),
            src: s_lvlbuf,
            len: CBound::Reg(r_cnt),
        }),
    );
    let mut bumpf = Func::new("bump");
    let ns = bumpf.read_reg(r_nsize);
    let cc = bumpf.read_reg(r_cnt);
    let nn = bumpf.binary(BinOp::Add, ns, cc);
    bumpf.set_outputs(vec![nn]);
    let bumpf = b.func(bumpf);
    let bump = b.inner(
        "bump_nsize",
        vec![],
        InnerOp::RegWrite(RegWrite {
            reg: r_nsize,
            func: bumpf,
        }),
    );
    let node_work = b.outer(
        "node",
        Schedule::Sequential,
        vec![],
        vec![
            set_u,
            set_s,
            set_elen,
            gather_nbrs,
            filter_new,
            mark,
            scatter_d,
            bump,
        ],
    );
    let nodes = b.outer("nodes", Schedule::Pipelined, vec![cfi], vec![node_work]);

    // Frontier swap.
    let ccp = Counter {
        index: b.fresh_index(),
        min: CBound::Const(0),
        max: CBound::Reg(r_nsize),
        stride: 1,
        par: 8,
    };
    let cpi = ccp.index;
    let mut cpf = Func::new("copyf");
    let mv = cpf.index(cpi);
    let v = cpf.load(s_fnext, vec![mv]);
    cpf.set_outputs(vec![v]);
    let cpf = b.func(cpf);
    let cpaddr = coords_func(&mut b, &[cpi]);
    let copyf = b.inner(
        "copy_frontier",
        vec![ccp],
        InnerOp::Map(MapPipe {
            body: cpf,
            writes: vec![PipeWrite {
                sram: s_frontier,
                addr: cpaddr,
                value_slot: 0,
                mode: WriteMode::Overwrite,
            }],
        }),
    );
    let mut fsf = Func::new("fsize");
    let ns = fsf.read_reg(r_nsize);
    fsf.set_outputs(vec![ns]);
    let fsf = b.func(fsf);
    let update_fsize = b.inner(
        "update_fsize",
        vec![],
        InnerOp::RegWrite(RegWrite {
            reg: r_fsize,
            func: fsf,
        }),
    );
    let level_loop = b.outer(
        "levels",
        Schedule::Sequential,
        vec![clvl],
        vec![zero_nsize, nodes, copyf, update_fsize],
    );
    let st_dist = store_1d(&mut b, "st_dist", d_dist_full, zero, s_dist, n);
    let root = b.outer(
        "root",
        Schedule::Sequential,
        vec![],
        vec![
            ld_ptr,
            iota,
            init_dist,
            set_root_dist,
            set_root_frontier,
            set_fsize,
            level_loop,
            st_dist,
        ],
    );
    let program = b.finish(root).expect("bfs validates");

    // Golden BFS.
    let mut dist = vec![-1i32; n];
    dist[0] = 0;
    let mut frontier = vec![0usize];
    for lvl in 0..levels {
        let mut next = Vec::new();
        for &u in &frontier {
            for j in csr.ptr[u] as usize..csr.ptr[u + 1] as usize {
                let v = csr.idx[j] as usize;
                if dist[v] < 0 {
                    dist[v] = lvl as i32 + 1;
                    next.push(v);
                }
            }
        }
        frontier = next;
    }
    let dist_full: Vec<Elem> = dist.iter().map(|&d| Elem::I32(d)).collect();
    // The scatter target holds levels for discovered non-root nodes and 0
    // elsewhere (never written for the root or undiscovered nodes).
    let dist_scatter: Vec<Elem> = dist
        .iter()
        .map(|&d| Elem::I32(if d > 0 { d } else { 0 }))
        .collect();

    Bench {
        name: "BFS".into(),
        program,
        inputs: vec![
            (d_ptr, csr.ptr.iter().map(|&v| Elem::I32(v)).collect()),
            (d_edges, csr.idx.iter().map(|&v| Elem::I32(v)).collect()),
        ],
        expect_drams: vec![(d_dist_full, dist_full), (d_dist_scatter, dist_scatter)],
        expect_regs: vec![],
        fpga: AppProfile {
            name: "BFS".into(),
            total_ops: (3 * nnz) as f64,
            fp_muls: 0.0,
            fp_adds: 0.0,
            ops_per_elem: 3.0,
            dense_bytes: (4 * n) as f64,
            random_elems: (2 * nnz) as f64, // gathers + scatters
            buffer_kb: 8.0,
            app_parallelism: 8.0,
            sequential_frac: 0.0,
            // Frontier expansion is level-by-level and node-by-node in
            // soft logic.
            serial_iters: n as f64,
            serial_cycles: 40.0,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smdv_functional() {
        smdv(Scale::tiny()).run_and_verify().unwrap();
    }

    #[test]
    fn pagerank_functional() {
        pagerank(Scale::tiny()).run_and_verify().unwrap();
    }

    #[test]
    fn bfs_functional() {
        bfs(Scale::tiny()).run_and_verify().unwrap();
    }

    #[test]
    fn csr_generator_matches_sparsity() {
        let c = gen_csr(100, 100, 60, 40, 7);
        let avg = c.idx.len() as f64 / 100.0;
        assert!((avg - 60.0).abs() < 6.0, "avg nnz {avg}");
        assert!(c.idx.iter().all(|&i| (0..100).contains(&i)));
    }
}
