//! # plasticine-workloads — the Table 4 benchmark suite
//!
//! The thirteen applications the paper evaluates (§4.1), written as
//! parallel-pattern programs against [`plasticine_ppir`], each bundled with
//! a deterministic input generator, a host-computed golden result, and an
//! [`AppProfile`] characterization for the FPGA baseline model.
//!
//! Sizes follow Table 4's structure (sparsity E\[NNZ\] = 60 for SMDV,
//! E\[edges\] = 8 for BFS, dimension ratios for the ML kernels) but are
//! scaled down by default so cycle-accurate simulation stays tractable;
//! pass a larger [`Scale`] to approach the paper's sizes.
//!
//! # Examples
//!
//! ```
//! use plasticine_workloads::{dense, Scale};
//! use plasticine_ppir::Machine;
//!
//! let bench = dense::inner_product(Scale::tiny());
//! let mut m = Machine::new(&bench.program);
//! bench.load(&mut m);
//! m.run().unwrap();
//! bench.verify(&m).unwrap();
//! ```

#![warn(missing_docs)]

pub mod cnn;
pub mod dense;
pub mod gemm;
pub mod ml;
pub mod sparse;
pub mod util;

use plasticine_fpga::AppProfile;
use plasticine_ppir::{DramId, Elem, Machine, Program, RegId};

/// Problem-size multiplier. `tiny` keeps unit tests fast; `small` is the
/// default for the reported experiments; larger scales approach Table 4.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scale(pub usize);

impl Scale {
    /// Smallest size that still exercises every code path.
    pub fn tiny() -> Scale {
        Scale(1)
    }

    /// Default experiment size.
    pub fn small() -> Scale {
        Scale(4)
    }

    /// Larger runs for the benchmark harness.
    pub fn large() -> Scale {
        Scale(16)
    }
}

/// A benchmark: program + inputs + golden outputs + FPGA characterization.
#[derive(Debug, Clone)]
pub struct Bench {
    /// Display name (Table 4 spelling).
    pub name: String,
    /// The validated pattern program.
    pub program: Program,
    /// Input data per DRAM buffer.
    pub inputs: Vec<(DramId, Vec<Elem>)>,
    /// Expected DRAM contents after execution.
    pub expect_drams: Vec<(DramId, Vec<Elem>)>,
    /// Expected register values after execution.
    pub expect_regs: Vec<(RegId, Elem)>,
    /// Workload characterization for the FPGA baseline.
    pub fpga: AppProfile,
}

/// Relative tolerance for floating-point comparisons. The interpreter and
/// host goldens evaluate in the same order with the same `f32` ops, so the
/// tolerance only absorbs genuinely benign differences.
const REL_TOL: f32 = 1e-4;

fn close(a: f32, b: f32) -> bool {
    if a == b {
        return true;
    }
    let denom = a.abs().max(b.abs()).max(1.0);
    (a - b).abs() / denom < REL_TOL
}

impl Bench {
    /// Loads the input data into a machine.
    pub fn load(&self, m: &mut Machine) {
        for (id, data) in &self.inputs {
            m.write_dram(*id, data);
        }
    }

    /// Verifies a finished machine against the goldens.
    ///
    /// # Errors
    ///
    /// Returns a description of the first mismatch.
    pub fn verify(&self, m: &Machine) -> Result<(), String> {
        for (id, want) in &self.expect_drams {
            let got = m.dram_data(*id);
            if got.len() < want.len() {
                return Err(format!("{}: buffer {:?} too short", self.name, id));
            }
            for (i, (g, w)) in got.iter().zip(want).enumerate() {
                let ok = match (g, w) {
                    (Elem::I32(a), Elem::I32(b)) => a == b,
                    (Elem::F32(a), Elem::F32(b)) => close(*a, *b),
                    _ => false,
                };
                if !ok {
                    return Err(format!(
                        "{}: dram {:?}[{}]: got {g}, want {w}",
                        self.name, id, i
                    ));
                }
            }
        }
        for (id, want) in &self.expect_regs {
            let got = m.reg(*id);
            let ok = match (got, want) {
                (Elem::I32(a), Elem::I32(b)) => a == *b,
                (Elem::F32(a), Elem::F32(b)) => close(a, *b),
                _ => false,
            };
            if !ok {
                return Err(format!(
                    "{}: reg {:?}: got {got}, want {want}",
                    self.name, id
                ));
            }
        }
        Ok(())
    }

    /// Runs the program on the host interpreter and verifies it (the
    /// functional smoke test every benchmark must pass).
    ///
    /// # Errors
    ///
    /// Returns interpreter failures or golden mismatches.
    pub fn run_and_verify(&self) -> Result<Machine<'_>, String> {
        let mut m = Machine::new(&self.program);
        self.load(&mut m);
        m.run().map_err(|e| format!("{}: {e}", self.name))?;
        self.verify(&m)?;
        Ok(m)
    }
}

/// All thirteen benchmarks of Table 4 at one scale.
pub fn all(scale: Scale) -> Vec<Bench> {
    vec![
        dense::inner_product(scale),
        dense::outer_product(scale),
        dense::black_scholes(scale),
        dense::tpchq6(scale),
        gemm::gemm(scale),
        ml::gda(scale),
        ml::logreg(scale),
        ml::sgd(scale),
        ml::kmeans(scale),
        cnn::cnn(scale),
        sparse::smdv(scale),
        sparse::pagerank(scale),
        sparse::bfs(scale),
    ]
}

/// The dense subset (used by experiments that exclude sparse apps).
pub fn dense_suite(scale: Scale) -> Vec<Bench> {
    vec![
        dense::inner_product(scale),
        dense::outer_product(scale),
        dense::black_scholes(scale),
        dense::tpchq6(scale),
        gemm::gemm(scale),
        ml::gda(scale),
        ml::logreg(scale),
        ml::sgd(scale),
        ml::kmeans(scale),
        cnn::cnn(scale),
    ]
}
