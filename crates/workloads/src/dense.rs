//! Dense streaming benchmarks: InnerProduct, OuterProduct, Black-Scholes,
//! and TPC-H Query 6 (Table 4).

use crate::util::*;
use crate::{Bench, Scale};
use plasticine_fpga::AppProfile;
use plasticine_ppir::*;

/// Inner product of two `N`-element vectors: tiled, double-buffered loads
/// feeding a 16-lane `Fold` that accumulates across tiles.
pub fn inner_product(scale: Scale) -> Bench {
    let tile = 512usize;
    let tiles = 8 * scale.0;
    let n = tile * tiles;
    let mut b = ProgramBuilder::new("InnerProduct");
    let da = b.dram("a", DType::F32, n);
    let db = b.dram("b", DType::F32, n);
    let acc = b.reg("acc", DType::F32);
    let sa = b.sram("ta", DType::F32, &[tile]);
    let sb = b.sram("tb", DType::F32, &[tile]);

    let t = b.counter(0, tiles as i64, 1, 2);
    let base = affine_func(&mut b, &[(t.index, tile as i64)], 0);
    let ld_a = load_1d(&mut b, "ld_a", da, base, sa, tile);
    let ld_b = load_1d(&mut b, "ld_b", db, base, sb, tile);

    let i = b.counter(0, tile as i64, 1, 16);
    let mut map = Func::new("mul");
    let iv = map.index(i.index);
    let av = map.load(sa, vec![iv]);
    let bv = map.load(sb, vec![iv]);
    let m = map.binary(BinOp::Mul, av, bv);
    map.set_outputs(vec![m]);
    let map = b.func(map);
    let dot = b.inner(
        "dot",
        vec![i],
        InnerOp::Fold(FoldPipe {
            map,
            combine: vec![BinOp::Add],
            init: vec![FoldInit::Resume],
            out_regs: vec![Some(acc)],
            writes: vec![],
        }),
    );
    let tiles_loop = b.outer("tiles", Schedule::Pipelined, vec![t], vec![ld_a, ld_b, dot]);
    let root = b.outer("root", Schedule::Sequential, vec![], vec![tiles_loop]);
    let program = b.finish(root).expect("inner product validates");

    let a: Vec<Elem> = (0..n)
        .map(|i| Elem::F32(hash_unit_f32(i as u64, 1) - 0.5))
        .collect();
    let bv: Vec<Elem> = (0..n)
        .map(|i| Elem::F32(hash_unit_f32(i as u64, 2) - 0.5))
        .collect();
    let mut golden = 0.0f32;
    for i in 0..n {
        golden += a[i].as_f32().unwrap() * bv[i].as_f32().unwrap();
    }

    Bench {
        name: "InnerProduct".into(),
        program,
        inputs: vec![(da, a), (db, bv)],
        expect_drams: vec![],
        expect_regs: vec![(acc, Elem::F32(golden))],
        fpga: AppProfile {
            name: "InnerProduct".into(),
            total_ops: 2.0 * n as f64,
            fp_muls: n as f64,
            fp_adds: n as f64,
            ops_per_elem: 2.0,
            dense_bytes: 8.0 * n as f64,
            random_elems: 0.0,
            buffer_kb: 2.0 * tile as f64 * 4.0 * 2.0 / 1024.0,
            app_parallelism: 32.0,
            sequential_frac: 0.0,
            serial_iters: 0.0,
            serial_cycles: 0.0,
        },
    }
}

/// Outer product `c[i][j] = a[i]·b[j]`: tiled over both output dimensions,
/// exploiting the temporal reuse of the vector tiles.
pub fn outer_product(scale: Scale) -> Bench {
    let t = 64usize;
    let n = 128 * scale.0; // vector length; output n×n
    let nt = n / t;
    let mut b = ProgramBuilder::new("OuterProduct");
    let da = b.dram("a", DType::F32, n);
    let db = b.dram("b", DType::F32, n);
    let dc = b.dram("c", DType::F32, n * n);
    let sa = b.sram("ta", DType::F32, &[t]);
    let sb = b.sram("tb", DType::F32, &[t]);
    let sc = b.sram("tc", DType::F32, &[t, t]);

    let ti = b.counter(0, nt as i64, 1, 2);
    let tj = b.counter(0, nt as i64, 1, 2);
    let (tii, tji) = (ti.index, tj.index);
    let base_a = affine_func(&mut b, &[(tii, t as i64)], 0);
    let base_b = affine_func(&mut b, &[(tji, t as i64)], 0);
    let base_c = affine_func(&mut b, &[(tii, (t * n) as i64), (tji, t as i64)], 0);
    let ld_a = load_1d(&mut b, "ld_a", da, base_a, sa, t);
    let ld_b = load_1d(&mut b, "ld_b", db, base_b, sb, t);

    let i = b.counter(0, t as i64, 1, 2);
    let j = b.counter(0, t as i64, 1, 16);
    let (ii, ji) = (i.index, j.index);
    let mut body = Func::new("op");
    let av = {
        let iv = body.index(ii);
        body.load(sa, vec![iv])
    };
    let bv = {
        let jv = body.index(ji);
        body.load(sb, vec![jv])
    };
    let m = body.binary(BinOp::Mul, av, bv);
    body.set_outputs(vec![m]);
    let body = b.func(body);
    let waddr = coords_func(&mut b, &[ii, ji]);
    let compute = b.inner(
        "outer",
        vec![i, j],
        InnerOp::Map(MapPipe {
            body,
            writes: vec![PipeWrite {
                sram: sc,
                addr: waddr,
                value_slot: 0,
                mode: WriteMode::Overwrite,
            }],
        }),
    );
    let st = store_2d(&mut b, "st_c", dc, base_c, sc, t, t, n);
    let tiles = b.outer(
        "tiles",
        Schedule::Pipelined,
        vec![ti, tj],
        vec![ld_a, ld_b, compute, st],
    );
    let root = b.outer("root", Schedule::Sequential, vec![], vec![tiles]);
    let program = b.finish(root).expect("outer product validates");

    let a: Vec<Elem> = (0..n)
        .map(|i| Elem::F32(hash_unit_f32(i as u64, 3)))
        .collect();
    let bv: Vec<Elem> = (0..n)
        .map(|i| Elem::F32(hash_unit_f32(i as u64, 4)))
        .collect();
    let mut c = vec![Elem::F32(0.0); n * n];
    for i in 0..n {
        for j in 0..n {
            c[i * n + j] = Elem::F32(a[i].as_f32().unwrap() * bv[j].as_f32().unwrap());
        }
    }

    Bench {
        name: "OuterProduct".into(),
        program,
        inputs: vec![(da, a), (db, bv)],
        expect_drams: vec![(dc, c)],
        expect_regs: vec![],
        fpga: AppProfile {
            name: "OuterProduct".into(),
            total_ops: (n * n) as f64,
            fp_muls: (n * n) as f64,
            fp_adds: 0.0,
            ops_per_elem: 1.0,
            // The FPGA cannot hold the large multi-ported output tiles
            // (the paper's stated limiter), forcing smaller tiles and a
            // refetch of the input vectors per output block — roughly
            // doubling its DRAM traffic.
            dense_bytes: 4.0 * (2 * n * n) as f64,
            random_elems: 0.0,
            // An FPGA struggles to instantiate many multi-ported tile
            // buffers; each lane group needs a double-buffered t×t tile.
            buffer_kb: (t * t * 4 * 2) as f64 / 1024.0,
            app_parallelism: 32.0,
            sequential_frac: 0.0,
            serial_iters: 0.0,
            serial_cycles: 0.0,
        },
    }
}

/// Black-Scholes European option pricing: a deep floating-point pipeline
/// (ln/exp/sqrt/div) streamed over option records.
pub fn black_scholes(scale: Scale) -> Bench {
    let tile = 512usize;
    let tiles = 4 * scale.0.max(2);
    let n = tile * tiles;
    let (r, v) = (0.05f32, 0.2f32);

    let mut b = ProgramBuilder::new("BlackScholes");
    let d_s = b.dram("spot", DType::F32, n);
    let d_k = b.dram("strike", DType::F32, n);
    let d_t = b.dram("time", DType::F32, n);
    let d_call = b.dram("call", DType::F32, n);
    let d_put = b.dram("put", DType::F32, n);
    let ss = b.sram("ts", DType::F32, &[tile]);
    let sk = b.sram("tk", DType::F32, &[tile]);
    let st_ = b.sram("tt", DType::F32, &[tile]);
    let sc = b.sram("tcall", DType::F32, &[tile]);
    let sp = b.sram("tput", DType::F32, &[tile]);

    let t = b.counter(0, tiles as i64, 1, 4);
    let base = affine_func(&mut b, &[(t.index, tile as i64)], 0);
    let ld_s = load_1d(&mut b, "ld_s", d_s, base, ss, tile);
    let ld_k = load_1d(&mut b, "ld_k", d_k, base, sk, tile);
    let ld_t = load_1d(&mut b, "ld_t", d_t, base, st_, tile);

    let i = b.counter(0, tile as i64, 1, 16);
    let ii = i.index;
    let mut f = Func::new("bs");
    let iv = f.index(ii);
    let s = f.load(ss, vec![iv]);
    let k = f.load(sk, vec![iv]);
    let tm = f.load(st_, vec![iv]);
    let rc = f.konst(Elem::F32(r));
    let vc = f.konst(Elem::F32(v));
    let half = f.konst(Elem::F32(0.5));
    let one = f.konst(Elem::F32(1.0));
    // d1 = (ln(S/K) + (r + v²/2)·t) / (v·√t)
    let sk_ratio = f.binary(BinOp::Div, s, k);
    let ln_sk = f.unary(UnaryOp::Ln, sk_ratio);
    let v2 = f.binary(BinOp::Mul, vc, vc);
    let v2h = f.binary(BinOp::Mul, v2, half);
    let drift = f.binary(BinOp::Add, rc, v2h);
    let drift_t = f.binary(BinOp::Mul, drift, tm);
    let num = f.binary(BinOp::Add, ln_sk, drift_t);
    let sqrt_t = f.unary(UnaryOp::Sqrt, tm);
    let vsqrt = f.binary(BinOp::Mul, vc, sqrt_t);
    let d1 = f.binary(BinOp::Div, num, vsqrt);
    let d2 = f.binary(BinOp::Sub, d1, vsqrt);
    let cnd1 = append_norm_cdf(&mut f, d1);
    let cnd2 = append_norm_cdf(&mut f, d2);
    // e^{-r t}
    let rt = f.binary(BinOp::Mul, rc, tm);
    let nrt = f.unary(UnaryOp::Neg, rt);
    let ert = f.unary(UnaryOp::Exp, nrt);
    let kd = f.binary(BinOp::Mul, k, ert);
    // call = S·Φ(d1) − K·e^{-rt}·Φ(d2)
    let s_cnd1 = f.binary(BinOp::Mul, s, cnd1);
    let k_cnd2 = f.binary(BinOp::Mul, kd, cnd2);
    let call = f.binary(BinOp::Sub, s_cnd1, k_cnd2);
    // put = K·e^{-rt}·(1−Φ(d2)) − S·(1−Φ(d1))
    let om_cnd2 = f.binary(BinOp::Sub, one, cnd2);
    let om_cnd1 = f.binary(BinOp::Sub, one, cnd1);
    let k_om = f.binary(BinOp::Mul, kd, om_cnd2);
    let s_om = f.binary(BinOp::Mul, s, om_cnd1);
    let put = f.binary(BinOp::Sub, k_om, s_om);
    f.set_outputs(vec![call, put]);
    let f = b.func(f);
    let wa = coords_func(&mut b, &[ii]);
    let wa2 = coords_func(&mut b, &[ii]);
    let compute = b.inner(
        "bs",
        vec![i],
        InnerOp::Map(MapPipe {
            body: f,
            writes: vec![
                PipeWrite {
                    sram: sc,
                    addr: wa,
                    value_slot: 0,
                    mode: WriteMode::Overwrite,
                },
                PipeWrite {
                    sram: sp,
                    addr: wa2,
                    value_slot: 1,
                    mode: WriteMode::Overwrite,
                },
            ],
        }),
    );
    let st_c = store_1d(&mut b, "st_call", d_call, base, sc, tile);
    let st_p = store_1d(&mut b, "st_put", d_put, base, sp, tile);
    let tiles_loop = b.outer(
        "tiles",
        Schedule::Pipelined,
        vec![t],
        vec![ld_s, ld_k, ld_t, compute, st_c, st_p],
    );
    let root = b.outer("root", Schedule::Sequential, vec![], vec![tiles_loop]);
    let program = b.finish(root).expect("black-scholes validates");

    let spot: Vec<Elem> = (0..n)
        .map(|i| Elem::F32(20.0 + 80.0 * hash_unit_f32(i as u64, 5)))
        .collect();
    let strike: Vec<Elem> = (0..n)
        .map(|i| Elem::F32(20.0 + 80.0 * hash_unit_f32(i as u64, 6)))
        .collect();
    let time: Vec<Elem> = (0..n)
        .map(|i| Elem::F32(0.1 + 2.0 * hash_unit_f32(i as u64, 7)))
        .collect();
    let cnd = norm_cdf;
    let mut call = vec![Elem::F32(0.0); n];
    let mut put = vec![Elem::F32(0.0); n];
    for i in 0..n {
        let (s, k, tm) = (
            spot[i].as_f32().unwrap(),
            strike[i].as_f32().unwrap(),
            time[i].as_f32().unwrap(),
        );
        let vsqrt = v * tm.sqrt();
        let d1 = ((s / k).ln() + (r + v * v * 0.5) * tm) / vsqrt;
        let d2 = d1 - vsqrt;
        let kd = k * (-r * tm).exp();
        call[i] = Elem::F32(s * cnd(d1) - kd * cnd(d2));
        put[i] = Elem::F32(kd * (1.0 - cnd(d2)) - s * (1.0 - cnd(d1)));
    }

    Bench {
        name: "BlackScholes".into(),
        program,
        inputs: vec![(d_s, spot), (d_k, strike), (d_t, time)],
        expect_drams: vec![(d_call, call), (d_put, put)],
        expect_regs: vec![],
        fpga: AppProfile {
            name: "BlackScholes".into(),
            total_ops: 61.0 * n as f64,
            fp_muls: 26.0 * n as f64,
            fp_adds: 35.0 * n as f64,
            ops_per_elem: 61.0,
            dense_bytes: 20.0 * n as f64,
            random_elems: 0.0,
            buffer_kb: 5.0 * tile as f64 * 4.0 * 2.0 / 1024.0,
            app_parallelism: 32.0,
            sequential_frac: 0.0,
            serial_iters: 0.0,
            serial_cycles: 0.0,
        },
    }
}

/// TPC-H Query 6: a filter-reduce over line items (predicated fold — the
/// conditional-selection special case of `FlatMap`, §2.1).
pub fn tpchq6(scale: Scale) -> Bench {
    let tile = 512usize;
    let tiles = 8 * scale.0;
    let n = tile * tiles;
    let mut b = ProgramBuilder::new("TPCHQ6");
    let d_date = b.dram("shipdate", DType::I32, n);
    let d_disc = b.dram("discount", DType::I32, n);
    let d_qty = b.dram("quantity", DType::I32, n);
    let d_price = b.dram("price", DType::I32, n);
    let s_date = b.sram("t_date", DType::I32, &[tile]);
    let s_disc = b.sram("t_disc", DType::I32, &[tile]);
    let s_qty = b.sram("t_qty", DType::I32, &[tile]);
    let s_price = b.sram("t_price", DType::I32, &[tile]);
    let revenue = b.reg("revenue", DType::I32);

    let t = b.counter(0, tiles as i64, 1, 2);
    let base = affine_func(&mut b, &[(t.index, tile as i64)], 0);
    let l1 = load_1d(&mut b, "ld_date", d_date, base, s_date, tile);
    let l2 = load_1d(&mut b, "ld_disc", d_disc, base, s_disc, tile);
    let l3 = load_1d(&mut b, "ld_qty", d_qty, base, s_qty, tile);
    let l4 = load_1d(&mut b, "ld_price", d_price, base, s_price, tile);

    let i = b.counter(0, tile as i64, 1, 16);
    let mut f = Func::new("q6");
    let iv = f.index(i.index);
    let date = f.load(s_date, vec![iv]);
    let disc = f.load(s_disc, vec![iv]);
    let qty = f.load(s_qty, vec![iv]);
    let price = f.load(s_price, vec![iv]);
    let d_lo = f.konst(Elem::I32(3650));
    let d_hi = f.konst(Elem::I32(4015));
    let disc_lo = f.konst(Elem::I32(5));
    let disc_hi = f.konst(Elem::I32(7));
    let q_hi = f.konst(Elem::I32(24));
    let zero = f.konst(Elem::I32(0));
    let p1 = f.binary(BinOp::Ge, date, d_lo);
    let p2 = f.binary(BinOp::Lt, date, d_hi);
    let p3 = f.binary(BinOp::Ge, disc, disc_lo);
    let p4 = f.binary(BinOp::Le, disc, disc_hi);
    let p5 = f.binary(BinOp::Lt, qty, q_hi);
    let p12 = f.binary(BinOp::And, p1, p2);
    let p34 = f.binary(BinOp::And, p3, p4);
    let p1234 = f.binary(BinOp::And, p12, p34);
    let pred = f.binary(BinOp::And, p1234, p5);
    let val = f.binary(BinOp::Mul, price, disc);
    let sel = f.mux(pred, val, zero);
    f.set_outputs(vec![sel]);
    let f = b.func(f);
    let fold = b.inner(
        "q6",
        vec![i],
        InnerOp::Fold(FoldPipe {
            map: f,
            combine: vec![BinOp::Add],
            init: vec![FoldInit::Resume],
            out_regs: vec![Some(revenue)],
            writes: vec![],
        }),
    );
    let tiles_loop = b.outer(
        "tiles",
        Schedule::Pipelined,
        vec![t],
        vec![l1, l2, l3, l4, fold],
    );
    let root = b.outer("root", Schedule::Sequential, vec![], vec![tiles_loop]);
    let program = b.finish(root).expect("tpchq6 validates");

    let date: Vec<Elem> = (0..n)
        .map(|i| Elem::I32((hash_u64(i as u64, 8) % 7300) as i32))
        .collect();
    let disc: Vec<Elem> = (0..n)
        .map(|i| Elem::I32((hash_u64(i as u64, 9) % 11) as i32))
        .collect();
    let qty: Vec<Elem> = (0..n)
        .map(|i| Elem::I32((hash_u64(i as u64, 10) % 50) as i32))
        .collect();
    let price: Vec<Elem> = (0..n)
        .map(|i| Elem::I32((hash_u64(i as u64, 11) % 1000) as i32))
        .collect();
    let mut rev: i32 = 0;
    for i in 0..n {
        let d = date[i].as_i32().unwrap();
        let dc = disc[i].as_i32().unwrap();
        let q = qty[i].as_i32().unwrap();
        if (3650..4015).contains(&d) && (5..=7).contains(&dc) && q < 24 {
            rev = rev.wrapping_add(price[i].as_i32().unwrap().wrapping_mul(dc));
        }
    }

    Bench {
        name: "TPCHQ6".into(),
        program,
        inputs: vec![
            (d_date, date),
            (d_disc, disc),
            (d_qty, qty),
            (d_price, price),
        ],
        expect_drams: vec![],
        expect_regs: vec![(revenue, Elem::I32(rev))],
        fpga: AppProfile {
            name: "TPCHQ6".into(),
            total_ops: 12.0 * n as f64,
            fp_muls: 0.0,
            fp_adds: 0.0,
            ops_per_elem: 12.0,
            dense_bytes: 16.0 * n as f64,
            random_elems: 0.0,
            buffer_kb: 4.0 * tile as f64 * 4.0 * 2.0 / 1024.0,
            app_parallelism: 32.0,
            sequential_frac: 0.0,
            serial_iters: 0.0,
            serial_cycles: 0.0,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inner_product_functional() {
        inner_product(Scale::tiny()).run_and_verify().unwrap();
    }

    #[test]
    fn outer_product_functional() {
        outer_product(Scale::tiny()).run_and_verify().unwrap();
    }

    #[test]
    fn black_scholes_functional() {
        black_scholes(Scale::tiny()).run_and_verify().unwrap();
    }

    #[test]
    fn tpchq6_functional() {
        tpchq6(Scale::tiny()).run_and_verify().unwrap();
    }

    #[test]
    fn black_scholes_prices_satisfy_put_call_parity() {
        // call − put = S − K·e^{−rt} under the model's own CND surrogate.
        let bench = black_scholes(Scale::tiny());
        let m = bench.run_and_verify().unwrap();
        let spot = &bench.inputs[0].1;
        let strike = &bench.inputs[1].1;
        let time = &bench.inputs[2].1;
        let call = m.dram_data(bench.expect_drams[0].0);
        let put = m.dram_data(bench.expect_drams[1].0);
        for i in (0..spot.len()).step_by(97) {
            let s = spot[i].as_f32().unwrap();
            let k = strike[i].as_f32().unwrap();
            let t = time[i].as_f32().unwrap();
            let lhs = call[i].as_f32().unwrap() - put[i].as_f32().unwrap();
            let rhs = s - k * (-0.05 * t).exp();
            assert!((lhs - rhs).abs() < 1e-2, "parity at {i}: {lhs} vs {rhs}");
        }
    }

    #[test]
    fn tpchq6_revenue_is_nonzero_and_selective() {
        let bench = tpchq6(Scale::tiny());
        let m = bench.run_and_verify().unwrap();
        let rev = m.reg(bench.expect_regs[0].0).as_i32().unwrap();
        assert!(rev > 0, "filter should select some rows");
    }
}
