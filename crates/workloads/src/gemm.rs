//! Single-precision general matrix multiply (GEMM), tiled with on-chip
//! accumulation: "each PCU multiplies two tiles by successively performing
//! pipelined inner products" (§4.5).

use crate::util::*;
use crate::{Bench, Scale};
use plasticine_fpga::AppProfile;
use plasticine_ppir::*;

/// `C[M][P] = A[M][N] × B[N][P]`, tiled `(Tm × Tn) · (Tn × Tp)` with a
/// sequential reduction over `N`-tiles accumulating into the output tile.
pub fn gemm(scale: Scale) -> Bench {
    let (tm, tn, tp) = (32usize, 64usize, 64usize);
    let mt = 2 * scale.0.max(1);
    let nt = scale.0.max(2);
    let pt = 2;
    let (m, n, p) = (tm * mt, tn * nt, tp * pt);

    let mut b = ProgramBuilder::new("GEMM");
    let d_a = b.dram("A", DType::F32, m * n);
    let d_b = b.dram("B", DType::F32, n * p);
    let d_c = b.dram("C", DType::F32, m * p);
    let s_a = b.sram("tileA", DType::F32, &[tm, tn]);
    let s_b = b.sram("tileB", DType::F32, &[tn, tp]);
    let s_c = b.sram("tileC", DType::F32, &[tm, tp]);

    // Outer tile loops over the output.
    let c_tm = b.counter(0, mt as i64, 1, 2);
    let c_tp = b.counter(0, pt as i64, 1, 2);
    let (itm, itp) = (c_tm.index, c_tp.index);

    // Zero the accumulator tile.
    let ci = b.counter(0, tm as i64, 1, 1);
    let cj = b.counter(0, tp as i64, 1, 16);
    let (zi, zj) = (ci.index, cj.index);
    let mut zf = Func::new("zero");
    let z = zf.konst(Elem::F32(0.0));
    zf.set_outputs(vec![z]);
    let zf = b.func(zf);
    let zaddr = coords_func(&mut b, &[zi, zj]);
    let zero_c = b.inner(
        "zero_c",
        vec![ci, cj],
        InnerOp::Map(MapPipe {
            body: zf,
            writes: vec![PipeWrite {
                sram: s_c,
                addr: zaddr,
                value_slot: 0,
                mode: WriteMode::Overwrite,
            }],
        }),
    );

    // Reduction over N-tiles (sequential: loop-carried accumulation).
    let c_tk = b.counter(0, nt as i64, 1, 1);
    let itk = c_tk.index;
    let base_a = affine_func(&mut b, &[(itm, (tm * n) as i64), (itk, tn as i64)], 0);
    let base_b = affine_func(&mut b, &[(itk, (tn * p) as i64), (itp, tp as i64)], 0);
    let ld_a = load_2d(&mut b, "ld_a", d_a, base_a, s_a, tm, tn, n);
    let ld_b = load_2d(&mut b, "ld_b", d_b, base_b, s_b, tn, tp, p);

    // Inner products: for each (i, j), fold over k.
    let c_i = b.counter(0, tm as i64, 1, 2);
    let c_j = b.counter(0, tp as i64, 1, 2);
    let (ii, jj) = (c_i.index, c_j.index);
    let c_k = b.counter(0, tn as i64, 1, 16);
    let kk = c_k.index;
    let mut mf = Func::new("mac");
    let iv = mf.index(ii);
    let kv = mf.index(kk);
    let jv = mf.index(jj);
    let av = mf.load(s_a, vec![iv, kv]);
    let bv = mf.load(s_b, vec![kv, jv]);
    let prod = mf.binary(BinOp::Mul, av, bv);
    mf.set_outputs(vec![prod]);
    let mf = b.func(mf);
    let caddr = coords_func(&mut b, &[ii, jj]);
    let dot = b.inner(
        "dot",
        vec![c_k],
        InnerOp::Fold(FoldPipe {
            map: mf,
            combine: vec![BinOp::Add],
            init: vec![FoldInit::Const(Elem::F32(0.0))],
            out_regs: vec![None],
            writes: vec![PipeWrite {
                sram: s_c,
                addr: caddr,
                value_slot: 0,
                mode: WriteMode::Accumulate(BinOp::Add),
            }],
        }),
    );
    let ij_loop = b.outer("ij", Schedule::Pipelined, vec![c_i, c_j], vec![dot]);
    let k_loop = b.outer(
        "ktiles",
        Schedule::Sequential,
        vec![c_tk],
        vec![ld_a, ld_b, ij_loop],
    );

    let base_c = affine_func(&mut b, &[(itm, (tm * p) as i64), (itp, tp as i64)], 0);
    let st_c = store_2d(&mut b, "st_c", d_c, base_c, s_c, tm, tp, p);
    let mp_loop = b.outer(
        "mp_tiles",
        Schedule::Pipelined,
        vec![c_tm, c_tp],
        vec![zero_c, k_loop, st_c],
    );
    let root = b.outer("root", Schedule::Sequential, vec![], vec![mp_loop]);
    let program = b.finish(root).expect("gemm validates");

    // Inputs and golden (same accumulation order as the device: k ascending).
    let a: Vec<Elem> = (0..m * n)
        .map(|i| Elem::F32(hash_unit_f32(i as u64, 20) - 0.5))
        .collect();
    let bm: Vec<Elem> = (0..n * p)
        .map(|i| Elem::F32(hash_unit_f32(i as u64, 21) - 0.5))
        .collect();
    let mut c = vec![Elem::F32(0.0); m * p];
    for i in 0..m {
        for j in 0..p {
            let mut acc = 0.0f32;
            for k in 0..n {
                acc += a[i * n + k].as_f32().unwrap() * bm[k * p + j].as_f32().unwrap();
            }
            c[i * p + j] = Elem::F32(acc);
        }
    }

    Bench {
        name: "GEMM".into(),
        program,
        inputs: vec![(d_a, a), (d_b, bm)],
        expect_drams: vec![(d_c, c)],
        expect_regs: vec![],
        fpga: AppProfile {
            name: "GEMM".into(),
            total_ops: 2.0 * (m * n * p) as f64,
            fp_muls: (m * n * p) as f64,
            fp_adds: (m * n * p) as f64,
            ops_per_elem: 2.0,
            dense_bytes: 4.0 * (m * n * pt + n * p * mt + m * p) as f64,
            random_elems: 0.0,
            // Banked, double-buffered A/B/C tiles exhaust BRAM quickly
            // (the paper's stated FPGA limiter for GEMM).
            buffer_kb: ((tm * tn + tn * tp + tm * tp) * 4 * 2) as f64 / 1024.0,
            app_parallelism: 64.0,
            sequential_frac: 0.0,
            serial_iters: 0.0,
            serial_cycles: 0.0,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gemm_functional_against_golden() {
        let bench = gemm(Scale::tiny());
        bench.run_and_verify().expect("gemm verifies");
    }

    #[test]
    fn gemm_compiles_on_paper_params() {
        let bench = gemm(Scale::tiny());
        let out = plasticine_compiler::compile(
            &bench.program,
            &plasticine_arch::PlasticineParams::paper_final(),
        )
        .expect("gemm compiles");
        assert!(out.config.usage.pcus >= 2);
        assert!(out.config.usage.pmus >= 3);
    }
}
