//! Machine-learning kernels: GDA, LogReg, SGD, and K-means (Table 4).

use crate::util::*;
use crate::{Bench, Scale};
use plasticine_fpga::AppProfile;
use plasticine_ppir::*;

/// Gaussian discriminant analysis: the covariance accumulation
/// `Σ += (x − μ[y]) (x − μ[y])ᵀ`, with the per-class mean vector read
/// through a *duplicated* scratchpad (data-dependent on-chip gather, §3.2).
pub fn gda(scale: Scale) -> Bench {
    let d = 32usize;
    let pt = 16usize;
    let blocks = 2 * scale.0;
    let p = pt * blocks;
    let classes = 2usize;

    let mut b = ProgramBuilder::new("GDA");
    let d_x = b.dram("x", DType::F32, p * d);
    let d_y = b.dram("y", DType::I32, p);
    let d_mu = b.dram("mu", DType::F32, classes * d);
    let d_sigma = b.dram("sigma", DType::F32, d * d);
    let s_mu = b.sram_banked("s_mu", DType::F32, &[classes, d], BankingMode::Duplication);
    let s_x = b.sram("s_x", DType::F32, &[pt, d]);
    let s_y = b.sram("s_y", DType::I32, &[pt]);
    let s_sigma = b.sram("s_sigma", DType::F32, &[d, d]);

    let zero = const_func(&mut b, 0);
    let ld_mu = load_1d(&mut b, "ld_mu", d_mu, zero, s_mu, classes * d);

    // Zero the covariance accumulator.
    let zi = b.counter(0, d as i64, 1, 1);
    let zj = b.counter(0, d as i64, 1, 16);
    let (zii, zji) = (zi.index, zj.index);
    let mut zf = Func::new("zero");
    let z = zf.konst(Elem::F32(0.0));
    zf.set_outputs(vec![z]);
    let zf = b.func(zf);
    let zaddr = coords_func(&mut b, &[zii, zji]);
    let zero_sigma = b.inner(
        "zero_sigma",
        vec![zi, zj],
        InnerOp::Map(MapPipe {
            body: zf,
            writes: vec![PipeWrite {
                sram: s_sigma,
                addr: zaddr,
                value_slot: 0,
                mode: WriteMode::Overwrite,
            }],
        }),
    );

    // Point blocks.
    let pb = b.counter(0, blocks as i64, 1, 2);
    let pbi = pb.index;
    let base_x = affine_func(&mut b, &[(pbi, (pt * d) as i64)], 0);
    let base_y = affine_func(&mut b, &[(pbi, pt as i64)], 0);
    let ld_x = load_1d(&mut b, "ld_x", d_x, base_x, s_x, pt * d);
    let ld_y = load_1d(&mut b, "ld_y", d_y, base_y, s_y, pt);

    // Per point: accumulate the outer product of (x − μ[y]).
    let cp = b.counter(0, pt as i64, 1, 1);
    let pi = cp.index;
    let ci = b.counter(0, d as i64, 1, 2);
    let cj = b.counter(0, d as i64, 1, 16);
    let (iii, jji) = (ci.index, cj.index);
    let mut f = Func::new("outer");
    let pv = f.index(pi);
    let iv = f.index(iii);
    let jv = f.index(jji);
    let y = f.load(s_y, vec![pv]);
    let xi = f.load(s_x, vec![pv, iv]);
    let xj = f.load(s_x, vec![pv, jv]);
    let mui = f.load(s_mu, vec![y, iv]);
    let muj = f.load(s_mu, vec![y, jv]);
    let di = f.binary(BinOp::Sub, xi, mui);
    let dj = f.binary(BinOp::Sub, xj, muj);
    let prod = f.binary(BinOp::Mul, di, dj);
    f.set_outputs(vec![prod]);
    let f = b.func(f);
    let saddr = coords_func(&mut b, &[iii, jji]);
    let acc = b.inner(
        "acc",
        vec![ci, cj],
        InnerOp::Map(MapPipe {
            body: f,
            writes: vec![PipeWrite {
                sram: s_sigma,
                addr: saddr,
                value_slot: 0,
                mode: WriteMode::Accumulate(BinOp::Add),
            }],
        }),
    );
    let pts = b.outer("pts", Schedule::Sequential, vec![cp], vec![acc]);
    let blocks_loop = b.outer(
        "blocks",
        Schedule::Pipelined,
        vec![pb],
        vec![ld_x, ld_y, pts],
    );
    let st_sigma = store_1d(&mut b, "st_sigma", d_sigma, zero, s_sigma, d * d);
    let root = b.outer(
        "root",
        Schedule::Sequential,
        vec![],
        vec![ld_mu, zero_sigma, blocks_loop, st_sigma],
    );
    let program = b.finish(root).expect("gda validates");

    // Data + golden.
    let x: Vec<Elem> = (0..p * d)
        .map(|i| Elem::F32(hash_unit_f32(i as u64, 30)))
        .collect();
    let y: Vec<Elem> = (0..p)
        .map(|i| Elem::I32((hash_u64(i as u64, 31) % classes as u64) as i32))
        .collect();
    let mu: Vec<Elem> = (0..classes * d)
        .map(|i| Elem::F32(hash_unit_f32(i as u64, 32)))
        .collect();
    let mut sigma = vec![0.0f32; d * d];
    for pp in 0..p {
        let cls = y[pp].as_i32().unwrap() as usize;
        for i in 0..d {
            for j in 0..d {
                let di = x[pp * d + i].as_f32().unwrap() - mu[cls * d + i].as_f32().unwrap();
                let dj = x[pp * d + j].as_f32().unwrap() - mu[cls * d + j].as_f32().unwrap();
                sigma[i * d + j] += di * dj;
            }
        }
    }
    let sigma: Vec<Elem> = sigma.into_iter().map(Elem::F32).collect();

    Bench {
        name: "GDA".into(),
        program,
        inputs: vec![(d_x, x), (d_y, y), (d_mu, mu)],
        expect_drams: vec![(d_sigma, sigma)],
        expect_regs: vec![],
        fpga: AppProfile {
            name: "GDA".into(),
            total_ops: (p * d * d * 4) as f64,
            fp_muls: (p * d * d) as f64,
            fp_adds: (p * d * d * 3) as f64,
            ops_per_elem: 4.0,
            dense_bytes: 4.0 * (p * d + p + d * d) as f64,
            random_elems: 0.0,
            buffer_kb: ((pt * d + d * d + classes * d) * 4 * 2) as f64 / 1024.0,
            app_parallelism: 48.0,
            sequential_frac: 0.0,
            // The per-point covariance accumulation is loop-carried on Σ.
            serial_iters: p as f64,
            serial_cycles: (d * d / 16 + 30) as f64,
        },
    }
}

/// Shared structure of LogReg and SGD: per-point dot product + scalar link
/// + vector update, with a sequential point loop.
struct GradientSpec {
    name: &'static str,
    logistic: bool,
    alpha: f32,
    iters: usize,
}

fn gradient_bench(scale: Scale, spec: GradientSpec) -> Bench {
    let d = 128usize;
    let pt = 16usize;
    let blocks = 2 * scale.0;
    let p = pt * blocks;

    let mut b = ProgramBuilder::new(spec.name);
    let d_x = b.dram("x", DType::F32, p * d);
    let d_y = b.dram("y", DType::F32, p);
    let d_w = b.dram("w", DType::F32, d);
    let s_x = b.sram("s_x", DType::F32, &[pt, d]);
    let s_y = b.sram("s_y", DType::F32, &[pt]);
    let s_w = b.sram("s_w", DType::F32, &[d]);
    let s_grad = b.sram("s_grad", DType::F32, &[d]);
    let z = b.reg("z", DType::F32);
    let g = b.reg("g", DType::F32);

    let zero = const_func(&mut b, 0);

    // w := 0
    let cw = b.counter(0, d as i64, 1, 16);
    let cwi = cw.index;
    let mut zf = Func::new("zerof");
    let zc = zf.konst(Elem::F32(0.0));
    zf.set_outputs(vec![zc]);
    let zf = b.func(zf);
    let waddr = coords_func(&mut b, &[cwi]);
    let zero_w = b.inner(
        "zero_w",
        vec![cw],
        InnerOp::Map(MapPipe {
            body: zf,
            writes: vec![PipeWrite {
                sram: s_w,
                addr: waddr,
                value_slot: 0,
                mode: WriteMode::Overwrite,
            }],
        }),
    );

    // grad := 0 (per iteration; LogReg only, but harmless for SGD).
    let cg = b.counter(0, d as i64, 1, 16);
    let cgi = cg.index;
    let gaddr = coords_func(&mut b, &[cgi]);
    let zero_grad = b.inner(
        "zero_grad",
        vec![cg],
        InnerOp::Map(MapPipe {
            body: zf,
            writes: vec![PipeWrite {
                sram: s_grad,
                addr: gaddr,
                value_slot: 0,
                mode: WriteMode::Overwrite,
            }],
        }),
    );

    // Point blocks.
    let pb = b.counter(0, blocks as i64, 1, 1);
    let pbi = pb.index;
    let base_x = affine_func(&mut b, &[(pbi, (pt * d) as i64)], 0);
    let base_y = affine_func(&mut b, &[(pbi, pt as i64)], 0);
    let ld_x = load_1d(&mut b, "ld_x", d_x, base_x, s_x, pt * d);
    let ld_y = load_1d(&mut b, "ld_y", d_y, base_y, s_y, pt);

    let cp = b.counter(0, pt as i64, 1, 1);
    let pi = cp.index;

    // z = w · x[p]
    let ck = b.counter(0, d as i64, 1, 16);
    let cki = ck.index;
    let mut dotf = Func::new("dot");
    let pv = dotf.index(pi);
    let kv = dotf.index(cki);
    let wv = dotf.load(s_w, vec![kv]);
    let xv = dotf.load(s_x, vec![pv, kv]);
    let prod = dotf.binary(BinOp::Mul, wv, xv);
    dotf.set_outputs(vec![prod]);
    let dotf = b.func(dotf);
    let dot = b.inner(
        "dot",
        vec![ck],
        InnerOp::Fold(FoldPipe {
            map: dotf,
            combine: vec![BinOp::Add],
            init: vec![FoldInit::Const(Elem::F32(0.0))],
            out_regs: vec![Some(z)],
            writes: vec![],
        }),
    );

    // Scalar link: g = y − σ(z) (LogReg) or g = α·(z − y) (SGD).
    let mut gf = Func::new("glink");
    let pv = gf.index(pi);
    let yv = gf.load(s_y, vec![pv]);
    let zv = gf.read_reg(z);
    let gval = if spec.logistic {
        let s = append_cnd(&mut gf, zv); // logistic σ via the CND helper
        gf.binary(BinOp::Sub, yv, s)
    } else {
        let e = gf.binary(BinOp::Sub, zv, yv);
        let a = gf.konst(Elem::F32(spec.alpha));
        gf.binary(BinOp::Mul, a, e)
    };
    gf.set_outputs(vec![gval]);
    let gf = b.func(gf);
    let glink = b.inner(
        "glink",
        vec![],
        InnerOp::RegWrite(RegWrite { reg: g, func: gf }),
    );

    // Vector update.
    let cu = b.counter(0, d as i64, 1, 16);
    let cui = cu.index;
    let mut uf = Func::new("update");
    let pv = uf.index(pi);
    let kv = uf.index(cui);
    let xv = uf.load(s_x, vec![pv, kv]);
    let gv = uf.read_reg(g);
    let upd_val = if spec.logistic {
        // grad[k] += g · x[k]
        uf.binary(BinOp::Mul, gv, xv)
    } else {
        // w[k] += −g · x[k]
        let t = uf.binary(BinOp::Mul, gv, xv);
        uf.unary(UnaryOp::Neg, t)
    };
    uf.set_outputs(vec![upd_val]);
    let uf = b.func(uf);
    let uaddr = coords_func(&mut b, &[cui]);
    let target = if spec.logistic { s_grad } else { s_w };
    let update = b.inner(
        "update",
        vec![cu],
        InnerOp::Map(MapPipe {
            body: uf,
            writes: vec![PipeWrite {
                sram: target,
                addr: uaddr,
                value_slot: 0,
                mode: WriteMode::Accumulate(BinOp::Add),
            }],
        }),
    );

    let pts = b.outer(
        "pts",
        Schedule::Sequential,
        vec![cp],
        vec![dot, glink, update],
    );
    let blocks_loop = b.outer(
        "blocks",
        Schedule::Sequential,
        vec![pb],
        vec![ld_x, ld_y, pts],
    );

    // LogReg epoch apply: w += α·grad.
    let ca = b.counter(0, d as i64, 1, 16);
    let cai = ca.index;
    let mut af = Func::new("apply");
    let kv = af.index(cai);
    let gv = af.load(s_grad, vec![kv]);
    let alpha = af.konst(Elem::F32(spec.alpha));
    let step = af.binary(BinOp::Mul, alpha, gv);
    af.set_outputs(vec![step]);
    let af = b.func(af);
    let aaddr = coords_func(&mut b, &[cai]);
    let apply = b.inner(
        "apply",
        vec![ca],
        InnerOp::Map(MapPipe {
            body: af,
            writes: vec![PipeWrite {
                sram: s_w,
                addr: aaddr,
                value_slot: 0,
                mode: WriteMode::Accumulate(BinOp::Add),
            }],
        }),
    );

    let it = b.counter(0, spec.iters as i64, 1, 1);
    let iter_children = if spec.logistic {
        vec![zero_grad, blocks_loop, apply]
    } else {
        vec![zero_grad, blocks_loop]
    };
    let iters = b.outer("iters", Schedule::Sequential, vec![it], iter_children);
    let st_w = store_1d(&mut b, "st_w", d_w, zero, s_w, d);
    let root = b.outer(
        "root",
        Schedule::Sequential,
        vec![],
        vec![zero_w, iters, st_w],
    );
    let program = b.finish(root).expect("gradient kernel validates");

    // Data + golden (exact replication of device order).
    let x: Vec<Elem> = (0..p * d)
        .map(|i| Elem::F32(hash_unit_f32(i as u64, 40) - 0.5))
        .collect();
    let yv: Vec<Elem> = (0..p)
        .map(|i| {
            Elem::F32(if hash_u64(i as u64, 41).is_multiple_of(2) {
                0.0
            } else {
                1.0
            })
        })
        .collect();
    let mut w = vec![0.0f32; d];
    let cnd = |v: f32| 1.0 / (1.0 + (-1.702 * v).exp());
    for _ in 0..spec.iters {
        let mut grad = vec![0.0f32; d];
        for pp in 0..p {
            let mut zh = 0.0f32;
            for k in 0..d {
                zh += w[k] * x[pp * d + k].as_f32().unwrap();
            }
            if spec.logistic {
                let gh = yv[pp].as_f32().unwrap() - cnd(zh);
                for k in 0..d {
                    grad[k] += gh * x[pp * d + k].as_f32().unwrap();
                }
            } else {
                let gh = spec.alpha * (zh - yv[pp].as_f32().unwrap());
                for k in 0..d {
                    w[k] += -(gh * x[pp * d + k].as_f32().unwrap());
                }
            }
        }
        if spec.logistic {
            for k in 0..d {
                w[k] += spec.alpha * grad[k];
            }
        }
    }
    let w: Vec<Elem> = w.into_iter().map(Elem::F32).collect();

    Bench {
        name: spec.name.into(),
        program,
        inputs: vec![(d_x, x), (d_y, yv)],
        expect_drams: vec![(d_w, w)],
        expect_regs: vec![],
        fpga: AppProfile {
            name: spec.name.into(),
            total_ops: (spec.iters * p * (4 * d + 8)) as f64,
            fp_muls: (spec.iters * p * 2 * d) as f64,
            fp_adds: (spec.iters * p * 2 * d) as f64,
            ops_per_elem: 4.0,
            dense_bytes: (spec.iters * (p * d + p) * 4) as f64,
            random_elems: 0.0,
            buffer_kb: ((pt * d + 2 * d) * 4 * 2) as f64 / 1024.0,
            app_parallelism: 16.0,
            // The point loop is inherently sequential (§4.5: SGD "has
            // sequential outer loops"): each point's update must finish
            // before the next dot product can use the weights.
            sequential_frac: 0.0,
            serial_iters: (spec.iters * p) as f64,
            serial_cycles: (d / 16 + 30) as f64,
        },
    }
}

/// Logistic regression with batch gradient descent.
pub fn logreg(scale: Scale) -> Bench {
    gradient_bench(
        scale,
        GradientSpec {
            name: "LogReg",
            logistic: true,
            alpha: 0.1,
            iters: 1,
        },
    )
}

/// Stochastic gradient descent on a linear model (per-point updates,
/// inherently sequential).
pub fn sgd(scale: Scale) -> Bench {
    gradient_bench(
        scale,
        GradientSpec {
            name: "SGD",
            logistic: false,
            alpha: 0.05,
            iters: 1,
        },
    )
}

/// K-means clustering with a dense HashReduce: per point, distances to all
/// centroids, an argmin fold over a packed (distance, index) key, and
/// accumulate-writes into per-cluster sums and counts keyed by the winner.
pub fn kmeans(scale: Scale) -> Bench {
    let d = 32usize;
    let k = 8usize;
    let pt = 16usize;
    let blocks = 2 * scale.0;
    let p = pt * blocks;
    let iters = 1usize;

    let mut b = ProgramBuilder::new("Kmeans");
    let d_x = b.dram("x", DType::F32, p * d);
    let d_cin = b.dram("cent_in", DType::F32, k * d);
    let d_cout = b.dram("cent_out", DType::F32, k * d);
    let s_x = b.sram("s_x", DType::F32, &[pt, d]);
    let s_cent = b.sram("s_cent", DType::F32, &[k, d]);
    let s_sums = b.sram("s_sums", DType::F32, &[k, d]);
    let s_counts = b.sram("s_counts", DType::I32, &[k]);
    let s_dists = b.sram("s_dists", DType::F32, &[k]);
    let minkey = b.reg("minkey", DType::I32);
    let bestk = b.reg("bestk", DType::I32);

    let zero = const_func(&mut b, 0);
    let ld_cent = load_1d(&mut b, "ld_cent", d_cin, zero, s_cent, k * d);

    // Zero sums and counts.
    let zk = b.counter(0, k as i64, 1, 1);
    let zd = b.counter(0, d as i64, 1, 16);
    let (zki, zdi) = (zk.index, zd.index);
    let mut zf32 = Func::new("z32");
    let zc = zf32.konst(Elem::F32(0.0));
    zf32.set_outputs(vec![zc]);
    let zf32 = b.func(zf32);
    let zaddr = coords_func(&mut b, &[zki, zdi]);
    let zero_sums = b.inner(
        "zero_sums",
        vec![zk, zd],
        InnerOp::Map(MapPipe {
            body: zf32,
            writes: vec![PipeWrite {
                sram: s_sums,
                addr: zaddr,
                value_slot: 0,
                mode: WriteMode::Overwrite,
            }],
        }),
    );
    let zc2 = b.counter(0, k as i64, 1, 1);
    let zc2i = zc2.index;
    let mut zi32 = Func::new("zi32");
    let zc0 = zi32.konst(Elem::I32(0));
    zi32.set_outputs(vec![zc0]);
    let zi32 = b.func(zi32);
    let caddr = coords_func(&mut b, &[zc2i]);
    let zero_counts = b.inner(
        "zero_counts",
        vec![zc2],
        InnerOp::Map(MapPipe {
            body: zi32,
            writes: vec![PipeWrite {
                sram: s_counts,
                addr: caddr,
                value_slot: 0,
                mode: WriteMode::Overwrite,
            }],
        }),
    );

    // Point blocks.
    let pb = b.counter(0, blocks as i64, 1, 1);
    let pbi = pb.index;
    let base_x = affine_func(&mut b, &[(pbi, (pt * d) as i64)], 0);
    let ld_x = load_1d(&mut b, "ld_x", d_x, base_x, s_x, pt * d);

    let cp = b.counter(0, pt as i64, 1, 1);
    let pi = cp.index;

    // Distances: for each centroid, fold of squared differences
    // (centroids overlap pairwise in the distance pipeline).
    let ck = b.counter(0, k as i64, 1, 2);
    let cki = ck.index;
    let cd = b.counter(0, d as i64, 1, 16);
    let cdi = cd.index;
    let mut df = Func::new("dist");
    let pv = df.index(pi);
    let kv = df.index(cki);
    let dv = df.index(cdi);
    let xv = df.load(s_x, vec![pv, dv]);
    let cv = df.load(s_cent, vec![kv, dv]);
    let diff = df.binary(BinOp::Sub, xv, cv);
    let sq = df.binary(BinOp::Mul, diff, diff);
    df.set_outputs(vec![sq]);
    let df = b.func(df);
    let daddr = coords_func(&mut b, &[cki]);
    let dist = b.inner(
        "dist",
        vec![cd],
        InnerOp::Fold(FoldPipe {
            map: df,
            combine: vec![BinOp::Add],
            init: vec![FoldInit::Const(Elem::F32(0.0))],
            out_regs: vec![None],
            writes: vec![PipeWrite {
                sram: s_dists,
                addr: daddr,
                value_slot: 0,
                mode: WriteMode::Overwrite,
            }],
        }),
    );
    let dists = b.outer("dists", Schedule::Pipelined, vec![ck], vec![dist]);

    // Argmin over a packed (quantized distance, index) key.
    let ca = b.counter(0, k as i64, 1, 4);
    let cai = ca.index;
    let mut kf = Func::new("key");
    let kv = kf.index(cai);
    let dv = kf.load(s_dists, vec![kv]);
    let q256 = kf.konst(Elem::F32(256.0));
    let scaled = kf.binary(BinOp::Mul, dv, q256);
    let qi = kf.unary(UnaryOp::F2I, scaled);
    let kk = kf.konst(Elem::I32(k as i32));
    let keyhi = kf.binary(BinOp::Mul, qi, kk);
    let key = kf.binary(BinOp::Add, keyhi, kv);
    kf.set_outputs(vec![key]);
    let kf = b.func(kf);
    let argmin = b.inner(
        "argmin",
        vec![ca],
        InnerOp::Fold(FoldPipe {
            map: kf,
            combine: vec![BinOp::Min],
            init: vec![FoldInit::Const(Elem::I32(i32::MAX))],
            out_regs: vec![Some(minkey)],
            writes: vec![],
        }),
    );
    let mut bf = Func::new("bestk");
    let mk = bf.read_reg(minkey);
    let kk = bf.konst(Elem::I32(k as i32));
    let bk = bf.binary(BinOp::Rem, mk, kk);
    bf.set_outputs(vec![bk]);
    let bf = b.func(bf);
    let setbest = b.inner(
        "setbest",
        vec![],
        InnerOp::RegWrite(RegWrite {
            reg: bestk,
            func: bf,
        }),
    );

    // Accumulate the point into the winning cluster (dense HashReduce).
    let cu = b.counter(0, d as i64, 1, 16);
    let cui = cu.index;
    let mut sf = Func::new("sumval");
    let pv = sf.index(pi);
    let dv = sf.index(cui);
    let xv = sf.load(s_x, vec![pv, dv]);
    sf.set_outputs(vec![xv]);
    let sf = b.func(sf);
    let mut sumaddr = Func::new("sumaddr");
    let bkv = sumaddr.read_reg(bestk);
    let dv2 = sumaddr.index(cui);
    sumaddr.set_outputs(vec![bkv, dv2]);
    let sumaddr = b.func(sumaddr);
    let accum = b.inner(
        "accum",
        vec![cu],
        InnerOp::Map(MapPipe {
            body: sf,
            writes: vec![PipeWrite {
                sram: s_sums,
                addr: sumaddr,
                value_slot: 0,
                mode: WriteMode::Accumulate(BinOp::Add),
            }],
        }),
    );
    let mut onef = Func::new("one");
    let one = onef.konst(Elem::I32(1));
    onef.set_outputs(vec![one]);
    let onef = b.func(onef);
    let mut cntaddr = Func::new("cntaddr");
    let bkv = cntaddr.read_reg(bestk);
    cntaddr.set_outputs(vec![bkv]);
    let cntaddr = b.func(cntaddr);
    let count = b.inner(
        "count",
        vec![],
        InnerOp::Map(MapPipe {
            body: onef,
            writes: vec![PipeWrite {
                sram: s_counts,
                addr: cntaddr,
                value_slot: 0,
                mode: WriteMode::Accumulate(BinOp::Add),
            }],
        }),
    );

    let pts = b.outer(
        "pts",
        Schedule::Sequential,
        vec![cp],
        vec![dists, argmin, setbest, accum, count],
    );
    let blocks_loop = b.outer("blocks", Schedule::Sequential, vec![pb], vec![ld_x, pts]);

    // New centroids: sums / counts (keep the old one for empty clusters).
    let nk = b.counter(0, k as i64, 1, 1);
    let nd = b.counter(0, d as i64, 1, 16);
    let (nki, ndi) = (nk.index, nd.index);
    let mut nf = Func::new("newcent");
    let kv = nf.index(nki);
    let dv = nf.index(ndi);
    let sums = nf.load(s_sums, vec![kv, dv]);
    let cnt = nf.load(s_counts, vec![kv]);
    let old = nf.load(s_cent, vec![kv, dv]);
    let zero0 = nf.konst(Elem::I32(0));
    let pred = nf.binary(BinOp::Gt, cnt, zero0);
    let cntf = nf.unary(UnaryOp::I2F, cnt);
    let mean = nf.binary(BinOp::Div, sums, cntf);
    let nv = nf.mux(pred, mean, old);
    nf.set_outputs(vec![nv]);
    let nf = b.func(nf);
    let naddr = coords_func(&mut b, &[nki, ndi]);
    let newcent = b.inner(
        "newcent",
        vec![nk, nd],
        InnerOp::Map(MapPipe {
            body: nf,
            writes: vec![PipeWrite {
                sram: s_cent,
                addr: naddr,
                value_slot: 0,
                mode: WriteMode::Overwrite,
            }],
        }),
    );

    let it = b.counter(0, iters as i64, 1, 1);
    let iters_loop = b.outer(
        "iters",
        Schedule::Sequential,
        vec![it],
        vec![zero_sums, zero_counts, blocks_loop, newcent],
    );
    let st_cent = store_1d(&mut b, "st_cent", d_cout, zero, s_cent, k * d);
    let root = b.outer(
        "root",
        Schedule::Sequential,
        vec![],
        vec![ld_cent, iters_loop, st_cent],
    );
    let program = b.finish(root).expect("kmeans validates");

    // Data + golden.
    let x: Vec<Elem> = (0..p * d)
        .map(|i| Elem::F32(hash_unit_f32(i as u64, 50)))
        .collect();
    let cent0: Vec<Elem> = (0..k * d)
        .map(|i| Elem::F32(hash_unit_f32(i as u64, 51)))
        .collect();
    let mut cent: Vec<f32> = cent0.iter().map(|e| e.as_f32().unwrap()).collect();
    for _ in 0..iters {
        let mut sums = vec![0.0f32; k * d];
        let mut counts = vec![0i32; k];
        for pp in 0..p {
            let mut best_key = i32::MAX;
            for kk in 0..k {
                let mut dist = 0.0f32;
                for dd in 0..d {
                    let diff = x[pp * d + dd].as_f32().unwrap() - cent[kk * d + dd];
                    dist += diff * diff;
                }
                let key = (dist * 256.0) as i32 * k as i32 + kk as i32;
                best_key = best_key.min(key);
            }
            let win = (best_key % k as i32) as usize;
            for dd in 0..d {
                sums[win * d + dd] += x[pp * d + dd].as_f32().unwrap();
            }
            counts[win] += 1;
        }
        for kk in 0..k {
            for dd in 0..d {
                if counts[kk] > 0 {
                    cent[kk * d + dd] = sums[kk * d + dd] / counts[kk] as f32;
                }
            }
        }
    }
    let cent: Vec<Elem> = cent.into_iter().map(Elem::F32).collect();

    Bench {
        name: "Kmeans".into(),
        program,
        inputs: vec![(d_x, x), (d_cin, cent0)],
        expect_drams: vec![(d_cout, cent)],
        expect_regs: vec![],
        fpga: AppProfile {
            name: "Kmeans".into(),
            total_ops: (iters * p * (3 * k * d + 4 * k + d)) as f64,
            fp_muls: (iters * p * k * d) as f64,
            fp_adds: (iters * p * 2 * k * d) as f64,
            ops_per_elem: (3 * k) as f64,
            dense_bytes: (iters * p * d * 4) as f64,
            random_elems: 0.0,
            buffer_kb: ((pt * d + 3 * k * d + 2 * k) * 4 * 2) as f64 / 1024.0,
            app_parallelism: 16.0,
            sequential_frac: 0.0,
            // Each point's assignment depends on the running centroids.
            serial_iters: (iters * p) as f64,
            serial_cycles: (k * d / 16 + 40) as f64,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gda_functional() {
        gda(Scale::tiny()).run_and_verify().unwrap();
    }

    #[test]
    fn logreg_functional() {
        logreg(Scale::tiny()).run_and_verify().unwrap();
    }

    #[test]
    fn sgd_functional() {
        sgd(Scale::tiny()).run_and_verify().unwrap();
    }

    #[test]
    fn kmeans_functional() {
        kmeans(Scale::tiny()).run_and_verify().unwrap();
    }
}
