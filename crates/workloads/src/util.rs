//! Builder helpers shared by the benchmark programs.

use plasticine_ppir::*;

/// Builds a single-output constant function.
pub fn const_func(b: &mut ProgramBuilder, v: i32) -> FuncId {
    let mut f = Func::new("const");
    let c = f.konst(Elem::I32(v));
    f.set_outputs(vec![c]);
    b.func(f)
}

/// Builds an address/offset function `Σ coeff·index + c`.
pub fn affine_func(b: &mut ProgramBuilder, terms: &[(IndexId, i64)], c: i64) -> FuncId {
    let mut f = Func::new("affine");
    let mut acc = f.konst(Elem::I32(c as i32));
    for &(idx, coeff) in terms {
        let iv = f.index(idx);
        let k = f.konst(Elem::I32(coeff as i32));
        let t = f.binary(BinOp::Mul, iv, k);
        acc = f.binary(BinOp::Add, acc, t);
    }
    f.set_outputs(vec![acc]);
    b.func(f)
}

/// Builds a multi-coordinate address function (one output per dim).
pub fn coords_func(b: &mut ProgramBuilder, dims: &[IndexId]) -> FuncId {
    let mut f = Func::new("coords");
    let outs: Vec<ExprId> = dims.iter().map(|&d| f.index(d)).collect();
    f.set_outputs(outs);
    b.func(f)
}

/// Shorthand for a 1-D dense DRAM→scratchpad load.
#[allow(clippy::too_many_arguments)]
pub fn load_1d(
    b: &mut ProgramBuilder,
    name: &str,
    dram: DramId,
    base: FuncId,
    sram: SramId,
    len: usize,
) -> CtrlId {
    b.inner(
        name,
        vec![],
        InnerOp::LoadTile(TileTransfer {
            dram,
            dram_base: base,
            rows: 1,
            cols: len,
            dram_row_stride: len,
            sram,
        }),
    )
}

/// Shorthand for a 1-D dense scratchpad→DRAM store.
pub fn store_1d(
    b: &mut ProgramBuilder,
    name: &str,
    dram: DramId,
    base: FuncId,
    sram: SramId,
    len: usize,
) -> CtrlId {
    b.inner(
        name,
        vec![],
        InnerOp::StoreTile(TileTransfer {
            dram,
            dram_base: base,
            rows: 1,
            cols: len,
            dram_row_stride: len,
            sram,
        }),
    )
}

/// Shorthand for a strided 2-D tile load (`rows × cols`, row stride in
/// elements).
#[allow(clippy::too_many_arguments)]
pub fn load_2d(
    b: &mut ProgramBuilder,
    name: &str,
    dram: DramId,
    base: FuncId,
    sram: SramId,
    rows: usize,
    cols: usize,
    stride: usize,
) -> CtrlId {
    b.inner(
        name,
        vec![],
        InnerOp::LoadTile(TileTransfer {
            dram,
            dram_base: base,
            rows,
            cols,
            dram_row_stride: stride,
            sram,
        }),
    )
}

/// Shorthand for a strided 2-D tile store.
#[allow(clippy::too_many_arguments)]
pub fn store_2d(
    b: &mut ProgramBuilder,
    name: &str,
    dram: DramId,
    base: FuncId,
    sram: SramId,
    rows: usize,
    cols: usize,
    stride: usize,
) -> CtrlId {
    b.inner(
        name,
        vec![],
        InnerOp::StoreTile(TileTransfer {
            dram,
            dram_base: base,
            rows,
            cols,
            dram_row_stride: stride,
            sram,
        }),
    )
}

/// Appends the standard normal CDF approximation (Abramowitz & Stegun
/// 7.1.26 via the logistic surrogate used in accelerator benchmarks) to a
/// function: `Φ(x) ≈ 1 / (1 + e^(−1.702·x))`.
///
/// The paper's Black-Scholes uses a polynomial CND; the logistic surrogate
/// has the same op mix (exp, divide, multiply-adds) and pipeline shape.
pub fn append_cnd(f: &mut Func, x: ExprId) -> ExprId {
    let k = f.konst(Elem::F32(-1.702));
    let kx = f.binary(BinOp::Mul, k, x);
    let e = f.unary(UnaryOp::Exp, kx);
    let one = f.konst(Elem::F32(1.0));
    let denom = f.binary(BinOp::Add, one, e);
    f.binary(BinOp::Div, one, denom)
}

/// Appends the Abramowitz & Stegun 7.1.26 polynomial approximation of the
/// standard normal CDF to a function (the CND used by Black-Scholes
/// kernels): ~22 ALU ops including `exp`, `abs`, divide, and a
/// five-term Horner polynomial.
pub fn append_norm_cdf(f: &mut Func, x: ExprId) -> ExprId {
    let one = f.konst(Elem::F32(1.0));
    let ax = f.unary(UnaryOp::Abs, x);
    // k = 1 / (1 + 0.2316419·|x|)
    let c = f.konst(Elem::F32(0.2316419));
    let cx = f.binary(BinOp::Mul, c, ax);
    let d = f.binary(BinOp::Add, one, cx);
    let k = f.binary(BinOp::Div, one, d);
    // Horner: k(b1 + k(b2 + k(b3 + k(b4 + k·b5))))
    let b5 = f.konst(Elem::F32(1.330_274_4));
    let b4 = f.konst(Elem::F32(-1.821_256));
    let b3 = f.konst(Elem::F32(1.781_477_9));
    let b2 = f.konst(Elem::F32(-0.356_563_78));
    let b1 = f.konst(Elem::F32(0.319_381_53));
    let mut poly = b5;
    for b in [b4, b3, b2, b1] {
        let t = f.binary(BinOp::Mul, poly, k);
        poly = f.binary(BinOp::Add, b, t);
    }
    let poly = f.binary(BinOp::Mul, poly, k);
    // φ(x) = 0.3989423·exp(−x²/2)
    let x2 = f.binary(BinOp::Mul, ax, ax);
    let mh = f.konst(Elem::F32(-0.5));
    let e = f.binary(BinOp::Mul, x2, mh);
    let ex = f.unary(UnaryOp::Exp, e);
    let inv_sqrt2pi = f.konst(Elem::F32(0.398_942_3));
    let phi = f.binary(BinOp::Mul, inv_sqrt2pi, ex);
    // Φ(|x|) = 1 − φ·poly; reflect for negative x.
    let t = f.binary(BinOp::Mul, phi, poly);
    let pos = f.binary(BinOp::Sub, one, t);
    let neg = f.binary(BinOp::Sub, one, pos);
    let zero = f.konst(Elem::F32(0.0));
    let isneg = f.binary(BinOp::Lt, x, zero);
    f.mux(isneg, neg, pos)
}

/// Host-side mirror of [`append_norm_cdf`] (same `f32` operation order, so
/// goldens match the device bit-for-bit).
pub fn norm_cdf(x: f32) -> f32 {
    let ax = x.abs();
    let k = 1.0 / (1.0 + 0.2316419 * ax);
    let mut poly = 1.330_274_4_f32;
    for b in [-1.821_256, 1.781_477_9, -0.356_563_78, 0.319_381_53] {
        poly = b + poly * k;
    }
    let poly = poly * k;
    let phi = 0.398_942_3 * (ax * ax * -0.5).exp();
    let pos = 1.0 - phi * poly;
    if x < 0.0 {
        1.0 - pos
    } else {
        pos
    }
}

/// Deterministic pseudo-random f32 in [0, 1) from an index (splitmix-style
/// hash), for data generators.
pub fn hash_unit_f32(i: u64, seed: u64) -> f32 {
    let mut z = i.wrapping_add(seed).wrapping_add(0x9e3779b97f4a7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^= z >> 31;
    (z >> 40) as f32 / (1u64 << 24) as f32
}

/// Deterministic pseudo-random u64 from an index.
pub fn hash_u64(i: u64, seed: u64) -> u64 {
    let mut z = i.wrapping_add(seed).wrapping_add(0x9e3779b97f4a7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_is_deterministic_and_in_range() {
        for i in 0..1000u64 {
            let a = hash_unit_f32(i, 7);
            let b = hash_unit_f32(i, 7);
            assert_eq!(a, b);
            assert!((0.0..1.0).contains(&a));
        }
        assert_ne!(hash_unit_f32(1, 7), hash_unit_f32(2, 7));
    }

    #[test]
    fn affine_func_evaluates() {
        let mut b = ProgramBuilder::new("t");
        let i = b.counter(0, 4, 1, 1);
        let idx = i.index;
        let f = affine_func(&mut b, &[(idx, 3)], 5);
        let r = b.reg("r", DType::I32);
        let rw = b.inner(
            "rw",
            vec![i],
            InnerOp::RegWrite(RegWrite { reg: r, func: f }),
        );
        let root = b.outer("root", Schedule::Sequential, vec![], vec![rw]);
        let p = b.finish(root).unwrap();
        let mut m = Machine::new(&p);
        m.run().unwrap();
        // Last iteration: 3*3 + 5 = 14.
        assert_eq!(m.reg(r), Elem::I32(14));
    }

    #[test]
    fn cnd_is_monotone_sigmoid() {
        let mut b = ProgramBuilder::new("t");
        let mut f = Func::new("cnd");
        let x = f.konst(Elem::F32(0.0));
        let c = append_cnd(&mut f, x);
        f.set_outputs(vec![c]);
        let fid = b.func(f);
        let r = b.reg("r", DType::F32);
        let rw = b.inner(
            "rw",
            vec![],
            InnerOp::RegWrite(RegWrite { reg: r, func: fid }),
        );
        let root = b.outer("root", Schedule::Sequential, vec![], vec![rw]);
        let p = b.finish(root).unwrap();
        let mut m = Machine::new(&p);
        m.run().unwrap();
        let v = m.reg(r).as_f32().unwrap();
        assert!((v - 0.5).abs() < 1e-6);
    }
}
