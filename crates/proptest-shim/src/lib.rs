//! # plasticine-proptest — deterministic property testing, no dependencies
//!
//! A self-contained property-testing harness exposing the subset of the
//! `proptest` crate's surface this workspace uses: the [`proptest!`] macro
//! with `#![proptest_config(...)]`, `prop_assert!`/`prop_assert_eq!`,
//! range/tuple/`any`/`Just` strategies, `prop::collection::vec`,
//! `prop::sample::select`, and `.prop_map`. The crates-io `proptest` cannot
//! be vendored here (builds must work fully offline), so the workspace
//! aliases `proptest` to this crate via Cargo dependency renaming and the
//! test files keep their idiomatic `use proptest::prelude::*`.
//!
//! ## Determinism and regression files
//!
//! Every run is deterministic: case `i` of property `p` derives its seed
//! from a fixed global constant, the property name, and `i` — there is no
//! wall-clock or OS entropy anywhere. A CI failure therefore reproduces
//! locally by just re-running the test.
//!
//! In addition, each test file may have a committed regression file at
//! `<crate>/proptest-regressions/<file_stem>.txt` with lines of the form
//!
//! ```text
//! cc <property_name> 0x<seed>
//! ```
//!
//! Those seeds run *before* the regular cases, so once a failing seed is
//! committed it is pinned forever. When a property fails, the panic message
//! contains the exact `cc` line to add.
//!
//! Shrinking is intentionally not implemented: generated inputs here are
//! small by construction, and determinism matters more than minimality.

#![warn(missing_docs)]

use std::fmt;
use std::ops::{Range, RangeInclusive};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Fixed global seed. Changing it reshuffles every generated case, so treat
/// it like a file format constant.
pub const GLOBAL_SEED: u64 = 0x5EED_CA5E_2026_0806;

/// SplitMix64 — small, fast, and good enough for test-case generation.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> TestRng {
        TestRng { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        // Multiply-shift bounded sampling (Lemire); bias is < 2^-64 * bound,
        // irrelevant for test generation.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// A failed test case (what `prop_assert!` produces).
#[derive(Debug, Clone)]
pub struct TestCaseError(pub String);

impl TestCaseError {
    /// Builds a failure from any message (mirrors
    /// `proptest::test_runner::TestCaseError::fail`).
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Runner configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` generated cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 64 }
    }
}

/// A generator of values for one property argument.
///
/// Mirrors `proptest::strategy::Strategy` closely enough for this
/// workspace: an associated `Value` type, generation from an RNG, and the
/// `prop_map` adapter.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through a function.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                (lo as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);

/// Types with a canonical full-domain strategy (see [`any`]).
pub trait Arbitrary: Sized {
    /// Generates an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        // Finite, roughly symmetric values; property tests here never need
        // NaN/Inf inputs.
        ((rng.unit_f64() - 0.5) * 2e6) as f32
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        (rng.unit_f64() - 0.5) * 2e12
    }
}

/// Strategy over a type's full domain (`any::<u64>()` etc.).
#[derive(Debug, Clone)]
pub struct Any<T>(std::marker::PhantomData<T>);

/// The `any::<T>()` strategy constructor.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The `prop::` namespace (collection and sample strategies).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{Strategy, TestRng};
        use std::ops::{Range, RangeInclusive};

        /// Size specifications accepted by [`vec`].
        #[derive(Debug, Clone, Copy)]
        pub struct SizeRange {
            lo: usize,
            hi: usize, // inclusive
        }

        impl From<usize> for SizeRange {
            fn from(n: usize) -> SizeRange {
                SizeRange { lo: n, hi: n }
            }
        }

        impl From<Range<usize>> for SizeRange {
            fn from(r: Range<usize>) -> SizeRange {
                assert!(r.start < r.end, "empty vec size range");
                SizeRange {
                    lo: r.start,
                    hi: r.end - 1,
                }
            }
        }

        impl From<RangeInclusive<usize>> for SizeRange {
            fn from(r: RangeInclusive<usize>) -> SizeRange {
                SizeRange {
                    lo: *r.start(),
                    hi: *r.end(),
                }
            }
        }

        /// Strategy for vectors of `element` with a length in `size`.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                size: size.into(),
            }
        }

        /// Strategy returned by [`vec`].
        #[derive(Debug, Clone)]
        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let n = self.size.lo + rng.below((self.size.hi - self.size.lo + 1) as u64) as usize;
                (0..n).map(|_| self.element.generate(rng)).collect()
            }
        }
    }

    /// Sampling strategies.
    pub mod sample {
        use super::super::{Strategy, TestRng};

        /// Strategy choosing uniformly from a fixed set of options.
        pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
            assert!(!options.is_empty(), "select of empty set");
            Select { options }
        }

        /// Strategy returned by [`select`].
        #[derive(Debug, Clone)]
        pub struct Select<T> {
            options: Vec<T>,
        }

        impl<T: Clone> Strategy for Select<T> {
            type Value = T;

            fn generate(&self, rng: &mut TestRng) -> T {
                self.options[rng.below(self.options.len() as u64) as usize].clone()
            }
        }
    }
}

/// Everything a test file needs: `use proptest::prelude::*;`.
pub mod prelude {
    pub use super::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Any, Arbitrary, Just,
        ProptestConfig, Strategy, TestCaseError, TestRng,
    };
}

fn fnv1a(s: &str) -> u64 {
    plasticine_json::hash::fnv1a_str(s)
}

/// Loads pinned regression seeds for `property` from
/// `<manifest_dir>/proptest-regressions/<file_stem>.txt`.
fn regression_seeds(manifest_dir: &str, file: &str, property: &str) -> Vec<u64> {
    let stem = std::path::Path::new(file)
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("unknown");
    let path = std::path::Path::new(manifest_dir)
        .join("proptest-regressions")
        .join(format!("{stem}.txt"));
    let Ok(text) = std::fs::read_to_string(&path) else {
        return Vec::new();
    };
    let mut seeds = Vec::new();
    for line in text.lines() {
        let mut parts = line.split_whitespace();
        if parts.next() != Some("cc") {
            continue;
        }
        let (Some(name), Some(seed)) = (parts.next(), parts.next()) else {
            continue;
        };
        if name != property {
            continue;
        }
        let seed = seed.strip_prefix("0x").unwrap_or(seed);
        if let Ok(v) = u64::from_str_radix(seed, 16) {
            seeds.push(v);
        }
    }
    seeds
}

/// Drives one property: pinned regression seeds first, then `config.cases`
/// deterministically derived cases. Panics (failing the enclosing `#[test]`)
/// on the first failing case, printing the seed and the `cc` line to commit.
pub fn run_property<F>(
    property: &str,
    file: &str,
    manifest_dir: &str,
    config: &ProptestConfig,
    mut body: F,
) where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    let base = GLOBAL_SEED ^ fnv1a(property);
    let pinned = regression_seeds(manifest_dir, file, property);
    let seeds = pinned
        .iter()
        .copied()
        .map(|s| (s, true))
        .chain((0..config.cases as u64).map(|i| {
            // Decorrelate consecutive cases beyond a simple increment.
            (TestRng::new(base.wrapping_add(i)).next_u64(), false)
        }));
    for (seed, is_pinned) in seeds {
        let mut rng = TestRng::new(seed);
        let outcome = catch_unwind(AssertUnwindSafe(|| body(&mut rng)));
        let failure = match outcome {
            Ok(Ok(())) => continue,
            Ok(Err(e)) => e.0,
            Err(payload) => {
                if let Some(s) = payload.downcast_ref::<&str>() {
                    (*s).to_string()
                } else if let Some(s) = payload.downcast_ref::<String>() {
                    s.clone()
                } else {
                    "panic with non-string payload".to_string()
                }
            }
        };
        let kind = if is_pinned {
            "pinned regression seed"
        } else {
            "seed"
        };
        panic!(
            "property `{property}` failed with {kind} 0x{seed:016x}: {failure}\n\
             to pin this case, add the line below to \
             proptest-regressions/<this test file's stem>.txt:\n\
             cc {property} 0x{seed:016x}"
        );
    }
}

/// Defines deterministic property tests; mirrors `proptest::proptest!`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); $($(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                $crate::run_property(
                    stringify!($name),
                    file!(),
                    env!("CARGO_MANIFEST_DIR"),
                    &__config,
                    |__rng: &mut $crate::TestRng| {
                        $(let $arg = $crate::Strategy::generate(&($strat), __rng);)*
                        $body
                        Ok(())
                    },
                );
            }
        )*
    };
}

/// `prop_assert!`: fail the current case without aborting the process.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::TestCaseError(format!($($fmt)*)));
        }
    };
}

/// `prop_assert_eq!`: equality assertion for property bodies.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            a == b,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($a), stringify!($b), a, b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        if !(a == b) {
            return Err($crate::TestCaseError(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)*), a, b
            )));
        }
    }};
}

/// `prop_assert_ne!`: inequality assertion for property bodies.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            a != b,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($a),
            stringify!($b),
            a
        );
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = TestRng::new(1);
        let mut b = TestRng::new(1);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::new(42);
        for _ in 0..1000 {
            let v = (10usize..20).generate(&mut rng);
            assert!((10..20).contains(&v));
            let w = (-5i32..=5).generate(&mut rng);
            assert!((-5..=5).contains(&w));
        }
    }

    #[test]
    fn vec_and_select_and_map_compose() {
        let mut rng = TestRng::new(7);
        let s = prop::collection::vec(
            (0u64..10, prop::sample::select(vec!["a", "b"])).prop_map(|(n, s)| (n * 2, s)),
            3..6,
        );
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((3..6).contains(&v.len()));
            for (n, s) in v {
                assert!(n % 2 == 0 && n < 20);
                assert!(s == "a" || s == "b");
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_generates_and_passes(x in 0u64..100, (a, b) in (0i32..5, 0i32..5)) {
            prop_assert!(x < 100);
            prop_assert_eq!(a + b, b + a);
            prop_assert_ne!(a - 1, a);
        }
    }

    #[test]
    fn failures_report_seed() {
        let r = std::panic::catch_unwind(|| {
            run_property(
                "always_fails",
                "lib.rs",
                env!("CARGO_MANIFEST_DIR"),
                &ProptestConfig::with_cases(1),
                |_| Err(TestCaseError("nope".into())),
            );
        });
        let msg = *r.unwrap_err().downcast::<String>().unwrap();
        assert!(msg.contains("always_fails"), "{msg}");
        assert!(msg.contains("cc always_fails 0x"), "{msg}");
    }
}
