//! Property-based tests for the DRAM timing model and coalescing unit.

use plasticine_dram::*;
use proptest::prelude::*;
use std::collections::HashMap;

fn no_refresh() -> DramConfig {
    DramConfig {
        refresh: false,
        ..DramConfig::default()
    }
}

/// Drives a set of requests to completion, returning (completions, cycles).
fn run_all(cfg: DramConfig, reqs: &[MemRequest]) -> (Vec<Completion>, u64) {
    let mut mem = DramSystem::new(cfg);
    let mut issued = 0usize;
    let mut done = Vec::new();
    let mut guard = 0u64;
    while done.len() < reqs.len() {
        while issued < reqs.len() && mem.can_accept(reqs[issued].addr) {
            mem.push(reqs[issued]).unwrap();
            issued += 1;
        }
        done.extend(mem.tick());
        guard += 1;
        assert!(guard < 5_000_000, "deadlock in DRAM model");
    }
    let t = mem.now();
    (done, t)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn all_requests_complete_exactly_once(
        addrs in prop::collection::vec(0u64..(1 << 26), 1..128),
        write_mask in any::<u64>(),
    ) {
        let reqs: Vec<MemRequest> = addrs.iter().enumerate().map(|(i, &a)| MemRequest {
            id: i as u64,
            addr: a & !63,
            is_write: (write_mask >> (i % 64)) & 1 == 1,
        }).collect();
        let (done, _) = run_all(no_refresh(), &reqs);
        let mut counts: HashMap<u64, u32> = HashMap::new();
        for c in &done {
            *counts.entry(c.id).or_default() += 1;
        }
        prop_assert_eq!(counts.len(), reqs.len());
        prop_assert!(counts.values().all(|&v| v == 1));
    }

    #[test]
    fn no_completion_beats_physical_minimum(
        addrs in prop::collection::vec(0u64..(1 << 24), 1..64),
    ) {
        let cfg = no_refresh();
        let min_read = cfg.ns_to_cycles(cfg.timing.t_rcd_ns)
            + cfg.ns_to_cycles(cfg.timing.t_cas_ns)
            + cfg.ns_to_cycles(cfg.timing.t_burst_ns);
        let reqs: Vec<MemRequest> = addrs.iter().enumerate().map(|(i, &a)| MemRequest {
            id: i as u64,
            addr: a & !63,
            is_write: false,
        }).collect();
        let (done, _) = run_all(cfg, &reqs);
        // Even a row hit cannot return before CAS+burst; the very first
        // access additionally pays tRCD. All requests arrive at t=0-ish, so
        // every completion must be at least CAS+burst, and the earliest
        // completion at least the full activate path.
        let cfg = no_refresh();
        let cas_burst = cfg.ns_to_cycles(cfg.timing.t_cas_ns)
            + cfg.ns_to_cycles(cfg.timing.t_burst_ns);
        for c in &done {
            prop_assert!(c.at >= cas_burst, "completion at {} < {}", c.at, cas_burst);
        }
        let first = done.iter().map(|c| c.at).min().unwrap();
        prop_assert!(first >= min_read);
    }

    #[test]
    fn bandwidth_never_exceeds_peak(
        addrs in prop::collection::vec(0u64..(1 << 22), 32..256),
    ) {
        let cfg = no_refresh();
        let peak = cfg.peak_bytes_per_cycle();
        let reqs: Vec<MemRequest> = addrs.iter().enumerate().map(|(i, &a)| MemRequest {
            id: i as u64,
            addr: a & !63,
            is_write: i % 2 == 0,
        }).collect();
        let (done, t) = run_all(cfg, &reqs);
        let bytes = done.len() as f64 * 64.0;
        prop_assert!(bytes / t as f64 <= peak * 1.001);
    }

    #[test]
    fn coalescer_line_count_equals_distinct_lines(
        elem_addrs in prop::collection::vec(0u64..(1 << 16), 1..200),
    ) {
        let mut cu = CoalescingUnit::new(1024, 64);
        let mut mem = DramSystem::new(no_refresh());
        let mut pushed = 0usize;
        let mut done = Vec::new();
        let mut guard = 0;
        while done.len() < elem_addrs.len() {
            while pushed < elem_addrs.len()
                && cu.try_push(ElemRequest {
                    id: pushed as u64,
                    byte_addr: elem_addrs[pushed] & !3,
                    is_write: false,
                })
            {
                pushed += 1;
            }
            cu.issue(&mut mem);
            let d = mem.tick();
            done.extend(cu.absorb(&d));
            guard += 1;
            prop_assert!(guard < 2_000_000);
        }
        let distinct: std::collections::HashSet<u64> =
            elem_addrs.iter().map(|a| (a & !3) / 64).collect();
        // With an unbounded-enough cache and all requests pushed before any
        // line completes... lines may complete early, allowing re-requests
        // of the same line, so distinct-lines is a lower bound.
        prop_assert!(cu.stats.line_requests >= distinct.len() as u64);
        prop_assert!(cu.stats.line_requests <= elem_addrs.len() as u64);
        prop_assert_eq!(done.len(), elem_addrs.len());
    }

    #[test]
    fn refresh_on_still_completes_everything(
        addrs in prop::collection::vec(0u64..(1 << 20), 1..64),
    ) {
        let cfg = DramConfig::default(); // refresh enabled
        let reqs: Vec<MemRequest> = addrs.iter().enumerate().map(|(i, &a)| MemRequest {
            id: i as u64,
            addr: a & !63,
            is_write: false,
        }).collect();
        let (done, _) = run_all(cfg, &reqs);
        prop_assert_eq!(done.len(), reqs.len());
    }
}
