//! Cross-checks of DDR timing behaviour: bank-level parallelism and the
//! four-activate window.

use plasticine_dram::{DramConfig, DramSystem, MemRequest};

fn cfg() -> DramConfig {
    DramConfig {
        refresh: false,
        ..DramConfig::default()
    }
}

fn run(addrs: &[u64]) -> u64 {
    let mut mem = DramSystem::new(cfg());
    let mut issued = 0usize;
    let mut done = 0usize;
    while done < addrs.len() {
        while issued < addrs.len() && mem.can_accept(addrs[issued]) {
            mem.push(MemRequest {
                id: issued as u64,
                addr: addrs[issued],
                is_write: false,
            })
            .unwrap();
            issued += 1;
        }
        done += mem.tick().len();
        assert!(mem.now() < 1_000_000, "deadlock");
    }
    mem.now()
}

/// Addresses that all live in one channel but walk across banks.
fn bank_stride(cfg: &DramConfig) -> u64 {
    // Lines interleave channels; rows fill before banks advance.
    (cfg.row_bytes / cfg.line_bytes) * cfg.channels as u64 * cfg.line_bytes
}

#[test]
fn different_banks_overlap_row_activations() {
    let c = cfg();
    let stride = bank_stride(&c);
    // 8 row misses in 8 different banks of one channel...
    let spread: Vec<u64> = (0..8u64).map(|i| i * stride).collect();
    // ...versus 8 row misses serialized in a single bank.
    let same_bank_row = stride * (c.banks * c.ranks) as u64;
    let serial: Vec<u64> = (0..8u64).map(|i| i * same_bank_row).collect();
    let t_spread = run(&spread);
    let t_serial = run(&serial);
    assert!(
        t_spread * 2 < t_serial,
        "bank parallelism should at least halve latency: {t_spread} vs {t_serial}"
    );
}

#[test]
fn four_activate_window_throttles_activation_bursts() {
    let c = cfg();
    let stride = bank_stride(&c);
    // 8 activates on one rank: the 5th..8th must wait for tFAW windows.
    let addrs: Vec<u64> = (0..8u64).map(|i| i * stride).collect();
    let t = run(&addrs);
    let faw = c.ns_to_cycles(c.timing.t_faw_ns);
    // Two tFAW windows must elapse before the 8th activate may issue.
    let floor = faw + c.ns_to_cycles(c.timing.t_rcd_ns + c.timing.t_cas_ns + c.timing.t_burst_ns);
    assert!(t >= floor, "tFAW not enforced: {t} < {floor}");
}

#[test]
fn channels_serve_independent_streams_in_parallel() {
    let c = cfg();
    // All requests in channel 0 vs spread over 4 channels.
    let one_ch: Vec<u64> = (0..256u64).map(|i| i * c.channels as u64 * 64).collect();
    let all_ch: Vec<u64> = (0..256u64).map(|i| i * 64).collect();
    let t_one = run(&one_ch);
    let t_all = run(&all_ch);
    assert!(
        (t_all as f64) < 0.4 * t_one as f64,
        "4 channels should give ~4x: {t_all} vs {t_one}"
    );
}
