//! The address coalescing unit (§3.4 of the paper).
//!
//! Sparse memory accesses arrive from address generators one element
//! (4 bytes) at a time. The coalescing unit maintains a *coalescing cache*
//! of outstanding line requests; element accesses falling in the same
//! 64-byte line are merged onto one DRAM request, so a gather of spatially
//! clustered indices costs far fewer DRAM bursts than elements. Sparse
//! loads become gathers, sparse stores become scatters.

use crate::channel::{Completion, MemRequest};
use crate::system::{DramSystem, QueueFull};
use plasticine_json::decode::{arr_of, bool_of, field, hex_of, u64_of, R};
use plasticine_json::Json;
use std::collections::{HashMap, VecDeque};

/// A 4-byte element request from an address generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ElemRequest {
    /// Caller-chosen identifier.
    pub id: u64,
    /// Byte address of the element.
    pub byte_addr: u64,
    /// Write (scatter) or read (gather).
    pub is_write: bool,
}

/// A finished element request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ElemCompletion {
    /// Identifier from the original element request.
    pub id: u64,
    /// Byte address of the element.
    pub byte_addr: u64,
    /// Whether it was a write.
    pub is_write: bool,
    /// Core cycle of completion.
    pub at: u64,
}

/// Coalescing statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CoalesceStats {
    /// Element requests accepted.
    pub elem_requests: u64,
    /// Line requests issued to DRAM.
    pub line_requests: u64,
    /// Element requests that merged into an existing outstanding line.
    pub merged: u64,
}

#[derive(Debug, Clone)]
struct Entry {
    elems: Vec<ElemRequest>,
    issued: bool,
}

/// Anything a coalescing unit can issue line requests into: the whole
/// [`DramSystem`], or one detached [`ChannelShard`](crate::ChannelShard)
/// during a parallel fast-forward span.
pub trait LineSink {
    /// Attempts to enqueue a line request; `Err(QueueFull)` must leave the
    /// sink unchanged (the unit retries the same line later).
    fn push_line(&mut self, req: MemRequest) -> Result<(), QueueFull>;
}

impl LineSink for DramSystem {
    fn push_line(&mut self, req: MemRequest) -> Result<(), QueueFull> {
        self.push(req)
    }
}

/// Merges element-granularity sparse accesses into line-granularity DRAM
/// requests using a bounded coalescing cache.
///
/// Reads and writes to the same line are tracked as separate entries (a
/// read burst and a write burst are distinct DRAM transactions).
#[derive(Debug, Clone)]
pub struct CoalescingUnit {
    line_bytes: u64,
    capacity: usize,
    namespace: u64,
    cache: HashMap<(u64, bool), Entry>,
    issue_queue: VecDeque<(u64, bool)>,
    by_req_id: HashMap<u64, (u64, bool)>,
    next_line_req: u64,
    /// Statistics.
    pub stats: CoalesceStats,
}

impl CoalescingUnit {
    /// Creates a unit with the given coalescing-cache capacity (outstanding
    /// lines) for a memory system with `line_bytes` lines.
    pub fn new(capacity: usize, line_bytes: u64) -> CoalescingUnit {
        CoalescingUnit::with_namespace(capacity, line_bytes, u64::MAX / 2)
    }

    /// Like [`CoalescingUnit::new`] but with an explicit request-id
    /// namespace base, so several units can share one [`DramSystem`]
    /// without id collisions. Reserve disjoint high ranges per unit; ids
    /// below any namespace stay available to direct (dense) requesters.
    pub fn with_namespace(capacity: usize, line_bytes: u64, namespace: u64) -> CoalescingUnit {
        CoalescingUnit {
            line_bytes,
            capacity,
            namespace,
            cache: HashMap::new(),
            issue_queue: VecDeque::new(),
            by_req_id: HashMap::new(),
            next_line_req: 0,
            stats: CoalesceStats::default(),
        }
    }

    /// Number of outstanding lines in the cache.
    pub fn outstanding(&self) -> usize {
        self.cache.len()
    }

    /// Whether line requests are still waiting to enter the memory system
    /// (accepted elements whose line [`issue`](Self::issue) could not push
    /// past a full channel queue yet).
    pub fn has_pending_issues(&self) -> bool {
        !self.issue_queue.is_empty()
    }

    /// Whether all merged element requests have completed.
    pub fn idle(&self) -> bool {
        self.cache.is_empty()
    }

    /// Attempts to accept an element request. Returns `false` (caller must
    /// retry later) when the request needs a new cache entry and the cache
    /// is full.
    pub fn try_push(&mut self, req: ElemRequest) -> bool {
        let line = req.byte_addr / self.line_bytes;
        let key = (line, req.is_write);
        if let Some(e) = self.cache.get_mut(&key) {
            // Merging into an already-issued read is fine (data returns for
            // the whole line); merging into an issued *write* is also safe
            // in this model because write data is captured at issue by the
            // simulator, so require a fresh entry for issued writes.
            if !(req.is_write && e.issued) {
                e.elems.push(req);
                self.stats.elem_requests += 1;
                self.stats.merged += 1;
                return true;
            }
        }
        if self.cache.len() >= self.capacity {
            return false;
        }
        match self.cache.entry(key) {
            std::collections::hash_map::Entry::Occupied(_) => {
                // Issued write to same line: queue a second transaction by
                // declining; caller retries after the first completes.
                false
            }
            std::collections::hash_map::Entry::Vacant(v) => {
                v.insert(Entry {
                    elems: vec![req],
                    issued: false,
                });
                self.issue_queue.push_back(key);
                self.stats.elem_requests += 1;
                true
            }
        }
    }

    /// Issues pending line requests into the memory system (as many as the
    /// channel queues accept this cycle).
    pub fn issue<M: LineSink>(&mut self, mem: &mut M) {
        while let Some(&key) = self.issue_queue.front() {
            let (line, is_write) = key;
            let req_id = self.namespace + self.next_line_req;
            let push = mem.push_line(MemRequest {
                id: req_id, // namespaced; mapped back via by_req_id
                addr: line * self.line_bytes,
                is_write,
            });
            match push {
                Ok(()) => {
                    self.next_line_req += 1;
                    self.by_req_id.insert(req_id, key);
                    self.cache.get_mut(&key).expect("entry exists").issued = true;
                    self.issue_queue.pop_front();
                    self.stats.line_requests += 1;
                }
                Err(QueueFull) => break,
            }
        }
    }

    /// Serializes the mutable coalescing state. The `cache` and
    /// `by_req_id` maps are emitted sorted by key so the snapshot bytes
    /// are canonical (their `HashMap` iteration order is per-process);
    /// `issue_queue` order is preserved verbatim because issue order is
    /// behaviorally significant. Capacity, line size, and the id
    /// namespace come from the constructor and are not included.
    pub fn snapshot(&self) -> Json {
        let elem_json = |e: &ElemRequest| {
            Json::obj([
                ("id", Json::hex(e.id)),
                ("addr", Json::hex(e.byte_addr)),
                ("w", Json::from(e.is_write)),
            ])
        };
        let mut cache: Vec<_> = self.cache.iter().collect();
        cache.sort_by_key(|(k, _)| **k);
        let mut by_req: Vec<_> = self.by_req_id.iter().collect();
        by_req.sort_by_key(|(k, _)| **k);
        Json::obj([
            (
                "cache",
                Json::Arr(
                    cache
                        .into_iter()
                        .map(|(&(line, w), e)| {
                            Json::obj([
                                ("line", Json::hex(line)),
                                ("w", Json::from(w)),
                                ("issued", Json::from(e.issued)),
                                ("elems", Json::Arr(e.elems.iter().map(elem_json).collect())),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "issue_queue",
                Json::Arr(
                    self.issue_queue
                        .iter()
                        .map(|&(line, w)| {
                            Json::obj([("line", Json::hex(line)), ("w", Json::from(w))])
                        })
                        .collect(),
                ),
            ),
            (
                "by_req_id",
                Json::Arr(
                    by_req
                        .into_iter()
                        .map(|(&req, &(line, w))| {
                            Json::obj([
                                ("req", Json::hex(req)),
                                ("line", Json::hex(line)),
                                ("w", Json::from(w)),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("next_line_req", Json::from(self.next_line_req)),
            (
                "stats",
                Json::obj([
                    ("elem_requests", Json::from(self.stats.elem_requests)),
                    ("line_requests", Json::from(self.stats.line_requests)),
                    ("merged", Json::from(self.stats.merged)),
                ]),
            ),
        ])
    }

    /// Restores state captured by [`snapshot`](Self::snapshot) into a unit
    /// freshly built with the same constructor arguments.
    ///
    /// # Errors
    ///
    /// Fails with a message on a malformed snapshot.
    pub fn restore(&mut self, j: &Json) -> R<()> {
        self.cache.clear();
        for cj in arr_of(j, "cache")? {
            let mut elems = Vec::new();
            for ej in arr_of(cj, "elems")? {
                elems.push(ElemRequest {
                    id: hex_of(ej, "id")?,
                    byte_addr: hex_of(ej, "addr")?,
                    is_write: bool_of(ej, "w")?,
                });
            }
            self.cache.insert(
                (hex_of(cj, "line")?, bool_of(cj, "w")?),
                Entry {
                    elems,
                    issued: bool_of(cj, "issued")?,
                },
            );
        }
        self.issue_queue.clear();
        for qj in arr_of(j, "issue_queue")? {
            self.issue_queue
                .push_back((hex_of(qj, "line")?, bool_of(qj, "w")?));
        }
        self.by_req_id.clear();
        for rj in arr_of(j, "by_req_id")? {
            self.by_req_id
                .insert(hex_of(rj, "req")?, (hex_of(rj, "line")?, bool_of(rj, "w")?));
        }
        self.next_line_req = u64_of(j, "next_line_req")?;
        let s = field(j, "stats")?;
        self.stats = CoalesceStats {
            elem_requests: u64_of(s, "elem_requests")?,
            line_requests: u64_of(s, "line_requests")?,
            merged: u64_of(s, "merged")?,
        };
        Ok(())
    }

    /// Processes DRAM completions, returning the element completions they
    /// unblock. Completions not owned by this unit are ignored.
    pub fn absorb(&mut self, completions: &[Completion]) -> Vec<ElemCompletion> {
        let mut out = Vec::new();
        for c in completions {
            let Some(key) = self.by_req_id.remove(&c.id) else {
                continue;
            };
            let entry = self.cache.remove(&key).expect("cache entry for line");
            for e in entry.elems {
                out.push(ElemCompletion {
                    id: e.id,
                    byte_addr: e.byte_addr,
                    is_write: e.is_write,
                    at: c.at,
                });
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DramConfig;

    fn mem() -> DramSystem {
        DramSystem::new(DramConfig {
            refresh: false,
            ..DramConfig::default()
        })
    }

    fn drain(cu: &mut CoalescingUnit, mem: &mut DramSystem) -> Vec<ElemCompletion> {
        let mut out = Vec::new();
        for _ in 0..1_000_000 {
            cu.issue(mem);
            let done = mem.tick();
            out.extend(cu.absorb(&done));
            if cu.idle() && mem.idle() {
                break;
            }
        }
        out
    }

    #[test]
    fn same_line_elements_coalesce_to_one_burst() {
        let mut cu = CoalescingUnit::new(64, 64);
        let mut m = mem();
        // 16 elements in one 64-byte line.
        for i in 0..16u64 {
            assert!(cu.try_push(ElemRequest {
                id: i,
                byte_addr: i * 4,
                is_write: false
            }));
        }
        let done = drain(&mut cu, &mut m);
        assert_eq!(done.len(), 16);
        assert_eq!(cu.stats.line_requests, 1);
        assert_eq!(cu.stats.merged, 15);
        assert_eq!(m.stats().reads, 1);
    }

    #[test]
    fn distinct_lines_issue_separately() {
        let mut cu = CoalescingUnit::new(64, 64);
        let mut m = mem();
        for i in 0..8u64 {
            assert!(cu.try_push(ElemRequest {
                id: i,
                byte_addr: i * 4096,
                is_write: false
            }));
        }
        let done = drain(&mut cu, &mut m);
        assert_eq!(done.len(), 8);
        assert_eq!(cu.stats.line_requests, 8);
        assert_eq!(cu.stats.merged, 0);
    }

    #[test]
    fn cache_capacity_backpressures() {
        let mut cu = CoalescingUnit::new(2, 64);
        assert!(cu.try_push(ElemRequest {
            id: 0,
            byte_addr: 0,
            is_write: false
        }));
        assert!(cu.try_push(ElemRequest {
            id: 1,
            byte_addr: 4096,
            is_write: false
        }));
        // Third distinct line: refused.
        assert!(!cu.try_push(ElemRequest {
            id: 2,
            byte_addr: 8192,
            is_write: false
        }));
        // Same line as an unissued entry: still merges.
        assert!(cu.try_push(ElemRequest {
            id: 3,
            byte_addr: 4,
            is_write: false
        }));
    }

    #[test]
    fn reads_and_writes_to_same_line_are_separate_transactions() {
        let mut cu = CoalescingUnit::new(8, 64);
        let mut m = mem();
        assert!(cu.try_push(ElemRequest {
            id: 0,
            byte_addr: 0,
            is_write: false
        }));
        assert!(cu.try_push(ElemRequest {
            id: 1,
            byte_addr: 0,
            is_write: true
        }));
        let done = drain(&mut cu, &mut m);
        assert_eq!(done.len(), 2);
        assert_eq!(cu.stats.line_requests, 2);
        let s = m.stats();
        assert_eq!(s.reads, 1);
        assert_eq!(s.writes, 1);
    }

    #[test]
    fn clustered_gather_uses_fewer_bursts_than_scattered() {
        let run = |addrs: &[u64]| {
            let mut cu = CoalescingUnit::new(64, 64);
            let mut m = mem();
            let mut pushed = 0usize;
            let mut done = Vec::new();
            for _ in 0..1_000_000 {
                while pushed < addrs.len()
                    && cu.try_push(ElemRequest {
                        id: pushed as u64,
                        byte_addr: addrs[pushed],
                        is_write: false,
                    })
                {
                    pushed += 1;
                }
                cu.issue(&mut m);
                let d = m.tick();
                done.extend(cu.absorb(&d));
                if pushed == addrs.len() && cu.idle() && m.idle() {
                    break;
                }
            }
            assert_eq!(done.len(), addrs.len());
            (cu.stats.line_requests, m.now())
        };
        let clustered: Vec<u64> = (0..256u64).map(|i| (i / 16) * 64 + (i % 16) * 4).collect();
        let scattered: Vec<u64> = (0..256u64).map(|i| i * 8192).collect();
        let (lines_c, t_c) = run(&clustered);
        let (lines_s, t_s) = run(&scattered);
        assert_eq!(lines_c, 16);
        assert_eq!(lines_s, 256);
        assert!(t_s > t_c, "scattered {t_s} <= clustered {t_c}");
    }
}
