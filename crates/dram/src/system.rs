//! The multi-channel memory system front-end.

use crate::channel::{Channel, ChannelStats, Completion, MemRequest};
use crate::config::DramConfig;
use plasticine_json::Json;

/// Aggregate statistics across all channels.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DramStats {
    /// Lines read.
    pub reads: u64,
    /// Lines written.
    pub writes: u64,
    /// Row-buffer hits.
    pub row_hits: u64,
    /// Activates (row-buffer misses).
    pub activates: u64,
    /// Precharges (row conflicts).
    pub precharges: u64,
    /// Refresh operations.
    pub refreshes: u64,
    /// Data-bus busy cycles summed over channels.
    pub busy_cycles: u64,
    /// Summed read latency (request arrival to end of data), in cycles.
    pub read_latency_cycles: u64,
    /// Summed write latency, in cycles.
    pub write_latency_cycles: u64,
    /// Worst single-request latency observed, in cycles.
    pub max_latency_cycles: u64,
}

impl DramStats {
    fn add(&mut self, c: &ChannelStats) {
        self.reads += c.reads;
        self.writes += c.writes;
        self.row_hits += c.row_hits;
        self.activates += c.activates;
        self.precharges += c.precharges;
        self.refreshes += c.refreshes;
        self.busy_cycles += c.busy_cycles;
        self.read_latency_cycles += c.read_latency_cycles;
        self.write_latency_cycles += c.write_latency_cycles;
        self.max_latency_cycles = self.max_latency_cycles.max(c.max_latency_cycles);
    }

    /// Mean read latency in cycles (0 when nothing was read).
    pub fn avg_read_latency(&self) -> f64 {
        if self.reads == 0 {
            0.0
        } else {
            self.read_latency_cycles as f64 / self.reads as f64
        }
    }

    /// Mean write latency in cycles (0 when nothing was written).
    pub fn avg_write_latency(&self) -> f64 {
        if self.writes == 0 {
            0.0
        } else {
            self.write_latency_cycles as f64 / self.writes as f64
        }
    }
}

/// A complete DDR memory system: several independent channels behind a
/// line-interleaved address map.
///
/// Drive it by calling [`push`](DramSystem::push) to enqueue line requests
/// and [`tick`](DramSystem::tick) once per core cycle; completions come back
/// from `tick`.
///
/// # Examples
///
/// ```
/// use plasticine_dram::{DramConfig, DramSystem, MemRequest};
/// let mut mem = DramSystem::new(DramConfig::default());
/// mem.push(MemRequest { id: 7, addr: 0, is_write: false }).unwrap();
/// let mut done = Vec::new();
/// while done.is_empty() {
///     done = mem.tick();
/// }
/// assert_eq!(done[0].id, 7);
/// ```
#[derive(Debug)]
pub struct DramSystem {
    cfg: DramConfig,
    channels: Vec<Channel>,
    now: u64,
    /// Nominal channel index → serving channel index. Identity when no
    /// channel is offline; offline channels spill onto survivors.
    remap: Option<Vec<usize>>,
}

/// Error returned when a channel queue is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueueFull;

impl std::fmt::Display for QueueFull {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "channel request queue is full")
    }
}

impl std::error::Error for QueueFull {}

impl DramSystem {
    /// Builds the memory system.
    pub fn new(cfg: DramConfig) -> DramSystem {
        let channels = (0..cfg.channels).map(|_| Channel::new(&cfg)).collect();
        DramSystem {
            cfg,
            channels,
            now: 0,
            remap: None,
        }
    }

    /// Takes the listed channels offline; their traffic spills onto the
    /// surviving channels (round-robin by nominal index). Returns false —
    /// and changes nothing — when the fault map would disable every channel.
    pub fn set_offline(&mut self, offline: &[usize]) -> bool {
        let live: Vec<usize> = (0..self.channels.len())
            .filter(|c| !offline.contains(c))
            .collect();
        if live.is_empty() {
            return false;
        }
        if live.len() == self.channels.len() {
            self.remap = None;
            return true;
        }
        self.remap = Some(
            (0..self.channels.len())
                .map(|c| {
                    if offline.contains(&c) {
                        live[c % live.len()]
                    } else {
                        c
                    }
                })
                .collect(),
        );
        true
    }

    /// Resolves a nominal channel index to the channel actually serving it.
    fn chan(&self, nominal: usize) -> usize {
        match &self.remap {
            Some(m) => m[nominal],
            None => nominal,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &DramConfig {
        &self.cfg
    }

    /// Current cycle (number of `tick` calls so far).
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Whether the channel owning `addr` can accept another request.
    pub fn can_accept(&self, addr: u64) -> bool {
        self.channels[self.chan(self.cfg.map(addr).channel)].has_capacity()
    }

    /// Enqueues a line request.
    ///
    /// # Errors
    ///
    /// Returns [`QueueFull`] if the owning channel's queue is full; the
    /// caller should retry on a later cycle (this models AG backpressure).
    pub fn push(&mut self, req: MemRequest) -> Result<(), QueueFull> {
        let loc = self.cfg.map(req.addr);
        let ch = self.chan(loc.channel);
        if self.channels[ch].push(req, loc, self.now) {
            Ok(())
        } else {
            Err(QueueFull)
        }
    }

    /// Advances one core cycle; returns all requests that completed.
    pub fn tick(&mut self) -> Vec<Completion> {
        let mut done = Vec::new();
        for ch in &mut self.channels {
            ch.tick(self.now, &mut done);
        }
        self.now += 1;
        done
    }

    /// Earliest cycle ≥ [`now`](Self::now) at which a [`tick`](Self::tick)
    /// could change any channel's state (issue a command, start a refresh,
    /// or complete a burst), or `u64::MAX` when the whole system is drained
    /// and refresh is off. Ticking strictly before this cycle is guaranteed
    /// to be a no-op, which is what lets an event-driven caller
    /// [`skip`](Self::skip) the gap.
    pub fn next_event(&self) -> u64 {
        let mut ev = u64::MAX;
        for c in &self.channels {
            let e = c.next_event(self.now);
            if e <= self.now {
                // Already at the minimum possible value; skip the remaining
                // per-channel queue scans.
                return self.now;
            }
            ev = ev.min(e);
        }
        ev
    }

    /// Advances the clock by `cycles` without ticking the channels. Only
    /// sound when the span contains no event, i.e. `cycles` must not exceed
    /// `next_event() - now` — every skipped tick would have been a no-op.
    pub fn skip(&mut self, cycles: u64) {
        debug_assert!(
            self.now.saturating_add(cycles) <= self.next_event(),
            "skip({cycles}) at {} crosses an event at {}",
            self.now,
            self.next_event()
        );
        self.now += cycles;
    }

    /// Sets the clock to `now` (≥ the current clock) without ticking. Unlike
    /// [`skip`](Self::skip) this does not assert event-freedom: the parallel
    /// fast-forward driver uses it after shards have already processed the
    /// span's events on detached channels.
    pub fn advance_to(&mut self, now: u64) {
        debug_assert!(
            now >= self.now,
            "advance_to({now}) behind clock {}",
            self.now
        );
        self.now = now;
    }

    /// The nominal→serving channel remap as a vector, if any channel is
    /// offline.
    pub(crate) fn remap_vec(&self) -> Option<Vec<usize>> {
        self.remap.clone()
    }

    /// Serving channel index for a nominal channel index (public form of
    /// [`chan`](Self::chan), used by the shard-map builder).
    pub fn serving_channel(&self, nominal: usize) -> usize {
        self.chan(nominal)
    }

    /// Earliest event cycle for one channel (same contract as
    /// [`next_event`](Self::next_event), restricted to channel `ch`). Lets
    /// the parallel span driver count how many shards actually have work
    /// below a horizon before paying for a dispatch.
    pub fn channel_next_event(&self, ch: usize) -> u64 {
        self.channels[ch].next_event(self.now)
    }

    pub(crate) fn swap_channel(&mut self, idx: usize, ch: Channel) -> Channel {
        std::mem::replace(&mut self.channels[idx], ch)
    }

    /// Serializes the mutable memory-system state (clock plus per-channel
    /// snapshots). The config and offline-channel remap are *not* included:
    /// a resume rebuilds the system from the same config and replays
    /// `set_offline`, then overlays this snapshot.
    pub fn snapshot(&self) -> Json {
        Json::obj([
            ("now", Json::from(self.now)),
            (
                "channels",
                Json::Arr(self.channels.iter().map(|c| c.snapshot()).collect()),
            ),
        ])
    }

    /// Restores state captured by [`snapshot`](Self::snapshot) into a
    /// system freshly built from the same config (and with the same
    /// offline channels already applied).
    ///
    /// # Errors
    ///
    /// Fails with a message when the snapshot shape does not match this
    /// system's configuration.
    pub fn restore(&mut self, j: &Json) -> Result<(), String> {
        let chans = plasticine_json::decode::arr_of(j, "channels")?;
        if chans.len() != self.channels.len() {
            return Err(format!(
                "channel count mismatch: snapshot {} vs config {}",
                chans.len(),
                self.channels.len()
            ));
        }
        for (ch, cj) in self.channels.iter_mut().zip(chans) {
            ch.restore(cj, &self.cfg)?;
        }
        self.now = plasticine_json::decode::u64_of(j, "now")?;
        Ok(())
    }

    /// Total column commands issued so far (lines read + written). The
    /// delta across one tick tells an event-driven caller whether queue
    /// capacity was freed this cycle.
    pub fn issued_columns(&self) -> u64 {
        self.channels
            .iter()
            .map(|c| c.stats.reads + c.stats.writes)
            .sum()
    }

    /// Number of requests in flight (queued or awaiting data).
    pub fn pending(&self) -> usize {
        self.channels.iter().map(|c| c.pending()).sum()
    }

    /// Whether all queues are drained.
    pub fn idle(&self) -> bool {
        self.pending() == 0
    }

    /// Aggregate statistics.
    pub fn stats(&self) -> DramStats {
        let mut s = DramStats::default();
        for ch in &self.channels {
            s.add(&ch.stats);
        }
        s
    }

    /// Achieved bandwidth so far in bytes per cycle.
    pub fn achieved_bytes_per_cycle(&self) -> f64 {
        if self.now == 0 {
            return 0.0;
        }
        let s = self.stats();
        (s.reads + s.writes) as f64 * self.cfg.line_bytes as f64 / self.now as f64
    }
}

/// Splits a dense byte range into line-aligned line addresses — how an
/// address generator converts a burst command into DRAM requests.
pub fn lines_for_range(base: u64, len_bytes: u64, line_bytes: u64) -> impl Iterator<Item = u64> {
    let first = base / line_bytes;
    let last = if len_bytes == 0 {
        first
    } else {
        (base + len_bytes - 1) / line_bytes + 1
    };
    (first..last).map(move |l| l * line_bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn no_refresh() -> DramConfig {
        DramConfig {
            refresh: false,
            ..DramConfig::default()
        }
    }

    #[test]
    fn dense_stream_saturates_most_of_peak() {
        let cfg = no_refresh();
        let peak = cfg.peak_bytes_per_cycle();
        let mut mem = DramSystem::new(cfg);
        let total_lines = 4096u64;
        let mut issued = 0u64;
        let mut completed = 0u64;
        let mut t = 0u64;
        while completed < total_lines {
            while issued < total_lines && mem.can_accept(issued * 64) {
                mem.push(MemRequest {
                    id: issued,
                    addr: issued * 64,
                    is_write: false,
                })
                .unwrap();
                issued += 1;
            }
            completed += mem.tick().len() as u64;
            t += 1;
            assert!(t < 200_000, "deadlock");
        }
        let achieved = total_lines as f64 * 64.0 / t as f64;
        assert!(
            achieved > 0.80 * peak,
            "achieved {achieved:.2} B/cy vs peak {peak:.2}"
        );
    }

    #[test]
    fn random_stream_is_much_slower_than_dense() {
        let cfg = no_refresh();
        let run = |addrs: &[u64]| {
            let mut mem = DramSystem::new(no_refresh());
            let mut issued = 0usize;
            let mut completed = 0usize;
            let mut t = 0u64;
            while completed < addrs.len() {
                while issued < addrs.len() && mem.can_accept(addrs[issued]) {
                    mem.push(MemRequest {
                        id: issued as u64,
                        addr: addrs[issued],
                        is_write: false,
                    })
                    .unwrap();
                    issued += 1;
                }
                completed += mem.tick().len();
                t += 1;
                assert!(t < 2_000_000, "deadlock");
            }
            t
        };
        let n = 2048u64;
        let dense: Vec<u64> = (0..n).map(|i| i * 64).collect();
        // Large-stride pseudo-random: every access a fresh row.
        let row_span = cfg.row_bytes * cfg.banks as u64 * cfg.ranks as u64 * cfg.channels as u64;
        let random: Vec<u64> = (0..n).map(|i| (i * 7 + 3) * row_span).collect();
        let t_dense = run(&dense);
        let t_random = run(&random);
        assert!(
            t_random > 3 * t_dense,
            "random {t_random} vs dense {t_dense}"
        );
    }

    #[test]
    fn every_request_completes_exactly_once() {
        let mut mem = DramSystem::new(no_refresh());
        let n = 512u64;
        let mut seen = std::collections::HashMap::new();
        let mut issued = 0u64;
        let mut t = 0u64;
        while (seen.len() as u64) < n {
            while issued < n && mem.can_accept(issued * 4096) {
                mem.push(MemRequest {
                    id: issued,
                    addr: issued * 4096,
                    is_write: issued.is_multiple_of(3),
                })
                .unwrap();
                issued += 1;
            }
            for c in mem.tick() {
                *seen.entry(c.id).or_insert(0u32) += 1;
            }
            t += 1;
            assert!(t < 1_000_000, "deadlock");
        }
        assert!(seen.values().all(|&v| v == 1));
        assert!(mem.idle());
        let s = mem.stats();
        assert_eq!(s.reads + s.writes, n);
    }

    #[test]
    fn offline_channels_spill_onto_survivors() {
        let mut mem = DramSystem::new(no_refresh());
        let n_ch = mem.config().channels;
        assert!(n_ch > 1);
        // Everything offline is rejected and leaves the system untouched.
        let all: Vec<usize> = (0..n_ch).collect();
        assert!(!mem.set_offline(&all));
        // Channel 0 offline: its traffic completes on survivors.
        assert!(mem.set_offline(&[0]));
        for i in 0..64u64 {
            mem.push(MemRequest {
                id: i,
                addr: i * 64,
                is_write: false,
            })
            .unwrap();
        }
        let mut done = 0;
        for _ in 0..100_000 {
            done += mem.tick().len();
            if done == 64 {
                break;
            }
        }
        assert_eq!(done, 64);
        // The offline channel itself never serviced anything.
        assert_eq!(mem.channels[0].stats.reads, 0);
        assert_eq!(mem.stats().reads, 64);
    }

    #[test]
    fn event_skipping_matches_cycle_stepping() {
        // Mixed read/write traffic with row hits, conflicts, and refresh on:
        // ticking only at next_event() times (skipping the gaps) must yield
        // the same completion times, stats, and final clock as ticking every
        // cycle.
        let run = |event_driven: bool| {
            let mut mem = DramSystem::new(DramConfig::default()); // refresh on
            for i in 0..96u64 {
                mem.push(MemRequest {
                    id: i,
                    addr: ((i * 7919) % (1 << 14)) * 64,
                    is_write: i % 3 == 0,
                })
                .unwrap();
            }
            let mut done: Vec<Completion> = Vec::new();
            while done.len() < 96 {
                if event_driven {
                    let ev = mem.next_event();
                    if ev > mem.now() {
                        mem.skip(ev - mem.now());
                    }
                }
                done.extend(mem.tick());
                assert!(mem.now() < 1_000_000, "deadlock");
            }
            done.sort_by_key(|c| (c.id, c.at));
            (done, mem.stats(), mem.now())
        };
        let (done_c, stats_c, now_c) = run(false);
        let (done_e, stats_e, now_e) = run(true);
        assert_eq!(done_c, done_e);
        assert_eq!(stats_c, stats_e);
        assert_eq!(now_c, now_e);
    }

    #[test]
    fn lines_for_range_covers_and_aligns() {
        let lines: Vec<u64> = lines_for_range(100, 200, 64).collect();
        assert_eq!(lines, vec![64, 128, 192, 256]);
        assert_eq!(lines_for_range(0, 0, 64).count(), 0);
        assert_eq!(lines_for_range(0, 64, 64).count(), 1);
        assert_eq!(lines_for_range(0, 65, 64).count(), 2);
        assert_eq!(lines_for_range(63, 2, 64).count(), 2);
    }

    #[test]
    fn writes_complete_and_count() {
        let mut mem = DramSystem::new(no_refresh());
        for i in 0..16u64 {
            mem.push(MemRequest {
                id: i,
                addr: i * 64,
                is_write: true,
            })
            .unwrap();
        }
        let mut done = 0;
        for _ in 0..10_000 {
            done += mem.tick().len();
            if done == 16 {
                break;
            }
        }
        assert_eq!(done, 16);
        assert_eq!(mem.stats().writes, 16);
    }

    #[test]
    fn request_latencies_are_tracked() {
        let mut mem = DramSystem::new(no_refresh());
        for i in 0..8u64 {
            mem.push(MemRequest {
                id: i,
                addr: i * 64,
                is_write: i % 2 == 0,
            })
            .unwrap();
        }
        let mut done = 0;
        for _ in 0..10_000 {
            done += mem.tick().len();
            if done == 8 {
                break;
            }
        }
        assert_eq!(done, 8);
        let s = mem.stats();
        // Every request takes at least a burst, so summed latencies are
        // positive and the max bounds the mean.
        assert!(s.read_latency_cycles > 0);
        assert!(s.write_latency_cycles > 0);
        assert!(s.avg_read_latency() > 0.0);
        assert!(s.max_latency_cycles as f64 >= s.avg_read_latency());
        assert!(s.max_latency_cycles as f64 >= s.avg_write_latency());
    }
}
