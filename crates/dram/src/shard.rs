//! Detached channel shards for the parallel event-driven kernel.
//!
//! A [`ChannelShard`] owns a disjoint subset of a [`DramSystem`]'s channels,
//! moved out with [`DramSystem::detach_shards`] so a worker thread can run
//! the subset's event chain independently of the other shards. The shard
//! boundary is chosen by the caller so that every coalescing unit's traffic
//! lands wholly inside one shard (including the offline-channel remap), which
//! is what makes per-shard chains independent: a failed push is pure, queue
//! capacity frees only when the owning channel issues a column command, and a
//! channel's effectful ticks all lie on its own `next_event` chain. See
//! DESIGN.md §12 for the full determinism argument.

use crate::channel::{Channel, Completion, MemRequest};
use crate::coalesce::LineSink;
use crate::config::DramConfig;
use crate::system::{DramSystem, QueueFull};

/// A disjoint group of DRAM channels detached from a [`DramSystem`],
/// tickable at explicit cycles without touching the parent system's clock.
#[derive(Debug, Clone)]
pub struct ChannelShard {
    /// Global channel indices owned by this shard, ascending.
    members: Vec<usize>,
    /// The owned channels, parallel to `members`.
    channels: Vec<Channel>,
    cfg: DramConfig,
    /// Nominal→serving remap copied from the parent system.
    remap: Option<Vec<usize>>,
    /// Arrival clock used for [`push_line`](LineSink::push_line); the driver
    /// sets it to the cycle being processed before running issue passes.
    now: u64,
}

impl ChannelShard {
    pub(crate) fn new(
        members: Vec<usize>,
        channels: Vec<Channel>,
        cfg: DramConfig,
        remap: Option<Vec<usize>>,
        now: u64,
    ) -> ChannelShard {
        debug_assert!(members.windows(2).all(|w| w[0] < w[1]));
        debug_assert_eq!(members.len(), channels.len());
        ChannelShard {
            members,
            channels,
            cfg,
            remap,
            now,
        }
    }

    /// Global channel indices owned by this shard, ascending.
    pub fn members(&self) -> &[usize] {
        &self.members
    }

    pub(crate) fn into_parts(self) -> (Vec<usize>, Vec<Channel>) {
        (self.members, self.channels)
    }

    /// Sets the arrival clock for subsequent pushes.
    pub fn set_now(&mut self, now: u64) {
        self.now = now;
    }

    /// Total column commands issued by member channels so far. The delta
    /// across one [`tick`](Self::tick) tells the driver whether queue
    /// capacity was freed at that cycle.
    pub fn columns(&self) -> u64 {
        self.channels
            .iter()
            .map(|c| c.stats.reads + c.stats.writes)
            .sum()
    }

    /// Earliest cycle ≥ `now` at which ticking any member channel could
    /// change its state, or `u64::MAX` when all members are drained (and
    /// refresh is off). Same soundness contract as
    /// [`DramSystem::next_event`].
    pub fn next_event(&self, now: u64) -> u64 {
        let mut ev = u64::MAX;
        for c in &self.channels {
            let e = c.next_event(now);
            if e <= now {
                return now;
            }
            ev = ev.min(e);
        }
        ev
    }

    /// Ticks every member channel at cycle `now`, in ascending member order.
    /// Completions come back grouped per global channel index, preserving
    /// per-channel order — exactly the serial system's completion order
    /// restricted to this shard, which lets the coordinator merge shards by
    /// ascending channel index into the canonical serial order.
    pub fn tick(&mut self, now: u64) -> Vec<(usize, Vec<Completion>)> {
        let mut out = Vec::new();
        for (i, ch) in self.channels.iter_mut().enumerate() {
            let mut done = Vec::new();
            ch.tick(now, &mut done);
            if !done.is_empty() {
                out.push((self.members[i], done));
            }
        }
        out
    }
}

impl LineSink for ChannelShard {
    fn push_line(&mut self, req: MemRequest) -> Result<(), QueueFull> {
        let loc = self.cfg.map(req.addr);
        let serving = match &self.remap {
            Some(m) => m[loc.channel],
            None => loc.channel,
        };
        let Ok(idx) = self.members.binary_search(&serving) else {
            // The shard map guarantees a coalescing unit only ever targets
            // its own shard's channels; a miss here is a partitioning bug.
            debug_assert!(false, "request for channel {serving} crossed shards");
            return Err(QueueFull);
        };
        if self.channels[idx].push(req, loc, self.now) {
            Ok(())
        } else {
            Err(QueueFull)
        }
    }
}

impl DramSystem {
    /// Moves the listed channel groups out into detached shards. Groups must
    /// be disjoint, each sorted ascending; channels not named in any group
    /// stay behind. The system must not be pushed, ticked, or skipped while
    /// shards are detached — reattach them all with
    /// [`attach_shards`](Self::attach_shards) first.
    pub fn detach_shards(&mut self, groups: &[Vec<usize>]) -> Vec<ChannelShard> {
        let cfg = self.config().clone();
        let now = self.now();
        let remap = self.remap_vec();
        groups
            .iter()
            .map(|members| {
                let channels = members
                    .iter()
                    .map(|&c| self.swap_channel(c, Channel::new(&cfg)))
                    .collect();
                ChannelShard::new(members.clone(), channels, cfg.clone(), remap.clone(), now)
            })
            .collect()
    }

    /// Moves detached shards' channels back into place.
    pub fn attach_shards(&mut self, shards: Vec<ChannelShard>) {
        for shard in shards {
            let (members, channels) = shard.into_parts();
            for (&c, ch) in members.iter().zip(channels) {
                self.swap_channel(c, ch);
            }
        }
    }
}
