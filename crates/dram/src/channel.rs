//! Single-channel DDR command scheduling: bank state machines, FR-FCFS
//! request selection with a starvation guard, and refresh.

use crate::config::{DramConfig, Location};
use plasticine_json::decode::{arr_of, bool_of, field, hex_of, u64_of, R};
use plasticine_json::Json;
use std::collections::VecDeque;

/// A line-granularity memory request (one 64-byte burst).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemRequest {
    /// Caller-chosen identifier returned in the [`Completion`].
    pub id: u64,
    /// Byte address (line-aligned addresses recommended; the low bits are
    /// ignored by the address mapper).
    pub addr: u64,
    /// Write (true) or read (false).
    pub is_write: bool,
}

/// A finished memory request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Completion {
    /// Identifier from the original request.
    pub id: u64,
    /// Byte address of the original request.
    pub addr: u64,
    /// Whether it was a write.
    pub is_write: bool,
    /// Core cycle at which data finished transferring.
    pub at: u64,
}

/// Timing parameters pre-converted to core cycles.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Cycles {
    pub rcd: u64,
    pub cas: u64,
    pub cwd: u64,
    pub rp: u64,
    pub ras: u64,
    pub rc: u64,
    pub rrd: u64,
    pub faw: u64,
    pub burst: u64,
    pub wr: u64,
    pub wtr: u64,
    pub rtp: u64,
    pub refi: u64,
    pub rfc: u64,
}

impl Cycles {
    pub(crate) fn from_config(cfg: &DramConfig) -> Cycles {
        let t = &cfg.timing;
        let c = |ns| cfg.ns_to_cycles(ns);
        Cycles {
            rcd: c(t.t_rcd_ns),
            cas: c(t.t_cas_ns),
            cwd: c(t.t_cwd_ns),
            rp: c(t.t_rp_ns),
            ras: c(t.t_ras_ns),
            rc: c(t.t_rc_ns),
            rrd: c(t.t_rrd_ns),
            faw: c(t.t_faw_ns),
            burst: c(t.t_burst_ns),
            wr: c(t.t_wr_ns),
            wtr: c(t.t_wtr_ns),
            rtp: c(t.t_rtp_ns),
            refi: c(t.t_refi_ns),
            rfc: c(t.t_rfc_ns),
        }
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct Bank {
    active_row: Option<u64>,
    /// Earliest cycle a column command may issue (tRCD after ACT).
    col_ok: u64,
    /// Earliest cycle a precharge may issue (tRAS / tWR / tRTP).
    pre_ok: u64,
    /// Earliest cycle an activate may issue (tRP after PRE, tRC after ACT).
    act_ok: u64,
}

#[derive(Debug, Clone, Default)]
struct Rank {
    /// Times of recent activates, for tFAW/tRRD.
    acts: VecDeque<u64>,
    /// Earliest cycle a read may issue after a write burst (tWTR).
    rd_ok: u64,
    /// Next scheduled refresh.
    next_refresh: u64,
    /// All banks blocked until this cycle by an in-progress refresh.
    refresh_until: u64,
}

#[derive(Debug, Clone)]
struct Pending {
    req: MemRequest,
    loc: Location,
    arrival: u64,
}

/// Per-channel statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChannelStats {
    /// Column commands that hit an open row.
    pub row_hits: u64,
    /// Activate commands issued.
    pub activates: u64,
    /// Precharge commands issued (row conflicts).
    pub precharges: u64,
    /// Refresh operations performed.
    pub refreshes: u64,
    /// Lines read.
    pub reads: u64,
    /// Lines written.
    pub writes: u64,
    /// Cycles with the data bus occupied.
    pub busy_cycles: u64,
    /// Summed read latency (request arrival to end of data), in cycles.
    pub read_latency_cycles: u64,
    /// Summed write latency, in cycles.
    pub write_latency_cycles: u64,
    /// Worst single-request latency observed, in cycles.
    pub max_latency_cycles: u64,
}

/// One DDR channel: command scheduler plus bank/rank state.
#[derive(Debug, Clone)]
pub(crate) struct Channel {
    cyc: Cycles,
    queue_depth: usize,
    max_age: u64,
    refresh: bool,
    banks: Vec<Vec<Bank>>,
    ranks: Vec<Rank>,
    queue: VecDeque<Pending>,
    inflight: Vec<Completion>,
    data_bus_free: u64,
    /// Every tick strictly before this cycle is a known no-op: after a tick
    /// that changed nothing, this caches [`next_event`](Self::next_event)
    /// (whose bound is sound — see its doc), and [`push`](Self::push) resets
    /// it. Lets the per-cycle tick loop skip the command-scheduler scans
    /// while the channel merely waits out DRAM timing windows.
    quiet_until: u64,
    pub(crate) stats: ChannelStats,
}

impl Channel {
    pub(crate) fn new(cfg: &DramConfig) -> Channel {
        let cyc = Cycles::from_config(cfg);
        let mut ranks = Vec::with_capacity(cfg.ranks);
        for i in 0..cfg.ranks {
            ranks.push(Rank {
                // Stagger refreshes across ranks.
                next_refresh: cyc.refi * (i as u64 + 1) / cfg.ranks as u64,
                ..Rank::default()
            });
        }
        Channel {
            cyc,
            queue_depth: cfg.queue_depth,
            max_age: cfg.max_age,
            refresh: cfg.refresh,
            banks: vec![vec![Bank::default(); cfg.banks]; cfg.ranks],
            ranks,
            queue: VecDeque::new(),
            inflight: Vec::new(),
            data_bus_free: 0,
            quiet_until: 0,
            stats: ChannelStats::default(),
        }
    }

    pub(crate) fn has_capacity(&self) -> bool {
        self.queue.len() < self.queue_depth
    }

    pub(crate) fn pending(&self) -> usize {
        self.queue.len() + self.inflight.len()
    }

    pub(crate) fn push(&mut self, req: MemRequest, loc: Location, now: u64) -> bool {
        if !self.has_capacity() {
            return false;
        }
        self.queue.push_back(Pending {
            req,
            loc,
            arrival: now,
        });
        self.quiet_until = 0; // the new request may be schedulable at once
        true
    }

    /// Advances to cycle `now`; returns requests whose data finished.
    pub(crate) fn tick(&mut self, now: u64, out: &mut Vec<Completion>) {
        if now < self.quiet_until {
            return; // cached no-op span; see `quiet_until`
        }
        let refreshes = self.stats.refreshes;
        self.start_refreshes(now);
        let issued = self.issue_one(now);
        // Drain completions due at or before `now`.
        let before = out.len();
        let mut i = 0;
        while i < self.inflight.len() {
            if self.inflight[i].at <= now {
                out.push(self.inflight.swap_remove(i));
            } else {
                i += 1;
            }
        }
        // A tick that changed nothing leaves the channel purely waiting out
        // timing windows; everything it could do next is time-driven, so the
        // (sound) event bound marks every tick before it a no-op.
        if !issued && out.len() == before && self.stats.refreshes == refreshes {
            self.quiet_until = self.next_event(now + 1);
        }
    }

    fn start_refreshes(&mut self, now: u64) {
        if !self.refresh {
            return;
        }
        for (r, rank) in self.ranks.iter_mut().enumerate() {
            if now >= rank.next_refresh && now >= rank.refresh_until {
                rank.refresh_until = now + self.cyc.rfc;
                rank.next_refresh += self.cyc.refi;
                self.stats.refreshes += 1;
                // Refresh closes all rows in the rank.
                for bank in &mut self.banks[r] {
                    bank.active_row = None;
                    bank.act_ok = bank.act_ok.max(rank.refresh_until);
                    bank.col_ok = bank.col_ok.max(rank.refresh_until);
                    bank.pre_ok = bank.pre_ok.max(rank.refresh_until);
                }
            }
        }
    }

    fn rank_refreshing(&self, rank: usize, now: u64) -> bool {
        self.refresh && now < self.ranks[rank].refresh_until
    }

    /// tFAW / tRRD check for an activate on `rank` at `now`.
    fn act_allowed(&self, rank: usize, now: u64) -> bool {
        let r = &self.ranks[rank];
        if let Some(&last) = r.acts.back() {
            if now < last + self.cyc.rrd {
                return false;
            }
        }
        if r.acts.len() >= 4 {
            let fourth_last = r.acts[r.acts.len() - 4];
            if now < fourth_last + self.cyc.faw {
                return false;
            }
        }
        true
    }

    /// Issues at most one DRAM command this cycle (shared command bus).
    /// Returns whether a command issued.
    fn issue_one(&mut self, now: u64) -> bool {
        if self.queue.is_empty() {
            return false;
        }
        // Starvation guard: if the oldest request is overage, schedule only it.
        let overage = now.saturating_sub(self.queue[0].arrival) > self.max_age;
        let limit = if overage { 1 } else { self.queue.len() };

        // Pass 1 (FR): oldest request whose column command can issue now.
        for qi in 0..limit {
            if self.try_column(qi, now) {
                return true;
            }
        }
        // Pass 2 (FCFS): oldest request needing an activate on a closed bank.
        for qi in 0..limit {
            if self.try_activate(qi, now) {
                return true;
            }
        }
        // Pass 3: oldest request conflicting with an open row — precharge.
        for qi in 0..limit {
            if self.try_precharge(qi, now) {
                return true;
            }
        }
        false
    }

    fn try_column(&mut self, qi: usize, now: u64) -> bool {
        let p = &self.queue[qi];
        let loc = p.loc;
        let bank = &self.banks[loc.rank][loc.bank];
        if bank.active_row != Some(loc.row) || now < bank.col_ok {
            return false;
        }
        if self.rank_refreshing(loc.rank, now) {
            return false;
        }
        let is_write = p.req.is_write;
        if !is_write && now < self.ranks[loc.rank].rd_ok {
            return false;
        }
        let lat = if is_write { self.cyc.cwd } else { self.cyc.cas };
        let data_start = now + lat;
        if data_start < self.data_bus_free {
            return false;
        }
        let data_end = data_start + self.cyc.burst;
        // Commit the command.
        let p = self.queue.remove(qi).expect("index checked");
        let latency = data_end.saturating_sub(p.arrival);
        self.stats.max_latency_cycles = self.stats.max_latency_cycles.max(latency);
        if is_write {
            self.stats.write_latency_cycles += latency;
        } else {
            self.stats.read_latency_cycles += latency;
        }
        self.data_bus_free = data_end;
        self.stats.busy_cycles += self.cyc.burst;
        self.stats.row_hits += 1;
        let bank = &mut self.banks[loc.rank][loc.bank];
        if is_write {
            bank.pre_ok = bank.pre_ok.max(data_end + self.cyc.wr);
            self.ranks[loc.rank].rd_ok = self.ranks[loc.rank].rd_ok.max(data_end + self.cyc.wtr);
            self.stats.writes += 1;
        } else {
            bank.pre_ok = bank.pre_ok.max(now + self.cyc.rtp);
            self.stats.reads += 1;
        }
        self.inflight.push(Completion {
            id: p.req.id,
            addr: p.req.addr,
            is_write,
            at: data_end,
        });
        true
    }

    fn try_activate(&mut self, qi: usize, now: u64) -> bool {
        let loc = self.queue[qi].loc;
        let bank = &self.banks[loc.rank][loc.bank];
        if bank.active_row.is_some() || now < bank.act_ok {
            return false;
        }
        if self.rank_refreshing(loc.rank, now) || !self.act_allowed(loc.rank, now) {
            return false;
        }
        let bank = &mut self.banks[loc.rank][loc.bank];
        bank.active_row = Some(loc.row);
        bank.col_ok = now + self.cyc.rcd;
        bank.pre_ok = now + self.cyc.ras;
        bank.act_ok = now + self.cyc.rc;
        let rank = &mut self.ranks[loc.rank];
        rank.acts.push_back(now);
        while rank.acts.len() > 4 {
            rank.acts.pop_front();
        }
        self.stats.activates += 1;
        true
    }

    /// Earliest cycle ≥ `now` at which ticking this channel could change
    /// any state: a refresh becomes due, an in-flight burst completes, or a
    /// queued request's column/activate/precharge command first satisfies
    /// every timing constraint. Returns `u64::MAX` when the channel is
    /// fully drained and refresh is off.
    ///
    /// The bound is *sound*, not tight: every constraint checked by
    /// [`issue_one`](Self::issue_one) is of the form `now >= t` against
    /// state that itself only changes at one of these events, so no command
    /// can issue strictly before the minimum returned here. (The starvation
    /// guard only ever *restricts* candidates to the oldest request, so it
    /// can delay a command past the bound — the tick at the bound is then a
    /// no-op — but never enable one before it.) This is what lets the
    /// event-driven simulation kernel skip the span `[now, next_event)`
    /// without ticking and stay bit-identical to per-cycle stepping.
    pub(crate) fn next_event(&self, now: u64) -> u64 {
        let mut ev = u64::MAX;
        for c in &self.inflight {
            ev = ev.min(c.at.max(now));
        }
        if self.refresh {
            for r in &self.ranks {
                ev = ev.min(r.next_refresh.max(r.refresh_until).max(now));
            }
        }
        // Every candidate below is clamped to >= now, so the first one that
        // lands on `now` is already the minimum — stop scanning. With deep
        // queues this turns the common "something is schedulable right now"
        // case from a full per-request scan into an early return.
        if ev <= now {
            return now;
        }
        for p in &self.queue {
            let loc = p.loc;
            let bank = &self.banks[loc.rank][loc.bank];
            let rank = &self.ranks[loc.rank];
            let refr = if self.refresh { rank.refresh_until } else { 0 };
            let t = match bank.active_row {
                // Row hit: the column command waits on tRCD, refresh, tWTR
                // (reads), and the shared data bus.
                Some(row) if row == loc.row => {
                    let lat = if p.req.is_write {
                        self.cyc.cwd
                    } else {
                        self.cyc.cas
                    };
                    let mut t = bank.col_ok.max(refr);
                    if !p.req.is_write {
                        t = t.max(rank.rd_ok);
                    }
                    t.max(self.data_bus_free.saturating_sub(lat))
                }
                // Closed bank: the activate waits on tRP/tRC, refresh, and
                // the rank's tRRD/tFAW windows.
                None => {
                    let mut t = bank.act_ok.max(refr);
                    if let Some(&last) = rank.acts.back() {
                        t = t.max(last + self.cyc.rrd);
                    }
                    if rank.acts.len() >= 4 {
                        t = t.max(rank.acts[rank.acts.len() - 4] + self.cyc.faw);
                    }
                    t
                }
                // Row conflict: a precharge is possible once tRAS/tWR/tRTP
                // expire — unless another queued request still wants the
                // open row, in which case this request waits for column
                // issues (events in their own right) to drain it first.
                Some(open) => {
                    let wanted = self.queue.iter().any(|q| {
                        q.loc.rank == loc.rank && q.loc.bank == loc.bank && q.loc.row == open
                    });
                    if wanted {
                        continue;
                    }
                    bank.pre_ok.max(refr)
                }
            };
            ev = ev.min(t.max(now));
            if ev <= now {
                return now;
            }
        }
        ev
    }

    /// Serializes all mutable channel state — bank/rank machines, queued
    /// and in-flight requests, the bus/quiet cursors, and stats. Static
    /// timing parameters are not included; [`restore`](Self::restore)
    /// rebuilds request locations from the config it is given.
    ///
    /// `inflight` order is preserved verbatim: the simulator's fault
    /// injector draws RNG values while iterating completions in order, so
    /// reordering them would change the injected-event stream.
    pub(crate) fn snapshot(&self) -> Json {
        let bank_json = |b: &Bank| {
            Json::obj([
                ("row", b.active_row.map(Json::hex).unwrap_or(Json::Null)),
                ("col_ok", Json::from(b.col_ok)),
                ("pre_ok", Json::from(b.pre_ok)),
                ("act_ok", Json::from(b.act_ok)),
            ])
        };
        let rank_json = |r: &Rank| {
            Json::obj([
                (
                    "acts",
                    Json::Arr(r.acts.iter().map(|&t| Json::from(t)).collect()),
                ),
                ("rd_ok", Json::from(r.rd_ok)),
                ("next_refresh", Json::from(r.next_refresh)),
                ("refresh_until", Json::from(r.refresh_until)),
            ])
        };
        let pending_json = |p: &Pending| {
            Json::obj([
                ("id", Json::hex(p.req.id)),
                ("addr", Json::hex(p.req.addr)),
                ("w", Json::from(p.req.is_write)),
                ("arrival", Json::from(p.arrival)),
            ])
        };
        let completion_json = |c: &Completion| {
            Json::obj([
                ("id", Json::hex(c.id)),
                ("addr", Json::hex(c.addr)),
                ("w", Json::from(c.is_write)),
                ("at", Json::from(c.at)),
            ])
        };
        let s = &self.stats;
        Json::obj([
            (
                "banks",
                Json::Arr(
                    self.banks
                        .iter()
                        .map(|r| Json::Arr(r.iter().map(bank_json).collect()))
                        .collect(),
                ),
            ),
            (
                "ranks",
                Json::Arr(self.ranks.iter().map(rank_json).collect()),
            ),
            (
                "queue",
                Json::Arr(self.queue.iter().map(pending_json).collect()),
            ),
            (
                "inflight",
                Json::Arr(self.inflight.iter().map(completion_json).collect()),
            ),
            ("data_bus_free", Json::from(self.data_bus_free)),
            (
                "stats",
                Json::obj([
                    ("row_hits", Json::from(s.row_hits)),
                    ("activates", Json::from(s.activates)),
                    ("precharges", Json::from(s.precharges)),
                    ("refreshes", Json::from(s.refreshes)),
                    ("reads", Json::from(s.reads)),
                    ("writes", Json::from(s.writes)),
                    ("busy_cycles", Json::from(s.busy_cycles)),
                    ("read_latency_cycles", Json::from(s.read_latency_cycles)),
                    ("write_latency_cycles", Json::from(s.write_latency_cycles)),
                    ("max_latency_cycles", Json::from(s.max_latency_cycles)),
                ]),
            ),
        ])
    }

    /// Restores state captured by [`snapshot`](Self::snapshot) into a
    /// channel freshly built from the *same* `cfg` (request locations are
    /// re-derived through `cfg.map`, so a different address mapping would
    /// silently corrupt the run — callers guard the config hash).
    pub(crate) fn restore(&mut self, j: &Json, cfg: &DramConfig) -> R<()> {
        let banks = arr_of(j, "banks")?;
        if banks.len() != self.banks.len() {
            return Err(format!(
                "rank count mismatch: snapshot {} vs config {}",
                banks.len(),
                self.banks.len()
            ));
        }
        for (rank, row) in banks.iter().enumerate() {
            let row = row
                .as_arr()
                .ok_or_else(|| "bank row is not an array".to_string())?;
            if row.len() != self.banks[rank].len() {
                return Err("bank count mismatch".to_string());
            }
            for (bi, bj) in row.iter().enumerate() {
                let active_row = match field(bj, "row")? {
                    Json::Null => None,
                    v => Some(v.as_hex().ok_or_else(|| "bad bank row".to_string())?),
                };
                self.banks[rank][bi] = Bank {
                    active_row,
                    col_ok: u64_of(bj, "col_ok")?,
                    pre_ok: u64_of(bj, "pre_ok")?,
                    act_ok: u64_of(bj, "act_ok")?,
                };
            }
        }
        let ranks = arr_of(j, "ranks")?;
        if ranks.len() != self.ranks.len() {
            return Err("rank state count mismatch".to_string());
        }
        for (ri, rj) in ranks.iter().enumerate() {
            let mut acts = VecDeque::new();
            for a in arr_of(rj, "acts")? {
                acts.push_back(a.as_u64().ok_or_else(|| "bad act time".to_string())?);
            }
            self.ranks[ri] = Rank {
                acts,
                rd_ok: u64_of(rj, "rd_ok")?,
                next_refresh: u64_of(rj, "next_refresh")?,
                refresh_until: u64_of(rj, "refresh_until")?,
            };
        }
        self.queue.clear();
        for pj in arr_of(j, "queue")? {
            let req = MemRequest {
                id: hex_of(pj, "id")?,
                addr: hex_of(pj, "addr")?,
                is_write: bool_of(pj, "w")?,
            };
            self.queue.push_back(Pending {
                req,
                loc: cfg.map(req.addr),
                arrival: u64_of(pj, "arrival")?,
            });
        }
        self.inflight.clear();
        for cj in arr_of(j, "inflight")? {
            self.inflight.push(Completion {
                id: hex_of(cj, "id")?,
                addr: hex_of(cj, "addr")?,
                is_write: bool_of(cj, "w")?,
                at: u64_of(cj, "at")?,
            });
        }
        self.data_bus_free = u64_of(j, "data_bus_free")?;
        // `quiet_until` is a pure scheduling cache (0 is always sound) and is
        // deliberately absent from snapshots: serial and sharded runs refresh
        // it on different cycles, and snapshot bytes must not depend on the
        // thread count. Old snapshots that still carry the field decode fine —
        // unknown fields are ignored.
        self.quiet_until = 0;
        let s = field(j, "stats")?;
        self.stats = ChannelStats {
            row_hits: u64_of(s, "row_hits")?,
            activates: u64_of(s, "activates")?,
            precharges: u64_of(s, "precharges")?,
            refreshes: u64_of(s, "refreshes")?,
            reads: u64_of(s, "reads")?,
            writes: u64_of(s, "writes")?,
            busy_cycles: u64_of(s, "busy_cycles")?,
            read_latency_cycles: u64_of(s, "read_latency_cycles")?,
            write_latency_cycles: u64_of(s, "write_latency_cycles")?,
            max_latency_cycles: u64_of(s, "max_latency_cycles")?,
        };
        Ok(())
    }

    fn try_precharge(&mut self, qi: usize, now: u64) -> bool {
        let loc = self.queue[qi].loc;
        let bank = &self.banks[loc.rank][loc.bank];
        let Some(open) = bank.active_row else {
            return false;
        };
        if open == loc.row || now < bank.pre_ok {
            return false;
        }
        if self.rank_refreshing(loc.rank, now) {
            return false;
        }
        // Only precharge if no *queued* request wants the open row (avoid
        // closing rows that still have hits pending).
        let wanted = self
            .queue
            .iter()
            .any(|p| p.loc.rank == loc.rank && p.loc.bank == loc.bank && p.loc.row == open);
        if wanted {
            return false;
        }
        let bank = &mut self.banks[loc.rank][loc.bank];
        bank.active_row = None;
        bank.act_ok = bank.act_ok.max(now + self.cyc.rp);
        self.stats.precharges += 1;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn channel() -> (Channel, DramConfig) {
        let cfg = DramConfig {
            refresh: false,
            ..DramConfig::default()
        };
        (Channel::new(&cfg), cfg)
    }

    fn run_until_drained(ch: &mut Channel, start: u64, horizon: u64) -> Vec<Completion> {
        let mut done = Vec::new();
        for t in start..horizon {
            ch.tick(t, &mut done);
            if ch.pending() == 0 {
                break;
            }
        }
        done
    }

    #[test]
    fn single_read_latency_is_act_rcd_cas_burst() {
        let (mut ch, cfg) = channel();
        let loc = cfg.map(0);
        ch.push(
            MemRequest {
                id: 1,
                addr: 0,
                is_write: false,
            },
            loc,
            0,
        );
        let done = run_until_drained(&mut ch, 0, 1000);
        assert_eq!(done.len(), 1);
        let cyc = Cycles::from_config(&cfg);
        // ACT at t=0, RD at t=tRCD, data ends at tRCD+CAS+burst.
        assert_eq!(done[0].at, cyc.rcd + cyc.cas + cyc.burst);
    }

    #[test]
    fn row_hit_stream_achieves_burst_rate() {
        let (mut ch, cfg) = channel();
        // 32 consecutive lines in the same channel/row (stride = 4 lines,
        // since lines interleave over 4 channels).
        for i in 0..32u64 {
            let addr = i * 4 * 64;
            let loc = cfg.map(addr);
            assert!(ch.push(
                MemRequest {
                    id: i,
                    addr,
                    is_write: false
                },
                loc,
                0
            ));
        }
        let done = run_until_drained(&mut ch, 0, 10_000);
        assert_eq!(done.len(), 32);
        assert_eq!(ch.stats.activates, 1, "one row activation for the stream");
        assert_eq!(ch.stats.row_hits, 32);
        let last = done.iter().map(|c| c.at).max().unwrap();
        let cyc = Cycles::from_config(&cfg);
        // After the first access, each subsequent line should take ~burst.
        let lower = 32 * cyc.burst;
        let upper = cyc.rcd + cyc.cas + 32 * cyc.burst + 8;
        assert!(last >= lower && last <= upper, "last={last}");
    }

    #[test]
    fn row_conflicts_cost_precharge_plus_activate() {
        let (mut ch, cfg) = channel();
        // Two requests to the same bank but different rows.
        let lines_per_row = cfg.row_bytes / cfg.line_bytes;
        let a = 0u64;
        let b = lines_per_row * 4 * 64 * (cfg.banks as u64 * cfg.ranks as u64); // same bank, next row
        let la = cfg.map(a);
        let lb = cfg.map(b);
        assert_eq!(la.bank, lb.bank);
        assert_eq!(la.rank, lb.rank);
        assert_ne!(la.row, lb.row);
        ch.push(
            MemRequest {
                id: 0,
                addr: a,
                is_write: false,
            },
            la,
            0,
        );
        ch.push(
            MemRequest {
                id: 1,
                addr: b,
                is_write: false,
            },
            lb,
            0,
        );
        let done = run_until_drained(&mut ch, 0, 10_000);
        assert_eq!(done.len(), 2);
        assert_eq!(ch.stats.activates, 2);
        assert_eq!(ch.stats.precharges, 1);
        let cyc = Cycles::from_config(&cfg);
        let second = done.iter().find(|c| c.id == 1).unwrap();
        // Second access cannot complete before tRAS + tRP + tRCD + CAS + burst.
        assert!(second.at >= cyc.ras + cyc.rp + cyc.rcd + cyc.cas + cyc.burst);
    }

    #[test]
    fn writes_then_read_respects_wtr() {
        let (mut ch, cfg) = channel();
        let la = cfg.map(0);
        let lb = cfg.map(4 * 64); // same row, next column line
        ch.push(
            MemRequest {
                id: 0,
                addr: 0,
                is_write: true,
            },
            la,
            0,
        );
        ch.push(
            MemRequest {
                id: 1,
                addr: 4 * 64,
                is_write: false,
            },
            lb,
            0,
        );
        let done = run_until_drained(&mut ch, 0, 10_000);
        let w = done.iter().find(|c| c.id == 0).unwrap();
        let r = done.iter().find(|c| c.id == 1).unwrap();
        let cyc = Cycles::from_config(&cfg);
        // Read data cannot start before write data end + tWTR + CAS.
        assert!(r.at >= w.at + cyc.wtr + cyc.cas);
    }

    #[test]
    fn starvation_guard_bounds_wait() {
        let cfg = DramConfig {
            refresh: false,
            max_age: 200,
            queue_depth: 64,
            ..DramConfig::default()
        };
        let mut ch = Channel::new(&cfg);
        // A victim request to row B, then a continuous stream to row A that
        // would otherwise always win FR-FCFS.
        let lines_per_row = cfg.row_bytes / cfg.line_bytes;
        let row_b = lines_per_row * 4 * 64 * (cfg.banks as u64 * cfg.ranks as u64);
        ch.push(
            MemRequest {
                id: 999,
                addr: row_b,
                is_write: false,
            },
            cfg.map(row_b),
            0,
        );
        let mut done = Vec::new();
        let mut next_id = 0u64;
        let mut victim_done_at = None;
        for t in 0..5_000u64 {
            // Keep the queue topped up with row-A hits.
            while ch.has_capacity() && next_id < 4000 {
                let addr = (next_id % lines_per_row) * 4 * 64;
                ch.push(
                    MemRequest {
                        id: next_id,
                        addr,
                        is_write: false,
                    },
                    cfg.map(addr),
                    t,
                );
                next_id += 1;
            }
            ch.tick(t, &mut done);
            if let Some(c) = done.iter().find(|c| c.id == 999) {
                victim_done_at = Some(c.at);
                break;
            }
        }
        let at = victim_done_at.expect("victim must eventually complete");
        assert!(at < 1_500, "victim waited too long: {at}");
    }

    #[test]
    fn refresh_blocks_and_recovers() {
        let cfg = DramConfig::default(); // refresh on
        let mut ch = Channel::new(&cfg);
        let mut done = Vec::new();
        // Run past several tREFI windows with sporadic traffic.
        let mut completed = 0;
        for t in 0..40_000u64 {
            if t % 100 == 0 && ch.has_capacity() {
                let addr = (t / 100 % 64) * 4 * 64;
                ch.push(
                    MemRequest {
                        id: t,
                        addr,
                        is_write: false,
                    },
                    cfg.map(addr),
                    t,
                );
            }
            done.clear();
            ch.tick(t, &mut done);
            completed += done.len();
        }
        assert!(ch.stats.refreshes >= 4, "refreshes={}", ch.stats.refreshes);
        assert!(completed > 300, "completed={completed}");
    }

    #[test]
    fn queue_capacity_is_enforced() {
        let (mut ch, cfg) = channel();
        for i in 0..cfg.queue_depth as u64 {
            assert!(ch.push(
                MemRequest {
                    id: i,
                    addr: 0,
                    is_write: false
                },
                cfg.map(0),
                0
            ));
        }
        assert!(!ch.push(
            MemRequest {
                id: 99,
                addr: 0,
                is_write: false
            },
            cfg.map(0),
            0
        ));
    }
}
