//! DRAM device and controller configuration.
//!
//! Defaults model the paper's memory system: four DDR3-1600 channels with a
//! theoretical peak of 51.2 GB/s (§4.2), simulated in the accelerator's
//! 1 GHz core-clock domain.

/// Timing parameters in nanoseconds (JEDEC DDR3-1600 CL11 class).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Timing {
    /// Activate to internal read/write delay (tRCD).
    pub t_rcd_ns: f64,
    /// Read command to first data (CAS latency).
    pub t_cas_ns: f64,
    /// Write command to first data (CAS write latency).
    pub t_cwd_ns: f64,
    /// Precharge to activate delay (tRP).
    pub t_rp_ns: f64,
    /// Activate to precharge minimum (tRAS).
    pub t_ras_ns: f64,
    /// Activate to activate, same bank (tRC).
    pub t_rc_ns: f64,
    /// Activate to activate, different banks same rank (tRRD).
    pub t_rrd_ns: f64,
    /// Four-activate window per rank (tFAW).
    pub t_faw_ns: f64,
    /// Column command to column command (tCCD) — also the data burst time.
    pub t_burst_ns: f64,
    /// Write recovery before precharge (tWR).
    pub t_wr_ns: f64,
    /// Write-to-read turnaround (tWTR).
    pub t_wtr_ns: f64,
    /// Read-to-precharge (tRTP).
    pub t_rtp_ns: f64,
    /// Average refresh interval (tREFI).
    pub t_refi_ns: f64,
    /// Refresh cycle time (tRFC).
    pub t_rfc_ns: f64,
}

impl Default for Timing {
    fn default() -> Timing {
        // DDR3-1600 (tCK = 1.25 ns), 11-11-11, 4 Gb parts.
        Timing {
            t_rcd_ns: 13.75,
            t_cas_ns: 13.75,
            t_cwd_ns: 10.0,
            t_rp_ns: 13.75,
            t_ras_ns: 35.0,
            t_rc_ns: 48.75,
            t_rrd_ns: 6.25,
            t_faw_ns: 40.0,
            t_burst_ns: 5.0, // burst of 8 on a 64-bit bus at 1600 MT/s
            t_wr_ns: 15.0,
            t_wtr_ns: 7.5,
            t_rtp_ns: 7.5,
            t_refi_ns: 7800.0,
            t_rfc_ns: 260.0,
        }
    }
}

/// Full memory-system configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct DramConfig {
    /// Independent DDR channels (the paper uses 4).
    pub channels: usize,
    /// Ranks per channel.
    pub ranks: usize,
    /// Banks per rank (DDR3: 8).
    pub banks: usize,
    /// Row size in bytes (columns × device width × devices = page size).
    pub row_bytes: u64,
    /// Transfer granularity in bytes (one burst: 64 B).
    pub line_bytes: u64,
    /// Request-queue depth per channel.
    pub queue_depth: usize,
    /// Core clock frequency the accelerator runs at, in GHz. Timing
    /// parameters are converted from nanoseconds to core cycles.
    pub core_ghz: f64,
    /// Device timing.
    pub timing: Timing,
    /// Enable periodic refresh (tREFI/tRFC).
    pub refresh: bool,
    /// Age in core cycles after which the scheduler stops reordering past a
    /// request (FR-FCFS starvation guard).
    pub max_age: u64,
}

impl Default for DramConfig {
    fn default() -> DramConfig {
        DramConfig {
            channels: 4,
            ranks: 2,
            banks: 8,
            row_bytes: 8192,
            line_bytes: 64,
            queue_depth: 32,
            core_ghz: 1.0,
            timing: Timing::default(),
            refresh: true,
            max_age: 2048,
        }
    }
}

impl DramConfig {
    /// Converts nanoseconds to core-clock cycles (rounded up).
    pub fn ns_to_cycles(&self, ns: f64) -> u64 {
        (ns * self.core_ghz).ceil() as u64
    }

    /// Peak bandwidth across all channels in bytes per core cycle.
    pub fn peak_bytes_per_cycle(&self) -> f64 {
        // One line per t_burst per channel.
        let burst_cycles = self.ns_to_cycles(self.timing.t_burst_ns) as f64;
        self.channels as f64 * self.line_bytes as f64 / burst_cycles
    }

    /// Peak bandwidth in GB/s.
    pub fn peak_gbps(&self) -> f64 {
        self.peak_bytes_per_cycle() * self.core_ghz
    }
}

/// Physical location of a line: `(channel, rank, bank, row, column-line)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Location {
    /// Channel index.
    pub channel: usize,
    /// Rank index within the channel.
    pub rank: usize,
    /// Bank index within the rank.
    pub bank: usize,
    /// Row index within the bank.
    pub row: u64,
    /// Line index within the row.
    pub col: u64,
}

impl DramConfig {
    /// Maps a byte address to its physical location.
    ///
    /// Mapping (low → high bits): line offset, channel, column, bank, rank,
    /// row. Interleaving lines across channels spreads dense streams over
    /// all channels; keeping columns below banks gives dense streams long
    /// row hits within each bank.
    pub fn map(&self, byte_addr: u64) -> Location {
        let line = byte_addr / self.line_bytes;
        let channel = (line % self.channels as u64) as usize;
        let rest = line / self.channels as u64;
        let lines_per_row = self.row_bytes / self.line_bytes;
        let col = rest % lines_per_row;
        let rest = rest / lines_per_row;
        let bank = (rest % self.banks as u64) as usize;
        let rest = rest / self.banks as u64;
        let rank = (rest % self.ranks as u64) as usize;
        let row = rest / self.ranks as u64;
        Location {
            channel,
            rank,
            bank,
            row,
            col,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_peak_bandwidth_matches_paper() {
        let cfg = DramConfig::default();
        // 4 × DDR3-1600 = 51.2 GB/s theoretical peak (§4.2).
        assert!(
            (cfg.peak_gbps() - 51.2).abs() < 0.1,
            "got {}",
            cfg.peak_gbps()
        );
    }

    #[test]
    fn ns_conversion_rounds_up() {
        let cfg = DramConfig::default();
        assert_eq!(cfg.ns_to_cycles(13.75), 14);
        assert_eq!(cfg.ns_to_cycles(5.0), 5);
    }

    #[test]
    fn consecutive_lines_interleave_channels() {
        let cfg = DramConfig::default();
        for i in 0..16u64 {
            let loc = cfg.map(i * 64);
            assert_eq!(loc.channel, (i % 4) as usize);
        }
    }

    #[test]
    fn dense_stream_stays_in_row_within_channel() {
        let cfg = DramConfig::default();
        // Lines 0, 4, 8, ... map to channel 0; they should walk columns of
        // one row before moving to the next bank/row.
        let lines_per_row = cfg.row_bytes / cfg.line_bytes;
        let first = cfg.map(0);
        for i in 1..lines_per_row {
            let loc = cfg.map(i * 4 * 64);
            assert_eq!(loc.channel, 0);
            assert_eq!(loc.row, first.row);
            assert_eq!(loc.bank, first.bank);
            assert_eq!(loc.col, i);
        }
        // The next line after a full row moves to a different bank.
        let next = cfg.map(lines_per_row * 4 * 64);
        assert_ne!(next.bank, first.bank);
    }

    #[test]
    fn map_is_injective_over_a_window() {
        let cfg = DramConfig::default();
        let mut seen = std::collections::HashSet::new();
        for i in 0..4096u64 {
            assert!(seen.insert(cfg.map(i * 64)), "collision at line {i}");
        }
    }
}
