//! # plasticine-dram — cycle-level DDR3 memory-system model
//!
//! A DRAMSim2-equivalent timing model of the memory system evaluated in the
//! Plasticine paper (§3.4, §4.2): four DDR3-1600 channels (51.2 GB/s
//! theoretical peak), each with per-bank state machines, JEDEC-style timing
//! constraints (tRCD/CAS/tRP/tRAS/tRC/tRRD/tFAW/tWTR/tRTP/refresh), an
//! FR-FCFS command scheduler with a starvation guard, and an address
//! coalescing unit that merges sparse element accesses into line bursts
//! (gather/scatter support).
//!
//! The model is *timing only*: it schedules request ids and addresses.
//! Data movement is performed functionally by the simulator crate when a
//! [`Completion`] arrives, keeping the two concerns — when a burst finishes
//! vs. what bytes it carried — cleanly separated.
//!
//! # Examples
//!
//! ```
//! use plasticine_dram::{DramConfig, DramSystem, MemRequest};
//!
//! let mut mem = DramSystem::new(DramConfig::default());
//! mem.push(MemRequest { id: 0, addr: 0x1000, is_write: false }).unwrap();
//! let mut completions = Vec::new();
//! while completions.is_empty() {
//!     completions = mem.tick();
//! }
//! assert_eq!(completions[0].addr, 0x1000);
//! ```

#![warn(missing_docs)]

mod channel;
mod coalesce;
mod config;
mod shard;
mod system;

pub use channel::{ChannelStats, Completion, MemRequest};
pub use coalesce::{CoalesceStats, CoalescingUnit, ElemCompletion, ElemRequest, LineSink};
pub use config::{DramConfig, Location, Timing};
pub use shard::ChannelShard;
pub use system::{lines_for_range, DramStats, DramSystem, QueueFull};
