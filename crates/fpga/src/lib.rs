//! # plasticine-fpga — analytic Stratix V baseline model
//!
//! The paper's baseline (§4.4) is an Altera 28 nm Stratix V board running
//! DHDL-generated designs at a 150 MHz fabric clock with 48 GB of DDR3-800
//! (37.5 GB/s peak) whose six channels operate *ganged* as one wide
//! channel. We cannot run that board, so this crate provides a first-order
//! analytic model built from its published characteristics:
//!
//! * resource capacity (ALMs, M20K blocks, DSPs) limits the parallelism a
//!   design can instantiate — FP adders burn ALMs, FP multipliers burn
//!   DSPs, and banked/double-buffered tiles burn M20K blocks;
//! * the 150 MHz fabric clock bounds per-lane throughput;
//! * dense streams are bound by the 37.5 GB/s ganged bandwidth;
//! * random (gather/scatter) accesses are penalized by the ganged channel:
//!   every 4-byte element drags a full wide-channel access, and soft-logic
//!   scatter-gather units sustain only a few outstanding requests.
//!
//! These are exactly the effects the paper cites when explaining each
//! benchmark's speedup (bandwidth parity on streaming apps, BRAM exhaustion
//! on GEMM/GDA, soft scatter-gather on sparse apps), so the *shape* of
//! Table 7 is reproducible even though the absolute board is simulated.

#![warn(missing_docs)]

/// Board/device characteristics (defaults: the paper's Stratix V class
/// device and memory system).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FpgaSpec {
    /// Adaptive logic modules available to user logic.
    pub alms: f64,
    /// M20K block RAMs (20 kbit each).
    pub m20k: f64,
    /// 27×27 DSP blocks.
    pub dsps: f64,
    /// Fabric clock in MHz.
    pub fabric_mhz: f64,
    /// Peak DRAM bandwidth in GB/s (6 × DDR3-800, ganged).
    pub dram_gbps: f64,
    /// Fraction of peak bandwidth achievable on dense streams.
    pub dense_efficiency: f64,
    /// Bytes transferred per random element access on the ganged wide
    /// channel (a 4 B element costs a full wide access).
    pub random_access_bytes: f64,
    /// Outstanding random requests the soft scatter-gather logic sustains.
    pub sg_outstanding: f64,
    /// DRAM round-trip latency seen by soft logic, in fabric cycles.
    pub mem_latency_cycles: f64,
    /// Baseline (static + PLL + memory controller) power in watts.
    pub base_power_w: f64,
    /// Additional watts at 100% logic utilization.
    pub dynamic_power_w: f64,
}

impl Default for FpgaSpec {
    fn default() -> FpgaSpec {
        FpgaSpec {
            alms: 262_400.0,
            m20k: 2_560.0,
            dsps: 1_963.0,
            fabric_mhz: 150.0,
            dram_gbps: 37.5,
            dense_efficiency: 0.72,
            random_access_bytes: 256.0, // ganged wide-channel drag per element
            sg_outstanding: 24.0,
            mem_latency_cycles: 30.0,
            base_power_w: 17.0,
            dynamic_power_w: 17.0,
        }
    }
}

/// Synthesis cost constants for DHDL-generated datapaths on Stratix V
/// (soft FP cores; no hardened FP units on this family).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FpgaCosts {
    /// ALMs per 32-bit FP add/sub/compare stage.
    pub alms_per_fp_op: f64,
    /// ALMs per 32-bit integer op stage.
    pub alms_per_int_op: f64,
    /// DSPs per FP multiplier.
    pub dsps_per_fp_mul: f64,
    /// ALMs of control/steering per parallel lane.
    pub alms_per_lane_overhead: f64,
    /// M20K blocks per KiB of banked, double-buffered tile storage
    /// (banking fragments block RAM: one M20K holds 2.5 KiB but banked
    /// buffers rarely pack them full).
    pub m20k_per_kb: f64,
    /// ALMs per soft scatter-gather engine.
    pub alms_per_sg: f64,
}

impl Default for FpgaCosts {
    fn default() -> FpgaCosts {
        FpgaCosts {
            alms_per_fp_op: 700.0,
            alms_per_int_op: 40.0,
            dsps_per_fp_mul: 1.0,
            alms_per_lane_overhead: 600.0,
            m20k_per_kb: 1.2,
            alms_per_sg: 4_000.0,
        }
    }
}

/// Workload characterization consumed by the model. Produced by the
/// benchmark harness from the same pattern programs the Plasticine flow
/// compiles, so both baselines see identical work.
#[derive(Debug, Clone, PartialEq)]
pub struct AppProfile {
    /// Benchmark name.
    pub name: String,
    /// Total ALU operations (element granularity).
    pub total_ops: f64,
    /// Of which floating-point multiplies.
    pub fp_muls: f64,
    /// Of which floating-point adds/other FP ops.
    pub fp_adds: f64,
    /// Ops in one element's datapath (pipeline length per lane).
    pub ops_per_elem: f64,
    /// Dense DRAM traffic in bytes (reads + writes).
    pub dense_bytes: f64,
    /// Random element accesses (gather/scatter elements).
    pub random_elems: f64,
    /// KiB of on-chip buffering the design needs (tiles × N-buffering),
    /// per parallel lane group.
    pub buffer_kb: f64,
    /// Parallelism the application structure exposes (product of par
    /// factors; the device may support less).
    pub app_parallelism: f64,
    /// Fraction of runtime serialized by sequential outer loops.
    pub sequential_frac: f64,
    /// Dependent (loop-carried) steps that cannot overlap — e.g. SGD's
    /// point loop. Zero for fully parallel apps.
    pub serial_iters: f64,
    /// Fabric cycles of latency per dependent step (pipeline depth plus
    /// per-step vector work).
    pub serial_cycles: f64,
}

/// What bounded the modeled design.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Bottleneck {
    /// ALM capacity.
    Logic,
    /// DSP capacity.
    Dsp,
    /// Block-RAM capacity.
    Bram,
    /// Dense DRAM bandwidth.
    Bandwidth,
    /// Random-access DRAM throughput.
    RandomAccess,
    /// Inherent serialization.
    Sequential,
}

/// Model output for one benchmark.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FpgaEstimate {
    /// Estimated runtime in seconds.
    pub seconds: f64,
    /// Parallel lanes instantiated.
    pub lanes: f64,
    /// Estimated board power in watts.
    pub power_w: f64,
    /// Logic utilization fraction.
    pub logic_util: f64,
    /// BRAM utilization fraction.
    pub bram_util: f64,
    /// Dominant limiter.
    pub bottleneck: Bottleneck,
}

/// The analytic model.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FpgaModel {
    /// Device characteristics.
    pub spec: FpgaSpec,
    /// Synthesis costs.
    pub costs: FpgaCosts,
}

impl FpgaModel {
    /// Model with default (paper-board) constants.
    pub fn new() -> FpgaModel {
        FpgaModel::default()
    }

    /// Estimates runtime and power for an application profile.
    pub fn estimate(&self, app: &AppProfile) -> FpgaEstimate {
        let s = &self.spec;
        let c = &self.costs;

        // Per-lane resource cost of the datapath.
        let fp_ops = app.fp_muls + app.fp_adds;
        let fp_frac = if app.total_ops > 0.0 {
            (fp_ops / app.total_ops).clamp(0.0, 1.0)
        } else {
            0.0
        };
        let mul_frac = if app.total_ops > 0.0 {
            (app.fp_muls / app.total_ops).clamp(0.0, 1.0)
        } else {
            0.0
        };
        let alms_per_lane = app.ops_per_elem
            * (fp_frac * c.alms_per_fp_op + (1.0 - fp_frac) * c.alms_per_int_op)
            + c.alms_per_lane_overhead;
        let dsps_per_lane = app.ops_per_elem * mul_frac * c.dsps_per_fp_mul;
        let bram_per_lane = app.buffer_kb * c.m20k_per_kb;

        // Device-limited parallelism.
        let sg_alms = if app.random_elems > 0.0 {
            c.alms_per_sg * 4.0
        } else {
            0.0
        };
        let lane_by_alm = ((s.alms - sg_alms) / alms_per_lane).max(1.0);
        let lane_by_dsp = if dsps_per_lane > 0.0 {
            (s.dsps / dsps_per_lane).max(1.0)
        } else {
            f64::INFINITY
        };
        let lane_by_bram = if bram_per_lane > 0.0 {
            (s.m20k / bram_per_lane).max(1.0)
        } else {
            f64::INFINITY
        };
        let lanes = lane_by_alm
            .min(lane_by_dsp)
            .min(lane_by_bram)
            .min(app.app_parallelism.max(1.0))
            .floor()
            .max(1.0);

        // Time components.
        let f = s.fabric_mhz * 1e6;
        let elems = if app.ops_per_elem > 0.0 {
            app.total_ops / app.ops_per_elem
        } else {
            0.0
        };
        let t_compute = elems / (lanes * f);
        let t_dense = app.dense_bytes / (s.dram_gbps * 1e9 * s.dense_efficiency);
        // Random throughput: limited both by the ganged-channel drag and by
        // how many requests the soft SG logic keeps in flight.
        let rand_bw_time = app.random_elems * s.random_access_bytes / (s.dram_gbps * 1e9);
        let rand_iops_time = app.random_elems * s.mem_latency_cycles / (s.sg_outstanding * f);
        let t_random = rand_bw_time.max(rand_iops_time);

        let t_parallel = t_compute.max(t_dense + t_random);
        let t_seq = t_parallel * app.sequential_frac;
        // Loop-carried dependences serialize at pipeline-latency
        // granularity: each step pays its full latency at the fabric clock
        // (the paper attributes SGD's and Kmeans' speedups "largely" to
        // Plasticine's higher clock — the same latency path at 1 GHz).
        let t_serial = app.serial_iters * app.serial_cycles / f;
        let seconds = (t_parallel + t_seq).max(t_serial);

        let bottleneck = if t_serial > t_parallel + t_seq {
            Bottleneck::Sequential
        } else if t_random > t_compute && t_random > t_dense {
            Bottleneck::RandomAccess
        } else if t_compute > t_dense + t_random {
            if lanes >= lane_by_bram.floor() {
                Bottleneck::Bram
            } else if lanes >= lane_by_dsp.floor() {
                Bottleneck::Dsp
            } else {
                Bottleneck::Logic
            }
        } else {
            Bottleneck::Bandwidth
        };

        let logic_util = ((lanes * alms_per_lane + sg_alms) / s.alms).clamp(0.0, 1.0);
        let bram_util = (lanes * bram_per_lane / s.m20k).clamp(0.0, 1.0);
        let power_w = s.base_power_w
            + s.dynamic_power_w * (0.6 * logic_util + 0.4 * bram_util).clamp(0.0, 1.0);

        FpgaEstimate {
            seconds,
            lanes,
            power_w,
            logic_util,
            bram_util,
            bottleneck,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stream_app(bytes: f64) -> AppProfile {
        AppProfile {
            name: "stream".into(),
            total_ops: bytes / 4.0,
            fp_muls: bytes / 8.0,
            fp_adds: bytes / 8.0,
            ops_per_elem: 2.0,
            dense_bytes: bytes,
            random_elems: 0.0,
            buffer_kb: 4.0,
            app_parallelism: 64.0,
            sequential_frac: 0.0,
            serial_iters: 0.0,
            serial_cycles: 0.0,
        }
    }

    #[test]
    fn streaming_app_is_bandwidth_bound() {
        let m = FpgaModel::new();
        let e = m.estimate(&stream_app(1e9));
        assert_eq!(e.bottleneck, Bottleneck::Bandwidth);
        // Time ≈ bytes / effective bandwidth.
        let expect = 1e9 / (37.5e9 * 0.72);
        assert!((e.seconds / expect - 1.0).abs() < 0.2, "{}", e.seconds);
    }

    #[test]
    fn compute_heavy_app_is_resource_bound() {
        let m = FpgaModel::new();
        let app = AppProfile {
            name: "compute".into(),
            total_ops: 1e12,
            fp_muls: 4e11,
            fp_adds: 6e11,
            ops_per_elem: 80.0,
            dense_bytes: 1e8,
            random_elems: 0.0,
            buffer_kb: 2.0,
            app_parallelism: 1e6,
            sequential_frac: 0.0,
            serial_iters: 0.0,
            serial_cycles: 0.0,
        };
        let e = m.estimate(&app);
        assert!(matches!(
            e.bottleneck,
            Bottleneck::Logic | Bottleneck::Dsp | Bottleneck::Bram
        ));
        assert!(e.logic_util > 0.5 || e.bram_util > 0.5);
    }

    #[test]
    fn random_access_is_far_slower_than_dense() {
        let m = FpgaModel::new();
        let dense = m.estimate(&stream_app(4e8));
        let mut sparse = stream_app(0.0);
        sparse.random_elems = 1e8; // same 4e8 bytes of payload
        sparse.total_ops = 1e8;
        sparse.ops_per_elem = 1.0;
        let r = m.estimate(&sparse);
        assert_eq!(r.bottleneck, Bottleneck::RandomAccess);
        assert!(
            r.seconds > 5.0 * dense.seconds,
            "random {} vs dense {}",
            r.seconds,
            dense.seconds
        );
    }

    #[test]
    fn bram_limits_heavily_buffered_designs() {
        let m = FpgaModel::new();
        let mut app = stream_app(1e8);
        app.ops_per_elem = 20.0;
        app.total_ops = 1e12;
        app.app_parallelism = 1e6;
        app.buffer_kb = 512.0; // large double-buffered tiles per lane
        let e = m.estimate(&app);
        let mut small = app.clone();
        small.buffer_kb = 8.0;
        let e2 = m.estimate(&small);
        assert!(e.lanes < e2.lanes, "{} vs {}", e.lanes, e2.lanes);
    }

    #[test]
    fn power_is_in_table7_range() {
        let m = FpgaModel::new();
        for app in [stream_app(1e9), stream_app(1e7)] {
            let e = m.estimate(&app);
            assert!(
                e.power_w >= 17.0 && e.power_w <= 35.0,
                "power {}",
                e.power_w
            );
        }
    }

    #[test]
    fn sequential_fraction_slows_execution() {
        let m = FpgaModel::new();
        let mut app = stream_app(1e9);
        let base = m.estimate(&app).seconds;
        app.sequential_frac = 1.0;
        let slow = m.estimate(&app).seconds;
        assert!((slow / base - 2.0).abs() < 0.01);
    }

    #[test]
    fn serial_latency_path_dominates_when_long() {
        let m = FpgaModel::new();
        let mut app = stream_app(1e6);
        let base = m.estimate(&app).seconds;
        app.serial_iters = 1e6;
        app.serial_cycles = 40.0;
        let e = m.estimate(&app);
        assert!(e.seconds > base);
        assert_eq!(e.bottleneck, Bottleneck::Sequential);
        let expect = 1e6 * 40.0 / 150e6;
        assert!((e.seconds / expect - 1.0).abs() < 0.05);
    }
}
