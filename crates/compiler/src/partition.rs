//! Partitioning virtual PCUs into physical PCUs (§3.6).
//!
//! A virtual PCU has unbounded stages, registers, and IO. A physical PCU
//! has the limits of [`PcuParams`]. The partitioner splits the virtual
//! unit's topologically-ordered op list into *chunks*, each realizable as
//! one physical PCU, chained through the vector network. The cost metric
//! mirrors the paper's: "number of physical stages, live variables per
//! stage, and scalar and vector input/output buses required".
//!
//! This function is also the engine of the Figure 7 design-space sweep:
//! for a candidate parameter set, the number of physical PCUs an
//! application needs *is* the partitioner's chunk count (× unroll copies),
//! and parameter sets for which some virtual unit cannot be split at all
//! are the ×-marked invalid points.

use crate::vunit::{VSrc, VirtualPcu};
use plasticine_arch::PcuParams;
use std::collections::HashSet;
use std::fmt;

/// Resource footprint of one chunk (= one physical PCU).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ChunkStats {
    /// ALU stages used (including reduction-tree stages in the final chunk).
    pub stages: usize,
    /// Peak live values crossing any stage boundary (pipeline registers
    /// needed per lane).
    pub max_live: usize,
    /// Vector input buses used.
    pub vec_ins: usize,
    /// Vector output buses used.
    pub vec_outs: usize,
    /// Scalar input buses used.
    pub scal_ins: usize,
    /// Scalar output buses used.
    pub scal_outs: usize,
}

/// Why a virtual unit cannot be realized under a parameter set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PartitionError {
    /// Some single operation's operand set already exceeds the IO limits.
    OpTooWide {
        /// Virtual unit name.
        unit: String,
        /// Index of the offending op.
        op: usize,
    },
    /// The cross-lane reduction tree does not fit in one PCU's stages.
    ReductionTooDeep {
        /// Virtual unit name.
        unit: String,
        /// Stages the tree needs.
        needed: usize,
        /// Stages available.
        have: usize,
    },
    /// The pattern's own IO (inputs or outputs) exceeds what a single chunk
    /// can ever provide.
    IoTooWide {
        /// Virtual unit name.
        unit: String,
    },
}

impl fmt::Display for PartitionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PartitionError::OpTooWide { unit, op } => {
                write!(f, "unit `{unit}`: op {op} exceeds PCU IO limits by itself")
            }
            PartitionError::ReductionTooDeep { unit, needed, have } => write!(
                f,
                "unit `{unit}`: reduction tree needs {needed} stages, PCU has {have}"
            ),
            PartitionError::IoTooWide { unit } => {
                write!(f, "unit `{unit}`: pattern IO exceeds PCU limits")
            }
        }
    }
}

impl std::error::Error for PartitionError {}

/// Use positions of each value: op index, or `OUTPUT` for pattern outputs.
const OUTPUT: usize = usize::MAX;

struct Uses {
    /// For op `i`: positions that consume its result.
    op_uses: Vec<Vec<usize>>,
    /// For vector input `k`: positions that consume it.
    vecin_uses: Vec<Vec<usize>>,
}

fn collect_uses(v: &VirtualPcu) -> Uses {
    let mut op_uses = vec![Vec::new(); v.ops.len()];
    let mut vecin_uses = vec![Vec::new(); v.vec_ins];
    for (i, op) in v.ops.iter().enumerate() {
        for s in &op.srcs {
            match s {
                VSrc::Op(j) => op_uses[*j].push(i),
                VSrc::VecIn(k) => vecin_uses[*k].push(i),
                _ => {}
            }
        }
    }
    for out in &v.outputs {
        match out {
            VSrc::Op(j) => op_uses[*j].push(OUTPUT),
            VSrc::VecIn(k) => vecin_uses[*k].push(OUTPUT),
            _ => {}
        }
    }
    Uses {
        op_uses,
        vecin_uses,
    }
}

/// Computes the stats of chunk `[s, e)`; `is_last` charges pattern outputs,
/// scalar outs, and the reduction tree to this chunk.
fn chunk_stats(v: &VirtualPcu, uses: &Uses, s: usize, e: usize, is_last: bool) -> ChunkStats {
    let in_chunk = |pos: usize| pos >= s && pos < e;

    // Vector inputs: original streams used here + live-in op values.
    let mut vec_in_streams: HashSet<(bool, usize)> = HashSet::new();
    let mut scal_in_ids: HashSet<usize> = HashSet::new();
    for i in s..e {
        for src in &v.ops[i].srcs {
            match src {
                VSrc::VecIn(k) => {
                    vec_in_streams.insert((false, *k));
                }
                VSrc::Op(j) if *j < s => {
                    vec_in_streams.insert((true, *j));
                }
                VSrc::ScalIn(k) => {
                    scal_in_ids.insert(*k);
                }
                _ => {}
            }
        }
    }

    // Vector outputs: op values produced here and used later or as outputs.
    let mut vec_out_vals: HashSet<usize> = HashSet::new();
    for i in s..e {
        if uses.op_uses[i].iter().any(|&u| u == OUTPUT || u >= e) {
            vec_out_vals.insert(i);
        }
    }
    // Pattern outputs whose source is not an op (passthrough inputs or
    // counter values) leave from the last chunk.
    let mut extra_outs = 0usize;
    if is_last {
        for out in &v.outputs {
            match out {
                VSrc::Op(_) => {}
                _ => extra_outs += 1,
            }
        }
    }

    // Register pressure: live intervals within the chunk.
    // Each interval is (birth_boundary, death_boundary]: crossing stage
    // boundary k (between local stage k-1 and k) for birth < k <= death.
    let mut intervals: Vec<(usize, usize)> = Vec::new();
    for i in s..e {
        let local_birth = i - s;
        let last_local = uses.op_uses[i]
            .iter()
            .filter(|&&u| u != OUTPUT && in_chunk(u))
            .max()
            .copied();
        if let Some(last) = last_local {
            intervals.push((local_birth, last - s));
        }
        // Exports tap the output crossbar at production; no further carry.
    }
    // External values (vector inputs / live-ins): held in the input FIFO
    // until first use, then carried to last use.
    let ext_intervals = |positions: &[usize], intervals: &mut Vec<(usize, usize)>| {
        let local: Vec<usize> = positions
            .iter()
            .filter(|&&u| u != OUTPUT && in_chunk(u))
            .map(|&u| u - s)
            .collect();
        if let (Some(&first), Some(&last)) = (local.iter().min(), local.iter().max()) {
            if first != last {
                intervals.push((first, last));
            }
        }
    };
    for k in 0..v.vec_ins {
        ext_intervals(&uses.vecin_uses[k], &mut intervals);
    }
    for j in 0..s {
        ext_intervals(&uses.op_uses[j], &mut intervals);
    }

    let n_stages = e - s;
    let mut max_live = 0usize;
    for k in 1..n_stages {
        let crossing = intervals.iter().filter(|(b, d)| *b < k && k <= *d).count();
        max_live = max_live.max(crossing);
    }
    // Even a single value in flight needs one register per stage.
    if n_stages > 0 {
        max_live = max_live.max(1);
    }

    let red = if is_last { reduction_stages(v) } else { 0 };
    ChunkStats {
        stages: n_stages + red,
        max_live,
        vec_ins: vec_in_streams.len(),
        vec_outs: vec_out_vals.len() + extra_outs,
        scal_ins: scal_in_ids.len(),
        scal_outs: if is_last { v.scal_outs } else { 0 },
    }
}

fn reduction_stages(v: &VirtualPcu) -> usize {
    if v.reduction_lanes > 1 {
        (v.reduction_lanes as f64).log2().ceil() as usize + 1
    } else {
        0
    }
}

fn fits(st: &ChunkStats, p: &PcuParams) -> bool {
    st.stages <= p.stages
        && st.max_live <= p.regs_per_stage
        && st.vec_ins <= p.vector_ins
        && st.vec_outs <= p.vector_outs
        && st.scal_ins <= p.scalar_ins
        && st.scal_outs <= p.scalar_outs
}

/// Splits a virtual PCU into physical chunks under the given parameters.
///
/// Returns one [`ChunkStats`] per physical PCU required (for one copy; the
/// caller multiplies by the unroll factor).
///
/// # Errors
///
/// Returns [`PartitionError`] when the unit cannot be realized under the
/// parameters at all — the ×-marked points of Figure 7.
pub fn partition(v: &VirtualPcu, p: &PcuParams) -> Result<Vec<ChunkStats>, PartitionError> {
    let red = reduction_stages(v);
    if red > p.stages {
        return Err(PartitionError::ReductionTooDeep {
            unit: v.name.clone(),
            needed: red,
            have: p.stages,
        });
    }
    let uses = collect_uses(v);

    if v.ops.is_empty() {
        // Pure passthrough / reduction-only pipes still occupy one PCU.
        let st = chunk_stats(v, &uses, 0, 0, true);
        let st = ChunkStats {
            stages: st.stages.max(1),
            max_live: st.max_live.max(1),
            ..st
        };
        if st.vec_ins > p.vector_ins
            || st.vec_outs > p.vector_outs
            || st.scal_ins > p.scalar_ins
            || st.scal_outs > p.scalar_outs
        {
            return Err(PartitionError::IoTooWide {
                unit: v.name.clone(),
            });
        }
        return Ok(vec![st]);
    }

    // Preferred: the reduction tree shares the final op chunk. Fallback:
    // give the reduction its own PCU (cross-PCU tree) when the final op
    // chunk cannot absorb it.
    match greedy_chunks(v, &uses, p, true) {
        Ok(chunks) => Ok(chunks),
        Err(first_err) => {
            if red == 0 {
                return Err(first_err);
            }
            let mut chunks = greedy_chunks(v, &uses, p, false).map_err(|_| first_err)?;
            chunks.push(ChunkStats {
                stages: red,
                max_live: 1,
                vec_ins: 1,
                vec_outs: v.vec_outs,
                scal_ins: 0,
                scal_outs: v.scal_outs,
            });
            Ok(chunks)
        }
    }
}

/// The greedy splitting loop. `charge_red` attributes the reduction tree
/// (and final scalar outputs) to the chunk holding the last op.
fn greedy_chunks(
    v: &VirtualPcu,
    uses: &Uses,
    p: &PcuParams,
    charge_red: bool,
) -> Result<Vec<ChunkStats>, PartitionError> {
    let n = v.ops.len();
    let mut chunks = Vec::new();
    let mut s = 0usize;
    const LOOKAHEAD: usize = 4;
    while s < n {
        // Longest feasible end, with a small lookahead past the first
        // failure (adding an op can *reduce* vector outs by consuming a
        // live value locally).
        let mut best_end = None;
        let mut misses = 0usize;
        for e in (s + 1)..=n {
            let is_last = e == n && charge_red;
            let st = chunk_stats(v, uses, s, e, is_last);
            if fits(&st, p) {
                best_end = Some(e);
                misses = 0;
            } else {
                misses += 1;
                if best_end.is_some() && misses > LOOKAHEAD {
                    break;
                }
            }
        }
        let Some(e) = best_end else {
            // Not even a single op fits.
            let st = chunk_stats(v, uses, s, s + 1, s + 1 == n && charge_red);
            if st.stages > p.stages && s + 1 == n {
                return Err(PartitionError::ReductionTooDeep {
                    unit: v.name.clone(),
                    needed: st.stages,
                    have: p.stages,
                });
            }
            return Err(PartitionError::OpTooWide {
                unit: v.name.clone(),
                op: s,
            });
        };
        chunks.push(chunk_stats(v, uses, s, e, e == n && charge_red));
        s = e;
    }
    Ok(chunks)
}

/// Total physical PCUs for a virtual unit under `p`, including unroll
/// copies. `None` if unrealizable.
pub fn pcus_required(v: &VirtualPcu, p: &PcuParams) -> Option<usize> {
    partition(v, p).ok().map(|c| c.len() * v.copies)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vunit::VOp;
    use plasticine_ppir::CtrlId;

    /// A straight-line chain of `n` ops, each consuming the previous.
    fn chain(n: usize) -> VirtualPcu {
        let ops = (0..n)
            .map(|i| VOp {
                srcs: if i == 0 {
                    vec![VSrc::VecIn(0)]
                } else {
                    vec![VSrc::Op(i - 1)]
                },
                heavy: false,
            })
            .collect::<Vec<_>>();
        VirtualPcu {
            name: format!("chain{n}"),
            ctrl: CtrlId(0),
            outputs: vec![VSrc::Op(n - 1)],
            ops,
            vec_ins: 1,
            scal_ins: 0,
            vec_outs: 1,
            scal_outs: 0,
            reduction_lanes: 0,
            lanes: 16,
            copies: 1,
        }
    }

    fn paper() -> PcuParams {
        PcuParams::paper_final()
    }

    #[test]
    fn small_unit_fits_one_pcu() {
        let v = chain(4);
        let chunks = partition(&v, &paper()).unwrap();
        assert_eq!(chunks.len(), 1);
        assert_eq!(chunks[0].stages, 4);
        assert_eq!(chunks[0].vec_ins, 1);
        assert_eq!(chunks[0].vec_outs, 1);
    }

    #[test]
    fn long_chain_splits_into_ceil_n_over_s() {
        // An 80-op pipeline at 6 stages → 14 PCUs (BlackScholes in §3.7).
        let v = chain(80);
        let chunks = partition(&v, &paper()).unwrap();
        assert_eq!(chunks.len(), 14);
        assert!(chunks.iter().all(|c| c.stages <= 6));
        // Chained chunks talk over one vector bus each.
        for c in &chunks {
            assert!(c.vec_ins <= 1);
            assert!(c.vec_outs <= 1);
        }
    }

    #[test]
    fn reduction_tree_needs_five_stages_at_16_lanes() {
        let mut v = chain(1);
        v.reduction_lanes = 16;
        v.scal_outs = 1;
        v.vec_outs = 0;
        v.outputs = vec![VSrc::Op(0)];
        // Paper: at least 5 stages for a full cross-lane reduction; with the
        // op itself that is 6 → fits exactly at the paper's 6 stages.
        let chunks = partition(&v, &paper()).unwrap();
        assert_eq!(chunks.len(), 1);
        assert_eq!(chunks[0].stages, 6);
        // At 4 stages the tree alone does not fit → invalid point (Fig 7a ×).
        let small = PcuParams {
            stages: 4,
            ..paper()
        };
        assert!(matches!(
            partition(&v, &small),
            Err(PartitionError::ReductionTooDeep { .. })
        ));
    }

    #[test]
    fn register_pressure_forces_extra_cuts() {
        // Produce 3 values early, consume them late: with few registers the
        // unit must split more.
        let mut ops = Vec::new();
        // ops 0..3: independent values from vector inputs
        for k in 0..3 {
            ops.push(VOp {
                srcs: vec![VSrc::VecIn(k)],
                heavy: false,
            });
        }
        // ops 3..9: a chain off op 0
        for i in 3..9 {
            ops.push(VOp {
                srcs: vec![VSrc::Op(i - 1)],
                heavy: false,
            });
        }
        // op 9, 10: consume the stashed values 1 and 2
        ops.push(VOp {
            srcs: vec![VSrc::Op(8), VSrc::Op(1)],
            heavy: false,
        });
        ops.push(VOp {
            srcs: vec![VSrc::Op(9), VSrc::Op(2)],
            heavy: false,
        });
        let v = VirtualPcu {
            name: "pressure".into(),
            ctrl: CtrlId(0),
            outputs: vec![VSrc::Op(10)],
            ops,
            vec_ins: 3,
            scal_ins: 0,
            vec_outs: 1,
            scal_outs: 0,
            reduction_lanes: 0,
            lanes: 16,
            copies: 1,
        };
        let plenty = partition(&v, &paper()).unwrap();
        let tight = PcuParams {
            regs_per_stage: 2,
            ..paper()
        };
        let squeezed = partition(&v, &tight).unwrap();
        assert!(
            squeezed.len() >= plenty.len(),
            "fewer registers cannot need fewer PCUs"
        );
        for c in &squeezed {
            assert!(c.max_live <= 2);
        }
    }

    #[test]
    fn op_with_too_many_vector_operands_is_invalid() {
        let v = VirtualPcu {
            name: "wide".into(),
            ctrl: CtrlId(0),
            ops: vec![VOp {
                srcs: vec![VSrc::VecIn(0), VSrc::VecIn(1)],
                heavy: false,
            }],
            outputs: vec![VSrc::Op(0)],
            vec_ins: 2,
            scal_ins: 0,
            vec_outs: 1,
            scal_outs: 0,
            reduction_lanes: 0,
            lanes: 16,
            copies: 1,
        };
        let one_in = PcuParams {
            vector_ins: 1,
            ..paper()
        };
        assert!(matches!(
            partition(&v, &one_in),
            Err(PartitionError::OpTooWide { .. })
        ));
    }

    #[test]
    fn empty_pipe_occupies_one_pcu() {
        let v = VirtualPcu {
            name: "copy".into(),
            ctrl: CtrlId(0),
            ops: vec![],
            outputs: vec![VSrc::VecIn(0)],
            vec_ins: 1,
            scal_ins: 0,
            vec_outs: 1,
            scal_outs: 0,
            reduction_lanes: 0,
            lanes: 16,
            copies: 1,
        };
        let chunks = partition(&v, &paper()).unwrap();
        assert_eq!(chunks.len(), 1);
        assert!(chunks[0].stages >= 1);
    }

    #[test]
    fn pcus_required_multiplies_copies() {
        let mut v = chain(10);
        v.copies = 4;
        assert_eq!(pcus_required(&v, &paper()), Some(8));
    }

    #[test]
    fn sweep_monotone_in_stages() {
        // More stages per PCU never increases the PCU count.
        let v = chain(37);
        let mut prev = usize::MAX;
        for stages in 4..=16 {
            let p = PcuParams { stages, ..paper() };
            let n = partition(&v, &p).unwrap().len();
            assert!(n <= prev, "stages={stages}: {n} > {prev}");
            prev = n;
        }
    }
}
