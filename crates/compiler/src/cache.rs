//! Compile cache keyed by content hashes.
//!
//! The key is `(program hash, params hash, options hash)` — the options
//! hash covers the routing budgets *and* the fault map, so compiling the
//! same program for a differently-degraded chip never aliases. Hashes are
//! stable across processes ([`plasticine_ppir::stable_hash_of`] — FNV-1a
//! over deterministic `Debug` renderings), so the key identifies the
//! compile, not the allocation.
//!
//! The cache is `Sync`: the parallel DSE/batch drivers share one instance
//! across worker threads, and entries are handed out as `Arc`s so a hit
//! costs a lookup and a refcount bump instead of a recompile.

use crate::error::CompileError;
use crate::passes::{compile_degraded, CompileOptions, CompileOutput};
use plasticine_arch::PlasticineParams;
use plasticine_ppir::{stable_hash_of, Program};
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Cache key: `(program, params, options)` content hashes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// [`Program::stable_hash`] of the source program.
    pub program: u64,
    /// Stable hash of the architecture parameters.
    pub params: u64,
    /// Stable hash of the compile options (route limits + fault map).
    pub opts: u64,
}

impl CacheKey {
    /// Computes the key for a compile request.
    pub fn of(p: &Program, params: &PlasticineParams, opts: &CompileOptions) -> CacheKey {
        CacheKey {
            program: p.stable_hash(),
            params: stable_hash_of(params),
            opts: stable_hash_of(opts),
        }
    }
}

/// One cached compile: the output, the (possibly par-reduced) program
/// actually compiled, and the degradation notes.
pub type CachedCompile = (CompileOutput, Program, Vec<String>);

/// A thread-safe memoization layer over [`compile_degraded`].
#[derive(Debug, Default)]
pub struct CompileCache {
    entries: Mutex<HashMap<CacheKey, Arc<CachedCompile>>>,
    hits: AtomicUsize,
    misses: AtomicUsize,
}

impl CompileCache {
    /// An empty cache.
    pub fn new() -> CompileCache {
        CompileCache::default()
    }

    /// [`compile_degraded`] through the cache: returns the cached entry on
    /// a key hit, otherwise compiles, stores, and returns the new entry.
    ///
    /// # Errors
    ///
    /// Propagates [`CompileError`] from the underlying compile. Failures
    /// are not cached — a retry recompiles.
    pub fn compile_degraded(
        &self,
        p: &Program,
        params: &PlasticineParams,
        opts: &CompileOptions,
    ) -> Result<Arc<CachedCompile>, CompileError> {
        let key = CacheKey::of(p, params, opts);
        if let Some(hit) = self.entries.lock().unwrap().get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(Arc::clone(hit));
        }
        // Compile outside the lock: concurrent misses on different keys
        // must not serialize on each other. Two racing misses on the SAME
        // key both compile; the outputs are identical (compilation is
        // deterministic), so last-insert-wins is harmless.
        self.misses.fetch_add(1, Ordering::Relaxed);
        let entry = Arc::new(compile_degraded(p, params, opts)?);
        self.entries.lock().unwrap().insert(key, Arc::clone(&entry));
        Ok(entry)
    }

    /// Cache hits so far.
    pub fn hits(&self) -> usize {
        self.hits.load(Ordering::Relaxed)
    }

    /// Cache misses (= actual compiles) so far.
    pub fn misses(&self) -> usize {
        self.misses.load(Ordering::Relaxed)
    }

    /// Number of distinct entries held.
    pub fn len(&self) -> usize {
        self.entries.lock().unwrap().len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use plasticine_arch::PlasticineParams;

    #[test]
    fn warm_hit_returns_the_same_entry() {
        let cache = CompileCache::new();
        let p = crate::emit::tests::vadd_tiled(2);
        let params = PlasticineParams::paper_final();
        let opts = CompileOptions::new();
        let a = cache.compile_degraded(&p, &params, &opts).unwrap();
        let b = cache.compile_degraded(&p, &params, &opts).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "second compile must be a cache hit");
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn different_inputs_do_not_alias() {
        let cache = CompileCache::new();
        let params = PlasticineParams::paper_final();
        let opts = CompileOptions::new();
        let p1 = crate::emit::tests::vadd_tiled(1);
        let p2 = crate::emit::tests::vadd_tiled(2);
        cache.compile_degraded(&p1, &params, &opts).unwrap();
        cache.compile_degraded(&p2, &params, &opts).unwrap();
        // Same program, different params → separate entry too.
        let mut params2 = params.clone();
        params2.pcu.lanes = 4;
        cache.compile_degraded(&p1, &params2, &opts).unwrap();
        assert_eq!(cache.misses(), 3);
        assert_eq!(cache.len(), 3);
        assert_eq!(cache.hits(), 0);
    }
}
